//! Quickstart: the Listing-1 platform running a few GPU functions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's baseline configuration — 16 CPU workers plus one
//! whole-GPU worker on an A100 — submits a mix of CPU tasks and ResNet-50
//! inferences, and prints the task table and GPU utilization.

use parfait::faas::app::bodies::{CpuBurn, KernelSeq};
use parfait::faas::{boot, submit, AppCall, Config, FaasWorld};
use parfait::gpu::host::GpuFleet;
use parfait::gpu::{nvml, GpuId, GpuSpec};
use parfait::simcore::{Engine, SimDuration};
use parfait::workloads::dnn::{exec, models};

fn main() {
    // 1. Hardware: one A100-40GB, as in the paper's testbed.
    let mut fleet = GpuFleet::new();
    let gpu_spec = GpuSpec::a100_40gb();
    fleet.add(gpu_spec.clone());

    // 2. Platform: the paper's Listing-1 `hsc()` configuration.
    let config = Config::hsc();
    let mut world = FaasWorld::new(config, fleet, 42);
    let mut eng = Engine::new();
    boot(&mut world, &mut eng);

    // 3. Apps: a small quantum-chemistry-style CPU task and a ResNet-50
    //    inference lowered onto the simulated GPU.
    for i in 0..8 {
        submit(
            &mut world,
            &mut eng,
            AppCall::new("preprocess", "cpu", move |rng| {
                let secs = rng.range_f64(1.0, 3.0);
                Box::new(CpuBurn::new(SimDuration::from_secs_f64(secs)))
            }),
        );
        let _ = i;
    }
    let model = models::resnet50();
    let kernels = exec::inference_kernels(&model, &gpu_spec, 8);
    for _ in 0..6 {
        let kernels = kernels.clone();
        submit(
            &mut world,
            &mut eng,
            AppCall::new("resnet50-infer", "gpu", move |_| {
                Box::new(KernelSeq::new(kernels.clone(), exec::layer_host_overhead()))
            }),
        );
    }

    // 4. Run the virtual platform to completion.
    eng.run(&mut world);

    // 5. Report.
    println!(
        "tasks settled: {} done, {} failed",
        world.dfk.done_count(),
        world.dfk.failed_count()
    );
    for row in parfait::faas::monitoring::task_rows(&world.dfk) {
        println!(
            "  task {:>2}  {:<16} {:<6} turnaround {:>7}  exec {:>7}",
            row.id,
            row.app,
            row.state,
            row.turnaround_s
                .map(|t| format!("{t:.2}s"))
                .unwrap_or_else(|| "-".into()),
            row.exec_s
                .map(|t| format!("{t:.2}s"))
                .unwrap_or_else(|| "-".into()),
        );
    }
    let info = nvml::device_info(&world.fleet, GpuId(0));
    println!(
        "\nGPU {} ({}): {} contexts, avg utilization {:.1}%",
        info.index,
        info.name,
        info.contexts,
        nvml::average_utilization(&world.fleet, GpuId(0), eng.now()) * 100.0
    );
    println!("virtual wall time: {}", eng.now());
}
