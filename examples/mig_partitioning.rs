//! MIG lifecycle walkthrough (§4.2 + §6): create instances, bind workers
//! by UUID (Listing 3), then live-reconfigure — showing both the MPS
//! restart path and the MIG reset path with their measured costs, and the
//! §7 weight cache shortening the restart.
//!
//! ```text
//! cargo run --release --example mig_partitioning
//! ```

use parfait::core::{apply_plan, plan, reconfigure_mig_equal, resize_mps, weightcache, Strategy};
use parfait::faas::{boot, submit, AppCall, Config, ExecutorConfig, FaasWorld, TaskState};
use parfait::gpu::host::GpuFleet;
use parfait::gpu::{nvml, GpuSpec};
use parfait::simcore::Engine;
use parfait::workloads::{CompletionBody, LlmSpec};

fn chat(llm: &LlmSpec, gpu: &GpuSpec, app: &str) -> AppCall {
    let llm = llm.clone();
    let gpu = gpu.clone();
    AppCall::new(app, "gpu", move |_| {
        Box::new(CompletionBody::paper_request(llm.clone(), gpu.clone()))
    })
}

fn first_completion_after(world: &FaasWorld, app: &str) -> Option<f64> {
    world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == app && t.state == TaskState::Done)
        .filter_map(|t| t.finished)
        .min()
        .map(|t| t.as_secs_f64())
}

fn main() {
    let gpu_spec = GpuSpec::a100_80gb();
    let llm = LlmSpec::llama2_7b(2);

    // --- Part 1: Listing-3 style MIG setup -------------------------------
    let mut fleet = GpuFleet::new();
    let g = fleet.add(gpu_spec.clone());
    let p = plan(&gpu_spec, 0, 2, &Strategy::MigEqual).expect("plan");
    let specs = apply_plan(&mut fleet, &p).expect("apply");
    println!("MIG instances on GPU 0:");
    for inst in nvml::list_mig_instances(&fleet, g) {
        println!(
            "  {}  profile {}  {} SMs  {:.0} GiB",
            inst.uuid,
            inst.profile,
            inst.sms,
            inst.memory_bytes as f64 / (1 << 30) as f64
        );
    }
    let config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
    let mut world = FaasWorld::new(config, fleet, 3);
    let mut eng = Engine::new();
    boot(&mut world, &mut eng);
    for _ in 0..2 {
        submit(&mut world, &mut eng, chat(&llm, &gpu_spec, "warm"));
    }
    eng.run(&mut world);
    println!(
        "warmed 2 workers on 3g.40gb instances; CUDA_VISIBLE_DEVICES of worker 0 = {:?}",
        world.workers[0].env.get("CUDA_VISIBLE_DEVICES")
    );

    // --- Part 2: MIG reconfiguration (2×3g → 4... here 2→ new shape) -----
    // Reconfigure the same two workers onto 2g instances (freeing slices
    // for more tenants). Requires killing all residents + GPU reset.
    let t0 = eng.now();
    reconfigure_mig_equal(&mut world, &mut eng, 0, 2).expect("mig reconfig");
    submit(&mut world, &mut eng, chat(&llm, &gpu_spec, "post-mig"));
    eng.run(&mut world);
    let t1 = first_completion_after(&world, "post-mig").expect("completed");
    println!(
        "\nMIG reconfigure → first completion: {:.2}s (includes 1.5s GPU reset + \
         full worker restart + model reload)",
        t1 - t0.as_secs_f64()
    );

    // --- Part 3: MPS resize, stock vs weight cache -----------------------
    for cache in [false, true] {
        let mut fleet = GpuFleet::new();
        fleet.add(gpu_spec.clone());
        let p = plan(&gpu_spec, 0, 2, &Strategy::MpsEqual).expect("plan");
        let specs = apply_plan(&mut fleet, &p).expect("apply");
        let config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
        let mut world = FaasWorld::new(config, fleet, 3);
        if cache {
            weightcache::enable(&mut world);
        }
        let mut eng = Engine::new();
        boot(&mut world, &mut eng);
        for _ in 0..2 {
            submit(&mut world, &mut eng, chat(&llm, &gpu_spec, "warm"));
        }
        eng.run(&mut world);
        let t0 = eng.now();
        resize_mps(&mut world, &mut eng, 0, &[75, 25]).expect("resize");
        submit(&mut world, &mut eng, chat(&llm, &gpu_spec, "post-mps"));
        eng.run(&mut world);
        let t1 = first_completion_after(&world, "post-mps").expect("completed");
        println!(
            "MPS resize (50/50 → 75/25){} → first completion: {:.2}s",
            if cache { " + §7 weight cache" } else { "" },
            t1 - t0.as_secs_f64()
        );
        if cache {
            let r = weightcache::report(&world);
            println!(
                "  cache: {} hits / {} misses ({:.0}% hit rate), {} entr{} resident",
                r.hits,
                r.misses,
                r.hit_rate * 100.0,
                r.entries,
                if r.entries == 1 { "y" } else { "ies" }
            );
        }
    }
}
