//! The §5.2 scenario: multiple LLaMa2-7B chatbots multiplexed on one
//! A100-80GB under the three sharing modes the paper evaluates.
//!
//! ```text
//! cargo run --release --example llama_chatbots [completions] [procs]
//! ```
//!
//! For each of time-sharing / MPS / MIG, partitions the GPU with the
//! `parfait-core` planner, runs the completion workload through the FaaS
//! executor, and prints completion time, per-request latency, throughput
//! and utilization — Figs. 4 and 5 in miniature.

use parfait::core::metrics;
use parfait::core::{apply_plan, plan, Strategy};
use parfait::faas::{boot, submit, AppCall, Config, ExecutorConfig, FaasWorld};
use parfait::gpu::host::GpuFleet;
use parfait::gpu::GpuSpec;
use parfait::simcore::Engine;
use parfait::workloads::{CompletionBody, LlmSpec};

fn run_mode(strategy: &Strategy, procs: usize, completions: usize) {
    let gpu_spec = GpuSpec::a100_80gb();
    let llm = LlmSpec::llama2_7b(2); // fp16: four instances fit in 80 GB
    let mut fleet = GpuFleet::new();
    let g = fleet.add(gpu_spec.clone());
    if matches!(strategy, Strategy::MigEqual) {
        // A 4-way MIG split (1g.10gb) is smaller than the deployment
        // footprint; allow UVM oversubscription as DESIGN.md documents.
        fleet.device_mut(g).set_uvm(true);
    }
    let p = plan(&gpu_spec, 0, procs, strategy).expect("plan");
    let specs = apply_plan(&mut fleet, &p).expect("apply");
    println!("\n== {:?}: {} workers ==", strategy, procs);
    for (i, s) in specs.iter().enumerate() {
        println!("  worker {i}: {s:?}");
    }
    let config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
    let mut world = FaasWorld::new(config, fleet, 7);
    let mut eng = Engine::new();
    boot(&mut world, &mut eng);
    let call = || {
        let llm = llm.clone();
        let gpu_spec = gpu_spec.clone();
        AppCall::new("chat", "gpu", move |_| {
            Box::new(CompletionBody::paper_request(llm.clone(), gpu_spec.clone()))
        })
    };
    for _ in 0..completions {
        submit(&mut world, &mut eng, call());
    }
    eng.run(&mut world);
    let lat = metrics::exec_latency(&world, "chat");
    println!(
        "  {} completions in {:.1}s  |  latency mean {:.2}s  |  {:.3} req/s  |  GPU util {:.1}%",
        completions,
        metrics::makespan(&world, "chat")
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0),
        lat.mean(),
        metrics::throughput(&world, "chat"),
        world.monitor.mean_utilization(0) * 100.0,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let completions: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(40);
    let procs: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("LLaMa2-7B chatbots: {completions} completions across {procs} worker(s)");
    run_mode(&Strategy::TimeSharing, procs, completions);
    run_mode(&Strategy::MpsEqual, procs, completions);
    run_mode(&Strategy::MigEqual, procs, completions);
    println!("\n(cold starts and model loads are included here; the repro harness warms first)");
}
