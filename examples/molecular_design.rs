//! The §3.1 molecular-design campaign: active learning over a synthetic
//! chemistry oracle on the Listing-1 platform, with the Fig. 3 phase
//! timeline rendered as ASCII.
//!
//! ```text
//! cargo run --release --example molecular_design
//! ```

use parfait::faas::{run, AcceleratorSpec, Config, ExecutorConfig, FaasWorld};
use parfait::gpu::host::GpuFleet;
use parfait::gpu::GpuSpec;
use parfait::simcore::{Engine, SimTime};
use parfait::workloads::molecular::Selection;
use parfait::workloads::{Campaign, CampaignConfig};

fn campaign(selection: Selection) -> (f64, Vec<f64>, String, f64) {
    let mut fleet = GpuFleet::new();
    fleet.add(GpuSpec::a100_40gb());
    let config = Config::new(vec![
        ExecutorConfig::cpu("cpu", 16),
        ExecutorConfig::gpu("gpu", vec![AcceleratorSpec::Gpu(0)]),
    ]);
    let mut world = FaasWorld::new(config, fleet, 11);
    let c = Campaign::new(
        CampaignConfig {
            selection,
            rounds: 4,
            ..CampaignConfig::default()
        },
        11,
    );
    let history = c.history_handle();
    world.set_driver(c);
    let mut eng = Engine::new();
    run(&mut world, &mut eng);
    let wall = eng.now();
    let best: Vec<f64> = history.borrow().iter().map(|r| r.best_ip).collect();
    let gpu_busy = world
        .timeline
        .union_busy("training", SimTime::ZERO, wall)
        .as_secs_f64()
        + world
            .timeline
            .union_busy("inference", SimTime::ZERO, wall)
            .as_secs_f64();
    (
        wall.as_secs_f64(),
        best,
        world.timeline.render_ascii(96),
        gpu_busy,
    )
}

fn main() {
    println!("Molecular-design campaign (Colmena-style active learning)\n");
    let (wall, best, ascii, gpu_busy) = campaign(Selection::ActiveLearning);
    println!("active learning: wall {wall:.0}s, GPU busy {gpu_busy:.1}s");
    println!("best ionization potential by round: {best:?}\n");
    println!("{ascii}");
    println!("note the white (·) gaps on the GPU tracks while CPU simulations run —");
    println!("the idle time the paper's Fig. 3 highlights as the multiplexing opportunity.\n");

    let (_, best_rand, _, _) = campaign(Selection::Random);
    println!("random-selection baseline best IP by round: {best_rand:?}");
    let al = best.last().copied().unwrap_or(0.0);
    let rd = best_rand.last().copied().unwrap_or(0.0);
    println!("active learning finds IP {al:.3} vs random {rd:.3} (higher is better)");
}
