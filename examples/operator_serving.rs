//! The serverless-operator view: open-loop Poisson traffic against one
//! A100, single-instance vs 4-way MPS, plus the strategy advisor.
//!
//! ```text
//! cargo run --release --example operator_serving [rate_req_per_s]
//! ```
//!
//! §1 of the paper: "As a serverless framework operator, it is crucial to
//! maximize the hardware utilization to support more concurrent tasks,
//! and therefore, increase profitability." This example shows exactly
//! that: the load one GPU sustains before queueing collapse, with and
//! without fine-grained partitioning.

use parfait::core::advisor::{recommend_strategy, TenancyRequirements};
use parfait::core::Strategy;
use parfait::gpu::{GpuSpec, GIB};
use parfait_bench::scenarios::{open_loop_serving, SEED};

fn main() {
    let rate: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.30);
    println!("Poisson arrivals at {rate:.2} completions/s, 60 requests, A100-80GB\n");
    for (strategy, procs, label) in [
        (
            Strategy::TimeSharing,
            1usize,
            "single instance (FaaS default)",
        ),
        (Strategy::MpsEqual, 4, "4-way MPS partition (this paper)"),
    ] {
        let r = open_loop_serving(&strategy, procs, rate, 60, SEED);
        println!(
            "{label:<34} achieved {:.3} req/s | turnaround mean {:.1}s p95 {:.1}s",
            r.achieved_rate, r.mean_turnaround_s, r.p95_turnaround_s
        );
    }

    println!("\nStrategy advisor for this tenancy:");
    let advice = recommend_strategy(
        &GpuSpec::a100_80gb(),
        &TenancyRequirements {
            tenants: 4,
            require_isolation: false,
            sms_needed: 20,
            footprint_bytes: 16 * GIB,
            resize_rate_hz: 0.05,
            homogeneous: true,
        },
    );
    println!("  -> {:?}", advice.strategy);
    for r in &advice.rationale {
        println!("     - {r}");
    }
    for c in &advice.caveats {
        println!("     ! {c}");
    }
}
