//! Failure injection and load-shape tests across the full stack.

use parfait::core::{apply_plan, plan, Strategy};
use parfait::faas::app::bodies::CpuBurn;
use parfait::faas::{
    boot, kill_worker, respawn_worker, submit, AppCall, Config, ExecutorConfig, FaasWorld,
    WorkerState,
};
use parfait::gpu::host::GpuFleet;
use parfait::gpu::{GpuId, GpuSpec};
use parfait::simcore::{Engine, SimDuration, SimRng, SimTime};
use parfait::workloads::{CompletionBody, LlmSpec};
use parfait_bench::scenarios::{open_loop_serving, SEED};

/// Random kill/respawn chaos against a busy platform: with a retry
/// budget, every task still settles, no GPU memory leaks, and the
/// device's context table matches the live workers.
#[test]
fn chaos_kill_respawn_preserves_invariants() {
    let gpu_spec = GpuSpec::a100_80gb();
    let llm = LlmSpec::llama2_7b(2);
    let mut fleet = GpuFleet::new();
    fleet.add(gpu_spec.clone());
    let p = plan(&gpu_spec, 0, 3, &Strategy::MpsEqual).unwrap();
    let specs = apply_plan(&mut fleet, &p).unwrap();
    let mut config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
    config.retries = 10; // chaos may kill the same task several times
    let mut w = FaasWorld::new(config, fleet, 1234);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    for _ in 0..12 {
        let (llm2, gpu2) = (llm.clone(), gpu_spec.clone());
        submit(
            &mut w,
            &mut eng,
            AppCall::new("chat", "gpu", move |_| {
                Box::new(CompletionBody::paper_request(llm2.clone(), gpu2.clone()))
            }),
        );
    }
    // Chaos: at randomized times, kill a random worker and respawn it.
    let mut chaos_rng = SimRng::new(777);
    for i in 0..6u64 {
        let at =
            SimTime::from_nanos((10 + i * 17) * 1_000_000_000 + chaos_rng.below(5_000_000_000));
        let victim = chaos_rng.below(3) as usize;
        eng.schedule_at(at, move |w: &mut FaasWorld, e| {
            if w.workers[victim].state != WorkerState::Dead {
                kill_worker(w, e, victim, "chaos monkey");
                respawn_worker(w, e, victim, None).expect("worker was just killed");
            }
        });
    }
    eng.run(&mut w);
    assert!(w.dfk.all_settled(), "tasks must settle despite chaos");
    assert_eq!(
        w.dfk.done_count(),
        12,
        "retries absorb the chaos: {:?}",
        w.dfk
            .tasks()
            .iter()
            .filter_map(|t| t.error.clone())
            .collect::<Vec<_>>()
    );
    // Memory invariant: device holds exactly the live workers' models.
    let live_model_bytes: u64 = w
        .workers
        .iter()
        .filter(|wk| wk.state != WorkerState::Dead && wk.has_model(llm.model_profile().id))
        .count() as u64
        * llm.footprint_bytes();
    assert_eq!(w.fleet.device(GpuId(0)).memory_used(), live_model_bytes);
    // Context invariant: one context per live GPU-bound worker.
    let live = w
        .workers
        .iter()
        .filter(|wk| wk.state != WorkerState::Dead && wk.gpu.is_some())
        .count();
    assert_eq!(w.fleet.device(GpuId(0)).context_count(), live);
}

/// A worker whose accelerator cannot resolve dies cleanly and the rest of
/// the platform keeps serving.
#[test]
fn bad_binding_kills_only_that_worker() {
    let mut fleet = GpuFleet::new();
    fleet.add(GpuSpec::a100_80gb());
    let config = Config::new(vec![
        ExecutorConfig::cpu("cpu", 1),
        ExecutorConfig::gpu(
            "gpu",
            vec![parfait::faas::AcceleratorSpec::Mig(
                "MIG-does-not-exist".into(),
            )],
        ),
    ]);
    let mut w = FaasWorld::new(config, fleet, 9);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let ok = submit(
        &mut w,
        &mut eng,
        AppCall::new("fine", "cpu", |_| {
            Box::new(CpuBurn::new(SimDuration::from_secs(1)))
        }),
    );
    eng.run(&mut w);
    assert_eq!(w.dfk.task(ok).state, parfait::faas::TaskState::Done);
    let gpu_worker = w.workers.iter().find(|wk| wk.executor == 1).unwrap();
    assert_eq!(gpu_worker.state, WorkerState::Dead);
    assert!(w.executor_dead(1));
}

/// Open-loop saturation: the single instance saturates near its service
/// rate (~0.17 req/s) with exploding turnaround, while 4-way MPS sustains
/// about 3× the offered load with bounded turnaround — the operator-side
/// framing of the paper's abstract claim.
#[test]
fn open_loop_mps_sustains_higher_load() {
    let rate = 0.30;
    let single = open_loop_serving(&Strategy::TimeSharing, 1, rate, 40, SEED);
    let mps4 = open_loop_serving(&Strategy::MpsEqual, 4, rate, 40, SEED);
    assert!(
        single.achieved_rate < 0.8 * rate,
        "single instance should saturate: achieved {:.3} of {rate}",
        single.achieved_rate
    );
    assert!(
        mps4.achieved_rate > 0.9 * rate,
        "4-way MPS should keep up: achieved {:.3} of {rate}",
        mps4.achieved_rate
    );
    assert!(
        mps4.p95_turnaround_s < single.p95_turnaround_s / 4.0,
        "queueing collapse vs bounded tail: {:.1}s vs {:.1}s",
        mps4.p95_turnaround_s,
        single.p95_turnaround_s
    );
}
