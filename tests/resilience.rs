//! Failure injection and load-shape tests across the full stack.

use parfait::core::{
    apply_plan, begin_resize_mps, plan, reconfigure_mig_equal, resize_mps, ReconfigError, Strategy,
};
use parfait::faas::app::bodies::CpuBurn;
use parfait::faas::{
    boot, crash_worker, fault_host, fault_rack, kill_worker, quarantine_gpu, respawn_worker,
    submit, AcceleratorSpec, AppCall, CheckpointPolicy, Config, ExecutorConfig, FaasWorld,
    WorkerState,
};
use parfait::gpu::host::GpuFleet;
use parfait::gpu::{GpuId, GpuSpec};
use parfait::simcore::{Engine, SimDuration, SimRng, SimTime};
use parfait::workloads::{CompletionBody, LlmSpec};
use parfait_bench::scenarios::{open_loop_serving, SEED};

/// Random kill/respawn chaos against a busy platform: with a retry
/// budget, every task still settles, no GPU memory leaks, and the
/// device's context table matches the live workers.
#[test]
fn chaos_kill_respawn_preserves_invariants() {
    let gpu_spec = GpuSpec::a100_80gb();
    let llm = LlmSpec::llama2_7b(2);
    let mut fleet = GpuFleet::new();
    fleet.add(gpu_spec.clone());
    let p = plan(&gpu_spec, 0, 3, &Strategy::MpsEqual).unwrap();
    let specs = apply_plan(&mut fleet, &p).unwrap();
    let mut config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
    config.retries = 10; // chaos may kill the same task several times
    let mut w = FaasWorld::new(config, fleet, 1234);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    for _ in 0..12 {
        let (llm2, gpu2) = (llm.clone(), gpu_spec.clone());
        submit(
            &mut w,
            &mut eng,
            AppCall::new("chat", "gpu", move |_| {
                Box::new(CompletionBody::paper_request(llm2.clone(), gpu2.clone()))
            }),
        );
    }
    // Chaos: at randomized times, kill a random worker and respawn it.
    let mut chaos_rng = SimRng::new(777);
    for i in 0..6u64 {
        let at =
            SimTime::from_nanos((10 + i * 17) * 1_000_000_000 + chaos_rng.below(5_000_000_000));
        let victim = chaos_rng.below(3) as usize;
        eng.schedule_at(at, move |w: &mut FaasWorld, e| {
            if w.workers[victim].state != WorkerState::Dead {
                kill_worker(w, e, victim, "chaos monkey");
                respawn_worker(w, e, victim, None).expect("worker was just killed");
            }
        });
    }
    eng.run(&mut w);
    assert!(w.dfk.all_settled(), "tasks must settle despite chaos");
    assert_eq!(
        w.dfk.done_count(),
        12,
        "retries absorb the chaos: {:?}",
        w.dfk
            .tasks()
            .iter()
            .filter_map(|t| t.error.clone())
            .collect::<Vec<_>>()
    );
    // Memory invariant: device holds exactly the live workers' models.
    let live_model_bytes: u64 = w
        .workers
        .iter()
        .filter(|wk| wk.state != WorkerState::Dead && wk.has_model(llm.model_profile().id))
        .count() as u64
        * llm.footprint_bytes();
    assert_eq!(w.fleet.device(GpuId(0)).memory_used(), live_model_bytes);
    // Context invariant: one context per live GPU-bound worker.
    let live = w
        .workers
        .iter()
        .filter(|wk| wk.state != WorkerState::Dead && wk.gpu.is_some())
        .count();
    assert_eq!(w.fleet.device(GpuId(0)).context_count(), live);
}

/// A worker whose accelerator cannot resolve dies cleanly and the rest of
/// the platform keeps serving.
#[test]
fn bad_binding_kills_only_that_worker() {
    let mut fleet = GpuFleet::new();
    fleet.add(GpuSpec::a100_80gb());
    let config = Config::new(vec![
        ExecutorConfig::cpu("cpu", 1),
        ExecutorConfig::gpu(
            "gpu",
            vec![parfait::faas::AcceleratorSpec::Mig(
                "MIG-does-not-exist".into(),
            )],
        ),
    ]);
    let mut w = FaasWorld::new(config, fleet, 9);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let ok = submit(
        &mut w,
        &mut eng,
        AppCall::new("fine", "cpu", |_| {
            Box::new(CpuBurn::new(SimDuration::from_secs(1)))
        }),
    );
    eng.run(&mut w);
    assert_eq!(w.dfk.task(ok).state, parfait::faas::TaskState::Done);
    let gpu_worker = w.workers.iter().find(|wk| wk.executor == 1).unwrap();
    assert_eq!(gpu_worker.state, WorkerState::Dead);
    assert!(w.executor_dead(1));
}

/// Open-loop saturation: the single instance saturates near its service
/// rate (~0.17 req/s) with exploding turnaround, while 4-way MPS sustains
/// about 3× the offered load with bounded turnaround — the operator-side
/// framing of the paper's abstract claim.
#[test]
fn open_loop_mps_sustains_higher_load() {
    let rate = 0.30;
    let single = open_loop_serving(&Strategy::TimeSharing, 1, rate, 40, SEED);
    let mps4 = open_loop_serving(&Strategy::MpsEqual, 4, rate, 40, SEED);
    assert!(
        single.achieved_rate < 0.8 * rate,
        "single instance should saturate: achieved {:.3} of {rate}",
        single.achieved_rate
    );
    assert!(
        mps4.achieved_rate > 0.9 * rate,
        "4-way MPS should keep up: achieved {:.3} of {rate}",
        mps4.achieved_rate
    );
    assert!(
        mps4.p95_turnaround_s < single.p95_turnaround_s / 4.0,
        "queueing collapse vs bounded tail: {:.1}s vs {:.1}s",
        mps4.p95_turnaround_s,
        single.p95_turnaround_s
    );
}

/// One A100 shared 50/50 under MPS, with knobs for the reconfig racing
/// tests.
fn mps_platform(configure: impl FnOnce(&mut Config)) -> (FaasWorld, Engine<FaasWorld>, LlmSpec) {
    let gpu_spec = GpuSpec::a100_80gb();
    let mut fleet = GpuFleet::new();
    fleet.add(gpu_spec.clone());
    let p = plan(&gpu_spec, 0, 2, &Strategy::MpsEqual).unwrap();
    let specs = apply_plan(&mut fleet, &p).unwrap();
    let mut config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
    config.retries = 4;
    configure(&mut config);
    (
        FaasWorld::new(config, fleet, SEED),
        Engine::new(),
        LlmSpec::llama2_7b(2),
    )
}

/// Current MPS shares, in worker order.
fn mps_pcts(w: &FaasWorld) -> Vec<u32> {
    w.workers
        .iter()
        .filter_map(|wk| match wk.accel {
            Some(AcceleratorSpec::GpuPercentage(_, p)) => Some(p),
            _ => None,
        })
        .collect()
}

/// A ~35 s chat session — long enough that a reconfig drain has to wait
/// on it (and a checkpoint restore saves real work).
fn long_session(llm: &LlmSpec) -> AppCall {
    let llm = llm.clone();
    let gpu = GpuSpec::a100_80gb();
    AppCall::new("session", "gpu", move |_| {
        Box::new(CompletionBody::new(llm.clone(), gpu.clone(), 96, 220))
    })
}

/// Racing fault #1: a resize request racing an active host outage is
/// refused outright — no drain starts, no worker restarts, and after the
/// host returns the workers come back with their *old* shares.
#[test]
fn resize_refused_during_host_outage() {
    let (mut w, mut eng, _llm) = mps_platform(|_| {});
    boot(&mut w, &mut eng);
    let fenced = fault_host(&mut w, &mut eng, 0);
    assert_eq!(fenced, 1, "host 0 owns the only GPU");

    assert_eq!(
        resize_mps(&mut w, &mut eng, 0, &[70, 30]).unwrap_err(),
        ReconfigError::GpuFenced(0)
    );
    assert_eq!(
        begin_resize_mps(&mut w, &mut eng, 0, vec![70, 30]).unwrap_err(),
        ReconfigError::GpuFenced(0)
    );
    assert_eq!(
        reconfigure_mig_equal(&mut w, &mut eng, 0, 2).unwrap_err(),
        ReconfigError::GpuFenced(0)
    );
    assert_eq!(w.reconfig.stats.drains_started, 0);

    eng.run(&mut w); // host reboots, GPU re-enrolls, workers respawn
    assert_eq!(mps_pcts(&w), vec![50, 50], "old shares survive the outage");
    assert!(w
        .workers
        .iter()
        .all(|wk| wk.state != WorkerState::Dead && wk.state != WorkerState::Crashed));
}

/// A Crashed (silently dead, not yet reaped) victim is refused: the
/// watchdog owns that worker's lifecycle, not the resize path.
#[test]
fn resize_refuses_crashed_worker() {
    let (mut w, mut eng, _llm) = mps_platform(|_| {});
    boot(&mut w, &mut eng);
    crash_worker(&mut w, &mut eng, 1, "induced for test");
    assert_eq!(
        resize_mps(&mut w, &mut eng, 0, &[70, 30]).unwrap_err(),
        ReconfigError::WorkerUnhealthy { worker: 1 }
    );
    // Quarantine refusal holds for the MIG path on a healthy-worker GPU
    // too.
    let (mut w2, mut eng2, _llm) = mps_platform(|_| {});
    boot(&mut w2, &mut eng2);
    quarantine_gpu(&mut w2, &mut eng2, GpuId(0), "induced for test");
    assert_eq!(
        reconfigure_mig_equal(&mut w2, &mut eng2, 0, 2).unwrap_err(),
        ReconfigError::GpuFenced(0)
    );
}

/// Racing fault #2: a rack-power fence lands mid-drain. The fence kills
/// the draining workers (resolving the drain), the transaction aborts at
/// commit because the GPU is fenced, and after power restore + re-enroll
/// the workers return with their pre-transaction shares.
#[test]
fn rack_fence_mid_drain_aborts_transaction() {
    let (mut w, mut eng, llm) = mps_platform(|_| {});
    boot(&mut w, &mut eng);
    for _ in 0..2 {
        submit(&mut w, &mut eng, long_session(&llm));
    }
    eng.schedule_at(SimTime::from_secs(5), |w: &mut FaasWorld, e| {
        begin_resize_mps(w, e, 0, vec![70, 30]).expect("gpu is healthy at begin");
    });
    eng.schedule_at(SimTime::from_secs(6), |w: &mut FaasWorld, e| {
        fault_rack(w, e, 0);
    });
    eng.run(&mut w);

    assert_eq!(w.reconfig.stats.drains_started, 1);
    assert_eq!(
        w.reconfig.stats.txns_aborted, 1,
        "fenced mid-drain must abort"
    );
    assert_eq!(w.reconfig.stats.txns_committed, 0);
    assert_eq!(w.reconfig.stats.rollbacks, 0);
    assert_eq!(
        mps_pcts(&w),
        vec![50, 50],
        "aborted transaction must leave the old shares"
    );
    assert!(w.dfk.all_settled());
    assert_eq!(w.dfk.done_count(), 2, "retries absorb the fence");
}

/// Racing fault #3: in-flight sessions outlive the drain timeout, get
/// force-killed, and the transaction still commits the new shares; the
/// killed attempts then restore from their drain-requested checkpoints
/// instead of replaying from scratch.
#[test]
fn drain_timeout_forced_kill_restores_from_checkpoint() {
    let (mut w, mut eng, llm) = mps_platform(|c| {
        c.checkpoint = CheckpointPolicy::every(SimDuration::from_secs(2));
        c.reconfig.drain_timeout = SimDuration::from_secs(5);
    });
    boot(&mut w, &mut eng);
    for _ in 0..2 {
        submit(&mut w, &mut eng, long_session(&llm));
    }
    eng.schedule_at(SimTime::from_secs(10), |w: &mut FaasWorld, e| {
        begin_resize_mps(w, e, 0, vec![70, 30]).expect("gpu is healthy at begin");
    });
    eng.run(&mut w);

    assert_eq!(w.reconfig.stats.drains_started, 1);
    assert!(
        w.reconfig.stats.drains_forced_kills > 0,
        "35 s sessions must outlive a 5 s drain timeout"
    );
    assert_eq!(w.reconfig.stats.txns_committed, 1);
    assert_eq!(mps_pcts(&w), vec![70, 30], "committed shares apply");
    assert!(
        w.recovery.stats.tasks_resumed > 0,
        "killed attempts must restore from checkpoints: {:?}",
        w.recovery.stats
    );
    assert!(w.dfk.all_settled());
    assert_eq!(w.dfk.done_count(), 2);
}
