//! Cross-crate integration tests for the partitioning lifecycle: plans
//! through the executor, live reconfiguration, and the weight cache.

use parfait::core::autoscale::{enable_autoscaler, AutoscalePolicy};
use parfait::core::{
    apply_plan, plan, reconfigure_mig_equal, resize_mps, switch_strategy, weightcache, Strategy,
    MIG_RESET_TIME,
};
use parfait::faas::{
    boot, submit, AcceleratorSpec, AppCall, Config, ExecutorConfig, FaasWorld, TaskState,
    WorkerState,
};
use parfait::gpu::host::GpuFleet;
use parfait::gpu::{GpuId, GpuSpec, GIB};
use parfait::simcore::Engine;
use parfait::workloads::{CompletionBody, LlmSpec};

fn platform(strategy: &Strategy, procs: usize) -> (FaasWorld, Engine<FaasWorld>, LlmSpec, GpuSpec) {
    let gpu_spec = GpuSpec::a100_80gb();
    let llm = LlmSpec::llama2_7b(2);
    let mut fleet = GpuFleet::new();
    let g = fleet.add(gpu_spec.clone());
    if matches!(strategy, Strategy::MigEqual) {
        fleet.device_mut(g).set_uvm(true);
    }
    let p = plan(&gpu_spec, 0, procs, strategy).unwrap();
    let specs = apply_plan(&mut fleet, &p).unwrap();
    let config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
    (
        FaasWorld::new(config, fleet, 99),
        Engine::new(),
        llm,
        gpu_spec,
    )
}

fn chat(llm: &LlmSpec, gpu: &GpuSpec, app: &str) -> AppCall {
    let llm = llm.clone();
    let gpu = gpu.clone();
    AppCall::new(app, "gpu", move |_| {
        Box::new(CompletionBody::paper_request(llm.clone(), gpu.clone()))
    })
}

#[test]
fn mps_resize_restarts_workers_and_applies_new_percentages() {
    let (mut w, mut eng, llm, gpu) = platform(&Strategy::MpsEqual, 2);
    boot(&mut w, &mut eng);
    for _ in 0..2 {
        submit(&mut w, &mut eng, chat(&llm, &gpu, "warm"));
    }
    eng.run(&mut w);
    let epochs: Vec<u64> = w.workers.iter().map(|wk| wk.epoch()).collect();

    let report = resize_mps(&mut w, &mut eng, 0, &[75, 25]).unwrap();
    assert_eq!(report.workers_restarted.len(), 2);
    assert!(!report.gpu_reset);
    eng.run(&mut w);

    for (wk, old_epoch) in w.workers.iter().zip(epochs) {
        assert!(wk.epoch() > old_epoch, "worker must be restarted");
        assert_eq!(wk.state, WorkerState::Idle);
    }
    assert_eq!(
        w.workers[0].env.get("CUDA_MPS_ACTIVE_THREAD_PERCENTAGE"),
        Some(&"75".to_string())
    );
    assert_eq!(
        w.workers[1].env.get("CUDA_MPS_ACTIVE_THREAD_PERCENTAGE"),
        Some(&"25".to_string())
    );
    // And the platform still serves requests.
    submit(&mut w, &mut eng, chat(&llm, &gpu, "after"));
    eng.run(&mut w);
    assert_eq!(
        w.dfk
            .tasks()
            .iter()
            .filter(|t| t.app == "after" && t.state == TaskState::Done)
            .count(),
        1
    );
}

#[test]
fn mps_resize_validates_input() {
    let (mut w, mut eng, _llm, _gpu) = platform(&Strategy::MpsEqual, 2);
    boot(&mut w, &mut eng);
    eng.run(&mut w);
    assert!(
        resize_mps(&mut w, &mut eng, 0, &[50]).is_err(),
        "length mismatch"
    );
    assert!(
        resize_mps(&mut w, &mut eng, 0, &[50, 0]).is_err(),
        "bad pct"
    );
}

#[test]
fn mig_reconfigure_resets_gpu_and_rebinds_uuids() {
    let (mut w, mut eng, llm, gpu) = platform(&Strategy::MigEqual, 2);
    boot(&mut w, &mut eng);
    for _ in 0..2 {
        submit(&mut w, &mut eng, chat(&llm, &gpu, "warm"));
    }
    eng.run(&mut w);
    let old_uuid = w.workers[0]
        .env
        .get("CUDA_VISIBLE_DEVICES")
        .cloned()
        .unwrap();
    assert!(old_uuid.contains("3g.40gb"));

    let t0 = eng.now();
    let report = reconfigure_mig_equal(&mut w, &mut eng, 0, 2).unwrap();
    assert!(report.gpu_reset);
    eng.run(&mut w);
    let new_uuid = w.workers[0]
        .env
        .get("CUDA_VISIBLE_DEVICES")
        .cloned()
        .unwrap();
    assert_ne!(old_uuid, new_uuid, "instances recreated with new UUIDs");
    // Workers only respawn after the GPU reset delay.
    let ready = w.workers[0].ready_at.unwrap();
    assert!(ready >= t0 + MIG_RESET_TIME);
    assert_eq!(w.fleet.device(GpuId(0)).mig.instance_count(), 2);
    // Serves traffic again.
    submit(&mut w, &mut eng, chat(&llm, &gpu, "after"));
    eng.run(&mut w);
    assert_eq!(w.dfk.failed_count(), 0);
}

#[test]
fn strategy_switch_timesharing_to_mps() {
    let (mut w, mut eng, llm, gpu) = platform(&Strategy::TimeSharing, 3);
    boot(&mut w, &mut eng);
    submit(&mut w, &mut eng, chat(&llm, &gpu, "warm"));
    eng.run(&mut w);
    let report = switch_strategy(&mut w, &mut eng, 0, &Strategy::MpsEqual).unwrap();
    assert_eq!(report.workers_restarted.len(), 3);
    eng.run(&mut w);
    assert_eq!(
        w.workers[0].env.get("CUDA_MPS_ACTIVE_THREAD_PERCENTAGE"),
        Some(&"33".to_string())
    );
    submit(&mut w, &mut eng, chat(&llm, &gpu, "after"));
    eng.run(&mut w);
    assert_eq!(w.dfk.failed_count(), 0);
}

#[test]
fn weight_cache_survives_worker_restart_but_not_gpu_reset() {
    let (mut w, mut eng, llm, gpu) = platform(&Strategy::MpsEqual, 2);
    weightcache::enable(&mut w);
    boot(&mut w, &mut eng);
    for _ in 0..2 {
        submit(&mut w, &mut eng, chat(&llm, &gpu, "warm"));
    }
    eng.run(&mut w);
    let pinned = w.fleet.device(GpuId(0)).cache_used();
    assert_eq!(pinned, llm.weight_bytes(), "one shared copy of the weights");

    // Restart path: weights survive; the reload is a cache hit.
    resize_mps(&mut w, &mut eng, 0, &[60, 40]).unwrap();
    submit(&mut w, &mut eng, chat(&llm, &gpu, "after"));
    eng.run(&mut w);
    let report = weightcache::report(&w);
    assert!(report.hits >= 2, "restarted workers re-bind: {report:?}");
    assert_eq!(w.fleet.device(GpuId(0)).cache_used(), pinned);

    // GPU reset wipes the cache (strategy switch resets the device).
    switch_strategy(&mut w, &mut eng, 0, &Strategy::MpsEqual).unwrap();
    eng.run(&mut w);
    assert_eq!(
        w.fleet.device(GpuId(0)).cache_used(),
        0,
        "reset wipes pinned weights"
    );
    assert!(w.weight_cache.is_empty());
}

#[test]
fn weight_cache_shares_one_copy_across_four_instances() {
    // Memory benefit of §7: with the cache, 4 instances hold ONE copy of
    // the weights + 4 private KV/workspace regions.
    let (mut w, mut eng, llm, gpu) = platform(&Strategy::MpsEqual, 4);
    weightcache::enable(&mut w);
    boot(&mut w, &mut eng);
    for _ in 0..4 {
        submit(&mut w, &mut eng, chat(&llm, &gpu, "warm"));
    }
    eng.run(&mut w);
    assert_eq!(w.dfk.failed_count(), 0);
    let total = w.fleet.device(GpuId(0)).memory_used();
    let stock = 4 * llm.footprint_bytes();
    let shared = llm.weight_bytes() + 4 * (llm.footprint_bytes() - llm.weight_bytes());
    assert_eq!(total, shared);
    assert!(
        stock - total > 30 * GIB,
        "sharing should save ~3 weight copies ({} vs {})",
        total,
        stock
    );
}

#[test]
fn weight_cache_eviction_releases_memory() {
    let (mut w, mut eng, llm, gpu) = platform(&Strategy::MpsEqual, 2);
    weightcache::enable(&mut w);
    boot(&mut w, &mut eng);
    submit(&mut w, &mut eng, chat(&llm, &gpu, "warm"));
    eng.run(&mut w);
    let model_id = llm.model_profile().id;
    let freed = weightcache::evict(&mut w, 0, model_id);
    assert_eq!(freed, llm.weight_bytes());
    assert_eq!(w.fleet.device(GpuId(0)).cache_used(), 0);
    assert_eq!(
        weightcache::evict(&mut w, 0, model_id),
        0,
        "double evict is a no-op"
    );
}

#[test]
fn paper_listing2_end_to_end() {
    // Listing 2 verbatim: three GPUs at 50/25/30 percent. Build a 5-GPU
    // fleet so indices 1, 2, 4 exist; parse the strings; run a task on
    // each partition.
    let mut fleet = GpuFleet::new();
    for _ in 0..5 {
        fleet.add(GpuSpec::a100_40gb());
    }
    for i in [1u32, 2, 4] {
        let d = fleet.device_mut(GpuId(i));
        d.mps.start();
        d.set_mode(parfait::gpu::DeviceMode::MpsPartitioned)
            .unwrap();
    }
    let specs = parfait::core::parse_accelerators(&["1", "2", "4"], Some(&[50, 25, 30])).unwrap();
    let config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
    let mut w = FaasWorld::new(config, fleet, 5);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let gpu = GpuSpec::a100_40gb();
    let llm = LlmSpec::llama2_7b(4);
    for _ in 0..3 {
        submit(&mut w, &mut eng, chat(&llm, &gpu, "probe"));
    }
    eng.run(&mut w);
    assert_eq!(w.dfk.done_count(), 3);
    let envs: Vec<_> = w
        .workers
        .iter()
        .map(|wk| {
            (
                wk.env.get("CUDA_VISIBLE_DEVICES").cloned().unwrap(),
                wk.env
                    .get("CUDA_MPS_ACTIVE_THREAD_PERCENTAGE")
                    .cloned()
                    .unwrap(),
            )
        })
        .collect();
    assert_eq!(
        envs,
        vec![
            ("1".to_string(), "50".to_string()),
            ("2".to_string(), "25".to_string()),
            ("4".to_string(), "30".to_string()),
        ]
    );
}

#[test]
fn amd_cu_masking_path() {
    // Table 1's AMD column: CU masking is the MPS-percentage analog; MIG
    // must be rejected on an AMD part.
    let mut fleet = GpuFleet::new();
    let g = fleet.add(GpuSpec::mi210());
    assert!(fleet
        .device_mut(g)
        .set_mode(parfait::gpu::DeviceMode::Mig)
        .is_err());
    let d = fleet.device_mut(g);
    d.mps.start();
    d.set_mode(parfait::gpu::DeviceMode::MpsPartitioned)
        .unwrap();
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![
            AcceleratorSpec::GpuPercentage(0, 50),
            AcceleratorSpec::GpuPercentage(0, 50),
        ],
    )]);
    let mut w = FaasWorld::new(config, fleet, 6);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let gpu = GpuSpec::mi210();
    let llm = LlmSpec::llama2_7b(4);
    for _ in 0..2 {
        submit(&mut w, &mut eng, chat(&llm, &gpu, "probe"));
    }
    eng.run(&mut w);
    assert_eq!(w.dfk.done_count(), 2, "CU-masked workers serve traffic");
}

/// End-to-end §7 autoscaling: two tenants at 50/50; tenant A gets a burst
/// of 20 completions while B idles. The controller shifts share toward A
/// (through §6 restarts, softened by the §7 weight cache) and A's burst
/// drains faster than with the static split.
#[test]
fn autoscaler_shifts_share_toward_backlogged_tenant() {
    let gpu_spec = GpuSpec::a100_80gb();
    let llm = LlmSpec::llama2_7b(2);
    let run = |autoscale: bool| -> (f64, Vec<u32>, Vec<Vec<u32>>) {
        let mut fleet = GpuFleet::new();
        fleet.add(gpu_spec.clone());
        let p = plan(&gpu_spec, 0, 2, &Strategy::MpsEqual).unwrap();
        let specs = apply_plan(&mut fleet, &p).unwrap();
        let config = Config::new(vec![
            ExecutorConfig::gpu("tenant-a", vec![specs[0].clone()]),
            ExecutorConfig::gpu("tenant-b", vec![specs[1].clone()]),
        ]);
        let mut w = FaasWorld::new(config, fleet, 5150);
        weightcache::enable(&mut w);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        // Warm both tenants.
        let warm = |w: &mut FaasWorld, eng: &mut Engine<FaasWorld>, exec: &str| {
            let (l, g) = (llm.clone(), gpu_spec.clone());
            submit(
                w,
                eng,
                AppCall::new("warm", exec.to_string(), move |_| {
                    Box::new(CompletionBody::paper_request(l.clone(), g.clone()))
                }),
            );
        };
        warm(&mut w, &mut eng, "tenant-a");
        warm(&mut w, &mut eng, "tenant-b");
        eng.run(&mut w);
        // Burst: 20 completions for tenant A only, then start the
        // controller (it only lives while unsettled work exists).
        for _ in 0..20 {
            let (l, g) = (llm.clone(), gpu_spec.clone());
            submit(
                &mut w,
                &mut eng,
                AppCall::new("burst", "tenant-a", move |_| {
                    Box::new(CompletionBody::paper_request(l.clone(), g.clone()))
                }),
            );
        }
        let log = if autoscale {
            Some(enable_autoscaler(
                &mut w,
                &mut eng,
                0,
                vec![0, 1],
                AutoscalePolicy {
                    period: parfait::simcore::SimDuration::from_secs(15),
                    min_pct: 10,
                    min_shift: 15,
                },
            ))
        } else {
            None
        };
        eng.run(&mut w);
        assert!(w.dfk.all_settled());
        assert_eq!(w.dfk.failed_count(), 0);
        let makespan = parfait::core::metrics::makespan(&w, "burst")
            .unwrap()
            .as_secs_f64();
        let final_pcts: Vec<u32> = w
            .workers
            .iter()
            .filter_map(|wk| match &wk.accel {
                Some(AcceleratorSpec::GpuPercentage(_, p)) => Some(*p),
                _ => None,
            })
            .collect();
        let applied: Vec<Vec<u32>> = log
            .map(|l| {
                l.borrow()
                    .iter()
                    .filter_map(|e| e.applied.clone())
                    .collect()
            })
            .unwrap_or_default();
        (makespan, final_pcts, applied)
    };

    let (static_t, static_pcts, _) = run(false);
    let (auto_t, auto_pcts, applied) = run(true);
    assert_eq!(static_pcts, vec![50, 50], "static split unchanged");
    assert!(!applied.is_empty(), "controller must act on the imbalance");
    assert!(
        applied.iter().any(|p| p[0] > 60),
        "some applied split must favour the backlogged tenant: {applied:?}"
    );
    assert_eq!(
        auto_pcts,
        vec![50, 50],
        "after the burst drains the controller rebalances to equal"
    );
    assert!(
        auto_t < static_t,
        "autoscaled burst ({auto_t:.1}s) should beat static 50/50 ({static_t:.1}s)"
    );
}
