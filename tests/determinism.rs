//! End-to-end determinism acceptance: the whole platform — engine,
//! GPU arbitration, FaaS scheduling, fault injection and recovery — is
//! a pure function of configuration and seed. Each scenario runs the
//! §5.2 LLaMa deployment under the PR-2 fault schedule twice with the
//! same seed and asserts that the event trace (fault incidents + task
//! lifecycle rows + engine event count) and the serialized
//! `BENCH_faults.json` mode entry are byte-identical.
//!
//! This is the dynamic half of the determinism story; the static half
//! is `parfait-lint` (rules D1–D5), which keeps hash-order, wall-clock,
//! unregistered RNG streams and threading out of sim-visible code in
//! the first place.

use parfait_bench::faults::{traced_correlated_run, traced_mode_run};
use parfait_bench::overload::traced_overload_run;
use parfait_bench::scenarios::SEED;
use parfait_core::Strategy;

fn assert_double_run_identical(strategy: Strategy) {
    let (report_a, trace_a) = traced_mode_run(&strategy, 4, 8, SEED);
    let (report_b, trace_b) = traced_mode_run(&strategy, 4, 8, SEED);
    assert_eq!(
        trace_a, trace_b,
        "event trace diverged across identically-seeded runs"
    );
    let json_a = serde_json::to_string(&report_a).expect("report serializes");
    let json_b = serde_json::to_string(&report_b).expect("report serializes");
    assert_eq!(
        json_a, json_b,
        "serialized fault report diverged across identically-seeded runs"
    );
    // A trace that contains no fault incidents or no tasks would make
    // the byte-compare vacuous.
    assert!(trace_a.contains("fault t="), "no fault records in trace");
    assert!(trace_a.contains("task id="), "no task rows in trace");
}

#[test]
fn mps_fault_scenario_is_bit_identical_across_runs() {
    assert_double_run_identical(Strategy::MpsEqual);
}

#[test]
fn mig_fault_scenario_is_bit_identical_across_runs() {
    assert_double_run_identical(Strategy::MigEqual);
}

/// The PR-4 correlated-outage scenario (host reboot + checkpoint/restore)
/// draws from two new RNG streams (`CHECKPOINT_TIMING`,
/// `CORRELATED_FAULTS`); byte-compare it across double runs too.
fn assert_correlated_double_run_identical(strategy: Strategy, ckpt_s: Option<u64>) {
    let (report_a, trace_a) = traced_correlated_run(&strategy, ckpt_s, SEED);
    let (report_b, trace_b) = traced_correlated_run(&strategy, ckpt_s, SEED);
    assert_eq!(
        trace_a, trace_b,
        "correlated-outage trace diverged across identically-seeded runs"
    );
    let json_a = serde_json::to_string(&report_a).expect("report serializes");
    let json_b = serde_json::to_string(&report_b).expect("report serializes");
    assert_eq!(
        json_a, json_b,
        "serialized correlated report diverged across identically-seeded runs"
    );
    assert!(
        trace_a.contains("kind=host-reboot"),
        "no host-reboot incident in trace"
    );
    if ckpt_s.is_some() {
        assert!(
            trace_a.contains("kind=checkpoint-commit"),
            "no checkpoint commits in trace"
        );
        assert!(
            trace_a.contains("kind=checkpoint-restore"),
            "no checkpoint restores in trace"
        );
    }
}

/// The PR-5 overload scenario (bounded queues, deadline admission,
/// hedging, brownout) draws from two new RNG streams (`ADMISSION`,
/// `HEDGE_TIMING`); byte-compare a fully-protected 2×-load cell across
/// double runs.
#[test]
fn overload_scenario_is_bit_identical_across_runs() {
    let (cell_a, trace_a) = traced_overload_run(SEED);
    let (cell_b, trace_b) = traced_overload_run(SEED);
    assert_eq!(
        trace_a, trace_b,
        "overload trace diverged across identically-seeded runs"
    );
    let json_a = serde_json::to_string(&cell_a).expect("cell serializes");
    let json_b = serde_json::to_string(&cell_b).expect("cell serializes");
    assert_eq!(
        json_a, json_b,
        "serialized overload cell diverged across identically-seeded runs"
    );
    assert!(trace_a.contains("task id="), "no task rows in trace");
    assert!(
        cell_a.overload.tasks_shed + cell_a.overload.tasks_rejected > 0,
        "a 2x-load protected cell must exercise admission control: {cell_a:?}"
    );
}

/// The PR-6 fleet scenario (open-loop Poisson × diurnal × flash-crowd
/// arrivals over the `FLEET_ARRIVALS` stream, indexed world, per-domain
/// dirty recompute): byte-compare the simulated half of an optimized run
/// across double runs. Wall-clock fields (`wall_s`, `events_per_sec`)
/// live outside `FleetSimStats`, so the comparison is exact.
#[test]
fn fleet_scenario_is_bit_identical_across_runs() {
    let run_a = parfait_bench::fleet::run_fleet(4, 2000, SEED, true);
    let run_b = parfait_bench::fleet::run_fleet(4, 2000, SEED, true);
    let json_a = serde_json::to_string(&run_a.sim).expect("fleet stats serialize");
    let json_b = serde_json::to_string(&run_b.sim).expect("fleet stats serialize");
    assert_eq!(
        json_a, json_b,
        "serialized fleet stats diverged across identically-seeded runs"
    );
    assert_eq!(run_a.sim.behavior.completed, 2000, "all tasks complete");
    assert!(
        run_a.sim.domains_skipped > 0,
        "optimized fleet run must exercise dirty-domain skipping"
    );
}

/// The PR-7 autoscale scenario (closed-loop SLO control over staged
/// reconfig transactions) draws from two new RNG streams
/// (`AUTOSCALE_ARRIVALS`, `RECONFIG_FAULTS`); byte-compare a faulty
/// closed-loop cell across double runs.
#[test]
fn autoscale_scenario_is_bit_identical_across_runs() {
    use parfait_bench::autoscale::{run_cell, Mode};
    let cell_a = run_cell(Mode::ClosedLoop, 2, 1000, SEED, 0.2);
    let cell_b = run_cell(Mode::ClosedLoop, 2, 1000, SEED, 0.2);
    let json_a = serde_json::to_string(&cell_a).expect("cell serializes");
    let json_b = serde_json::to_string(&cell_b).expect("cell serializes");
    assert_eq!(
        json_a, json_b,
        "serialized autoscale cell diverged across identically-seeded runs"
    );
    assert!(
        cell_a.behavior.txns_committed + cell_a.behavior.txns_failed > 0,
        "cell must exercise the reconfig transaction machinery: {cell_a:?}"
    );
    assert_eq!(
        cell_a.behavior.completed + cell_a.behavior.failed,
        cell_a.behavior.submitted,
        "every task settles"
    );
}

#[test]
fn mps_correlated_outage_is_bit_identical_across_runs() {
    assert_correlated_double_run_identical(Strategy::MpsEqual, Some(10));
}

#[test]
fn mig_correlated_outage_is_bit_identical_across_runs() {
    assert_correlated_double_run_identical(Strategy::MigEqual, Some(10));
}
