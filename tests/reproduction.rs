//! The paper's claims, as executable assertions.
//!
//! Each test runs the corresponding experiment through the full stack
//! (partition planner → FaaS executor → GPU simulator) and checks the
//! *shape* the paper reports — who wins, by roughly what factor, where
//! the crossovers fall. Absolute seconds are our simulator's, not the
//! authors' testbed's; EXPERIMENTS.md records both side by side.

use parfait::core::Strategy;
use parfait::gpu::GpuSpec;
use parfait::workloads::molecular::Selection;
use parfait::workloads::LlmSpec;
use parfait_bench::scenarios::{
    fig2_point, llama_multiplex, molecular_campaign, molecular_campaign_with, overheads, SEED,
};

/// Fewer completions than the paper's 100 keep the suite fast; the
/// steady-state ratios are completion-count-independent (workers are
/// warmed first).
const N: usize = 40;

#[test]
fn abstract_claim_60pct_lower_completion_time() {
    // "up to 60% lower task completion time ... when multiplexing a GPU
    // compared to running a single instance without multiplexing".
    let single = llama_multiplex(&Strategy::TimeSharing, 1, N, SEED);
    let mps4 = llama_multiplex(&Strategy::MpsEqual, 4, N, SEED);
    let reduction = 1.0 - mps4.makespan_s / single.makespan_s;
    assert!(
        (0.52..=0.68).contains(&reduction),
        "completion-time reduction {reduction:.3}, paper ≈ 0.60"
    );
}

#[test]
fn abstract_claim_250pct_throughput() {
    // "250% improvement in the inference throughput ... when 4 LLaMa2
    // models are spatially multiplexed" (i.e. ~2.5×).
    let single = llama_multiplex(&Strategy::TimeSharing, 1, N, SEED);
    let mps4 = llama_multiplex(&Strategy::MpsEqual, 4, N, SEED);
    let speedup = mps4.throughput / single.throughput;
    assert!(
        (2.1..=2.9).contains(&speedup),
        "throughput speedup {speedup:.2}x, paper ≈ 2.5x"
    );
}

#[test]
fn fig4_any_multiplexing_beats_single_instance() {
    let single = llama_multiplex(&Strategy::TimeSharing, 1, N, SEED);
    for procs in [2usize, 3, 4] {
        for s in [
            Strategy::TimeSharing,
            Strategy::MpsEqual,
            Strategy::MigEqual,
        ] {
            let r = llama_multiplex(&s, procs, N, SEED);
            assert!(
                r.makespan_s < single.makespan_s,
                "{} x{} ({:.1}s) did not beat single instance ({:.1}s)",
                r.mode,
                procs,
                r.makespan_s,
                single.makespan_s
            );
        }
    }
}

#[test]
fn fig4_spatial_beats_temporal_sharing() {
    for procs in [2usize, 3, 4] {
        let ts = llama_multiplex(&Strategy::TimeSharing, procs, N, SEED);
        let mps = llama_multiplex(&Strategy::MpsEqual, procs, N, SEED);
        assert!(
            mps.makespan_s < ts.makespan_s * 0.85,
            "MPS x{procs} ({:.1}s) should clearly beat time-sharing ({:.1}s)",
            mps.makespan_s,
            ts.makespan_s
        );
    }
}

#[test]
fn fig4_mps_and_mig_similar_at_two_processes() {
    // "Both MPS and MIG take a similar time ... when 2 inference
    // processes share the GPU."
    let mps = llama_multiplex(&Strategy::MpsEqual, 2, N, SEED);
    let mig = llama_multiplex(&Strategy::MigEqual, 2, N, SEED);
    let ratio = mig.makespan_s / mps.makespan_s;
    assert!(
        (0.90..=1.10).contains(&ratio),
        "MIG/MPS makespan ratio at 2 procs: {ratio:.3}"
    );
}

#[test]
fn fig4_mps_beats_mig_at_three_and_four_processes() {
    // "MPS is much better when 3 processes are running" (33% vs 2/7) and
    // "running slightly faster" at 4 (25% vs 1/7).
    for procs in [3usize, 4] {
        let mps = llama_multiplex(&Strategy::MpsEqual, procs, N, SEED);
        let mig = llama_multiplex(&Strategy::MigEqual, procs, N, SEED);
        assert!(
            mps.makespan_s < mig.makespan_s,
            "MPS x{procs} ({:.1}s) should beat MIG ({:.1}s)",
            mps.makespan_s,
            mig.makespan_s
        );
    }
}

#[test]
fn fig5_timesharing_latency_grows_fastest() {
    // "increasing the number of processes in timesharing mode increases
    // the latency rapidly ... with MPS and MIG we see a slower increase".
    let l1 = llama_multiplex(&Strategy::TimeSharing, 1, N, SEED).mean_latency_s;
    let ts4 = llama_multiplex(&Strategy::TimeSharing, 4, N, SEED).mean_latency_s;
    let mps4 = llama_multiplex(&Strategy::MpsEqual, 4, N, SEED).mean_latency_s;
    assert!(
        ts4 / l1 > 2.2,
        "time-sharing latency blowup {:.2}",
        ts4 / l1
    );
    assert!(mps4 / l1 < 1.8, "MPS latency blowup {:.2}", mps4 / l1);
    // "MPS and MIG's inference latency is 44% lower compared to just
    // timesharing when running 4 LLaMa processes".
    let lower = 1.0 - mps4 / ts4;
    assert!(
        (0.30..=0.55).contains(&lower),
        "MPS latency {lower:.2} lower than time-sharing, paper ≈ 0.44"
    );
}

#[test]
fn fig2_knee_and_cpu_gap() {
    // Latency falls steeply to ~20 SMs, is nearly flat beyond, and the
    // GPU is ~40× faster than CPU (§3.4).
    let llm = LlmSpec::llama2_7b(4);
    let t5 = fig2_point(&llm, 5, SEED);
    let t19 = fig2_point(&llm, 19, SEED); // ≈ 20 SMs
    let t100 = fig2_point(&llm, 100, SEED);
    assert!(t5 / t19 > 2.0, "steep region ratio {:.2}", t5 / t19);
    assert!(t19 / t100 < 1.25, "flat region ratio {:.2}", t19 / t100);
    let spec = GpuSpec::a100_40gb();
    let cpu = llm.cpu_completion_seconds(&spec, 16, 27);
    assert!(
        (30.0..=50.0).contains(&(cpu / t100)),
        "CPU/GPU ratio {:.1}, paper ≈ 40",
        cpu / t100
    );
}

#[test]
fn fig2_thirteen_b_tracks_seven_b_from_above() {
    let t7 = fig2_point(&LlmSpec::llama2_7b(4), 50, SEED);
    let t13 = fig2_point(&LlmSpec::llama2_13b(4), 50, SEED);
    assert!(
        t13 > t7,
        "13B ({t13:.2}s) must be slower than 7B ({t7:.2}s)"
    );
    assert!(t13 / t7 < 1.6, "tensor parallelism keeps 13B within 1.6x");
}

#[test]
fn fig3_gpu_mostly_idle_during_campaign() {
    // "There are times when the GPUs are idle as they are waiting for
    // simulation results" — the whole point of Fig. 3.
    let r = molecular_campaign(Selection::ActiveLearning, SEED);
    assert!(
        r.gpu_idle_fraction > 0.5,
        "GPU idle fraction {:.2} too low for the Fig. 3 story",
        r.gpu_idle_fraction
    );
    let sim_busy = r
        .phase_busy_s
        .iter()
        .find(|(t, _)| t == "simulation")
        .map(|(_, b)| *b)
        .unwrap_or(0.0);
    assert!(
        sim_busy / r.wall_s > 0.5,
        "simulation should dominate the campaign ({:.2})",
        sim_busy / r.wall_s
    );
}

#[test]
fn fig3_active_learning_beats_random() {
    let al = molecular_campaign(Selection::ActiveLearning, SEED);
    let rd = molecular_campaign(Selection::Random, SEED);
    assert!(
        al.best_ip > rd.best_ip,
        "active learning ({:.3}) must beat random ({:.3})",
        al.best_ip,
        rd.best_ip
    );
    // AL improves across rounds.
    let first = al.best_by_round.first().copied().unwrap_or(0.0);
    let last = al.best_by_round.last().copied().unwrap_or(0.0);
    assert!(last > first, "no learning progress: {:?}", al.best_by_round);
}

#[test]
fn section6_overheads_in_paper_bands() {
    let o = overheads(SEED);
    // "loading time of LLaMa2 13B can take up to 10 seconds" (fp16) —
    // our fp32 image is ~2× that; the fp16 7B reload inside the resize
    // path is what the 10-20s claim covers.
    let resize = o.mps_resize_to_first_completion_s;
    assert!(
        (10.0..=20.0).contains(&resize),
        "MPS resize penalty {resize:.1}s, paper: 10-20s"
    );
    // Weight cache (§7) removes most of the model reload.
    assert!(
        o.mps_resize_cached_s < resize * 0.7,
        "cache should cut the resize penalty: {:.1}s vs {:.1}s",
        o.mps_resize_cached_s,
        resize
    );
    // Cold-start decomposition is dominated by the model load (§6).
    let (fi, ctx, load) = o.cold_start_13b;
    assert!(
        load > fi + ctx,
        "model load must dominate: {fi} {ctx} {load}"
    );
}

#[test]
fn reproduction_is_deterministic() {
    let a = llama_multiplex(&Strategy::MpsEqual, 4, 10, SEED);
    let b = llama_multiplex(&Strategy::MpsEqual, 4, 10, SEED);
    assert_eq!(a.makespan_s.to_bits(), b.makespan_s.to_bits());
    assert_eq!(a.mean_latency_s.to_bits(), b.mean_latency_s.to_bits());
}

#[test]
fn section34_pipelining_cuts_campaign_wall_time() {
    // §3.4: "Pipe-lining this application will yield higher accelerator
    // utilization." Overlapping next-round simulations with GPU phases
    // must shorten the campaign without wrecking the search quality.
    let seq = molecular_campaign_with(Selection::ActiveLearning, false, SEED);
    let pipe = molecular_campaign_with(Selection::ActiveLearning, true, SEED);
    assert!(
        pipe.wall_s < 0.97 * seq.wall_s,
        "pipelining should save wall time: {:.1}s vs {:.1}s",
        pipe.wall_s,
        seq.wall_s
    );
    assert!(
        pipe.best_ip > seq.best_ip - 0.3,
        "speculative selection must stay competitive: {:.3} vs {:.3}",
        pipe.best_ip,
        seq.best_ip
    );
    assert!(
        pipe.best_ip > molecular_campaign(Selection::Random, SEED).best_ip,
        "pipelined AL still beats random"
    );
}
