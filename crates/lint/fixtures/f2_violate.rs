// F2 fixture: a GpuDevice method mutates rate-feeding state without
// marking a dirty domain. The same shape on another type is out of
// scope, and read-only methods never need marks.

impl GpuDevice {
    /// Inserting a kernel changes the domain's rate inputs — and this
    /// fn forgets to mark it.
    pub fn sneak_launch(&mut self, id: u64, k: Kernel) {
        self.order.push(id);
        self.kernels.insert(id, k);
    }

    /// Reads don't need marks.
    pub fn peek(&self) -> usize {
        self.kernels.len()
    }
}

impl SomethingElse {
    /// Identical body, different self type: F2 does not apply.
    pub fn unrelated(&mut self, id: u64, k: Kernel) {
        self.kernels.insert(id, k);
    }
}
