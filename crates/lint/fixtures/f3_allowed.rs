// F3 fixture: an item-scoped allow on the owning fn covers the in-loop
// split.

// lint:allow(stream-hygiene, per-worker stream ids are a fixed function of the worker index, independent of iteration order)
pub fn per_worker(rng: &SimRng, n: u64) {
    for id in 0..n {
        let r = rng.split(streams::WORKER_BASE + id);
        drop(r);
    }
}
