// D1 fixture: annotated HashSet whose order provably never escapes.
pub fn has_duplicates(labels: &[String]) -> bool {
    // lint:allow(hash-order, membership probe only; the set is never iterated)
    let mut seen = std::collections::HashSet::new();
    labels.iter().any(|l| !seen.insert(l.clone()))
}
