// F1 fixture: WorldIndex mutations outside the funnel set. Reads stay
// legal everywhere.

/// Direct field write.
pub fn sneak_write(world: &mut World) {
    world.index.enabled = false;
}

/// Compound assignment through an indexed slot.
pub fn sneak_compound(world: &mut World, exec: usize) {
    world.index.queued_unknown[exec] += 1;
}

/// pub(crate) mutator call.
pub fn sneak_mutator(world: &mut World, wid: usize) {
    world.index.on_state_change(wid, 0, WorkerState::Idle, WorkerState::Dead);
}

/// Container mutation on an index field.
pub fn sneak_container(world: &mut World, exec: usize, wid: usize) {
    world.index.idle[exec].insert(wid);
}

/// Reads are fine even outside the funnel.
pub fn read_only(world: &World, exec: usize) -> bool {
    world.index.live[exec] == 0 && world.index.crashed.is_empty()
}
