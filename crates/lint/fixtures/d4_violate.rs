// D4 fixture: blocking primitives and threads in event-handler code.
use std::sync::Mutex;

pub struct SharedQueue {
    inner: Mutex<Vec<u64>>,
}

pub fn fan_out(q: &'static SharedQueue) {
    std::thread::spawn(move || {
        q.inner.lock().unwrap().push(1);
    });
}
