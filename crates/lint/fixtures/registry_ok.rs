//! Registry fixture: unique literal ids.
pub const RETRY_JITTER: u64 = 617;
pub const FAULT_REALIZATION: u64 = 618;
pub const WORKER_BASE: u64 = 1000;
