// D2 fixture: simulated time only; the word "instant" in comments and
// strings must not trip the rule.
pub fn horizon_ms(now_ms: u64, budget_ms: u64) -> u64 {
    // The decision is instant in sim time: no wall clock involved.
    let label = "Instant::now is banned here";
    let _ = label;
    now_ms + budget_ms
}
