// D5 fixture: panics and unwraps confined to test code count zero.
pub fn checked_div(a: u64, b: u64) -> Option<u64> {
    a.checked_div(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divides() {
        assert_eq!(checked_div(6, 3).unwrap(), 2);
    }

    #[test]
    #[should_panic]
    fn asserts_hard() {
        if checked_div(1, 0).is_none() {
            panic!("expected");
        }
    }
}
