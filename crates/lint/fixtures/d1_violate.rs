// D1 fixture: HashMap in sim-visible code, no annotation.
use std::collections::HashMap;

pub struct PlacementTable {
    pub by_worker: HashMap<u32, u64>,
}

pub fn total(t: &PlacementTable) -> u64 {
    t.by_worker.values().sum()
}
