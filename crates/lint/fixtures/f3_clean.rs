// F3 fixture: the blessed shapes — named locals at construction scope,
// splits hoisted out of loops, and `str::split` untouched.

pub fn hoisted(rng: &SimRng) -> Consumer {
    let fault_rng = rng.split(streams::FAULT_REALIZATION);
    Consumer::new(7, fault_rng)
}

pub fn before_the_loop(rng: &SimRng) -> u64 {
    let worker_rng = rng.split(streams::WORKER_BASE);
    let mut acc = 0;
    for _ in 0..4 {
        acc += worker_rng.draw();
    }
    acc
}

pub fn str_split_is_not_rng(label: &str) -> Option<&str> {
    label.split('.').next()
}
