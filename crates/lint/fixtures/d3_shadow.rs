// D3 fixture: a local const reusing a registry name must be flagged even
// though split(RETRY_JITTER) then resolves to a registered name.
const RETRY_JITTER: u64 = 9;

pub fn seed(rng: &mut SimRng) -> SimRng {
    rng.split(RETRY_JITTER)
}
