// D2 fixture: wall-clock reads in simulation code.
use std::time::Instant;

pub fn measure<F: FnOnce()>(f: F) -> u128 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_nanos()
}

pub fn epoch_seconds() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}
