// F3 fixture: splits in a loop, into a struct field, and straight into
// a call argument.

pub fn in_loop(rng: &SimRng) {
    for i in 0..4 {
        let r = rng.split(streams::WORKER_BASE + i);
        drop(r);
    }
}

pub fn into_field(rng: &SimRng) -> Holder {
    Holder {
        label: "h".to_string(),
        rng: rng.split(streams::RETRY_JITTER),
    }
}

pub fn across_boundary(rng: &SimRng) -> Consumer {
    Consumer::new(7, rng.split(streams::FAULT_REALIZATION))
}
