// F2 fixture: every rate-state mutation marks the affected domain.

impl GpuDevice {
    pub fn launch(&mut self, ctx: CtxId, id: u64, k: Kernel) {
        self.kernels.insert(id, k);
        self.mark_ctx_dirty(ctx);
    }

    pub fn set_mode(&mut self, mode: ShareMode) {
        self.mode = mode;
        self.mark_all_dirty();
    }

    pub fn collect(&mut self, dom: usize) {
        self.kernels.retain(|k| !k.done);
        self.mark_domain_dirty(dom);
    }

    pub fn rates_equal(&self, other: f64) -> bool {
        self.slowdown == other
    }
}
