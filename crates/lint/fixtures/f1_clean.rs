// F1 fixture: mutations live inside funnel fns (the conformance test's
// manifest names `funnel_write` and `World::transition`); everything
// else only reads.

pub fn funnel_write(world: &mut World) {
    world.index.enabled = true;
}

impl World {
    pub(crate) fn transition(&mut self, wid: usize, new: WorkerState) {
        let old = self.workers[wid].state;
        self.index.on_state_change(wid, 0, old, new);
    }
}

pub fn read_only(world: &World, exec: usize) -> usize {
    world.index.not_dead[exec] + world.index.idle[exec].len()
}
