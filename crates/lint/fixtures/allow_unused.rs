// A2 fixture: an annotation that suppresses nothing, plus a malformed
// annotation missing its reason (A1).
pub fn quiet() -> u64 {
    // lint:allow(hash-order, nothing hashed here any more)
    let v = vec![1u64, 2, 3];
    // lint:allow(wall-clock)
    v.iter().sum()
}
