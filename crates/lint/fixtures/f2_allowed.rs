// F2 fixture: a scoped allow on the fn suppresses the finding.

impl GpuDevice {
    // lint:allow(dirty-domain, wipe is only reachable from reset paths that mark every domain before the next advance)
    pub fn wipe(&mut self) {
        self.kernels.clear();
    }
}
