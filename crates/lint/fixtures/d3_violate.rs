// D3 fixture: bare integer stream ids and an unregistered local const.
const RECOVERY_STREAM: u64 = 617;

pub fn seed_streams(rng: &mut SimRng) -> (SimRng, SimRng) {
    let jitter = rng.split(617);
    let faults = rng.split(RECOVERY_STREAM);
    (jitter, faults)
}
