// D3 fixture: annotated bare id (e.g. replaying a stream id recorded in
// an external artifact).
pub fn replay_stream(rng: &mut SimRng) -> SimRng {
    // lint:allow(rng-stream, id replayed verbatim from a recorded artifact header)
    rng.split(9001)
}
