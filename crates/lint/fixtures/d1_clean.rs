// D1 fixture: ordered containers only; HashMap in test code is exempt.
use std::collections::BTreeMap;

pub struct PlacementTable {
    pub by_worker: BTreeMap<u32, u64>,
}

pub fn total(t: &PlacementTable) -> u64 {
    t.by_worker.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn hashed_in_tests_is_fine() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u64);
        assert_eq!(m[&1], 2);
    }
}
