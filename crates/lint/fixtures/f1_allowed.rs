// F1 fixture: an item-scoped allow covers every mutation in the fn.

// lint:allow(index-funnel, migration shim: the index is rebuilt wholesale right below and check_index_consistency asserts equality)
pub fn rebuild(world: &mut World) {
    world.index.enabled = true;
    world.index.dead.clear();
}
