//! Registry fixture: duplicate id and a computed initializer.
pub const RETRY_JITTER: u64 = 617;
pub const FAULT_REALIZATION: u64 = 617;
pub const DERIVED: u64 = RETRY_JITTER + 1;
