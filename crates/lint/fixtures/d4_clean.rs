// D4 fixture: single-threaded event handling; "spawn" as a plain method
// name (task spawning into the sim queue) is not thread::spawn.
pub struct EventQueue {
    inner: Vec<u64>,
}

impl EventQueue {
    pub fn spawn(&mut self, ev: u64) {
        self.inner.push(ev);
    }
}

pub fn fan_out(q: &mut EventQueue) {
    q.spawn(1);
}
