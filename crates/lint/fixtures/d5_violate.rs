// D5 fixture: two panic! sites and three .unwrap() sites outside tests.
pub fn checked_div(a: u64, b: u64) -> u64 {
    if b == 0 {
        panic!("division by zero");
    }
    a / b
}

pub fn parse_pair(s: &str) -> (u64, u64) {
    let mut it = s.split(',');
    let a = it.next().unwrap().parse().unwrap();
    let b = it.next().unwrap().parse().unwrap_or(0);
    if a > b {
        panic!("pair out of order");
    }
    (a, b)
}
