// D3 fixture: registry constants only; str::split stays untouched.
use parfait_simcore::streams;

pub fn seed_streams(rng: &mut SimRng, worker: usize) -> (SimRng, SimRng) {
    let jitter = rng.split(streams::RETRY_JITTER);
    let worker_rng = rng.split(streams::WORKER_BASE + worker as u64);
    (jitter, worker_rng)
}

pub fn first_field(label: &str) -> &str {
    label.split('.').next().unwrap_or(label)
}
