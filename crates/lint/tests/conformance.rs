//! Fixture-based conformance suite: every rule D1–D5 and F1–F3 (plus
//! R1 and the annotation rules A1/A2) has a violating fixture that must
//! be flagged, a clean fixture that must pass untouched, and — where an
//! allow is meaningful — an allowed fixture that must be suppressed
//! without tripping A2.

use parfait_lint::rules::RuleSet;
use parfait_lint::{lint_file, parse_registry, FileCtx, FileFindings, Manifest, Registry};

fn registry() -> Registry {
    let (reg, diags) = parse_registry(
        "fixtures/registry_ok.rs",
        include_str!("../fixtures/registry_ok.rs"),
    );
    assert!(diags.is_empty(), "ok registry must parse clean: {diags:?}");
    assert_eq!(reg.entries.len(), 3);
    reg
}

fn ctx(rules: RuleSet) -> FileCtx {
    FileCtx {
        crate_name: "parfait-fixture".into(),
        path: "fixture.rs".into(),
        rules,
        is_registry: false,
    }
}

fn only(rule: &str) -> RuleSet {
    RuleSet {
        d1: rule == "d1",
        d2: rule == "d2",
        d3: rule == "d3",
        d4: rule == "d4",
        d5: rule == "d5",
        f1: rule == "f1",
        f2: rule == "f2",
        f3: rule == "f3",
    }
}

/// Lint `src` with a single rule enabled and an empty manifest.
fn lint(rule: &str, src: &str) -> FileFindings {
    lint_file(&ctx(only(rule)), src, &registry(), &Manifest::default())
}

/// Lint `src` with a single rule enabled and the given manifest text.
fn lint_with_manifest(rule: &str, src: &str, manifest: &str) -> FileFindings {
    let man = Manifest::parse(manifest).expect("test manifest parses");
    lint_file(&ctx(only(rule)), src, &registry(), &man)
}

#[test]
fn d1_violating_fixture_is_flagged() {
    let f = lint("d1", include_str!("../fixtures/d1_violate.rs"));
    assert_eq!(f.diagnostics.len(), 2, "{:?}", f.diagnostics); // use + field
    assert!(f
        .diagnostics
        .iter()
        .all(|d| d.code == "D1" && d.id == "hash-order"));
}

#[test]
fn d1_clean_fixture_passes() {
    let f = lint("d1", include_str!("../fixtures/d1_clean.rs"));
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d1_allow_annotation_suppresses_without_a2() {
    let f = lint("d1", include_str!("../fixtures/d1_allowed.rs"));
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d2_violating_fixture_is_flagged() {
    let f = lint("d2", include_str!("../fixtures/d2_violate.rs"));
    // `use Instant`, `Instant::now`, `SystemTime::now`.
    assert_eq!(f.diagnostics.len(), 3, "{:?}", f.diagnostics);
    assert!(f
        .diagnostics
        .iter()
        .all(|d| d.code == "D2" && d.id == "wall-clock"));
}

#[test]
fn d2_clean_fixture_passes_despite_comments_and_strings() {
    let f = lint("d2", include_str!("../fixtures/d2_clean.rs"));
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d3_violating_fixture_is_flagged() {
    let f = lint("d3", include_str!("../fixtures/d3_violate.rs"));
    // Bare `split(617)` plus `split(RECOVERY_STREAM)` (unregistered name).
    assert_eq!(f.diagnostics.len(), 2, "{:?}", f.diagnostics);
    assert!(f
        .diagnostics
        .iter()
        .all(|d| d.code == "D3" && d.id == "rng-stream"));
}

#[test]
fn d3_clean_fixture_passes_and_str_split_is_ignored() {
    let f = lint("d3", include_str!("../fixtures/d3_clean.rs"));
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d3_allow_annotation_suppresses() {
    let f = lint("d3", include_str!("../fixtures/d3_allowed.rs"));
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d3_registry_name_shadowing_is_flagged() {
    let f = lint("d3", include_str!("../fixtures/d3_shadow.rs"));
    assert_eq!(f.diagnostics.len(), 1, "{:?}", f.diagnostics);
    assert!(f.diagnostics[0].msg.contains("shadows"));
}

#[test]
fn d4_violating_fixture_is_flagged() {
    let f = lint("d4", include_str!("../fixtures/d4_violate.rs"));
    // `use Mutex`, the `Mutex<...>` field, and `thread::spawn`.
    assert_eq!(f.diagnostics.len(), 3, "{:?}", f.diagnostics);
    assert!(f
        .diagnostics
        .iter()
        .all(|d| d.code == "D4" && d.id == "sync-primitive"));
}

#[test]
fn d4_clean_fixture_passes_with_non_thread_spawn() {
    let f = lint("d4", include_str!("../fixtures/d4_clean.rs"));
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d5_violating_fixture_counts_panics_and_unwraps() {
    let f = lint("d5", include_str!("../fixtures/d5_violate.rs"));
    assert_eq!((f.panics, f.unwraps), (2, 3));
}

#[test]
fn d5_clean_fixture_counts_zero_outside_tests() {
    let f = lint("d5", include_str!("../fixtures/d5_clean.rs"));
    assert_eq!((f.panics, f.unwraps), (0, 0));
}

#[test]
fn f1_violating_fixture_flags_every_mutation_shape() {
    let f = lint("f1", include_str!("../fixtures/f1_violate.rs"));
    // Field write, compound assign through an index, mutator call,
    // container mutation — reads stay clean.
    assert_eq!(f.diagnostics.len(), 4, "{:?}", f.diagnostics);
    assert!(f
        .diagnostics
        .iter()
        .all(|d| d.code == "F1" && d.id == "index-funnel"));
    // Findings name the offending fn.
    assert!(f.diagnostics[0].msg.contains("sneak_write"));
}

#[test]
fn f1_clean_fixture_passes_under_its_manifest() {
    let src = include_str!("../fixtures/f1_clean.rs");
    let man = "[index-funnel]\nfunnel_write\nWorld::transition\n";
    let f = lint_with_manifest("f1", src, man);
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn f1_funnel_bypass_is_flagged_when_manifest_entry_is_deleted() {
    // Same fixture, but the manifest lost `World::transition` — the
    // mutation inside it is now a funnel bypass.
    let src = include_str!("../fixtures/f1_clean.rs");
    let f = lint_with_manifest("f1", src, "[index-funnel]\nfunnel_write\n");
    assert_eq!(f.diagnostics.len(), 1, "{:?}", f.diagnostics);
    assert!(f.diagnostics[0].msg.contains("World::transition"));
    assert!(f.diagnostics[0].msg.contains("lint-manifest.txt"));
}

#[test]
fn f1_allow_annotation_scopes_to_the_whole_fn() {
    let f = lint("f1", include_str!("../fixtures/f1_allowed.rs"));
    // One scoped allow covers both mutations; it is used, so no A2.
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn f2_violating_fixture_is_flagged_with_fn_span() {
    let f = lint("f2", include_str!("../fixtures/f2_violate.rs"));
    assert_eq!(f.diagnostics.len(), 1, "{:?}", f.diagnostics);
    let d = &f.diagnostics[0];
    assert_eq!((d.code, d.id), ("F2", "dirty-domain"));
    assert!(d.msg.contains("sneak_launch"));
    // Structural finding: the span covers the whole fn.
    assert!(d.end_line > d.line, "span {}..{}", d.line, d.end_line);
}

#[test]
fn f2_clean_fixture_marks_every_mutation() {
    let f = lint("f2", include_str!("../fixtures/f2_clean.rs"));
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn f2_manifest_exemption_suppresses() {
    let src = include_str!("../fixtures/f2_violate.rs");
    let f = lint_with_manifest("f2", src, "[dirty-exempt]\nGpuDevice::sneak_launch\n");
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn f2_allow_annotation_suppresses() {
    let f = lint("f2", include_str!("../fixtures/f2_allowed.rs"));
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn f3_violating_fixture_flags_loop_field_and_boundary() {
    let f = lint("f3", include_str!("../fixtures/f3_violate.rs"));
    assert_eq!(f.diagnostics.len(), 3, "{:?}", f.diagnostics);
    assert!(f
        .diagnostics
        .iter()
        .all(|d| d.code == "F3" && d.id == "stream-hygiene"));
    assert!(f.diagnostics[0].msg.contains("loop"));
    assert!(f.diagnostics[1].msg.contains("struct field"));
    assert!(f.diagnostics[2].msg.contains("fn boundary"));
}

#[test]
fn f3_clean_fixture_passes_with_hoisted_locals() {
    let f = lint("f3", include_str!("../fixtures/f3_clean.rs"));
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn f3_allow_annotation_scopes_over_the_loop() {
    let f = lint("f3", include_str!("../fixtures/f3_allowed.rs"));
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn f4_scoped_allow_does_not_leak_to_sibling_fns() {
    let src = "\
// lint:allow(index-funnel, covered fn only)
pub fn covered(world: &mut World) {
    world.index.enabled = true;
}

pub fn sibling(world: &mut World) {
    world.index.enabled = false;
}
";
    let f = lint("f1", src);
    assert_eq!(f.diagnostics.len(), 1, "{:?}", f.diagnostics);
    assert!(f.diagnostics[0].msg.contains("sibling"));
}

#[test]
fn f4_unused_scoped_allow_is_flagged_a2() {
    let src = "\
// lint:allow(index-funnel, nothing in here mutates any more)
pub fn quiet(world: &World) -> bool {
    world.index.enabled
}
";
    let f = lint("f1", src);
    assert_eq!(f.diagnostics.len(), 1, "{:?}", f.diagnostics);
    assert_eq!(f.diagnostics[0].code, "A2");
}

#[test]
fn unused_and_malformed_annotations_are_flagged() {
    let f = lint_file(
        &ctx(RuleSet::sim_visible_full()),
        include_str!("../fixtures/allow_unused.rs"),
        &registry(),
        &Manifest::default(),
    );
    let a1 = f.diagnostics.iter().filter(|d| d.code == "A1").count();
    let a2 = f.diagnostics.iter().filter(|d| d.code == "A2").count();
    assert_eq!((a1, a2), (1, 1), "{:?}", f.diagnostics);
}

#[test]
fn registry_duplicates_and_computed_ids_are_flagged() {
    let (reg, diags) = parse_registry(
        "fixtures/registry_dup.rs",
        include_str!("../fixtures/registry_dup.rs"),
    );
    assert_eq!(diags.len(), 2, "{diags:?}"); // duplicate 617 + computed DERIVED
    assert!(diags
        .iter()
        .all(|d| d.code == "R1" && d.id == "stream-registry"));
    assert!(diags
        .iter()
        .any(|d| d.msg.contains("duplicate stream id 617")));
    assert_eq!(reg.entries.len(), 2);
}
