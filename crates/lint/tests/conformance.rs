//! Fixture-based conformance suite: every rule D1–D5 (plus R1 and the
//! annotation rules A1/A2) has at least one violating fixture that must
//! be flagged and one clean fixture that must pass untouched.

use parfait_lint::rules::RuleSet;
use parfait_lint::{lint_file, parse_registry, FileCtx, Registry};

fn registry() -> Registry {
    let (reg, diags) = parse_registry(
        "fixtures/registry_ok.rs",
        include_str!("../fixtures/registry_ok.rs"),
    );
    assert!(diags.is_empty(), "ok registry must parse clean: {diags:?}");
    assert_eq!(reg.entries.len(), 3);
    reg
}

fn ctx(rules: RuleSet) -> FileCtx {
    FileCtx {
        crate_name: "parfait-fixture".into(),
        path: "fixture.rs".into(),
        rules,
        is_registry: false,
    }
}

fn only(rule: &str) -> RuleSet {
    RuleSet {
        d1: rule == "d1",
        d2: rule == "d2",
        d3: rule == "d3",
        d4: rule == "d4",
        d5: rule == "d5",
    }
}

#[test]
fn d1_violating_fixture_is_flagged() {
    let f = lint_file(
        &ctx(only("d1")),
        include_str!("../fixtures/d1_violate.rs"),
        &registry(),
    );
    assert_eq!(f.diagnostics.len(), 2, "{:?}", f.diagnostics); // use + field
    assert!(f
        .diagnostics
        .iter()
        .all(|d| d.code == "D1" && d.id == "hash-order"));
}

#[test]
fn d1_clean_fixture_passes() {
    let f = lint_file(
        &ctx(only("d1")),
        include_str!("../fixtures/d1_clean.rs"),
        &registry(),
    );
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d1_allow_annotation_suppresses_without_a2() {
    let f = lint_file(
        &ctx(only("d1")),
        include_str!("../fixtures/d1_allowed.rs"),
        &registry(),
    );
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d2_violating_fixture_is_flagged() {
    let f = lint_file(
        &ctx(only("d2")),
        include_str!("../fixtures/d2_violate.rs"),
        &registry(),
    );
    // `use Instant`, `Instant::now`, `SystemTime::now`.
    assert_eq!(f.diagnostics.len(), 3, "{:?}", f.diagnostics);
    assert!(f
        .diagnostics
        .iter()
        .all(|d| d.code == "D2" && d.id == "wall-clock"));
}

#[test]
fn d2_clean_fixture_passes_despite_comments_and_strings() {
    let f = lint_file(
        &ctx(only("d2")),
        include_str!("../fixtures/d2_clean.rs"),
        &registry(),
    );
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d3_violating_fixture_is_flagged() {
    let f = lint_file(
        &ctx(only("d3")),
        include_str!("../fixtures/d3_violate.rs"),
        &registry(),
    );
    // Bare `split(617)` plus `split(RECOVERY_STREAM)` (unregistered name).
    assert_eq!(f.diagnostics.len(), 2, "{:?}", f.diagnostics);
    assert!(f
        .diagnostics
        .iter()
        .all(|d| d.code == "D3" && d.id == "rng-stream"));
}

#[test]
fn d3_clean_fixture_passes_and_str_split_is_ignored() {
    let f = lint_file(
        &ctx(only("d3")),
        include_str!("../fixtures/d3_clean.rs"),
        &registry(),
    );
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d3_allow_annotation_suppresses() {
    let f = lint_file(
        &ctx(only("d3")),
        include_str!("../fixtures/d3_allowed.rs"),
        &registry(),
    );
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d3_registry_name_shadowing_is_flagged() {
    let f = lint_file(
        &ctx(only("d3")),
        include_str!("../fixtures/d3_shadow.rs"),
        &registry(),
    );
    assert_eq!(f.diagnostics.len(), 1, "{:?}", f.diagnostics);
    assert!(f.diagnostics[0].msg.contains("shadows"));
}

#[test]
fn d4_violating_fixture_is_flagged() {
    let f = lint_file(
        &ctx(only("d4")),
        include_str!("../fixtures/d4_violate.rs"),
        &registry(),
    );
    // `use Mutex`, the `Mutex<...>` field, and `thread::spawn`.
    assert_eq!(f.diagnostics.len(), 3, "{:?}", f.diagnostics);
    assert!(f
        .diagnostics
        .iter()
        .all(|d| d.code == "D4" && d.id == "sync-primitive"));
}

#[test]
fn d4_clean_fixture_passes_with_non_thread_spawn() {
    let f = lint_file(
        &ctx(only("d4")),
        include_str!("../fixtures/d4_clean.rs"),
        &registry(),
    );
    assert!(f.diagnostics.is_empty(), "{:?}", f.diagnostics);
}

#[test]
fn d5_violating_fixture_counts_panics_and_unwraps() {
    let f = lint_file(
        &ctx(only("d5")),
        include_str!("../fixtures/d5_violate.rs"),
        &registry(),
    );
    assert_eq!((f.panics, f.unwraps), (2, 3));
}

#[test]
fn d5_clean_fixture_counts_zero_outside_tests() {
    let f = lint_file(
        &ctx(only("d5")),
        include_str!("../fixtures/d5_clean.rs"),
        &registry(),
    );
    assert_eq!((f.panics, f.unwraps), (0, 0));
}

#[test]
fn unused_and_malformed_annotations_are_flagged() {
    let f = lint_file(
        &ctx(RuleSet::sim_visible_full()),
        include_str!("../fixtures/allow_unused.rs"),
        &registry(),
    );
    let a1 = f.diagnostics.iter().filter(|d| d.code == "A1").count();
    let a2 = f.diagnostics.iter().filter(|d| d.code == "A2").count();
    assert_eq!((a1, a2), (1, 1), "{:?}", f.diagnostics);
}

#[test]
fn registry_duplicates_and_computed_ids_are_flagged() {
    let (reg, diags) = parse_registry(
        "fixtures/registry_dup.rs",
        include_str!("../fixtures/registry_dup.rs"),
    );
    assert_eq!(diags.len(), 2, "{diags:?}"); // duplicate 617 + computed DERIVED
    assert!(diags
        .iter()
        .all(|d| d.code == "R1" && d.id == "stream-registry"));
    assert!(diags
        .iter()
        .any(|d| d.msg.contains("duplicate stream id 617")));
    assert_eq!(reg.entries.len(), 2);
}
