//! The lint eats its own dog food: the checked-in workspace must be
//! clean under `--deny` semantics (F-family included), the real
//! `simcore::streams` registry must parse with unique ids, and the
//! invariant manifest must both exist and fail loudly when it drifts
//! from the code.

use parfait_lint::rules::RuleSet;
use parfait_lint::{lint_file, parse_registry, run_workspace, Baseline, FileCtx, Manifest};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_clean_under_deny() {
    let report = run_workspace(workspace_root()).expect("workspace scan");
    assert!(
        report.diagnostics.is_empty(),
        "workspace must lint clean:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 30, "suspiciously few files scanned");
}

#[test]
fn real_registry_has_unique_ids() {
    let report = run_workspace(workspace_root()).expect("workspace scan");
    assert!(
        report.registry.len() >= 6,
        "registry entries: {:?}",
        report.registry
    );
    let mut ids: Vec<u64> = report.registry.iter().map(|(_, v)| *v).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), report.registry.len(), "duplicate stream ids");
}

/// Lint the real `world.rs` with F1 enabled against an arbitrary
/// manifest, returning the F1 diagnostics.
fn lint_world_with(manifest: &Manifest) -> Vec<String> {
    let root = workspace_root();
    let src = std::fs::read_to_string(root.join("crates/faas/src/world.rs")).expect("world.rs");
    let reg_src =
        std::fs::read_to_string(root.join("crates/simcore/src/streams.rs")).expect("registry");
    let (reg, _) = parse_registry("crates/simcore/src/streams.rs", &reg_src);
    let ctx = FileCtx {
        crate_name: "parfait-faas".into(),
        path: "crates/faas/src/world.rs".into(),
        rules: RuleSet {
            f1: true,
            ..RuleSet::default()
        },
        is_registry: false,
    };
    lint_file(&ctx, &src, &reg, manifest)
        .diagnostics
        .into_iter()
        .filter(|d| d.code == "F1")
        .map(|d| d.to_string())
        .collect()
}

#[test]
fn deleting_a_funnel_fn_from_the_manifest_fails_the_lint() {
    let root = workspace_root();
    let text = std::fs::read_to_string(root.join("lint-manifest.txt")).expect("manifest");
    let full = Manifest::parse(&text).expect("checked-in manifest parses");
    assert!(
        lint_world_with(&full).is_empty(),
        "real manifest is funnel-complete"
    );

    // Drop `FaasWorld::transition`: its on_state_change call becomes a
    // bypass, and the finding points back at the manifest.
    let narrowed = Manifest::parse(
        &text
            .lines()
            .filter(|l| l.trim() != "FaasWorld::transition")
            .collect::<Vec<_>>()
            .join("\n"),
    )
    .expect("narrowed manifest parses");
    let findings = lint_world_with(&narrowed);
    assert!(
        findings.iter().any(|f| f.contains("FaasWorld::transition")
            && f.contains("on_state_change")
            && f.contains("lint-manifest.txt")),
        "expected a transition bypass finding, got: {findings:?}"
    );
}

#[test]
fn manifest_drift_renamed_funnel_fn_is_an_m1_finding() {
    // A manifest naming a fn that doesn't exist must produce an M1
    // diagnostic pointing at the stale entry. run_workspace reads the
    // manifest at the root, so drift is staged in a scratch workspace.
    let tmp = std::env::temp_dir().join(format!("parfait-lint-drift-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(tmp.join("crates/faas/src")).expect("mkdir");
    std::fs::create_dir_all(tmp.join("crates/simcore/src")).expect("mkdir");
    std::fs::write(tmp.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::write(
        tmp.join("crates/simcore/src/streams.rs"),
        "pub const RETRY_JITTER: u64 = 617;\n",
    )
    .expect("write");
    std::fs::write(
        tmp.join("crates/faas/src/world.rs"),
        "pub fn queue_push() {}\n",
    )
    .expect("write");
    std::fs::write(
        tmp.join("lint-manifest.txt"),
        "[index-funnel]\nqueue_push\nFaasWorld::transitionn\n",
    )
    .expect("write");
    let report = run_workspace(&tmp).expect("scan temp root");
    let _ = std::fs::remove_dir_all(&tmp);
    let m1: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "M1")
        .collect();
    assert_eq!(m1.len(), 1, "{:?}", report.diagnostics);
    assert!(m1[0].msg.contains("FaasWorld::transitionn"));
    assert!(m1[0].msg.contains("renamed or removed"));
    assert_eq!(m1[0].line, 3, "points at the stale manifest line");
}

#[test]
fn missing_manifest_is_an_m1_finding() {
    let tmp = std::env::temp_dir().join(format!("parfait-lint-noman-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(tmp.join("crates/simcore/src")).expect("mkdir");
    std::fs::write(tmp.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::write(
        tmp.join("crates/simcore/src/streams.rs"),
        "pub const RETRY_JITTER: u64 = 617;\n",
    )
    .expect("write");
    let report = run_workspace(&tmp).expect("scan temp root");
    let _ = std::fs::remove_dir_all(&tmp);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "M1" && d.msg.contains("missing")),
        "{:?}",
        report.diagnostics
    );
}

#[test]
fn budgets_fit_checked_in_baseline() {
    let report = run_workspace(workspace_root()).expect("workspace scan");
    let baseline = Baseline::load(workspace_root()).expect("baseline parses");
    let over: Vec<String> = baseline
        .check(&report.budgets)
        .iter()
        .filter(|c| c.over())
        .map(|c| {
            format!(
                "{}: {}/{} vs baseline {}/{}",
                c.crate_name, c.panics, c.unwraps, c.base_panics, c.base_unwraps
            )
        })
        .collect();
    assert!(
        over.is_empty(),
        "crates over panic/unwrap budget:\n{}",
        over.join("\n")
    );
}
