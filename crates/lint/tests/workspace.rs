//! The lint eats its own dog food: the checked-in workspace must be
//! clean under `--deny` semantics, and the real `simcore::streams`
//! registry must parse with unique ids.

use parfait_lint::{run_workspace, Baseline};
use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_clean_under_deny() {
    let report = run_workspace(workspace_root()).expect("workspace scan");
    assert!(
        report.diagnostics.is_empty(),
        "workspace must lint clean:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 30, "suspiciously few files scanned");
}

#[test]
fn real_registry_has_unique_ids() {
    let report = run_workspace(workspace_root()).expect("workspace scan");
    assert!(
        report.registry.len() >= 6,
        "registry entries: {:?}",
        report.registry
    );
    let mut ids: Vec<u64> = report.registry.iter().map(|(_, v)| *v).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), report.registry.len(), "duplicate stream ids");
}

#[test]
fn budgets_fit_checked_in_baseline() {
    let report = run_workspace(workspace_root()).expect("workspace scan");
    let baseline = Baseline::load(workspace_root()).expect("baseline parses");
    let over: Vec<String> = baseline
        .check(&report.budgets)
        .iter()
        .filter(|c| c.over())
        .map(|c| {
            format!(
                "{}: {}/{} vs baseline {}/{}",
                c.crate_name, c.panics, c.unwraps, c.base_panics, c.base_unwraps
            )
        })
        .collect();
    assert!(
        over.is_empty(),
        "crates over panic/unwrap budget:\n{}",
        over.join("\n")
    );
}
