//! A lightweight item/scope parser over the token stream.
//!
//! The F-family rules need to answer "which fn is this token inside?"
//! and "is that fn a method of `GpuDevice`?" — questions a flat token
//! scan cannot. This module builds a per-file item tree (mod → impl /
//! trait → fn, with nesting) from the [`crate::lexer`] output: no full
//! grammar, just enough structure to assign every token to its
//! innermost item and to give each item a qualified name
//! (`Type::method` for impl/trait fns, the bare name for free fns) and
//! a line span.
//!
//! It also precomputes a per-token loop depth (how many `for`/`while`/
//! `loop` bodies enclose each token), which F3 `stream-hygiene` uses to
//! flag `SimRng::split` calls inside loops.

use crate::lexer::{Tok, TokKind};

/// Item kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// `mod name { ... }`
    Mod,
    /// `impl Type { ... }` / `impl Trait for Type { ... }` (named by the
    /// self type).
    Impl,
    /// `trait Name { ... }`
    Trait,
    /// `fn name(...) { ... }` (or a body-less trait method decl).
    Fn,
}

/// One item scope.
#[derive(Debug, Clone)]
pub struct Scope {
    /// Item kind.
    pub kind: ScopeKind,
    /// Bare name (`new`, `GpuDevice`, `tests`).
    pub name: String,
    /// Qualified name: `Type::method` for fns inside an impl/trait,
    /// otherwise the bare name.
    pub qualified: String,
    /// Index of the enclosing scope in [`ScopeTree::scopes`].
    pub parent: Option<usize>,
    /// First token of the item, including any `#[...]` attributes and
    /// visibility/qualifier keywords. Scoped allow annotations anchor
    /// here.
    pub anchor: usize,
    /// Token range of the braced body: indices of `{` and its matching
    /// `}`. `None` for body-less items (trait method decls).
    pub body: Option<(usize, usize)>,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// 1-based line of the item's last token (closing brace or `;`).
    pub end_line: u32,
}

/// The per-file item tree, stored flat in pre-order.
#[derive(Debug, Default)]
pub struct ScopeTree {
    /// All scopes, in source order (parents before children).
    pub scopes: Vec<Scope>,
}

impl ScopeTree {
    /// The innermost `fn` scope whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&Scope> {
        self.scopes
            .iter()
            .filter(|s| {
                s.kind == ScopeKind::Fn && s.body.is_some_and(|(open, close)| open < i && i < close)
            })
            .max_by_key(|s| s.body.map(|(open, _)| open))
    }

    /// The scope (if any) whose anchor token is exactly `i` — used to
    /// attach a scoped allow annotation to the item that follows it.
    pub fn at_anchor(&self, i: usize) -> Option<&Scope> {
        self.scopes.iter().find(|s| s.anchor == i)
    }

    /// The name of the impl/trait a fn scope belongs to, if any.
    pub fn self_type_of(&self, s: &Scope) -> Option<&str> {
        let mut p = s.parent;
        while let Some(pi) = p {
            let ps = &self.scopes[pi];
            if matches!(ps.kind, ScopeKind::Impl | ScopeKind::Trait) {
                return Some(&ps.name);
            }
            p = ps.parent;
        }
        None
    }
}

/// Walk back from the index of a matched `)`/`]`/`}` to its opener.
fn match_open(toks: &[Tok], close: usize, oc: char, cc: char) -> usize {
    let mut depth = 1usize;
    let mut i = close;
    while i > 0 {
        i -= 1;
        if toks[i].is_punct(cc) {
            depth += 1;
        } else if toks[i].is_punct(oc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    0
}

/// Walk forward from the index of an opener to its matching closer.
fn match_close(toks: &[Tok], open: usize, end: usize, oc: char, cc: char) -> usize {
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < end {
        if toks[i].is_punct(oc) {
            depth += 1;
        } else if toks[i].is_punct(cc) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end.saturating_sub(1).max(open)
}

/// Crate-visible matcher: from the opener at `open` (`(`/`[`/`{`) to
/// its closer, bounded by `end`.
pub(crate) fn match_close_pub(toks: &[Tok], open: usize, end: usize) -> usize {
    let t = &toks[open];
    if t.is_punct('(') {
        match_close(toks, open, end, '(', ')')
    } else if t.is_punct('[') {
        match_close(toks, open, end, '[', ']')
    } else {
        match_close(toks, open, end, '{', '}')
    }
}

/// Crate-visible matcher: from the closer at `close` (`)`/`]`/`}`) back
/// to its opener.
pub(crate) fn match_open_pub(toks: &[Tok], close: usize) -> usize {
    let t = &toks[close];
    if t.is_punct(')') {
        match_open(toks, close, '(', ')')
    } else if t.is_punct(']') {
        match_open(toks, close, '[', ']')
    } else {
        match_open(toks, close, '{', '}')
    }
}

/// Walk back from an item keyword over visibility/qualifier tokens and
/// attributes to the item's first token.
fn anchor_of(toks: &[Tok], kw: usize) -> usize {
    let mut a = kw;
    while a > 0 {
        let p = a - 1;
        let t = &toks[p];
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "pub" | "unsafe" | "const" | "async" | "default" | "extern"
            )
        {
            a = p;
            continue;
        }
        // `extern "C"` — the string, then the `extern` above.
        if t.kind == TokKind::Str && p >= 1 && toks[p - 1].is_ident("extern") {
            a = p - 1;
            continue;
        }
        // `pub(crate)` / `pub(in path)`.
        if t.is_punct(')') {
            let open = match_open(toks, p, '(', ')');
            if open > 0 && toks[open - 1].is_ident("pub") {
                a = open - 1;
                continue;
            }
            break;
        }
        // An attribute `#[...]`.
        if t.is_punct(']') {
            let open = match_open(toks, p, '[', ']');
            if open > 0 && toks[open - 1].is_punct('#') {
                a = open - 1;
                continue;
            }
            break;
        }
        break;
    }
    a
}

/// Find the body `{` of an item header starting after `from`: the first
/// `{` or `;` with parens/brackets balanced (types and where-clauses
/// contain no braces). Returns `Ok(open)` or `Err(semi_or_end)`.
fn find_body(toks: &[Tok], from: usize, end: usize) -> Result<usize, usize> {
    let mut i = from;
    while i < end {
        let t = &toks[i];
        if t.is_punct('(') {
            i = match_close(toks, i, end, '(', ')') + 1;
            continue;
        }
        if t.is_punct('[') {
            i = match_close(toks, i, end, '[', ']') + 1;
            continue;
        }
        if t.is_punct('{') {
            return Ok(i);
        }
        if t.is_punct(';') {
            return Err(i);
        }
        i += 1;
    }
    Err(end.saturating_sub(1))
}

/// Parse the item tree of a whole file's token stream.
pub fn parse_scopes(toks: &[Tok]) -> ScopeTree {
    let mut tree = ScopeTree::default();
    parse_items(toks, 0, toks.len(), None, None, &mut tree);
    tree
}

#[allow(clippy::too_many_arguments)] // internal helper; a params struct would just rename the nine
fn push_scope(
    tree: &mut ScopeTree,
    kind: ScopeKind,
    name: String,
    self_ty: Option<&str>,
    parent: Option<usize>,
    toks: &[Tok],
    kw: usize,
    last: usize,
    body: Option<(usize, usize)>,
) -> usize {
    let qualified = match (kind, self_ty) {
        (ScopeKind::Fn, Some(ty)) => format!("{ty}::{name}"),
        _ => name.clone(),
    };
    tree.scopes.push(Scope {
        kind,
        name,
        qualified,
        parent,
        anchor: anchor_of(toks, kw),
        body,
        line: toks[kw].line,
        end_line: toks[last.min(toks.len() - 1)].line,
    });
    tree.scopes.len() - 1
}

/// Scan `toks[i..end]` for `mod`/`impl`/`trait`/`fn` items, recursing
/// into braced bodies. Tokens that are not item keywords (expressions,
/// struct bodies, match arms) are skipped: the scanner only reacts to
/// the four item keywords, and `fn` additionally requires a following
/// identifier so fn-pointer types (`fn(u32) -> u32`) don't register.
fn parse_items(
    toks: &[Tok],
    mut i: usize,
    end: usize,
    parent: Option<usize>,
    self_ty: Option<&str>,
    tree: &mut ScopeTree,
) {
    while i < end {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "mod" if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                let name = toks[i + 1].text.clone();
                if toks.get(i + 2).is_some_and(|b| b.is_punct('{')) {
                    let close = match_close(toks, i + 2, end, '{', '}');
                    let idx = push_scope(
                        tree,
                        ScopeKind::Mod,
                        name,
                        None,
                        parent,
                        toks,
                        i,
                        close,
                        Some((i + 2, close)),
                    );
                    parse_items(toks, i + 3, close, Some(idx), None, tree);
                    i = close + 1;
                } else {
                    i += 2; // `mod name;`
                }
            }
            "trait" if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                let name = toks[i + 1].text.clone();
                match find_body(toks, i + 2, end) {
                    Ok(open) => {
                        let close = match_close(toks, open, end, '{', '}');
                        let idx = push_scope(
                            tree,
                            ScopeKind::Trait,
                            name.clone(),
                            None,
                            parent,
                            toks,
                            i,
                            close,
                            Some((open, close)),
                        );
                        parse_items(toks, open + 1, close, Some(idx), Some(&name), tree);
                        i = close + 1;
                    }
                    Err(stop) => i = stop + 1,
                }
            }
            "impl" => {
                // Header: `impl<G> Type`, `impl Trait for Type`, with an
                // optional where-clause. The self type is the last
                // path-segment ident at angle-depth 0 before the body,
                // restarting collection after `for`.
                let mut j = i + 1;
                if toks.get(j).is_some_and(|g| g.is_punct('<')) {
                    j = skip_angles(toks, j, end);
                }
                let mut name = String::new();
                let mut in_where = false;
                let mut body_open = None;
                while j < end {
                    let h = &toks[j];
                    if h.is_punct('(') {
                        j = match_close(toks, j, end, '(', ')') + 1;
                        continue;
                    }
                    if h.is_punct('<') {
                        j = skip_angles(toks, j, end);
                        continue;
                    }
                    if h.is_punct('{') {
                        body_open = Some(j);
                        break;
                    }
                    if h.is_punct(';') {
                        break;
                    }
                    if h.kind == TokKind::Ident {
                        match h.text.as_str() {
                            "for" => name.clear(),
                            "where" => in_where = true,
                            "dyn" | "mut" => {}
                            _ if !in_where => name = h.text.clone(),
                            _ => {}
                        }
                    }
                    j += 1;
                }
                match body_open {
                    Some(open) => {
                        let close = match_close(toks, open, end, '{', '}');
                        let idx = push_scope(
                            tree,
                            ScopeKind::Impl,
                            name.clone(),
                            None,
                            parent,
                            toks,
                            i,
                            close,
                            Some((open, close)),
                        );
                        parse_items(toks, open + 1, close, Some(idx), Some(&name), tree);
                        i = close + 1;
                    }
                    None => i = j + 1,
                }
            }
            "fn" if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                let name = toks[i + 1].text.clone();
                match find_body(toks, i + 2, end) {
                    Ok(open) => {
                        let close = match_close(toks, open, end, '{', '}');
                        let idx = push_scope(
                            tree,
                            ScopeKind::Fn,
                            name,
                            self_ty,
                            parent,
                            toks,
                            i,
                            close,
                            Some((open, close)),
                        );
                        // Nested items (helper fns, test mods) inside the
                        // body; the self type does not propagate.
                        parse_items(toks, open + 1, close, Some(idx), None, tree);
                        i = close + 1;
                    }
                    Err(stop) => {
                        // Trait method declaration without a body.
                        push_scope(
                            tree,
                            ScopeKind::Fn,
                            name,
                            self_ty,
                            parent,
                            toks,
                            i,
                            stop,
                            None,
                        );
                        i = stop + 1;
                    }
                }
            }
            _ => i += 1,
        }
    }
}

/// Skip a balanced `<...>` group starting at `open`, ignoring `->`
/// arrows whose `>` would otherwise unbalance the count. Returns the
/// index just past the closing `>`.
fn skip_angles(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = open;
    while i < end {
        let t = &toks[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct('(') {
            i = match_close(toks, i, end, '(', ')');
        }
        i += 1;
    }
    end
}

/// Per-token loop depth: how many `for`/`while`/`loop` bodies enclose
/// each token. `for` only counts when it heads a loop (an `in` follows
/// before the body brace), so `impl Trait for Type` and `for<'a>`
/// bounds don't register.
pub fn loop_depths(toks: &[Tok]) -> Vec<u16> {
    let n = toks.len();
    let mut out = vec![0u16; n];
    let mut brace = 0i64;
    let mut loop_braces: Vec<i64> = Vec::new();
    let mut pending = false;
    for i in 0..n {
        let t = &toks[i];
        if t.is_punct('{') {
            brace += 1;
            if pending {
                loop_braces.push(brace);
                pending = false;
            }
        } else if t.is_punct('}') {
            if loop_braces.last() == Some(&brace) {
                loop_braces.pop();
            }
            brace -= 1;
        } else if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "loop" | "while" => pending = true,
                "for" if for_heads_a_loop(toks, i) => pending = true,
                _ => {}
            }
        }
        out[i] = loop_braces.len() as u16;
    }
    out
}

/// Does the `for` at token `i` introduce a loop? True iff an `in` ident
/// appears before the next `{`/`;` — impl headers and HRTB bounds never
/// contain one.
fn for_heads_a_loop(toks: &[Tok], i: usize) -> bool {
    if toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
        return false; // `for<'a>` bound
    }
    for t in toks.iter().skip(i + 1) {
        if t.is_ident("in") {
            return true;
        }
        if t.is_punct('{') || t.is_punct(';') {
            return false;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<String> {
        let l = lex(src);
        parse_scopes(&l.toks)
            .scopes
            .iter()
            .filter(|s| s.kind == ScopeKind::Fn)
            .map(|s| s.qualified.clone())
            .collect()
    }

    #[test]
    fn free_and_impl_fns_are_qualified() {
        let got = fns("pub fn free() {}\nimpl Foo { pub(crate) fn m(&self) {} }\n\
                       impl Bar for Foo { fn t(&self) {} }");
        assert_eq!(got, vec!["free", "Foo::m", "Foo::t"]);
    }

    #[test]
    fn generics_and_where_clauses_dont_confuse_the_self_type() {
        let got = fns(
            "impl<F: Fn() -> u64> Holder<F> where F: Clone { fn call(&self) -> u64 { (self.f)() } }",
        );
        assert_eq!(got, vec!["Holder::call"]);
    }

    #[test]
    fn nested_fns_and_mods() {
        let got = fns("mod inner { fn a() { fn b() {} } }\nfn outer() {}");
        assert_eq!(got, vec!["a", "b", "outer"]);
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let got = fns("struct S { f: fn(u32) -> u32 }\nfn real(s: S) {}");
        assert_eq!(got, vec!["real"]);
    }

    #[test]
    fn enclosing_fn_finds_the_innermost() {
        let l = lex("fn outer() { fn inner() { let x = 1; } }");
        let tree = parse_scopes(&l.toks);
        let xi = l.toks.iter().position(|t| t.is_ident("x")).unwrap();
        assert_eq!(tree.enclosing_fn(xi).unwrap().qualified, "inner");
    }

    #[test]
    fn anchor_includes_attributes_and_visibility() {
        let l = lex("#[inline]\npub fn f() {}");
        let tree = parse_scopes(&l.toks);
        assert_eq!(tree.scopes[0].anchor, 0);
        assert_eq!(tree.scopes[0].line, 2);
    }

    #[test]
    fn loop_depths_track_loops_not_impl_for() {
        let src = "impl A for B { fn f(&self) { let a = 1; for x in 0..3 { let b = 2; \
                   while b > 0 { let c = 3; } } } }";
        let l = lex(src);
        let d = loop_depths(&l.toks);
        let at = |name: &str| l.toks.iter().position(|t| t.is_ident(name)).unwrap();
        assert_eq!(d[at("a")], 0);
        assert_eq!(d[at("b")], 1);
        assert_eq!(d[at("c")], 2);
    }

    #[test]
    fn trait_default_methods_are_qualified_by_trait() {
        let got = fns("trait T { fn decl(&self); fn dflt(&self) {} }");
        assert_eq!(got, vec!["T::decl", "T::dflt"]);
    }
}
