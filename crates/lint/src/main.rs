//! `parfait-lint` CLI.
//!
//! Modes:
//! * default — report all diagnostics and budget status, exit 0
//!   (advisory; useful while fixing a batch of findings).
//! * `--deny` — exit 1 on any diagnostic or budget overrun (CI mode).
//! * `--baseline` — re-record `lint-baseline.txt` from current counts.
//! * `--list-rules` — print the rule catalog and exit.
//! * `--root DIR` — lint the workspace rooted at DIR instead of
//!   auto-discovering from the current directory.

use parfait_lint::{find_workspace_root, run_workspace, Baseline, BASELINE_FILE, CATALOG};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: Option<PathBuf>,
    deny: bool,
    baseline: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        deny: false,
        baseline: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => opts.deny = true,
            "--baseline" => opts.baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => {
                println!(
                    "parfait-lint: determinism static analysis for the PARFAIT workspace\n\n\
                     USAGE: parfait-lint [--root DIR] [--deny | --baseline] [--list-rules]\n\n\
                     \x20 --root DIR    lint the workspace at DIR (default: discover from cwd)\n\
                     \x20 --deny        exit nonzero on any finding or budget overrun (CI mode)\n\
                     \x20 --baseline    re-record {BASELINE_FILE} from current D5 counts\n\
                     \x20 --list-rules  print the rule catalog and exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if opts.deny && opts.baseline {
        return Err("--deny and --baseline are mutually exclusive".into());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("parfait-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in CATALOG {
            println!("{:>2} {:<16} {}", r.code, r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("parfait-lint: no workspace root found (try --root DIR)");
            return ExitCode::from(2);
        }
    };

    let report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("parfait-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    for d in &report.diagnostics {
        println!("{d}");
    }

    if opts.baseline {
        let text = Baseline::render(&report.budgets);
        if let Err(e) = std::fs::write(root.join(BASELINE_FILE), text) {
            eprintln!("parfait-lint: writing {BASELINE_FILE}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "recorded {} crate budget(s) to {BASELINE_FILE}",
            report.budgets.len()
        );
        // A recorded baseline still doesn't absolve D1-D4 findings.
        return if report.diagnostics.is_empty() {
            ExitCode::SUCCESS
        } else {
            report_footer(&report, true);
            ExitCode::from(1)
        };
    }

    let baseline = match Baseline::load(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("parfait-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let checks = baseline.check(&report.budgets);
    let mut over = false;
    for c in &checks {
        if c.over() {
            over = true;
            println!(
                "{}: [D5 panic-budget] {} panic!/{} .unwrap() exceed baseline {}/{} \
                 (remove them or consciously re-record with --baseline)",
                c.crate_name, c.panics, c.unwraps, c.base_panics, c.base_unwraps
            );
        } else if c.under() {
            println!(
                "note: {} is under budget ({}/{} vs baseline {}/{}); \
                 run `parfait-lint --baseline` to ratchet down",
                c.crate_name, c.panics, c.unwraps, c.base_panics, c.base_unwraps
            );
        }
    }

    let fail = !report.diagnostics.is_empty() || over;
    report_footer(&report, fail);
    if fail && opts.deny {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn report_footer(report: &parfait_lint::WorkspaceReport, fail: bool) {
    println!(
        "parfait-lint: {} file(s), {} stream id(s), {} finding(s){}",
        report.files_scanned,
        report.registry.len(),
        report.diagnostics.len(),
        if fail { " — FAIL" } else { " — clean" }
    );
}
