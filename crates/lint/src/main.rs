//! `parfait-lint` CLI.
//!
//! Modes:
//! * default — report all diagnostics and budget status, exit 0
//!   (advisory; useful while fixing a batch of findings).
//! * `--deny` — exit 1 on any diagnostic or budget overrun (CI mode).
//! * `--baseline` — re-record `lint-baseline.txt` from current counts.
//! * `--list-rules` — print the rule catalog and exit.
//! * `--format json` — one finding per stdout line as a JSON object
//!   (`code`, `id`, `path`, `line`, `end_line`, `msg`); budget overruns
//!   become synthetic `D5` findings; the human footer moves to stderr.
//!   CI turns these into GitHub error annotations.
//! * `--root DIR` — lint the workspace rooted at DIR instead of
//!   auto-discovering from the current directory.

use parfait_lint::{
    find_workspace_root, run_workspace, Baseline, Diagnostic, BASELINE_FILE, CATALOG,
};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

struct Opts {
    root: Option<PathBuf>,
    deny: bool,
    baseline: bool,
    list_rules: bool,
    format: Format,
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: None,
        deny: false,
        baseline: false,
        list_rules: false,
        format: Format::Text,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => opts.deny = true,
            "--baseline" => opts.baseline = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                let dir = args.next().ok_or("--root requires a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--format" => {
                let f = args.next().ok_or("--format requires `text` or `json`")?;
                opts.format = match f.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            "--help" | "-h" => {
                println!(
                    "parfait-lint: determinism static analysis for the PARFAIT workspace\n\n\
                     USAGE: parfait-lint [--root DIR] [--deny | --baseline] [--format text|json] [--list-rules]\n\n\
                     \x20 --root DIR     lint the workspace at DIR (default: discover from cwd)\n\
                     \x20 --deny         exit nonzero on any finding or budget overrun (CI mode)\n\
                     \x20 --baseline     re-record {BASELINE_FILE} from current D5 counts\n\
                     \x20 --format json  one JSON finding per line on stdout (for CI annotations)\n\
                     \x20 --list-rules   print the rule catalog and exit"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if opts.deny && opts.baseline {
        return Err("--deny and --baseline are mutually exclusive".into());
    }
    if opts.baseline && opts.format == Format::Json {
        return Err("--baseline has no json output".into());
    }
    Ok(opts)
}

/// Minimal JSON string escaper (the lint is dependency-free by design).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_line(d: &Diagnostic) -> String {
    format!(
        "{{\"code\":\"{}\",\"id\":\"{}\",\"path\":\"{}\",\"line\":{},\"end_line\":{},\"msg\":\"{}\"}}",
        json_escape(d.code),
        json_escape(d.id),
        json_escape(&d.path),
        d.line,
        d.end_line,
        json_escape(&d.msg)
    )
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("parfait-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for r in CATALOG {
            println!("{:>2} {:<16} {}", r.code, r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("parfait-lint: no workspace root found (try --root DIR)");
            return ExitCode::from(2);
        }
    };

    let report = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("parfait-lint: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.format == Format::Text {
        for d in &report.diagnostics {
            println!("{d}");
        }
    }

    if opts.baseline {
        let text = Baseline::render(&report.budgets);
        if let Err(e) = std::fs::write(root.join(BASELINE_FILE), text) {
            eprintln!("parfait-lint: writing {BASELINE_FILE}: {e}");
            return ExitCode::from(2);
        }
        println!(
            "recorded {} crate budget(s) to {BASELINE_FILE}",
            report.budgets.len()
        );
        // A recorded baseline still doesn't absolve D1-D4 findings.
        return if report.diagnostics.is_empty() {
            ExitCode::SUCCESS
        } else {
            report_footer(&report, true);
            ExitCode::from(1)
        };
    }

    let baseline = match Baseline::load(&root) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("parfait-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let checks = baseline.check(&report.budgets);
    let mut overruns: Vec<Diagnostic> = Vec::new();
    for c in &checks {
        if c.over() {
            overruns.push(Diagnostic {
                code: "D5",
                id: "panic-budget",
                path: BASELINE_FILE.to_string(),
                line: 1,
                end_line: 1,
                msg: format!(
                    "{}: {} panic!/{} .unwrap() exceed baseline {}/{} (remove them or \
                     consciously re-record with --baseline)",
                    c.crate_name, c.panics, c.unwraps, c.base_panics, c.base_unwraps
                ),
            });
        } else if c.under() && opts.format == Format::Text {
            println!(
                "note: {} is under budget ({}/{} vs baseline {}/{}); \
                 run `parfait-lint --baseline` to ratchet down",
                c.crate_name, c.panics, c.unwraps, c.base_panics, c.base_unwraps
            );
        }
    }

    match opts.format {
        Format::Text => {
            for d in &overruns {
                println!("{}", d.msg);
            }
        }
        Format::Json => {
            for d in report.diagnostics.iter().chain(overruns.iter()) {
                println!("{}", json_line(d));
            }
        }
    }

    let fail = !report.diagnostics.is_empty() || !overruns.is_empty();
    report_footer(&report, fail);
    if fail && opts.deny {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn report_footer(report: &parfait_lint::WorkspaceReport, fail: bool) {
    // Stderr so `--format json` leaves stdout machine-parseable.
    eprintln!(
        "parfait-lint: {} file(s), {} stream id(s), {} finding(s){}",
        report.files_scanned,
        report.registry.len(),
        report.diagnostics.len(),
        if fail { " — FAIL" } else { " — clean" }
    );
}
