#![warn(missing_docs)]

//! # parfait-lint
//!
//! A from-scratch, dependency-free determinism static-analysis pass over
//! the PARFAIT workspace. The simulation's claim to validity is that
//! every experiment is a pure function of configuration and seed —
//! PR 2's fault traces are "bit-identical under the same seed", and the
//! MPS-vs-MIG comparisons are only trustworthy if two runs of the same
//! plan cannot silently diverge. This crate turns that invariant from a
//! code-review convention into a checked property:
//!
//! * **D1 `hash-order`** — no `HashMap`/`HashSet` in sim-visible crates
//!   unless the site carries a `// lint:allow(hash-order, reason)`
//!   annotation proving iteration order never escapes.
//! * **D2 `wall-clock`** — no `Instant::now`/`SystemTime` outside the
//!   bench harness's wall-clock timing.
//! * **D3 `rng-stream`** — every `SimRng::split` id must be a named
//!   constant from the central `simcore::streams` registry; the registry
//!   itself is checked for duplicate ids (R1).
//! * **D4 `sync-primitive`** — no `thread::spawn`/`Mutex`-family
//!   primitives in the event-handler crates (`simcore`, `faas`).
//! * **D5 `panic-budget`** — per-crate non-test `panic!`/`.unwrap()`
//!   budgets against a checked-in baseline, so new unwraps in hot paths
//!   fail CI while legacy ones are ratcheted down over time.
//!
//! On top of the flat token scans, the [`scope`] module builds a
//! per-file item tree (mod → impl → fn, with spans and self types),
//! which powers the structural F-family:
//!
//! * **F1 `index-funnel`** — `WorldIndex` field writes and mutator
//!   calls are only legal inside the funnel fns named in the checked-in
//!   [`manifest`] (`lint-manifest.txt`), statically enforcing PR 6's
//!   single-funnel invariant.
//! * **F2 `dirty-domain`** — any `GpuDevice` method that mutates
//!   rate-feeding state must call a `mark_*_dirty` entry point or be
//!   manifest-exempt with a reviewed justification.
//! * **F3 `stream-hygiene`** — `SimRng::split` in a loop body, stored
//!   into a struct field, or passed directly across a fn boundary.
//! * **F4 scoped allows** — `// lint:allow(rule, reason)` above an item
//!   covers the whole item; unused allows still fail (A2).
//! * **M1 `manifest`** — every manifest entry must resolve to a defined
//!   fn, so renaming a funnel fn without updating the manifest fails CI
//!   with a pointer to the file.
//!
//! See `DESIGN.md` § "Determinism invariants & lint catalog" for the
//! full catalog, the annotation format and the baseline workflow.

pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod scope;

pub use manifest::{Manifest, ManifestEntry, MANIFEST_FILE};
pub use rules::{
    lint_file, lint_file_timed, parse_registry, rule_info, Diagnostic, FileCtx, FileFindings,
    Registry, RuleSet, RuleTimer, CATALOG,
};

use rules::BudgetCounts;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Name of the checked-in D5 baseline file at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.txt";

/// Workspace-relative path of the stream registry source.
pub const REGISTRY_PATH: &str = "crates/simcore/src/streams.rs";

/// Rule profile for a crate directory under `crates/`, plus the root
/// facade package. `None` for directories the lint skips entirely
/// (`vendor/` stand-ins are third-party API surface, not sim code).
fn profile(dir: &str) -> Option<(&'static str, RuleSet)> {
    match dir {
        // Event-handler crates: the full catalog. faas additionally owns
        // the WorldIndex funnel (F1).
        "simcore" => Some(("parfait-simcore", RuleSet::sim_visible_full())),
        "faas" => Some((
            "parfait-faas",
            RuleSet {
                f1: true,
                ..RuleSet::sim_visible_full()
            },
        )),
        // Sim-visible state, but no event-handler paths of their own.
        // gpu owns the dirty-domain contract (F2).
        "gpu" => Some((
            "parfait-gpu",
            RuleSet {
                d1: true,
                d2: true,
                d3: true,
                d4: false,
                d5: true,
                f1: false,
                f2: true,
                f3: true,
            },
        )),
        "workloads" => Some((
            "parfait-workloads",
            RuleSet {
                d1: true,
                d2: true,
                d3: true,
                d4: false,
                d5: true,
                f1: false,
                f2: false,
                f3: true,
            },
        )),
        "core" => Some((
            "parfait-core",
            RuleSet {
                d1: true,
                d2: true,
                d3: true,
                d4: false,
                d5: true,
                f1: false,
                f2: false,
                f3: true,
            },
        )),
        // The bench harness owns the only legitimate wall clock (D2 off)
        // and builds serialized artifacts from sim state, so hash-order
        // is a real hazard there too — but the ISSUE scopes D1 to
        // sim-visible crates; bench gets D3/D5. F3 stays off: bench
        // constructs throwaway rngs for scenario plumbing, not
        // sim-visible streams.
        "bench" => Some((
            "parfait-bench",
            RuleSet {
                d3: true,
                d5: true,
                ..RuleSet::default()
            },
        )),
        // The lint holds itself to determinism and panic hygiene.
        "lint" => Some((
            "parfait-lint",
            RuleSet {
                d2: true,
                d5: true,
                ..RuleSet::default()
            },
        )),
        _ => None,
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for stable output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            rust_files(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// The workspace-wide lint result.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// All diagnostics (D1–D4, F1–F3, M1, R1, A1/A2), sorted by path.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-crate D5 counters: crate → (panics, unwraps).
    pub budgets: BudgetCounts,
    /// The parsed stream registry (name, id) in declaration order.
    pub registry: Vec<(String, u64)>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Accumulated per-pass elapsed nanos (`lex`, `scope`, `D1`..`F3`).
    /// Empty unless [`LintOptions::clock`] was provided.
    pub rule_nanos: BTreeMap<String, u64>,
}

/// Options for [`run_workspace_opts`].
#[derive(Default)]
pub struct LintOptions<'a> {
    /// Monotonic nano clock for per-rule timings. The lint crate is
    /// banned from wall clocks by its own D2 profile, so the caller
    /// (the bench harness) injects one; `None` disables timing.
    pub clock: Option<&'a dyn Fn() -> u64>,
}

/// One crate's budget check against the baseline.
#[derive(Debug, Clone)]
pub struct BudgetCheck {
    /// Crate name.
    pub crate_name: String,
    /// Current non-test `panic!` count.
    pub panics: u64,
    /// Current non-test `.unwrap()` count.
    pub unwraps: u64,
    /// Baseline `panic!` budget.
    pub base_panics: u64,
    /// Baseline `.unwrap()` budget.
    pub base_unwraps: u64,
}

impl BudgetCheck {
    /// Did this crate exceed its budget (a D5 failure)?
    pub fn over(&self) -> bool {
        self.panics > self.base_panics || self.unwraps > self.base_unwraps
    }

    /// Is the crate now under budget (baseline should be re-recorded)?
    pub fn under(&self) -> bool {
        !self.over() && (self.panics < self.base_panics || self.unwraps < self.base_unwraps)
    }
}

/// The checked-in D5 baseline: crate → (panic budget, unwrap budget).
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Budgets per crate.
    pub entries: BTreeMap<String, (u64, u64)>,
}

impl Baseline {
    /// Parse the baseline file format: `<crate> <panics> <unwraps>` per
    /// line, `#` comments and blank lines skipped.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut it = line.split_whitespace();
            let (Some(name), Some(p), Some(u), None) = (it.next(), it.next(), it.next(), it.next())
            else {
                return Err(format!(
                    "baseline line {}: expected `<crate> <panics> <unwraps>`, got `{line}`",
                    ln + 1
                ));
            };
            let (Ok(p), Ok(u)) = (p.parse::<u64>(), u.parse::<u64>()) else {
                return Err(format!("baseline line {}: non-numeric budget", ln + 1));
            };
            entries.insert(name.to_string(), (p, u));
        }
        Ok(Baseline { entries })
    }

    /// Load from `root`, treating a missing file as an empty baseline
    /// (every non-zero count then fails, which is the right default for
    /// a fresh checkout that lost the file).
    pub fn load(root: &Path) -> Result<Baseline, String> {
        match fs::read_to_string(root.join(BASELINE_FILE)) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("reading {BASELINE_FILE}: {e}")),
        }
    }

    /// Render the baseline file for `counts`.
    pub fn render(counts: &BudgetCounts) -> String {
        let mut out = String::from(
            "# parfait-lint D5 panic/unwrap budget baseline.\n\
             # One line per crate: <crate> <panic! count> <.unwrap() count>,\n\
             # counted outside #[test]/#[cfg(test)] code. CI fails when a crate\n\
             # exceeds its budget; re-record with `parfait-lint --baseline` after\n\
             # deliberately removing (never after adding) panic paths.\n",
        );
        for (name, (p, u)) in counts {
            out.push_str(&format!("{name} {p} {u}\n"));
        }
        out
    }

    /// Compare current counts against the baseline.
    pub fn check(&self, budgets: &BudgetCounts) -> Vec<BudgetCheck> {
        let mut out = Vec::new();
        for (name, (panics, unwraps)) in budgets {
            let (bp, bu) = self.entries.get(name).copied().unwrap_or((0, 0));
            out.push(BudgetCheck {
                crate_name: name.clone(),
                panics: *panics,
                unwraps: *unwraps,
                base_panics: bp,
                base_unwraps: bu,
            });
        }
        out
    }
}

/// Walk up from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn rel(root: &Path, p: &Path) -> String {
    p.strip_prefix(root)
        .unwrap_or(p)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Lint the whole workspace rooted at `root`.
///
/// Scans `src/` of every profiled crate under `crates/` plus the root
/// facade package's `src/`. Fixture directories, `tests/`, `benches/`
/// and `vendor/` are out of scope by construction: integration tests
/// and stand-in dependencies cannot put nondeterminism into sim-visible
/// state.
pub fn run_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    run_workspace_opts(root, &LintOptions::default())
}

/// [`run_workspace`] with options (per-rule timing clock).
pub fn run_workspace_opts(root: &Path, opts: &LintOptions<'_>) -> io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();

    // Parse the stream registry first; D3 resolves against it.
    let reg_path = root.join(REGISTRY_PATH);
    let (registry, mut reg_diags) = match fs::read_to_string(&reg_path) {
        Ok(src) => parse_registry(REGISTRY_PATH, &src),
        Err(_) => (
            Registry::default(),
            vec![Diagnostic {
                code: "R1",
                id: "stream-registry",
                path: REGISTRY_PATH.to_string(),
                line: 1,
                end_line: 1,
                msg: "stream registry missing: crates/simcore/src/streams.rs not found".into(),
            }],
        ),
    };
    report.diagnostics.append(&mut reg_diags);
    report.registry = registry.entries.clone();

    // The invariant manifest; F1/F2 resolve against it. A missing or
    // unparseable manifest is an M1 finding (and the F rules then run
    // against an empty funnel set, which fails loudly too).
    let manifest = match Manifest::load(root) {
        Ok(Some(m)) => m,
        Ok(None) => {
            report.diagnostics.push(Diagnostic {
                code: "M1",
                id: "manifest",
                path: MANIFEST_FILE.to_string(),
                line: 1,
                end_line: 1,
                msg: format!(
                    "{MANIFEST_FILE} missing at the workspace root: F1/F2 need the \
                     checked-in funnel and dirty-exempt lists"
                ),
            });
            Manifest::default()
        }
        Err(e) => {
            report.diagnostics.push(Diagnostic {
                code: "M1",
                id: "manifest",
                path: MANIFEST_FILE.to_string(),
                line: 1,
                end_line: 1,
                msg: e,
            });
            Manifest::default()
        }
    };

    // (dir under crates/, crate name, ruleset, src root)
    let mut targets: Vec<(String, RuleSet, PathBuf)> = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for d in dirs {
            let name = d.file_name().map(|n| n.to_string_lossy().into_owned());
            if let Some((crate_name, rules)) = name.as_deref().and_then(profile) {
                targets.push((crate_name.to_string(), rules, d.join("src")));
            }
        }
    }
    // Root facade package: wall-clock and panic hygiene only.
    targets.push((
        "parfait".to_string(),
        RuleSet {
            d2: true,
            d5: true,
            ..RuleSet::default()
        },
        root.join("src"),
    ));

    let mut timer = match opts.clock {
        Some(c) => RuleTimer::with_clock(c),
        None => RuleTimer::disabled(),
    };
    let mut fns_by_crate: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for (crate_name, rules, src_root) in targets {
        let mut files = Vec::new();
        rust_files(&src_root, &mut files)?;
        let mut panics = 0u64;
        let mut unwraps = 0u64;
        for f in files {
            let src = fs::read_to_string(&f)?;
            let path = rel(root, &f);
            let ctx = FileCtx {
                crate_name: crate_name.clone(),
                path: path.clone(),
                rules,
                is_registry: path == REGISTRY_PATH,
            };
            let mut findings = lint_file_timed(&ctx, &src, &registry, &manifest, &mut timer);
            report.diagnostics.extend(findings.diagnostics);
            panics += findings.panics;
            unwraps += findings.unwraps;
            fns_by_crate
                .entry(crate_name.clone())
                .or_default()
                .append(&mut findings.fns);
            report.files_scanned += 1;
        }
        if rules.d5 {
            report.budgets.insert(crate_name, (panics, unwraps));
        }
    }
    report.rule_nanos = timer
        .nanos
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();

    // M1 drift check: every manifest entry must still resolve to a fn
    // defined in the crate its rule governs.
    let resolves = |krate: &str, name: &str| {
        fns_by_crate
            .get(krate)
            .is_some_and(|v| v.iter().any(|f| f == name))
    };
    for (section, krate, entries) in [
        ("index-funnel", "parfait-faas", &manifest.index_funnel),
        ("dirty-exempt", "parfait-gpu", &manifest.dirty_exempt),
    ] {
        for e in entries {
            if !resolves(krate, &e.name) {
                report.diagnostics.push(Diagnostic {
                    code: "M1",
                    id: "manifest",
                    path: MANIFEST_FILE.to_string(),
                    line: e.line,
                    end_line: e.line,
                    msg: format!(
                        "[{section}] entry `{}` does not resolve to any fn defined in \
                         {krate}: the fn was renamed or removed — update {MANIFEST_FILE} \
                         to match",
                        e.name
                    ),
                });
            }
        }
    }

    report
        .diagnostics
        .sort_by(|a, b| (&a.path, a.line, a.id).cmp(&(&b.path, b.line, b.id)));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_roundtrip() {
        let mut counts = BudgetCounts::new();
        counts.insert("parfait-faas".into(), (3, 12));
        counts.insert("parfait-gpu".into(), (0, 1));
        let text = Baseline::render(&counts);
        let base = Baseline::parse(&text).expect("parses");
        assert_eq!(base.entries.get("parfait-faas"), Some(&(3, 12)));
        assert_eq!(base.entries.get("parfait-gpu"), Some(&(0, 1)));
    }

    #[test]
    fn baseline_rejects_garbage() {
        assert!(Baseline::parse("parfait-faas 3").is_err());
        assert!(Baseline::parse("parfait-faas three twelve").is_err());
        assert!(Baseline::parse("# comment only\n").is_ok());
    }

    #[test]
    fn budget_check_over_under() {
        let mut base = Baseline::default();
        base.entries.insert("a".into(), (1, 5));
        let mut counts = BudgetCounts::new();
        counts.insert("a".into(), (2, 5));
        assert!(base.check(&counts)[0].over());
        counts.insert("a".into(), (1, 3));
        let c = base.check(&counts);
        assert!(!c[0].over() && c[0].under());
        counts.insert("a".into(), (1, 5));
        let c = base.check(&counts);
        assert!(!c[0].over() && !c[0].under());
    }

    #[test]
    fn missing_baseline_is_zero_budget() {
        let base = Baseline::load(Path::new("/nonexistent-dir-for-lint-test")).expect("empty ok");
        let mut counts = BudgetCounts::new();
        counts.insert("a".into(), (0, 1));
        assert!(base.check(&counts)[0].over());
    }
}
