//! The determinism rule catalog (D1–D5) and the per-file rule engine.
//!
//! Scope model: each scanned file carries a [`FileCtx`] naming its crate
//! and the subset of rules that apply there. Sim-visible crates (whose
//! state can reach event ordering or reported numbers) get the full set;
//! the wall-clock bench harness is exempt from D2; the lint itself is
//! only held to D2/D5. Test code — `#[test]` functions, `#[cfg(test)]`
//! modules, and everything behind a test attribute — is exempt from all
//! rules: nondeterminism there cannot reach sim-visible state, and test
//! assertions are free to unwrap.

use crate::lexer::{int_value, lex, Tok, TokKind};
use std::collections::BTreeMap;
use std::fmt;

/// One finding, pointing at a file and line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Catalog code, e.g. `D1`.
    pub code: &'static str,
    /// Rule id, e.g. `hash-order`.
    pub id: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human explanation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.path, self.line, self.code, self.id, self.msg
        )
    }
}

/// Which rules apply to a file.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// D1: no `HashMap`/`HashSet`.
    pub d1: bool,
    /// D2: no `Instant`/`SystemTime`.
    pub d2: bool,
    /// D3: `SimRng::split` must use `simcore::streams` constants.
    pub d3: bool,
    /// D4: no `Mutex`/`RwLock`/`Condvar`/`thread::spawn`.
    pub d4: bool,
    /// D5: count `panic!`/`.unwrap()` against the budget baseline.
    pub d5: bool,
}

impl RuleSet {
    /// Everything on (sim-visible event-handler crates).
    pub fn sim_visible_full() -> Self {
        RuleSet {
            d1: true,
            d2: true,
            d3: true,
            d4: true,
            d5: true,
        }
    }
}

/// Per-file lint context.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Cargo package name, e.g. `parfait-faas`.
    pub crate_name: String,
    /// Workspace-relative path used in diagnostics.
    pub path: String,
    /// Applicable rules.
    pub rules: RuleSet,
    /// True for `simcore/src/streams.rs` itself (exempt from the
    /// shadowing check — it *defines* the registry names).
    pub is_registry: bool,
}

/// The parsed `simcore::streams` registry: constant name → id value.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Stream-constant names and values, in declaration order.
    pub entries: Vec<(String, u64)>,
}

impl Registry {
    /// Is `name` a registered stream constant?
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }
}

/// Parse the registry source: every `pub const NAME: u64 = <int>;` is a
/// stream id. Duplicate values and non-literal initializers are
/// diagnosed (rule `stream-registry`).
pub fn parse_registry(path: &str, src: &str) -> (Registry, Vec<Diagnostic>) {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mask = test_mask(toks);
    let mut reg = Registry::default();
    let mut diags = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !mask[i]
            && toks[i].is_ident("const")
            && i + 4 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("u64")
            && toks[i + 4].is_punct('=')
        {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let ok =
                i + 6 < toks.len() && toks[i + 5].kind == TokKind::Int && toks[i + 6].is_punct(';');
            if !ok {
                diags.push(Diagnostic {
                    code: "R1",
                    id: "stream-registry",
                    path: path.to_string(),
                    line,
                    msg: format!(
                        "stream constant `{name}` must be initialized with a plain \
                         integer literal so the lint (and reviewers) can check ids"
                    ),
                });
                i += 1;
                continue;
            }
            let value = int_value(&toks[i + 5].text).unwrap_or(u64::MAX);
            if let Some((prev, _)) = reg.entries.iter().find(|(_, v)| *v == value) {
                diags.push(Diagnostic {
                    code: "R1",
                    id: "stream-registry",
                    path: path.to_string(),
                    line,
                    msg: format!(
                        "duplicate stream id {value}: `{name}` collides with `{prev}` \
                         (correlated RNG streams break split independence)"
                    ),
                });
            }
            reg.entries.push((name, value));
            i += 7;
            continue;
        }
        i += 1;
    }
    (reg, diags)
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Rule violations (already filtered through allow annotations).
    pub diagnostics: Vec<Diagnostic>,
    /// Non-test `panic!` sites (D5 numerator).
    pub panics: u64,
    /// Non-test `.unwrap()` sites (D5 numerator).
    pub unwraps: u64,
}

/// Mark every token that is test-only: an attribute containing the ident
/// `test` (and not `not`, so `cfg(not(test))` stays production code)
/// plus the item it decorates, through the item's closing brace (or
/// trailing semicolon). Covers `#[test]`, `#[cfg(test)] mod ... { }`,
/// and attribute stacks like `#[test] #[should_panic]`.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        if j < n && toks[j].is_punct('!') {
            j += 1;
        }
        if j >= n || !toks[j].is_punct('[') {
            i += 1;
            continue;
        }
        let mut depth = 1usize;
        let mut k = j + 1;
        let mut has_test = false;
        let mut has_not = false;
        while k < n && depth > 0 {
            if toks[k].is_punct('[') {
                depth += 1;
            } else if toks[k].is_punct(']') {
                depth -= 1;
            } else if toks[k].is_ident("test") {
                has_test = true;
            } else if toks[k].is_ident("not") {
                has_not = true;
            }
            k += 1;
        }
        if !has_test || has_not {
            i = k;
            continue;
        }
        // Skip any further stacked attributes.
        let mut m = k;
        while m < n && toks[m].is_punct('#') {
            let mut mm = m + 1;
            if mm < n && toks[mm].is_punct('[') {
                let mut d = 1usize;
                mm += 1;
                while mm < n && d > 0 {
                    if toks[mm].is_punct('[') {
                        d += 1;
                    } else if toks[mm].is_punct(']') {
                        d -= 1;
                    }
                    mm += 1;
                }
                m = mm;
            } else {
                break;
            }
        }
        // The decorated item runs to its body's closing brace, or to the
        // first `;` for brace-less items.
        let mut p = m;
        while p < n && !toks[p].is_punct('{') && !toks[p].is_punct(';') {
            p += 1;
        }
        let end = if p < n && toks[p].is_punct('{') {
            let mut d = 1usize;
            let mut q = p + 1;
            while q < n && d > 0 {
                if toks[q].is_punct('{') {
                    d += 1;
                } else if toks[q].is_punct('}') {
                    d -= 1;
                }
                q += 1;
            }
            q
        } else {
            (p + 1).min(n)
        };
        for slot in mask.iter_mut().take(end).skip(attr_start) {
            *slot = true;
        }
        i = end;
    }
    mask
}

/// Is the `.split(` at token index `i` (the `split` ident) an RNG split?
/// Receiver heuristic: the token before the dot is an identifier whose
/// name contains `rng` (any case), or a `)` within a short window of a
/// `SimRng` path (constructor chains like `SimRng::new(s).split(..)`).
/// `str::split` receivers (`label.split('.')`) fall outside both.
fn is_rng_split(toks: &[Tok], i: usize) -> bool {
    if i < 2 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let recv = &toks[i - 2];
    if recv.kind == TokKind::Ident {
        return recv.text.to_ascii_lowercase().contains("rng");
    }
    if recv.is_punct(')') {
        let lo = i.saturating_sub(14);
        return toks[lo..i].iter().any(|t| t.is_ident("SimRng"));
    }
    false
}

/// Lint one file against the registry.
pub fn lint_file(ctx: &FileCtx, src: &str, reg: &Registry) -> FileFindings {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mask = test_mask(toks);
    let mut out = FileFindings::default();
    let mut allow_used = vec![false; lexed.allows.len()];

    for (line, msg) in &lexed.malformed {
        out.diagnostics.push(Diagnostic {
            code: "A1",
            id: "bad-annotation",
            path: ctx.path.clone(),
            line: *line,
            msg: msg.clone(),
        });
    }

    // An annotation covers its own line (trailing comment) and the next.
    let allowed = |line: u32, rule: &str, used: &mut Vec<bool>| -> bool {
        let mut hit = false;
        for (ai, a) in lexed.allows.iter().enumerate() {
            if a.rule == rule && (a.line == line || a.line + 1 == line) {
                used[ai] = true;
                hit = true;
            }
        }
        hit
    };

    let diag =
        |code: &'static str, id: &'static str, line: u32, msg: String, out: &mut FileFindings| {
            out.diagnostics.push(Diagnostic {
                code,
                id,
                path: ctx.path.clone(),
                line,
                msg,
            });
        };

    let mut i = 0usize;
    while i < toks.len() {
        if mask[i] || toks[i].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let t = &toks[i];
        let line = t.line;
        match t.text.as_str() {
            "HashMap" | "HashSet"
                if ctx.rules.d1 && !allowed(line, "hash-order", &mut allow_used) =>
            {
                diag(
                    "D1",
                    "hash-order",
                    line,
                    format!(
                        "`{}` in sim-visible crate `{}`: iteration order is \
                         seed-dependent and can leak into event ordering or reported \
                         numbers; use BTreeMap/BTreeSet (or sorted iteration) or \
                         justify with `// lint:allow(hash-order, <why order never \
                         escapes>)`",
                        t.text, ctx.crate_name
                    ),
                    &mut out,
                );
            }
            "Instant" | "SystemTime"
                if ctx.rules.d2 && !allowed(line, "wall-clock", &mut allow_used) =>
            {
                diag(
                    "D2",
                    "wall-clock",
                    line,
                    format!(
                        "`{}` outside the bench harness: wall-clock reads make runs \
                         machine-dependent; simulation code must use SimTime only",
                        t.text
                    ),
                    &mut out,
                );
            }
            "Mutex" | "RwLock" | "Condvar"
                if ctx.rules.d4 && !allowed(line, "sync-primitive", &mut allow_used) =>
            {
                diag(
                    "D4",
                    "sync-primitive",
                    line,
                    format!(
                        "`{}` in event-handler crate `{}`: the engine is \
                         single-threaded by design; blocking primitives in event \
                         paths reintroduce host-scheduling nondeterminism",
                        t.text, ctx.crate_name
                    ),
                    &mut out,
                );
            }
            "spawn" if ctx.rules.d4 => {
                // thread::spawn — walk back over the `::`.
                let mut j = i;
                while j > 0 && toks[j - 1].is_punct(':') {
                    j -= 1;
                }
                if j > 0
                    && toks[j - 1].is_ident("thread")
                    && !allowed(line, "sync-primitive", &mut allow_used)
                {
                    diag(
                        "D4",
                        "sync-primitive",
                        line,
                        "`thread::spawn` in event-handler crate: event ordering must \
                         never depend on host scheduling"
                            .to_string(),
                        &mut out,
                    );
                }
            }
            "split" if ctx.rules.d3 && is_rng_split(toks, i) => {
                // Collect the argument tokens to the matching `)`.
                let mut depth = 1usize;
                let mut j = i + 2; // past `(`
                let mut bare_int: Option<u32> = None;
                let mut has_registered = false;
                while j < toks.len() && depth > 0 {
                    if toks[j].is_punct('(') {
                        depth += 1;
                    } else if toks[j].is_punct(')') {
                        depth -= 1;
                    } else if toks[j].kind == TokKind::Int {
                        bare_int.get_or_insert(toks[j].line);
                    } else if toks[j].kind == TokKind::Ident && reg.contains(&toks[j].text) {
                        has_registered = true;
                    }
                    j += 1;
                }
                if let Some(int_line) = bare_int {
                    if !allowed(int_line, "rng-stream", &mut allow_used)
                        && !allowed(line, "rng-stream", &mut allow_used)
                    {
                        diag(
                            "D3",
                            "rng-stream",
                            line,
                            "bare integer stream id in `SimRng::split`: name the stream \
                             in `simcore::streams` so collisions are centrally checked"
                                .to_string(),
                            &mut out,
                        );
                    }
                } else if !has_registered && !allowed(line, "rng-stream", &mut allow_used) {
                    diag(
                        "D3",
                        "rng-stream",
                        line,
                        "`SimRng::split` argument names no `simcore::streams` constant; \
                         stream ids must come from the central registry"
                            .to_string(),
                        &mut out,
                    );
                }
            }
            // A local `const` reusing a registry name shadows the
            // central id — the lint would then accept `split(NAME)`
            // while the value silently diverges.
            "const"
                if ctx.rules.d3
                    && !ctx.is_registry
                    && toks
                        .get(i + 1)
                        .is_some_and(|t2| t2.kind == TokKind::Ident && reg.contains(&t2.text)) =>
            {
                diag(
                    "D3",
                    "rng-stream",
                    toks[i + 1].line,
                    format!(
                        "local const `{}` shadows a simcore::streams registry name; \
                         import the registry constant instead",
                        toks[i + 1].text
                    ),
                    &mut out,
                );
            }
            "panic" if ctx.rules.d5 && toks.get(i + 1).is_some_and(|t2| t2.is_punct('!')) => {
                out.panics += 1;
            }
            "unwrap"
                if ctx.rules.d5
                    && i > 0
                    && toks[i - 1].is_punct('.')
                    && toks.get(i + 1).is_some_and(|t2| t2.is_punct('(')) =>
            {
                out.unwraps += 1;
            }
            _ => {}
        }
        i += 1;
    }

    for (ai, a) in lexed.allows.iter().enumerate() {
        if !allow_used[ai] {
            out.diagnostics.push(Diagnostic {
                code: "A2",
                id: "unused-allow",
                path: ctx.path.clone(),
                line: a.line,
                msg: format!(
                    "lint:allow({}) suppresses nothing — stale annotations hide future \
                     violations; delete it",
                    a.rule
                ),
            });
        }
    }

    out.diagnostics
        .sort_by(|a, b| (a.line, a.id).cmp(&(b.line, b.id)));
    out
}

/// Catalog entry, for reports and `--list-rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Catalog code (`D1` ... `A2`).
    pub code: &'static str,
    /// Rule id used in diagnostics and allow annotations.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The full rule catalog.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        code: "D1",
        id: "hash-order",
        summary: "no HashMap/HashSet in sim-visible crates unless order provably never escapes",
    },
    RuleInfo {
        code: "D2",
        id: "wall-clock",
        summary: "no Instant/SystemTime outside the bench wall-clock harness",
    },
    RuleInfo {
        code: "D3",
        id: "rng-stream",
        summary: "every SimRng::split id must be a named simcore::streams constant",
    },
    RuleInfo {
        code: "D4",
        id: "sync-primitive",
        summary: "no Mutex/RwLock/Condvar/thread::spawn in event-handler crates",
    },
    RuleInfo {
        code: "D5",
        id: "panic-budget",
        summary: "non-test panic!/.unwrap() counts per crate must not exceed the baseline",
    },
    RuleInfo {
        code: "R1",
        id: "stream-registry",
        summary: "the streams registry itself: literal initializers, duplicate-free ids",
    },
    RuleInfo {
        code: "A1",
        id: "bad-annotation",
        summary: "lint:allow annotations must name a known rule and carry a reason",
    },
    RuleInfo {
        code: "A2",
        id: "unused-allow",
        summary: "lint:allow annotations that suppress nothing must be deleted",
    },
];

/// Look up catalog info by rule id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    CATALOG.iter().find(|r| r.id == id)
}

/// Per-crate D5 counters.
pub type BudgetCounts = BTreeMap<String, (u64, u64)>;
