//! The determinism rule catalog (D1–D5, F1–F4) and the per-file rule
//! engine.
//!
//! Scope model: each scanned file carries a [`FileCtx`] naming its crate
//! and the subset of rules that apply there. Sim-visible crates (whose
//! state can reach event ordering or reported numbers) get the full set;
//! the wall-clock bench harness is exempt from D2; the lint itself is
//! only held to D2/D5. Test code — `#[test]` functions, `#[cfg(test)]`
//! modules, and everything behind a test attribute — is exempt from all
//! rules: nondeterminism there cannot reach sim-visible state, and test
//! assertions are free to unwrap.
//!
//! The D-family rules are token-pattern scans. The F-family rules are
//! *structural*: they run over the item tree built by [`crate::scope`]
//! (crate → mod → impl → fn, with spans), so a rule can ask "which fn
//! owns this mutation?" and check it against the checked-in
//! [`crate::manifest`]. Allow annotations gain item scope the same way
//! (F4): a `// lint:allow(rule, reason)` directly above an item covers
//! the item's whole line span instead of just the next line.

use crate::lexer::{int_value, lex, Lexed, Tok, TokKind};
use crate::manifest::{Manifest, MANIFEST_FILE};
use crate::scope::{loop_depths, parse_scopes, ScopeKind, ScopeTree};
use std::collections::BTreeMap;
use std::fmt;

/// One finding, pointing at a file and a line span.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Catalog code, e.g. `D1`.
    pub code: &'static str,
    /// Rule id, e.g. `hash-order`.
    pub id: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based first line.
    pub line: u32,
    /// 1-based last line (equals `line` for point findings; spans the
    /// whole fn for structural findings like F2).
    pub end_line: u32,
    /// Human explanation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{} {}] {}",
            self.path, self.line, self.code, self.id, self.msg
        )
    }
}

/// Which rules apply to a file.
#[derive(Debug, Clone, Copy, Default)]
pub struct RuleSet {
    /// D1: no `HashMap`/`HashSet`.
    pub d1: bool,
    /// D2: no `Instant`/`SystemTime`.
    pub d2: bool,
    /// D3: `SimRng::split` must use `simcore::streams` constants.
    pub d3: bool,
    /// D4: no `Mutex`/`RwLock`/`Condvar`/`thread::spawn`.
    pub d4: bool,
    /// D5: count `panic!`/`.unwrap()` against the budget baseline.
    pub d5: bool,
    /// F1: `WorldIndex` mutations only inside manifest funnel fns.
    pub f1: bool,
    /// F2: `GpuDevice` rate-state mutators must mark dirty domains.
    pub f2: bool,
    /// F3: stream hygiene — no splits in loops / struct fields / call
    /// arguments.
    pub f3: bool,
}

impl RuleSet {
    /// Everything a sim-visible event-handler crate gets (F1/F2 are
    /// crate-specific and opt in separately).
    pub fn sim_visible_full() -> Self {
        RuleSet {
            d1: true,
            d2: true,
            d3: true,
            d4: true,
            d5: true,
            f1: false,
            f2: false,
            f3: true,
        }
    }
}

/// Per-file lint context.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Cargo package name, e.g. `parfait-faas`.
    pub crate_name: String,
    /// Workspace-relative path used in diagnostics.
    pub path: String,
    /// Applicable rules.
    pub rules: RuleSet,
    /// True for `simcore/src/streams.rs` itself (exempt from the
    /// shadowing check — it *defines* the registry names).
    pub is_registry: bool,
}

/// The parsed `simcore::streams` registry: constant name → id value.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    /// Stream-constant names and values, in declaration order.
    pub entries: Vec<(String, u64)>,
}

impl Registry {
    /// Is `name` a registered stream constant?
    pub fn contains(&self, name: &str) -> bool {
        self.entries.iter().any(|(n, _)| n == name)
    }
}

/// Parse the registry source: every `pub const NAME: u64 = <int>;` is a
/// stream id. Duplicate values and non-literal initializers are
/// diagnosed (rule `stream-registry`).
pub fn parse_registry(path: &str, src: &str) -> (Registry, Vec<Diagnostic>) {
    let lexed = lex(src);
    let toks = &lexed.toks;
    let mask = test_mask(toks);
    let mut reg = Registry::default();
    let mut diags = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !mask[i]
            && toks[i].is_ident("const")
            && i + 4 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is_punct(':')
            && toks[i + 3].is_ident("u64")
            && toks[i + 4].is_punct('=')
        {
            let name = toks[i + 1].text.clone();
            let line = toks[i + 1].line;
            let ok =
                i + 6 < toks.len() && toks[i + 5].kind == TokKind::Int && toks[i + 6].is_punct(';');
            if !ok {
                diags.push(Diagnostic {
                    code: "R1",
                    id: "stream-registry",
                    path: path.to_string(),
                    line,
                    end_line: line,
                    msg: format!(
                        "stream constant `{name}` must be initialized with a plain \
                         integer literal so the lint (and reviewers) can check ids"
                    ),
                });
                i += 1;
                continue;
            }
            let value = int_value(&toks[i + 5].text).unwrap_or(u64::MAX);
            if let Some((prev, _)) = reg.entries.iter().find(|(_, v)| *v == value) {
                diags.push(Diagnostic {
                    code: "R1",
                    id: "stream-registry",
                    path: path.to_string(),
                    line,
                    end_line: line,
                    msg: format!(
                        "duplicate stream id {value}: `{name}` collides with `{prev}` \
                         (correlated RNG streams break split independence)"
                    ),
                });
            }
            reg.entries.push((name, value));
            i += 7;
            continue;
        }
        i += 1;
    }
    (reg, diags)
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Rule violations (already filtered through allow annotations).
    pub diagnostics: Vec<Diagnostic>,
    /// Non-test `panic!` sites (D5 numerator).
    pub panics: u64,
    /// Non-test `.unwrap()` sites (D5 numerator).
    pub unwraps: u64,
    /// Qualified names of every fn defined in the file (`Type::method`
    /// or free-fn name) — the workspace pass resolves manifest entries
    /// against these (rule M1).
    pub fns: Vec<String>,
}

/// Per-rule elapsed-nanos accumulator. The lint crate itself is banned
/// from wall clocks (its own D2 profile), so the clock is injected by
/// the caller — `repro lint` passes an `Instant`-based closure; the CLI
/// and tests run with timing disabled at zero cost.
pub struct RuleTimer<'a> {
    clock: Option<&'a dyn Fn() -> u64>,
    /// Accumulated nanos per pass key (`lex`, `scope`, `D1`..`F3`).
    pub nanos: BTreeMap<&'static str, u64>,
}

impl<'a> RuleTimer<'a> {
    /// A timer that measures nothing.
    pub fn disabled() -> Self {
        RuleTimer {
            clock: None,
            nanos: BTreeMap::new(),
        }
    }

    /// A timer reading the caller's monotonic nano clock.
    pub fn with_clock(clock: &'a dyn Fn() -> u64) -> Self {
        RuleTimer {
            clock: Some(clock),
            nanos: BTreeMap::new(),
        }
    }

    fn time<T>(&mut self, key: &'static str, f: impl FnOnce() -> T) -> T {
        let Some(c) = self.clock else { return f() };
        let t0 = c();
        let r = f();
        let dt = c().saturating_sub(t0);
        *self.nanos.entry(key).or_insert(0) += dt;
        r
    }
}

/// Mark every token that is test-only: an attribute containing the ident
/// `test` (and not `not`, so `cfg(not(test))` stays production code)
/// plus the item it decorates, through the item's closing brace (or
/// trailing semicolon). Covers `#[test]`, `#[cfg(test)] mod ... { }`,
/// and attribute stacks like `#[test] #[should_panic]`.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    let n = toks.len();
    while i < n {
        if !toks[i].is_punct('#') {
            i += 1;
            continue;
        }
        let attr_start = i;
        let mut j = i + 1;
        if j < n && toks[j].is_punct('!') {
            j += 1;
        }
        if j >= n || !toks[j].is_punct('[') {
            i += 1;
            continue;
        }
        let mut depth = 1usize;
        let mut k = j + 1;
        let mut has_test = false;
        let mut has_not = false;
        while k < n && depth > 0 {
            if toks[k].is_punct('[') {
                depth += 1;
            } else if toks[k].is_punct(']') {
                depth -= 1;
            } else if toks[k].is_ident("test") {
                has_test = true;
            } else if toks[k].is_ident("not") {
                has_not = true;
            }
            k += 1;
        }
        if !has_test || has_not {
            i = k;
            continue;
        }
        // Skip any further stacked attributes.
        let mut m = k;
        while m < n && toks[m].is_punct('#') {
            let mut mm = m + 1;
            if mm < n && toks[mm].is_punct('[') {
                let mut d = 1usize;
                mm += 1;
                while mm < n && d > 0 {
                    if toks[mm].is_punct('[') {
                        d += 1;
                    } else if toks[mm].is_punct(']') {
                        d -= 1;
                    }
                    mm += 1;
                }
                m = mm;
            } else {
                break;
            }
        }
        // The decorated item runs to its body's closing brace, or to the
        // first `;` for brace-less items.
        let mut p = m;
        while p < n && !toks[p].is_punct('{') && !toks[p].is_punct(';') {
            p += 1;
        }
        let end = if p < n && toks[p].is_punct('{') {
            let mut d = 1usize;
            let mut q = p + 1;
            while q < n && d > 0 {
                if toks[q].is_punct('{') {
                    d += 1;
                } else if toks[q].is_punct('}') {
                    d -= 1;
                }
                q += 1;
            }
            q
        } else {
            (p + 1).min(n)
        };
        for slot in mask.iter_mut().take(end).skip(attr_start) {
            *slot = true;
        }
        i = end;
    }
    mask
}

/// Is the `.split(` at token index `i` (the `split` ident) an RNG split?
/// Receiver heuristic: the token before the dot is an identifier whose
/// name contains `rng` (any case), or a `)` within a short window of a
/// `SimRng` path (constructor chains like `SimRng::new(s).split(..)`).
/// `str::split` receivers (`label.split('.')`) fall outside both.
fn is_rng_split(toks: &[Tok], i: usize) -> bool {
    if i < 2 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let recv = &toks[i - 2];
    if recv.kind == TokKind::Ident {
        return recv.text.to_ascii_lowercase().contains("rng");
    }
    if recv.is_punct(')') {
        let lo = i.saturating_sub(14);
        return toks[lo..i].iter().any(|t| t.is_ident("SimRng"));
    }
    false
}

/// One allow annotation with its resolved coverage span (F4): an
/// annotation directly above an item covers the item's whole line
/// range; otherwise it covers its own line and the next (the legacy
/// line-level form, still right for trailing comments and single-line
/// sites).
struct AllowSpan {
    rule: String,
    decl_line: u32,
    lo: u32,
    hi: u32,
}

struct AllowTable {
    spans: Vec<AllowSpan>,
    used: Vec<bool>,
}

impl AllowTable {
    fn build(lexed: &Lexed, toks: &[Tok], scopes: &ScopeTree) -> AllowTable {
        let mut spans = Vec::new();
        for a in &lexed.allows {
            let (mut lo, mut hi) = (a.line, a.line + 1);
            // The first token strictly after the annotation line: if it
            // anchors an item, the allow scopes to that item.
            let ti = toks.partition_point(|t| t.line <= a.line);
            if ti < toks.len() {
                if let Some(s) = scopes.at_anchor(ti) {
                    lo = a.line.min(s.line);
                    hi = s.end_line;
                }
            }
            spans.push(AllowSpan {
                rule: a.rule.clone(),
                decl_line: a.line,
                lo,
                hi,
            });
        }
        AllowTable {
            used: vec![false; spans.len()],
            spans,
        }
    }

    fn allowed(&mut self, line: u32, rule: &str) -> bool {
        let mut hit = false;
        for (i, s) in self.spans.iter().enumerate() {
            if s.rule == rule && s.lo <= line && line <= s.hi {
                self.used[i] = true;
                hit = true;
            }
        }
        hit
    }
}

fn push(
    out: &mut FileFindings,
    ctx: &FileCtx,
    code: &'static str,
    id: &'static str,
    line: u32,
    end_line: u32,
    msg: String,
) {
    out.diagnostics.push(Diagnostic {
        code,
        id,
        path: ctx.path.clone(),
        line,
        end_line,
        msg,
    });
}

/// Lint one file against the registry and manifest.
pub fn lint_file(ctx: &FileCtx, src: &str, reg: &Registry, man: &Manifest) -> FileFindings {
    lint_file_timed(ctx, src, reg, man, &mut RuleTimer::disabled())
}

/// [`lint_file`] with per-pass timing recorded into `timer`.
pub fn lint_file_timed(
    ctx: &FileCtx,
    src: &str,
    reg: &Registry,
    man: &Manifest,
    timer: &mut RuleTimer<'_>,
) -> FileFindings {
    let lexed = timer.time("lex", || lex(src));
    let toks = &lexed.toks;
    let mask = timer.time("scope", || test_mask(toks));
    let scopes = timer.time("scope", || parse_scopes(toks));
    let loops = timer.time("scope", || loop_depths(toks));
    let mut allows = AllowTable::build(&lexed, toks, &scopes);
    let mut out = FileFindings::default();

    for (line, msg) in &lexed.malformed {
        push(
            &mut out,
            ctx,
            "A1",
            "bad-annotation",
            *line,
            *line,
            msg.clone(),
        );
    }

    let r = ctx.rules;
    if r.d1 {
        timer.time("D1", || pass_d1(ctx, toks, &mask, &mut allows, &mut out));
    }
    if r.d2 {
        timer.time("D2", || pass_d2(ctx, toks, &mask, &mut allows, &mut out));
    }
    if r.d3 {
        timer.time("D3", || {
            pass_d3(ctx, toks, &mask, reg, &mut allows, &mut out)
        });
    }
    if r.d4 {
        timer.time("D4", || pass_d4(ctx, toks, &mask, &mut allows, &mut out));
    }
    if r.d5 {
        timer.time("D5", || pass_d5(&mut out, toks, &mask));
    }
    if r.f1 {
        timer.time("F1", || {
            pass_f1(ctx, toks, &mask, &scopes, man, &mut allows, &mut out)
        });
    }
    if r.f2 {
        timer.time("F2", || {
            pass_f2(ctx, toks, &mask, &scopes, man, &mut allows, &mut out)
        });
    }
    if r.f3 {
        timer.time("F3", || {
            pass_f3(ctx, toks, &mask, &scopes, &loops, &mut allows, &mut out)
        });
    }

    out.fns = scopes
        .scopes
        .iter()
        .filter(|s| s.kind == ScopeKind::Fn)
        .map(|s| s.qualified.clone())
        .collect();

    for (ai, span) in allows.spans.iter().enumerate() {
        if !allows.used[ai] {
            push(
                &mut out,
                ctx,
                "A2",
                "unused-allow",
                span.decl_line,
                span.decl_line,
                format!(
                    "lint:allow({}) suppresses nothing — stale annotations hide future \
                     violations; delete it",
                    span.rule
                ),
            );
        }
    }

    out.diagnostics
        .sort_by(|a, b| (a.line, a.id).cmp(&(b.line, b.id)));
    out
}

fn pass_d1(
    ctx: &FileCtx,
    toks: &[Tok],
    mask: &[bool],
    allows: &mut AllowTable,
    out: &mut FileFindings,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "HashMap" | "HashSet") && !allows.allowed(t.line, "hash-order")
        {
            push(
                out,
                ctx,
                "D1",
                "hash-order",
                t.line,
                t.line,
                format!(
                    "`{}` in sim-visible crate `{}`: iteration order is \
                     seed-dependent and can leak into event ordering or reported \
                     numbers; use BTreeMap/BTreeSet (or sorted iteration) or \
                     justify with `// lint:allow(hash-order, <why order never \
                     escapes>)`",
                    t.text, ctx.crate_name
                ),
            );
        }
    }
}

fn pass_d2(
    ctx: &FileCtx,
    toks: &[Tok],
    mask: &[bool],
    allows: &mut AllowTable,
    out: &mut FileFindings,
) {
    let _ = ctx;
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "Instant" | "SystemTime")
            && !allows.allowed(t.line, "wall-clock")
        {
            push(
                out,
                ctx,
                "D2",
                "wall-clock",
                t.line,
                t.line,
                format!(
                    "`{}` outside the bench harness: wall-clock reads make runs \
                     machine-dependent; simulation code must use SimTime only",
                    t.text
                ),
            );
        }
    }
}

fn pass_d4(
    ctx: &FileCtx,
    toks: &[Tok],
    mask: &[bool],
    allows: &mut AllowTable,
    out: &mut FileFindings,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let line = t.line;
        if matches!(t.text.as_str(), "Mutex" | "RwLock" | "Condvar")
            && !allows.allowed(line, "sync-primitive")
        {
            push(
                out,
                ctx,
                "D4",
                "sync-primitive",
                line,
                line,
                format!(
                    "`{}` in event-handler crate `{}`: the engine is \
                     single-threaded by design; blocking primitives in event \
                     paths reintroduce host-scheduling nondeterminism",
                    t.text, ctx.crate_name
                ),
            );
        } else if t.text == "spawn" {
            // thread::spawn — walk back over the `::`.
            let mut j = i;
            while j > 0 && toks[j - 1].is_punct(':') {
                j -= 1;
            }
            if j > 0 && toks[j - 1].is_ident("thread") && !allows.allowed(line, "sync-primitive") {
                push(
                    out,
                    ctx,
                    "D4",
                    "sync-primitive",
                    line,
                    line,
                    "`thread::spawn` in event-handler crate: event ordering must \
                     never depend on host scheduling"
                        .to_string(),
                );
            }
        }
    }
}

fn pass_d3(
    ctx: &FileCtx,
    toks: &[Tok],
    mask: &[bool],
    reg: &Registry,
    allows: &mut AllowTable,
    out: &mut FileFindings,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let line = t.line;
        if t.text == "split" && is_rng_split(toks, i) {
            // Collect the argument tokens to the matching `)`.
            let mut depth = 1usize;
            let mut j = i + 2; // past `(`
            let mut bare_int: Option<u32> = None;
            let mut has_registered = false;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('(') {
                    depth += 1;
                } else if toks[j].is_punct(')') {
                    depth -= 1;
                } else if toks[j].kind == TokKind::Int {
                    bare_int.get_or_insert(toks[j].line);
                } else if toks[j].kind == TokKind::Ident && reg.contains(&toks[j].text) {
                    has_registered = true;
                }
                j += 1;
            }
            if let Some(int_line) = bare_int {
                if !allows.allowed(int_line, "rng-stream") && !allows.allowed(line, "rng-stream") {
                    push(
                        out,
                        ctx,
                        "D3",
                        "rng-stream",
                        line,
                        line,
                        "bare integer stream id in `SimRng::split`: name the stream \
                         in `simcore::streams` so collisions are centrally checked"
                            .to_string(),
                    );
                }
            } else if !has_registered && !allows.allowed(line, "rng-stream") {
                push(
                    out,
                    ctx,
                    "D3",
                    "rng-stream",
                    line,
                    line,
                    "`SimRng::split` argument names no `simcore::streams` constant; \
                     stream ids must come from the central registry"
                        .to_string(),
                );
            }
        } else if t.text == "const"
            && !ctx.is_registry
            && toks
                .get(i + 1)
                .is_some_and(|t2| t2.kind == TokKind::Ident && reg.contains(&t2.text))
        {
            // A local `const` reusing a registry name shadows the
            // central id — the lint would then accept `split(NAME)`
            // while the value silently diverges.
            push(
                out,
                ctx,
                "D3",
                "rng-stream",
                toks[i + 1].line,
                toks[i + 1].line,
                format!(
                    "local const `{}` shadows a simcore::streams registry name; \
                     import the registry constant instead",
                    toks[i + 1].text
                ),
            );
        }
    }
}

fn pass_d5(out: &mut FileFindings, toks: &[Tok], mask: &[bool]) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "panic" && toks.get(i + 1).is_some_and(|t2| t2.is_punct('!')) {
            out.panics += 1;
        } else if t.text == "unwrap"
            && i > 0
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|t2| t2.is_punct('('))
        {
            out.unwraps += 1;
        }
    }
}

// ---------------------------------------------------------------------
// F1 `index-funnel`
// ---------------------------------------------------------------------

/// `WorldIndex`'s `pub(crate)` mutator methods.
const INDEX_MUTATORS: &[&str] = &[
    "register_worker",
    "on_state_change",
    "on_gpu_change",
    "queue_delta_push",
    "queue_delta_pop",
];

/// `WorldIndex`'s state fields.
const INDEX_FIELDS: &[&str] = &[
    "enabled",
    "idle",
    "live",
    "not_dead",
    "total",
    "crashed",
    "dead",
    "state_counts",
    "residents",
    "queued_known_nanos",
    "queued_unknown",
];

/// Mutating container methods — calling one of these on an index field
/// is a write even without an `=`.
const CONTAINER_MUTATORS: &[&str] = &[
    "insert",
    "remove",
    "clear",
    "push",
    "push_back",
    "pop",
    "pop_front",
    "retain",
    "resize_with",
    "take",
    "get_mut",
    "append",
    "extend",
];

/// Is token `j` the start of an assignment operator (`=`, `+=`, ...)
/// that writes to whatever precedes it? `==`, `=>`, `!=`, `<=`, `>=`
/// never match: their first char is not `=`/arith, or the `=` is
/// followed by `=`/`>`.
fn is_assignment_op(toks: &[Tok], j: usize) -> bool {
    let Some(t) = toks.get(j) else { return false };
    if t.is_punct('=') {
        return !toks
            .get(j + 1)
            .is_some_and(|n| n.is_punct('=') || n.is_punct('>'));
    }
    matches!(
        t.text.as_str(),
        "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^"
    ) && t.kind == TokKind::Punct
        && toks.get(j + 1).is_some_and(|n| n.is_punct('='))
}

fn pass_f1(
    ctx: &FileCtx,
    toks: &[Tok],
    mask: &[bool],
    scopes: &ScopeTree,
    man: &Manifest,
    allows: &mut AllowTable,
    out: &mut FileFindings,
) {
    let n = toks.len();
    for i in 0..n {
        if mask[i] || !toks[i].is_ident("index") {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|t| t.is_punct('.')) {
            continue;
        }
        let Some(m) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        let line = toks[i].line;
        let what = if INDEX_MUTATORS.contains(&m.text.as_str())
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            format!("call to WorldIndex::{}", m.text)
        } else if INDEX_FIELDS.contains(&m.text.as_str()) {
            // Skip any `[...]` index groups after the field name.
            let mut j = i + 3;
            while j < n && toks[j].is_punct('[') {
                j = crate::scope::match_close_pub(toks, j, n) + 1;
            }
            if is_assignment_op(toks, j) {
                format!("write to WorldIndex field `{}`", m.text)
            } else if toks.get(j).is_some_and(|t| t.is_punct('.'))
                && toks.get(j + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident && CONTAINER_MUTATORS.contains(&t.text.as_str())
                })
                && toks.get(j + 2).is_some_and(|t| t.is_punct('('))
            {
                format!("`.{}()` on WorldIndex field `{}`", toks[j + 1].text, m.text)
            } else {
                continue;
            }
        } else {
            continue;
        };
        let qualified = scopes
            .enclosing_fn(i)
            .map(|s| s.qualified.clone())
            .unwrap_or_default();
        if man.is_funnel(&qualified) {
            continue;
        }
        if allows.allowed(line, "index-funnel") {
            continue;
        }
        let q = if qualified.is_empty() {
            "<top level>".to_string()
        } else {
            format!("`{qualified}`")
        };
        push(
            out,
            ctx,
            "F1",
            "index-funnel",
            line,
            line,
            format!(
                "{what} outside the funnel set (in {q}): WorldIndex mutations must \
                 go through the fns listed in {MANIFEST_FILE} [index-funnel] so the \
                 incremental index cannot drift from the world state it mirrors"
            ),
        );
    }
}

// ---------------------------------------------------------------------
// F2 `dirty-domain`
// ---------------------------------------------------------------------

/// Container fields of `GpuDevice` whose listed methods change which
/// kernels/contexts exist or how memory pressure is computed — i.e. the
/// inputs of `recompute`'s per-domain rates.
const RATE_CONTAINERS: &[(&str, &[&str])] = &[
    (
        "kernels",
        &[
            "insert",
            "take_at",
            "retain",
            "clear",
            "get_mut",
            "compact_order",
        ],
    ),
    ("ctxs", &["insert", "remove"]),
    ("mem", &["alloc", "freeb"]),
];

/// Scalar fields of `GpuDevice` whose assignment changes rates.
const RATE_FIELDS: &[&str] = &["slowdown", "mode", "cfg", "allow_uvm", "mem"];

/// The dirty-marking entry points.
const DIRTY_MARKS: &[&str] = &["mark_ctx_dirty", "mark_domain_dirty", "mark_all_dirty"];

fn pass_f2(
    ctx: &FileCtx,
    toks: &[Tok],
    mask: &[bool],
    scopes: &ScopeTree,
    man: &Manifest,
    allows: &mut AllowTable,
    out: &mut FileFindings,
) {
    for s in &scopes.scopes {
        if s.kind != ScopeKind::Fn || scopes.self_type_of(s) != Some("GpuDevice") {
            continue;
        }
        let Some((open, close)) = s.body else {
            continue;
        };
        if mask[s.anchor] || mask[open] {
            continue;
        }
        let mut trigger: Option<(String, u32)> = None;
        let mut marks = false;
        let mut i = open + 1;
        while i < close {
            let t = &toks[i];
            if t.kind == TokKind::Ident {
                if DIRTY_MARKS.contains(&t.text.as_str())
                    && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                {
                    marks = true;
                }
                if toks[i - 1].is_punct('.') && trigger.is_none() {
                    let name = t.text.as_str();
                    if name == "mem_pool_for" && toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                        trigger = Some(("`.mem_pool_for(...)`".to_string(), t.line));
                    }
                    for (field, methods) in RATE_CONTAINERS {
                        if name == *field
                            && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                            && toks.get(i + 2).is_some_and(|n| {
                                n.kind == TokKind::Ident && methods.contains(&n.text.as_str())
                            })
                            && toks.get(i + 3).is_some_and(|n| n.is_punct('('))
                        {
                            trigger =
                                Some((format!("`.{}.{}(...)`", field, toks[i + 2].text), t.line));
                        }
                    }
                    if RATE_FIELDS.contains(&name) && is_assignment_op(toks, i + 1) {
                        trigger = Some((format!("assignment to `.{name}`"), t.line));
                    }
                }
            }
            i += 1;
        }
        let Some((what, tline)) = trigger else {
            continue;
        };
        if marks || man.is_dirty_exempt(&s.qualified) {
            continue;
        }
        if allows.allowed(s.line, "dirty-domain") || allows.allowed(tline, "dirty-domain") {
            continue;
        }
        push(
            out,
            ctx,
            "F2",
            "dirty-domain",
            s.line,
            s.end_line,
            format!(
                "`GpuDevice::{}` mutates rate-feeding device state ({what}, line \
                 {tline}) without calling mark_ctx_dirty/mark_domain_dirty/\
                 mark_all_dirty: a skipped domain would keep stale rates and the \
                 dirty-tracking on/off bit-equivalence breaks; mark the affected \
                 domain or list the fn in {MANIFEST_FILE} [dirty-exempt] with a \
                 justification",
                s.name
            ),
        );
    }
}

// ---------------------------------------------------------------------
// F3 `stream-hygiene`
// ---------------------------------------------------------------------

/// Keywords that can directly precede a parenthesized expression without
/// making it a call.
fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "match"
            | "return"
            | "for"
            | "in"
            | "loop"
            | "let"
            | "else"
            | "move"
            | "break"
            | "continue"
            | "unsafe"
            | "as"
            | "where"
            | "await"
            | "yield"
    )
}

/// Walk back from the `.` of a method call to the first token of the
/// receiver expression: over call/index groups, field chains and `::`
/// paths.
fn expr_start(toks: &[Tok], dot: usize) -> usize {
    let mut p = dot;
    while p > 0 {
        let prev = p - 1;
        let t = &toks[prev];
        if t.is_punct(')') || t.is_punct(']') {
            let open = crate::scope::match_open_pub(toks, prev);
            if open == 0 {
                return 0;
            }
            p = open;
            continue;
        }
        if t.kind == TokKind::Ident {
            p = prev;
            if p >= 1 && toks[p - 1].is_punct('.') {
                p -= 1;
                continue;
            }
            if p >= 2 && toks[p - 1].is_punct(':') && toks[p - 2].is_punct(':') {
                p -= 2;
                continue;
            }
            return p;
        }
        return p;
    }
    p
}

/// Walk back from inside an argument list to the unmatched opening
/// bracket enclosing it.
fn enclosing_opener(toks: &[Tok], from: usize) -> Option<usize> {
    let (mut pd, mut bd, mut cd) = (0i32, 0i32, 0i32);
    let mut i = from;
    while i > 0 {
        i -= 1;
        let t = &toks[i];
        if t.is_punct(')') {
            pd += 1;
        } else if t.is_punct('(') {
            if pd == 0 {
                return Some(i);
            }
            pd -= 1;
        } else if t.is_punct(']') {
            bd += 1;
        } else if t.is_punct('[') {
            if bd == 0 {
                return Some(i);
            }
            bd -= 1;
        } else if t.is_punct('}') {
            cd += 1;
        } else if t.is_punct('{') {
            if cd == 0 {
                return Some(i);
            }
            cd -= 1;
        }
    }
    None
}

/// Is the token at `idx` (directly before a `(`) a call head?
fn call_head(toks: &[Tok], idx: usize) -> Option<String> {
    let t = toks.get(idx)?;
    if t.kind == TokKind::Ident && !is_expr_keyword(&t.text) {
        return Some(t.text.clone());
    }
    if t.is_punct('>') {
        return Some("<generic call>".to_string());
    }
    None
}

/// Flow-lite classification of where a split result goes. Returns a
/// description when it escapes into a struct field or across a fn
/// boundary, `None` for the blessed shape (a named local binding).
fn classify_split_flow(toks: &[Tok], split_tok: usize) -> Option<String> {
    let es = expr_start(toks, split_tok - 1);
    // Struct-literal field init: `Worker { rng: rng.split(..) }`.
    if es >= 3
        && toks[es - 1].is_punct(':')
        && !toks[es - 2].is_punct(':')
        && toks[es - 2].kind == TokKind::Ident
        && (toks[es - 3].is_punct('{') || toks[es - 3].is_punct(','))
    {
        return Some(format!(
            "split result stored directly into struct field `{}`",
            toks[es - 2].text
        ));
    }
    // Field assignment: `self.rng = rng.split(..)`.
    if es >= 3
        && toks[es - 1].is_punct('=')
        && !toks.get(es).is_some_and(|t| t.is_punct('='))
        && toks[es - 2].kind == TokKind::Ident
        && toks[es - 3].is_punct('.')
    {
        return Some(format!(
            "split result assigned into field `.{}`",
            toks[es - 2].text
        ));
    }
    // First argument of a call: `Ctor::new(rng.split(..))`.
    if es >= 2 && toks[es - 1].is_punct('(') {
        if let Some(callee) = call_head(toks, es - 2) {
            return Some(format!(
                "split result passed directly across a fn boundary (argument to `{callee}`)"
            ));
        }
    }
    // Later argument: `f(a, rng.split(..))`.
    if es >= 1 && toks[es - 1].is_punct(',') {
        if let Some(open) = enclosing_opener(toks, es - 1) {
            if toks[open].is_punct('(') && open >= 1 {
                if let Some(callee) = call_head(toks, open - 1) {
                    return Some(format!(
                        "split result passed directly across a fn boundary (argument to `{callee}`)"
                    ));
                }
            }
        }
    }
    None
}

fn pass_f3(
    ctx: &FileCtx,
    toks: &[Tok],
    mask: &[bool],
    scopes: &ScopeTree,
    loops: &[u16],
    allows: &mut AllowTable,
    out: &mut FileFindings,
) {
    let _ = scopes;
    for i in 0..toks.len() {
        if mask[i] || !toks[i].is_ident("split") || !is_rng_split(toks, i) {
            continue;
        }
        let line = toks[i].line;
        let why = if loops[i] > 0 {
            Some(
                "`SimRng::split` inside a loop body: per-iteration splits tie stream \
                 identity to iteration order and count"
                    .to_string(),
            )
        } else {
            classify_split_flow(toks, i)
        };
        let Some(why) = why else { continue };
        if allows.allowed(line, "stream-hygiene") {
            continue;
        }
        push(
            out,
            ctx,
            "F3",
            "stream-hygiene",
            line,
            line,
            format!(
                "{why}; bind the split result to a named local at construction \
                 scope so the stream's origin is auditable, or scope a \
                 lint:allow(stream-hygiene, <why the wiring is fixed>) on the \
                 owning fn"
            ),
        );
    }
}

/// Catalog entry, for reports and `--list-rules`.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Catalog code (`D1` ... `A2`).
    pub code: &'static str,
    /// Rule id used in diagnostics and allow annotations.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The full rule catalog.
pub const CATALOG: &[RuleInfo] = &[
    RuleInfo {
        code: "D1",
        id: "hash-order",
        summary: "no HashMap/HashSet in sim-visible crates unless order provably never escapes",
    },
    RuleInfo {
        code: "D2",
        id: "wall-clock",
        summary: "no Instant/SystemTime outside the bench wall-clock harness",
    },
    RuleInfo {
        code: "D3",
        id: "rng-stream",
        summary: "every SimRng::split id must be a named simcore::streams constant",
    },
    RuleInfo {
        code: "D4",
        id: "sync-primitive",
        summary: "no Mutex/RwLock/Condvar/thread::spawn in event-handler crates",
    },
    RuleInfo {
        code: "D5",
        id: "panic-budget",
        summary: "non-test panic!/.unwrap() counts per crate must not exceed the baseline",
    },
    RuleInfo {
        code: "F1",
        id: "index-funnel",
        summary: "WorldIndex writes only inside the manifest's [index-funnel] fns",
    },
    RuleInfo {
        code: "F2",
        id: "dirty-domain",
        summary: "GpuDevice rate-state mutators must mark dirty domains or be manifest-exempt",
    },
    RuleInfo {
        code: "F3",
        id: "stream-hygiene",
        summary: "no SimRng::split in loops, struct fields, or direct call arguments",
    },
    RuleInfo {
        code: "F4",
        id: "scoped-allow",
        summary: "lint:allow above an item covers the whole item; unused allows still fail (A2)",
    },
    RuleInfo {
        code: "M1",
        id: "manifest",
        summary: "every lint-manifest.txt entry must resolve to a defined fn (drift check)",
    },
    RuleInfo {
        code: "R1",
        id: "stream-registry",
        summary: "the streams registry itself: literal initializers, duplicate-free ids",
    },
    RuleInfo {
        code: "A1",
        id: "bad-annotation",
        summary: "lint:allow annotations must name a known rule and carry a reason",
    },
    RuleInfo {
        code: "A2",
        id: "unused-allow",
        summary: "lint:allow annotations that suppress nothing must be deleted",
    },
];

/// Look up catalog info by rule id.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    CATALOG.iter().find(|r| r.id == id)
}

/// Per-crate D5 counters.
pub type BudgetCounts = BTreeMap<String, (u64, u64)>;
