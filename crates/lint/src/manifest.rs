//! The checked-in invariant manifest (`lint-manifest.txt`).
//!
//! F1 `index-funnel` and F2 `dirty-domain` are *allowlist* rules: a
//! mutation is legal only inside fns named here. Keeping the lists in a
//! reviewed file at the workspace root (instead of hardcoding them in
//! the lint) means widening the funnel is a visible diff, and renaming
//! a funnel fn without updating the manifest fails CI with a pointer to
//! this file (rule M1 `manifest` checks every entry still resolves to a
//! defined fn).
//!
//! Format: INI-style sections, one qualified fn name per line
//! (`Type::method` or a free fn's bare name), `#` comments and blank
//! lines ignored.
//!
//! ```text
//! [index-funnel]
//! FaasWorld::transition
//! queue_push
//!
//! [dirty-exempt]
//! GpuDevice::advance
//! ```

use std::fs;
use std::io;
use std::path::Path;

/// Name of the manifest file at the workspace root.
pub const MANIFEST_FILE: &str = "lint-manifest.txt";

/// One manifest entry with its source line (for M1 diagnostics).
#[derive(Debug, Clone)]
pub struct ManifestEntry {
    /// Qualified fn name (`Type::method` or a free fn name).
    pub name: String,
    /// 1-based line in the manifest file.
    pub line: u32,
}

/// The parsed manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// F1: fns allowed to mutate `WorldIndex` state directly.
    pub index_funnel: Vec<ManifestEntry>,
    /// F2: `GpuDevice` fns that mutate rate-feeding state without a
    /// dirty mark, each with a reviewed justification in the file.
    pub dirty_exempt: Vec<ManifestEntry>,
}

impl Manifest {
    /// Parse the manifest text. Unknown sections and entries outside a
    /// section are errors — a typoed section silently disabling the
    /// funnel would defeat the rule.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut m = Manifest::default();
        let mut section: Option<&mut Vec<ManifestEntry>> = None;
        for (ln, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = match name {
                    "index-funnel" => Some(&mut m.index_funnel),
                    "dirty-exempt" => Some(&mut m.dirty_exempt),
                    other => {
                        return Err(format!(
                            "manifest line {}: unknown section `[{other}]` \
                             (expected [index-funnel] or [dirty-exempt])",
                            ln + 1
                        ))
                    }
                };
                continue;
            }
            let Some(list) = section.as_deref_mut() else {
                return Err(format!(
                    "manifest line {}: entry `{line}` before any section header",
                    ln + 1
                ));
            };
            if line.split_whitespace().nth(1).is_some() {
                return Err(format!(
                    "manifest line {}: one fn name per line, got `{line}`",
                    ln + 1
                ));
            }
            list.push(ManifestEntry {
                name: line.to_string(),
                line: (ln + 1) as u32,
            });
        }
        Ok(m)
    }

    /// Load from the workspace root. `Ok(None)` when the file is absent
    /// (the caller decides whether that is an error — it is whenever an
    /// F1/F2-enabled crate is in scope).
    pub fn load(root: &Path) -> Result<Option<Manifest>, String> {
        match fs::read_to_string(root.join(MANIFEST_FILE)) {
            Ok(text) => Manifest::parse(&text).map(Some),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(format!("reading {MANIFEST_FILE}: {e}")),
        }
    }

    /// Is `qualified` an approved F1 funnel fn?
    pub fn is_funnel(&self, qualified: &str) -> bool {
        self.index_funnel.iter().any(|e| e.name == qualified)
    }

    /// Is `qualified` exempt from F2's mark requirement?
    pub fn is_dirty_exempt(&self, qualified: &str) -> bool {
        self.dirty_exempt.iter().any(|e| e.name == qualified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_comments() {
        let m = Manifest::parse(
            "# comment\n[index-funnel]\nFaasWorld::transition\nqueue_push\n\n\
             [dirty-exempt]\nGpuDevice::advance\n",
        )
        .expect("parses");
        assert!(m.is_funnel("FaasWorld::transition"));
        assert!(m.is_funnel("queue_push"));
        assert!(!m.is_funnel("GpuDevice::advance"));
        assert!(m.is_dirty_exempt("GpuDevice::advance"));
        assert_eq!(m.index_funnel[1].line, 4);
    }

    #[test]
    fn rejects_unknown_sections_and_stray_entries() {
        assert!(Manifest::parse("[typo-section]\n").is_err());
        assert!(Manifest::parse("FaasWorld::transition\n").is_err());
        assert!(Manifest::parse("[index-funnel]\ntwo names\n").is_err());
    }
}
