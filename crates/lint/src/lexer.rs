//! A minimal Rust lexer, sufficient for the determinism rules.
//!
//! This is not a full grammar: it tokenizes identifiers, numeric / string
//! / char literals and single-character punctuation, skips comments
//! (while harvesting `lint:allow` annotations from line comments), and
//! distinguishes lifetimes from char literals. Everything the rule engine
//! needs — `use` paths, method-call shapes, attribute blocks — is
//! recovered from token patterns, never from parsing.

/// Token category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (any radix, suffix allowed).
    Int,
    /// Float literal.
    Float,
    /// String / raw string / byte string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Single punctuation character.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Category.
    pub kind: TokKind,
    /// Source text (empty for string literals — contents never matter
    /// to the rules, and dropping them keeps fixtures from tripping
    /// ident matches).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Is this exactly the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }

    /// Is this exactly the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A parsed `// lint:allow(rule, reason)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line the comment sits on. The annotation covers violations on
    /// this line and the next one.
    pub line: u32,
    /// Rule id being allowed, e.g. `hash-order`.
    pub rule: String,
    /// Free-form justification (must be non-empty).
    pub reason: String,
}

/// Lexer output.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream, comments and whitespace removed.
    pub toks: Vec<Tok>,
    /// Well-formed allow annotations.
    pub allows: Vec<Allow>,
    /// `(line, problem)` for annotations that did not parse.
    pub malformed: Vec<(u32, String)>,
}

/// Rule ids accepted inside `lint:allow(...)`.
pub const ALLOWABLE_RULES: &[&str] = &[
    "hash-order",
    "wall-clock",
    "rng-stream",
    "sync-primitive",
    "index-funnel",
    "dirty-domain",
    "stream-hygiene",
];

fn scan_annotation(comment: &str, line: u32, out: &mut Lexed) {
    // Anchor to the start of the comment body (past doc-comment `/`/`!`
    // markers): `// lint:allow(...)` is an annotation, while prose that
    // merely *mentions* lint:allow mid-sentence (docs, examples) is not.
    let body = comment.trim_start_matches(['/', '!']).trim_start();
    let Some(body) = body.strip_prefix("lint:allow(") else {
        return;
    };
    // Find the matching close paren (reasons may contain balanced parens).
    let mut depth = 1usize;
    let mut end = None;
    for (i, c) in body.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    end = Some(i);
                    break;
                }
            }
            _ => {}
        }
    }
    let Some(end) = end else {
        out.malformed
            .push((line, "unterminated lint:allow annotation".into()));
        return;
    };
    let inner = &body[..end];
    let Some((rule, reason)) = inner.split_once(',') else {
        out.malformed.push((
            line,
            "lint:allow needs a reason: lint:allow(rule, why it is safe)".into(),
        ));
        return;
    };
    let rule = rule.trim().to_string();
    let reason = reason.trim().to_string();
    if !ALLOWABLE_RULES.contains(&rule.as_str()) {
        out.malformed.push((
            line,
            format!(
                "unknown lint:allow rule `{rule}` (allowable: {})",
                ALLOWABLE_RULES.join(", ")
            ),
        ));
        return;
    }
    if reason.is_empty() {
        out.malformed
            .push((line, format!("empty reason in lint:allow({rule}, ...)")));
        return;
    }
    out.allows.push(Allow { line, rule, reason });
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Strip a numeric type suffix (`u64`, `usize`, `f32`, ...) if present.
fn strip_suffix(text: &str) -> &str {
    const SUFFIXES: &[&str] = &[
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        "f64", "f32",
    ];
    for s in SUFFIXES {
        if let Some(stripped) = text.strip_suffix(s) {
            if !stripped.is_empty() {
                return stripped;
            }
        }
    }
    text
}

/// Parse an integer literal's value (underscores and radix prefixes ok).
pub fn int_value(text: &str) -> Option<u64> {
    let t = strip_suffix(text).replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        u64::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        u64::from_str_radix(bin, 2).ok()
    } else {
        t.parse().ok()
    }
}

/// Consume a `"..."` string starting at `b[i]` (the opening quote).
/// Returns the index just past the closing quote, bumping `line` for
/// embedded newlines.
fn skip_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Consume a raw string `r##"..."##` whose `r` sits at `b[i]`.
fn skip_raw_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1; // past `r`
    let mut hashes = 0usize;
    while i < b.len() && b[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != '"' {
        return i; // not actually a raw string; caller guarded, but be safe
    }
    i += 1;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
        } else if b[i] == '"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while j < b.len() && b[j] == '#' && h < hashes {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return j;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    i
}

/// Does a raw/byte string start at `b[i]`? Returns the prefix length to
/// skip to reach the `r`/quote that [`skip_raw_string`]/[`skip_string`]
/// expect, or `None`.
fn string_prefix(b: &[char], i: usize) -> Option<(bool, usize)> {
    // Returns (is_raw, offset of `r` or `"` from i).
    let n = b.len();
    let at = |k: usize| b.get(i + k).copied();
    match b[i] {
        'r' => match at(1) {
            Some('"') | Some('#') => {
                // r"..." or r#"..."# or r#ident (raw identifier).
                if at(1) == Some('#') {
                    // Distinguish r#"..." from r#ident.
                    let mut k = 1;
                    while i + k < n && b[i + k] == '#' {
                        k += 1;
                    }
                    if at(k) == Some('"') {
                        Some((true, 0))
                    } else {
                        None // raw identifier, lex as ident
                    }
                } else {
                    Some((true, 0))
                }
            }
            _ => None,
        },
        'b' => match at(1) {
            Some('"') => Some((false, 1)),
            Some('r') if matches!(at(2), Some('"') | Some('#')) => Some((true, 1)),
            _ => None,
        },
        _ => None,
    }
}

/// Tokenize `src`, collecting allow annotations along the way.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            let text: String = b[start..j].iter().collect();
            scan_annotation(&text, line, &mut out);
            i = j;
            continue;
        }
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if b[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
            continue;
        }
        // String-ish literals (plain, raw, byte, raw byte).
        if c == '"' {
            let start_line = line;
            i = skip_string(&b, i, &mut line);
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        if let Some((raw, off)) = string_prefix(&b, i) {
            let start_line = line;
            i = if raw {
                skip_raw_string(&b, i + off, &mut line)
            } else {
                skip_string(&b, i + off, &mut line)
            };
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }
        // Char literal vs lifetime. Byte char `b'x'` reaches here as the
        // ident `b` followed by the quote, which the `'` arm handles.
        if c == '\'' {
            let next = b.get(i + 1).copied();
            let after = b.get(i + 2).copied();
            if next == Some('\\') {
                // Escape: consume to the closing quote.
                let mut j = i + 2;
                if j < n {
                    j += 1; // the escaped char
                }
                // \u{...} and multi-char escapes: scan to the quote.
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i = j + 1;
            } else if after == Some('\'') {
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
                i += 3;
            } else {
                // Lifetime: 'ident (no closing quote).
                let mut j = i + 1;
                while j < n && is_ident_continue(b[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[i + 1..j].iter().collect(),
                    line,
                });
                i = j;
            }
            continue;
        }
        // Raw identifier r#ident.
        if c == 'r'
            && b.get(i + 1) == Some(&'#')
            && b.get(i + 2).is_some_and(|&x| is_ident_start(x))
        {
            let mut j = i + 2;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[i + 2..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(b[j]) {
                j += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text: b[i..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n
                && (is_ident_continue(b[j])
                    || (b[j] == '.' && b.get(j + 1).is_some_and(|&x| x.is_ascii_digit())))
            {
                j += 1;
            }
            let text: String = b[i..j].iter().collect();
            let core = strip_suffix(&text);
            let is_hex = core.starts_with("0x") || core.starts_with("0X");
            let kind =
                if core.contains('.') || (!is_hex && (core.contains('e') || core.contains('E'))) {
                    TokKind::Float
                } else {
                    TokKind::Int
                };
            out.toks.push(Tok { kind, text, line });
            i = j;
            continue;
        }
        // Anything else: one punctuation char.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).toks.iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_ints() {
        let l = lex("let x = 42;");
        let texts: Vec<&str> = l.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["let", "x", "=", "42", ";"]);
        assert_eq!(l.toks[3].kind, TokKind::Int);
    }

    #[test]
    fn comments_are_skipped_strings_opaque() {
        let l = lex("a // HashMap in a comment\nlet s = \"HashMap\"; /* HashSet */ b");
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["a", "let", "s", "b"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }");
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_strings_and_byte_strings() {
        let l = lex(r###"let a = r#"Instant::now()"#; let b = b"SystemTime"; let c = br"x";"###);
        let idents: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "a", "let", "b", "let", "c"]);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 3);
    }

    #[test]
    fn float_vs_int_classification() {
        assert_eq!(kinds("1.5 2e9 0xFE 1_000 3u64 10usize"), {
            use TokKind::*;
            vec![Float, Float, Int, Int, Int, Int]
        });
    }

    #[test]
    fn int_values_parse() {
        assert_eq!(int_value("617"), Some(617));
        assert_eq!(int_value("1_000u64"), Some(1000));
        assert_eq!(int_value("0x29a"), Some(666));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let l = lex("a\n/* two\nlines */\nb");
        assert_eq!(l.toks[0].line, 1);
        assert_eq!(l.toks[1].line, 4);
    }

    #[test]
    fn annotations_parse() {
        let l = lex("// lint:allow(hash-order, keys are probed, never iterated (safe))\nx");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].rule, "hash-order");
        assert!(l.allows[0].reason.contains("never iterated"));
        assert!(l.malformed.is_empty());
    }

    #[test]
    fn prose_mentions_are_not_annotations() {
        let l = lex("// justify the site with `lint:allow(hash-order, why)` as usual\nx");
        assert!(l.allows.is_empty());
        assert!(l.malformed.is_empty());
    }

    #[test]
    fn malformed_annotations_reported() {
        assert_eq!(lex("// lint:allow(hash-order)").malformed.len(), 1);
        assert_eq!(lex("// lint:allow(no-such-rule, x)").malformed.len(), 1);
        assert_eq!(lex("// lint:allow(wall-clock, )").malformed.len(), 1);
    }
}
