//! Staged drain for online reconfiguration (DESIGN.md §11).
//!
//! Re-slicing a live GPU (or restarting MPS clients with new percentage
//! caps) must not yank tasks mid-kernel when a short wait would let them
//! finish — but it also must not wait forever on a straggler. The drain
//! protocol stages that trade-off:
//!
//! ```text
//! begin_drain ──> stop-dispatch (members leave the schedulable set)
//!      │              │
//!      │              ├── busy members asked to checkpoint at the next
//!      │              │   step boundary (forced kills then lose nothing
//!      │              │   past the last committed snapshot)
//!      │              ▼
//!      │          await in-flight attempts (finish, cancel, fault-kill)
//!      │              │
//!      ├─ timeout ────┤  force-kill whatever is still running
//!      ▼              ▼
//!  on_complete(world, eng, outcome)   — the reconfig transaction
//! ```
//!
//! The completion callback runs exactly once, after every member's
//! attempt has unwound, with the members already released from the
//! stop-dispatch set (they are typically Idle or Dead at that point; the
//! transaction kills and respawns them under new accelerator specs).
//!
//! Members are excluded from dispatch by `kick_executor` and from hedge
//! placement by `try_launch_hedge` — on both the indexed and the
//! full-scan path, so the fleet benchmark's A/B bit-equivalence holds
//! while a drain is active.

use crate::world::{kill_worker, request_checkpoint, FaasWorld};
use parfait_simcore::{Engine, SimRng};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// How a completed drain got its members to quiescence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainOutcome {
    /// Members that were still running at the timeout and were
    /// force-killed (their tasks fail and retry, resuming from their
    /// last committed checkpoint where one exists).
    pub forced_kills: usize,
}

/// Completion callback for a staged drain.
pub type DrainCallback = Box<dyn FnOnce(&mut FaasWorld, &mut Engine<FaasWorld>, DrainOutcome)>;

/// One in-progress drain (keyed by GPU in [`ReconfigControl::drains`]).
pub(crate) struct DrainState {
    /// Monotone id guarding the timeout closure against a later drain of
    /// the same GPU.
    gen: u64,
    /// Every worker the drain stops dispatch to.
    members: Vec<usize>,
    /// Members whose in-flight attempt has not yet unwound.
    pending: BTreeSet<usize>,
    /// Members force-killed by the timeout so far.
    forced: usize,
    on_complete: Option<DrainCallback>,
}

/// Counters summarizing a run's reconfiguration activity.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct ReconfigStats {
    /// Staged drains started.
    pub drains_started: u64,
    /// Workers force-killed by drain timeouts.
    pub drains_forced_kills: u64,
    /// Reconfig transactions committed (new partition plan applied).
    pub txns_committed: u64,
    /// Transactions whose commit failed (injected or drawn on the
    /// `RECONFIG_FAULTS` stream) and took the rollback / degraded path.
    pub txns_failed: u64,
    /// Transactions aborted before commit (target fenced mid-drain);
    /// workers keep their previous accelerator specs untouched.
    pub txns_aborted: u64,
    /// Rollbacks to the last known-good partition plan after a failed
    /// commit.
    pub rollbacks: u64,
}

/// Reconfiguration control state owned by [`FaasWorld`]: active drains,
/// the stop-dispatch set, the injected-failure poison set, and the
/// dedicated failure-draw RNG stream.
pub struct ReconfigControl {
    pub(crate) drains: BTreeMap<u32, DrainState>,
    /// Union of every active drain's members; dispatch and hedge
    /// placement skip these workers.
    pub(crate) draining: BTreeSet<usize>,
    next_gen: u64,
    /// `RECONFIG_FAULTS` stream: Bernoulli commit-failure draws.
    pub(crate) rng: SimRng,
    /// GPUs whose next reconfig commit fails (armed by
    /// [`crate::FaultKind::ReconfigFail`]).
    pub(crate) poisoned: BTreeSet<u32>,
    /// Run counters.
    pub stats: ReconfigStats,
}

impl ReconfigControl {
    /// Fresh state; `rng` must be the `RECONFIG_FAULTS` split.
    pub fn new(rng: SimRng) -> Self {
        ReconfigControl {
            drains: BTreeMap::new(),
            draining: BTreeSet::new(),
            next_gen: 0,
            rng,
            poisoned: BTreeSet::new(),
            stats: ReconfigStats::default(),
        }
    }

    /// Is a staged drain currently active on `gpu`?
    pub fn drain_active(&self, gpu: u32) -> bool {
        self.drains.contains_key(&gpu)
    }

    /// Number of GPUs with an active drain (the controller's
    /// concurrent-reconfig limit counts these).
    pub fn active_drains(&self) -> usize {
        self.drains.len()
    }

    /// Is `wid` excluded from dispatch by an active drain?
    pub fn is_draining(&self, wid: usize) -> bool {
        self.draining.contains(&wid)
    }
}

/// Start a staged drain of `members` on `gpu`; `on_complete` runs once
/// every member's in-flight attempt has unwound (or been force-killed at
/// the config's `drain_timeout`).
///
/// # Panics
/// Panics if a drain is already active on `gpu` — callers gate on
/// [`ReconfigControl::drain_active`].
pub fn begin_drain(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: u32,
    members: Vec<usize>,
    on_complete: DrainCallback,
) {
    assert!(
        !world.reconfig.drain_active(gpu),
        "drain already active on GPU {gpu}"
    );
    world.reconfig.stats.drains_started += 1;
    let gen = world.reconfig.next_gen;
    world.reconfig.next_gen += 1;
    let mut pending = BTreeSet::new();
    for &wid in &members {
        world.reconfig.draining.insert(wid);
        if world.workers[wid].current_task().is_some() {
            pending.insert(wid);
            // Snapshot at the next step boundary so a forced kill (or
            // the planned post-drain restart) loses as little as
            // possible; no-op for non-checkpointable bodies.
            request_checkpoint(world, wid);
        }
    }
    let quiescent = pending.is_empty();
    world.reconfig.drains.insert(
        gpu,
        DrainState {
            gen,
            members,
            pending,
            forced: 0,
            on_complete: Some(on_complete),
        },
    );
    if quiescent {
        complete_drain(world, eng, gpu);
        return;
    }
    let timeout = world.config.reconfig.drain_timeout;
    eng.schedule_in(timeout, move |w: &mut FaasWorld, e| {
        drain_timeout(w, e, gpu, gen);
    });
}

/// Timeout: force-kill every member still running. Each kill unwinds the
/// member's attempt through `finish_task`, which reports back via
/// [`note_drained`]; the last kill therefore completes the drain from
/// inside this loop.
fn drain_timeout(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, gpu: u32, gen: u64) {
    let stragglers: Vec<usize> = match world.reconfig.drains.get(&gpu) {
        Some(d) if d.gen == gen => d.pending.iter().copied().collect(),
        _ => return, // drain already completed (or superseded); stale timer
    };
    for wid in stragglers {
        // Re-check per worker: an earlier kill in this loop may have
        // cascaded (fence, retry kick) and resolved a later member.
        let still_pending = world
            .reconfig
            .drains
            .get(&gpu)
            .is_some_and(|d| d.pending.contains(&wid));
        if !still_pending {
            continue;
        }
        if let Some(d) = world.reconfig.drains.get_mut(&gpu) {
            d.forced += 1;
        }
        world.reconfig.stats.drains_forced_kills += 1;
        kill_worker(world, eng, wid, "drain timeout");
    }
}

/// A draining worker's in-flight attempt unwound (completed, cancelled,
/// or its worker was killed). Called from `finish_task` / `cancel_attempt`;
/// completes the drain when the last pending member resolves.
///
/// Completion is deferred to a zero-delay event rather than run inline:
/// this callsite can sit *inside* `kill_worker`'s unwind (drain-timeout
/// force-kill, fence), and a transaction that respawned the member from
/// there would be clobbered when the outer kill resumed its teardown
/// (epoch bump after `finish_task` strands the fresh incarnation in
/// `Provisioning`). The deferral runs the commit from a clean stack at
/// the same sim time.
pub(crate) fn note_drained(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) {
    let mut done: Option<u32> = None;
    for (&gpu, d) in world.reconfig.drains.iter_mut() {
        if d.pending.remove(&wid) && d.pending.is_empty() {
            done = Some(gpu);
            break;
        }
    }
    if let Some(gpu) = done {
        eng.schedule_in(parfait_simcore::SimDuration::ZERO, move |w, e| {
            complete_drain(w, e, gpu);
        });
    }
}

/// Remove the drain's bookkeeping, release its members back to the
/// schedulable set, then run the completion callback. State is torn down
/// *first* so the callback can kill/respawn members (or even start a new
/// drain) without re-entering this drain.
fn complete_drain(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, gpu: u32) {
    let Some(mut d) = world.reconfig.drains.remove(&gpu) else {
        return;
    };
    for wid in &d.members {
        world.reconfig.draining.remove(wid);
    }
    let outcome = DrainOutcome {
        forced_kills: d.forced,
    };
    if let Some(cb) = d.on_complete.take() {
        cb(world, eng, outcome);
    }
}

/// Should this transaction's commit fail? Consumes the GPU's injected
/// poison if armed; otherwise draws Bernoulli(`fail_prob`) on the
/// dedicated `RECONFIG_FAULTS` stream (no draw at probability zero, so
/// runs without reconfig faults never touch the stream).
pub fn reconfig_commit_fails(world: &mut FaasWorld, gpu: u32) -> bool {
    if world.reconfig.poisoned.remove(&gpu) {
        return true;
    }
    let p = world.config.reconfig.fail_prob;
    p > 0.0 && world.reconfig.rng.f64() < p
}
