//! The DataFlowKernel: task table, dependency graph, retries.
//!
//! Parsl's DFK interposes between app invocations and executors: it tracks
//! each task's lifecycle, releases tasks whose dependencies completed, and
//! re-queues failed tasks while retries remain. This module is the pure
//! state machine; event wiring lives in [`crate::world`].

use crate::app::{AppCall, BodyFactory, TaskId};
use parfait_simcore::SimTime;
use serde::Serialize;

/// Task lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TaskState {
    /// Waiting on dependencies.
    Waiting,
    /// Dependencies met; queued at its executor.
    Ready,
    /// Executing on a worker.
    Running,
    /// Finished successfully.
    Done,
    /// Failed permanently (retries exhausted or dependency failed).
    Failed,
}

/// One task's record (Parsl monitoring-DB style).
pub struct TaskRecord {
    /// Task id.
    pub id: TaskId,
    /// App (function) name.
    pub app: String,
    /// Executor index in the config.
    pub executor: usize,
    /// Current state.
    pub state: TaskState,
    /// Submission time.
    pub submitted: SimTime,
    /// When a worker picked it up (per attempt; last attempt wins).
    pub dispatched: Option<SimTime>,
    /// When the body began executing (after model load).
    pub started: Option<SimTime>,
    /// Completion or permanent failure time.
    pub finished: Option<SimTime>,
    /// Worker that ran the final attempt.
    pub worker: Option<usize>,
    /// Remaining retry budget.
    pub retries_left: u32,
    /// Dispatch attempts so far (1 after the first dispatch). Drives the
    /// retry-backoff exponent and the re-executed-work accounting.
    pub attempts: u32,
    /// Failure reason, if failed.
    pub error: Option<String>,
    /// Dependencies.
    pub depends_on: Vec<TaskId>,
    /// Unmet dependency count.
    pending_deps: usize,
    /// Reverse edges.
    dependents: Vec<TaskId>,
    /// Serialized payload size for wire-dispatch latency.
    pub payload_bytes: usize,
    /// Per-attempt walltime limit.
    pub walltime: Option<parfait_simcore::SimDuration>,
    /// End-to-end deadline relative to `submitted` (admission control,
    /// goodput accounting).
    pub deadline: Option<parfait_simcore::SimDuration>,
    /// Admission priority; higher survives shed-lowest-priority eviction.
    pub priority: i32,
    /// Caller-estimated single-attempt service time (queue-wait estimate,
    /// hedge trigger).
    pub est_service: Option<parfait_simcore::SimDuration>,
    /// Recreates the body for each attempt.
    pub(crate) factory: BodyFactory,
}

/// Outcome of reporting a task failure to the DFK.
#[derive(Debug, PartialEq, Eq)]
pub enum FailureOutcome {
    /// The task should be re-queued (retry budget remained).
    Retry,
    /// Permanent failure; listed dependents failed transitively.
    Fatal {
        /// Tasks that can now never run.
        cascade: Vec<TaskId>,
    },
}

/// The task table.
#[derive(Default)]
pub struct Dfk {
    tasks: Vec<TaskRecord>,
    done: u64,
    failed: u64,
}

impl Dfk {
    /// Empty kernel.
    pub fn new() -> Self {
        Dfk::default()
    }

    /// Register a call. Returns the id and whether it is immediately ready
    /// (no unmet dependencies).
    pub fn submit(
        &mut self,
        now: SimTime,
        call: AppCall,
        executor: usize,
        retries: u32,
    ) -> (TaskId, bool) {
        let id = TaskId(self.tasks.len() as u64);
        let mut pending = 0;
        for dep in &call.depends_on {
            let d = &mut self.tasks[dep.0 as usize];
            match d.state {
                TaskState::Done => {}
                TaskState::Failed => pending = usize::MAX, // can never run
                _ => {
                    d.dependents.push(id);
                    pending += 1;
                }
            }
            if pending == usize::MAX {
                break;
            }
        }
        let ready = pending == 0;
        let failed_dep = pending == usize::MAX;
        self.tasks.push(TaskRecord {
            id,
            app: call.app,
            executor,
            state: if failed_dep {
                TaskState::Failed
            } else if ready {
                TaskState::Ready
            } else {
                TaskState::Waiting
            },
            submitted: now,
            dispatched: None,
            started: None,
            finished: if failed_dep { Some(now) } else { None },
            worker: None,
            retries_left: retries,
            attempts: 0,
            error: failed_dep.then(|| "dependency failed before submission".to_string()),
            depends_on: call.depends_on,
            pending_deps: if failed_dep { 0 } else { pending },
            dependents: Vec::new(),
            payload_bytes: call.payload_bytes,
            walltime: call.walltime,
            deadline: call.deadline,
            priority: call.priority,
            est_service: call.est_service,
            factory: call.make_body,
        });
        if failed_dep {
            self.failed += 1;
        }
        (id, ready && !failed_dep)
    }

    /// Borrow a record.
    pub fn task(&self, id: TaskId) -> &TaskRecord {
        &self.tasks[id.0 as usize]
    }

    /// Mutably borrow a record.
    pub fn task_mut(&mut self, id: TaskId) -> &mut TaskRecord {
        &mut self.tasks[id.0 as usize]
    }

    /// All records.
    pub fn tasks(&self) -> &[TaskRecord] {
        &self.tasks
    }

    /// Number of tasks ever submitted.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no tasks were submitted.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Completed-successfully count.
    pub fn done_count(&self) -> u64 {
        self.done
    }

    /// Permanently-failed count.
    pub fn failed_count(&self) -> u64 {
        self.failed
    }

    /// All tasks reached a terminal state.
    pub fn all_settled(&self) -> bool {
        self.done + self.failed == self.tasks.len() as u64
    }

    /// A worker picked the task up.
    pub fn mark_dispatched(&mut self, id: TaskId, now: SimTime, worker: usize) {
        let t = self.task_mut(id);
        debug_assert!(matches!(t.state, TaskState::Ready));
        t.state = TaskState::Running;
        t.dispatched = Some(now);
        t.worker = Some(worker);
        t.attempts += 1;
    }

    /// Attempts beyond the first, summed over all tasks — work the
    /// platform re-executed because of failures.
    pub fn reexecuted_attempts(&self) -> u64 {
        self.tasks
            .iter()
            .map(|t| u64::from(t.attempts.saturating_sub(1)))
            .sum()
    }

    /// The body began executing (model resident).
    pub fn mark_started(&mut self, id: TaskId, now: SimTime) {
        let t = self.task_mut(id);
        if t.started.is_none() {
            t.started = Some(now);
        }
    }

    /// Successful completion. Returns dependents that became ready.
    pub fn mark_done(&mut self, id: TaskId, now: SimTime) -> Vec<TaskId> {
        let deps = {
            let t = self.task_mut(id);
            debug_assert!(matches!(t.state, TaskState::Running));
            t.state = TaskState::Done;
            t.finished = Some(now);
            std::mem::take(&mut t.dependents)
        };
        self.done += 1;
        let mut ready = Vec::new();
        for d in deps {
            let t = self.task_mut(d);
            if t.state == TaskState::Waiting {
                t.pending_deps -= 1;
                if t.pending_deps == 0 {
                    t.state = TaskState::Ready;
                    ready.push(d);
                }
            }
        }
        ready
    }

    /// Failure of the current attempt. Either re-queues (`Retry`, caller
    /// puts it back on the executor queue) or fails permanently,
    /// cascading to dependents.
    pub fn mark_failed(&mut self, id: TaskId, now: SimTime, error: &str) -> FailureOutcome {
        {
            let t = self.task_mut(id);
            if t.retries_left > 0 {
                t.retries_left -= 1;
                t.state = TaskState::Ready;
                t.error = Some(error.to_string());
                return FailureOutcome::Retry;
            }
        }
        let mut cascade = Vec::new();
        let mut stack = vec![(id, error.to_string())];
        while let Some((tid, err)) = stack.pop() {
            let deps = {
                let t = self.task_mut(tid);
                if t.state == TaskState::Failed {
                    continue;
                }
                t.state = TaskState::Failed;
                t.finished = Some(now);
                t.error = Some(err);
                std::mem::take(&mut t.dependents)
            };
            self.failed += 1;
            if tid != id {
                cascade.push(tid);
            }
            for d in deps {
                stack.push((d, format!("dependency task {} failed", tid.0)));
            }
        }
        FailureOutcome::Fatal { cascade }
    }

    /// Cancel a task that has not started running. `Waiting` and `Ready`
    /// tasks become `Failed` with a cancellation error (cascading to
    /// dependents); running or settled tasks are not cancellable and
    /// return `false` — matching `concurrent.futures` semantics, where
    /// `Future.cancel()` only succeeds before execution begins.
    pub fn cancel(&mut self, id: TaskId, now: SimTime) -> bool {
        match self.task(id).state {
            TaskState::Waiting | TaskState::Ready => {
                // Exhaust retries so mark_failed is terminal.
                self.task_mut(id).retries_left = 0;
                // mark_failed expects any non-terminal state; it cascades.
                let _ = self.mark_failed(id, now, "cancelled");
                true
            }
            _ => false,
        }
    }

    /// Instantiate a fresh body for an attempt of `id`.
    pub fn make_body(
        &self,
        id: TaskId,
        rng: &mut parfait_simcore::SimRng,
    ) -> Box<dyn crate::app::TaskBody> {
        (self.task(id).factory)(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::bodies::CpuBurn;
    use parfait_simcore::{SimDuration, SimRng};

    fn call(app: &str) -> AppCall {
        AppCall::new(app, "cpu", |_| {
            Box::new(CpuBurn::new(SimDuration::from_secs(1)))
        })
    }

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn submit_without_deps_is_ready() {
        let mut dfk = Dfk::new();
        let (id, ready) = dfk.submit(t(0), call("a"), 0, 1);
        assert!(ready);
        assert_eq!(dfk.task(id).state, TaskState::Ready);
        assert_eq!(dfk.len(), 1);
    }

    #[test]
    fn dependency_chain_releases_in_order() {
        let mut dfk = Dfk::new();
        let (a, _) = dfk.submit(t(0), call("a"), 0, 0);
        let (b, ready_b) = dfk.submit(t(0), call("b").after(&[a]), 0, 0);
        let (c, ready_c) = dfk.submit(t(0), call("c").after(&[a, b]), 0, 0);
        assert!(!ready_b && !ready_c);
        dfk.mark_dispatched(a, t(1), 0);
        dfk.mark_started(a, t(1));
        let ready = dfk.mark_done(a, t(2));
        assert_eq!(ready, vec![b]);
        assert_eq!(dfk.task(c).state, TaskState::Waiting);
        dfk.mark_dispatched(b, t(2), 0);
        let ready = dfk.mark_done(b, t(3));
        assert_eq!(ready, vec![c]);
    }

    #[test]
    fn dependency_on_done_task_is_satisfied() {
        let mut dfk = Dfk::new();
        let (a, _) = dfk.submit(t(0), call("a"), 0, 0);
        dfk.mark_dispatched(a, t(0), 0);
        dfk.mark_done(a, t(1));
        let (_b, ready) = dfk.submit(t(2), call("b").after(&[a]), 0, 0);
        assert!(ready);
    }

    #[test]
    fn retry_then_fatal() {
        let mut dfk = Dfk::new();
        let (a, _) = dfk.submit(t(0), call("a"), 0, 1);
        dfk.mark_dispatched(a, t(0), 0);
        assert_eq!(dfk.mark_failed(a, t(1), "oom"), FailureOutcome::Retry);
        assert_eq!(dfk.task(a).state, TaskState::Ready);
        assert_eq!(dfk.task(a).retries_left, 0);
        dfk.mark_dispatched(a, t(1), 0);
        match dfk.mark_failed(a, t(2), "oom again") {
            FailureOutcome::Fatal { cascade } => assert!(cascade.is_empty()),
            other => panic!("expected fatal, got {other:?}"),
        }
        assert_eq!(dfk.failed_count(), 1);
        assert_eq!(dfk.task(a).error.as_deref(), Some("oom again"));
    }

    #[test]
    fn failure_cascades_to_dependents() {
        let mut dfk = Dfk::new();
        let (a, _) = dfk.submit(t(0), call("a"), 0, 0);
        let (b, _) = dfk.submit(t(0), call("b").after(&[a]), 0, 0);
        let (c, _) = dfk.submit(t(0), call("c").after(&[b]), 0, 0);
        dfk.mark_dispatched(a, t(0), 0);
        match dfk.mark_failed(a, t(1), "boom") {
            FailureOutcome::Fatal { mut cascade } => {
                cascade.sort();
                assert_eq!(cascade, vec![b, c]);
            }
            other => panic!("expected fatal, got {other:?}"),
        }
        assert_eq!(dfk.failed_count(), 3);
        assert!(dfk.all_settled());
        assert!(dfk.task(c).error.as_deref().unwrap().contains("dependency"));
    }

    #[test]
    fn submit_after_failed_dep_fails_immediately() {
        let mut dfk = Dfk::new();
        let (a, _) = dfk.submit(t(0), call("a"), 0, 0);
        dfk.mark_dispatched(a, t(0), 0);
        dfk.mark_failed(a, t(1), "boom");
        let (b, ready) = dfk.submit(t(2), call("b").after(&[a]), 0, 0);
        assert!(!ready);
        assert_eq!(dfk.task(b).state, TaskState::Failed);
        assert_eq!(dfk.failed_count(), 2);
    }

    #[test]
    fn settled_accounting() {
        let mut dfk = Dfk::new();
        assert!(dfk.all_settled(), "vacuously settled when empty");
        let (a, _) = dfk.submit(t(0), call("a"), 0, 0);
        assert!(!dfk.all_settled());
        dfk.mark_dispatched(a, t(0), 0);
        dfk.mark_done(a, t(1));
        assert!(dfk.all_settled());
        assert_eq!(dfk.done_count(), 1);
    }

    #[test]
    fn cancel_only_before_execution() {
        let mut dfk = Dfk::new();
        let (a, _) = dfk.submit(t(0), call("a"), 0, 3);
        let (b, _) = dfk.submit(t(0), call("b").after(&[a]), 0, 3);
        assert!(dfk.cancel(b, t(1)), "waiting task cancellable");
        assert_eq!(dfk.task(b).state, TaskState::Failed);
        assert_eq!(dfk.task(b).error.as_deref(), Some("cancelled"));
        dfk.mark_dispatched(a, t(1), 0);
        assert!(!dfk.cancel(a, t(2)), "running task not cancellable");
        dfk.mark_done(a, t(3));
        assert!(!dfk.cancel(a, t(4)), "done task not cancellable");
        assert!(dfk.all_settled());
    }

    #[test]
    fn cancel_cascades_to_dependents() {
        let mut dfk = Dfk::new();
        let (a, _) = dfk.submit(t(0), call("a"), 0, 0);
        let (b, _) = dfk.submit(t(0), call("b").after(&[a]), 0, 0);
        assert!(dfk.cancel(a, t(1)));
        assert_eq!(dfk.task(b).state, TaskState::Failed);
        assert_eq!(dfk.failed_count(), 2);
    }

    #[test]
    fn body_factory_runs_per_attempt() {
        let mut dfk = Dfk::new();
        let (a, _) = dfk.submit(t(0), call("a"), 0, 3);
        let mut rng = SimRng::new(0);
        let _b1 = dfk.make_body(a, &mut rng);
        let _b2 = dfk.make_body(a, &mut rng);
    }
}
