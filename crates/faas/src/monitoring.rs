//! Monitoring records (Parsl's monitoring database, in memory).
//!
//! Two record streams feed the figure harness:
//!
//! * [`UtilSample`] — periodic per-GPU utilization/memory samples, the
//!   source of the "GPU is idle between inference bursts" observation
//!   behind Fig. 3;
//! * [`WorkerEvent`] — worker lifecycle (spawn, cold-start done, task
//!   start/end, kill), the source of cold-start decompositions (§6).
//!
//! Task-level records live in the DFK itself; [`task_rows`] flattens them
//! for export.

use crate::dfk::{Dfk, TaskState};
use parfait_simcore::SimTime;
use serde::Serialize;

/// One periodic GPU sample.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct UtilSample {
    /// Sample time.
    pub t: SimTime,
    /// Device index.
    pub gpu: u32,
    /// Busy SMs at the sample instant.
    pub busy_sms: f64,
    /// Occupancy in `[0,1]`.
    pub utilization: f64,
    /// Allocated bytes across all memory domains.
    pub memory_used: u64,
}

/// Worker lifecycle event kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WorkerEventKind {
    /// Process forked (provider handed it over).
    Spawned,
    /// Cold start finished; worker idle.
    Ready,
    /// Picked up a task.
    TaskStart,
    /// Finished a task (success or failure).
    TaskEnd,
    /// Killed (shutdown or reconfiguration).
    Killed,
    /// Process lost silently (fault injection); the platform does not
    /// know yet — detection is a later `Killed` from the watchdog.
    Crashed,
    /// Automatically restarted by the recovery layer (budgeted).
    Respawned,
}

/// One worker lifecycle event.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerEvent {
    /// Event time.
    pub t: SimTime,
    /// Worker index.
    pub worker: usize,
    /// Kind.
    pub kind: WorkerEventKind,
    /// Free-form detail (task id, kill reason...).
    pub detail: String,
}

/// Flattened task row for export.
#[derive(Debug, Clone, Serialize)]
pub struct TaskRow {
    /// Task id.
    pub id: u64,
    /// App name.
    pub app: String,
    /// Executor index.
    pub executor: usize,
    /// Terminal state name.
    pub state: &'static str,
    /// Submit → finish latency in seconds (None if unfinished).
    pub turnaround_s: Option<f64>,
    /// Start → finish execution time in seconds.
    pub exec_s: Option<f64>,
    /// Worker index.
    pub worker: Option<usize>,
    /// Error, if failed.
    pub error: Option<String>,
}

/// Lifecycle phase of a fault incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum FaultPhase {
    /// The fault occurred (injection time).
    Injected,
    /// The platform noticed (watchdog timeout, CUDA error, breaker trip).
    Detected,
    /// Service restored (worker ready again, GPU re-admitted, straggler
    /// cleared).
    Recovered,
}

/// One fault/recovery event, the resilience analogue of [`WorkerEvent`].
#[derive(Debug, Clone, Serialize)]
pub struct FaultRecord {
    /// Event time.
    pub t: SimTime,
    /// Incident phase.
    pub phase: FaultPhase,
    /// Fault kind label, e.g. `"worker-crash"`, `"gpu-client-fault"`.
    pub kind: &'static str,
    /// Affected device, when the incident is device-scoped.
    pub gpu: Option<u32>,
    /// Affected worker, when the incident is worker-scoped.
    pub worker: Option<usize>,
    /// Free-form detail.
    pub detail: String,
}

/// One periodic executor-queue sample.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QueueSample {
    /// Sample time.
    pub t: SimTime,
    /// Executor index.
    pub executor: usize,
    /// Ready tasks waiting in the queue.
    pub depth: usize,
}

/// In-memory monitoring store.
#[derive(Debug)]
pub struct Monitoring {
    /// GPU samples, in time order.
    pub samples: Vec<UtilSample>,
    /// Executor queue-depth samples, in time order.
    pub queue_samples: Vec<QueueSample>,
    /// Worker events, in time order.
    pub worker_events: Vec<WorkerEvent>,
    /// Fault and recovery events, in time order.
    pub fault_records: Vec<FaultRecord>,
    /// When false, `worker_event` is a no-op. Per-task lifecycle rows
    /// retain a formatted `String` each; a fleet-scale throughput run
    /// (~10⁶ tasks) would hold millions of them, so the fleet driver
    /// switches recording off. Samples and fault records are
    /// unaffected, and the toggle never changes simulation behaviour —
    /// the store is write-only observability.
    pub record_worker_events: bool,
    /// Per-executor EWMA of task turnaround (submit → finish) in
    /// seconds, updated on every successful completion. O(1) state —
    /// the closed-loop SLO controller reads this instead of scanning
    /// the task table. Indexed by executor; empty slots are unseeded.
    latency_ewma: Vec<f64>,
    /// Completions folded into each executor's EWMA (0 = unseeded).
    latency_samples: Vec<u64>,
}

/// Smoothing factor for the per-executor turnaround EWMA: each new
/// completion moves the estimate 20% toward the observed latency.
const LATENCY_EWMA_ALPHA: f64 = 0.2;

impl Default for Monitoring {
    fn default() -> Self {
        Monitoring {
            samples: Vec::new(),
            queue_samples: Vec::new(),
            worker_events: Vec::new(),
            fault_records: Vec::new(),
            record_worker_events: true,
            latency_ewma: Vec::new(),
            latency_samples: Vec::new(),
        }
    }
}

impl Monitoring {
    /// Empty store.
    pub fn new() -> Self {
        Monitoring::default()
    }

    /// Append a worker event.
    pub fn worker_event(
        &mut self,
        t: SimTime,
        worker: usize,
        kind: WorkerEventKind,
        detail: impl Into<String>,
    ) {
        if !self.record_worker_events {
            return;
        }
        self.worker_events.push(WorkerEvent {
            t,
            worker,
            kind,
            detail: detail.into(),
        });
    }

    /// Append a fault/recovery record.
    pub fn fault_event(
        &mut self,
        t: SimTime,
        phase: FaultPhase,
        kind: &'static str,
        gpu: Option<u32>,
        worker: Option<usize>,
        detail: impl Into<String>,
    ) {
        self.fault_records.push(FaultRecord {
            t,
            phase,
            kind,
            gpu,
            worker,
            detail: detail.into(),
        });
    }

    /// Fold a completed task's turnaround into its executor's EWMA. The
    /// first sample seeds the estimate; later ones move it by
    /// [`LATENCY_EWMA_ALPHA`].
    pub fn note_latency(&mut self, executor: usize, secs: f64) {
        if executor >= self.latency_ewma.len() {
            self.latency_ewma.resize(executor + 1, 0.0);
            self.latency_samples.resize(executor + 1, 0);
        }
        if self.latency_samples[executor] == 0 {
            self.latency_ewma[executor] = secs;
        } else {
            let prev = self.latency_ewma[executor];
            self.latency_ewma[executor] = prev + LATENCY_EWMA_ALPHA * (secs - prev);
        }
        self.latency_samples[executor] += 1;
    }

    /// Current turnaround EWMA of an executor in seconds; `None` until a
    /// task has completed there.
    pub fn latency_ewma(&self, executor: usize) -> Option<f64> {
        (self.latency_samples.get(executor).copied().unwrap_or(0) > 0)
            .then(|| self.latency_ewma[executor])
    }

    /// Mean time to recovery in seconds over closed incidents, or `None`
    /// if no incident both opened and closed.
    ///
    /// Incidents are tracked per subject (a worker index, or a GPU index
    /// for device-scoped records): the first loss-phase record
    /// (`Injected` or `Detected`) opens an incident, the next `Recovered`
    /// for the same subject closes it. Unclosed incidents (budget
    /// exhausted, run ended mid-outage) are excluded.
    pub fn mttr_s(&self) -> Option<f64> {
        // lint:allow(hash-order, open-incident table is only probed by key (entry/remove); it is never iterated, so its order cannot reach any sim-visible or reported value)
        use std::collections::HashMap;
        // Subject key: workers and GPUs live in disjoint key spaces.
        #[derive(PartialEq, Eq, Hash, Clone, Copy)]
        enum Subject {
            Worker(usize),
            Gpu(u32),
        }
        // lint:allow(hash-order, keyed lookups only; iteration order never escapes)
        let mut open: HashMap<Subject, SimTime> = HashMap::new();
        let mut total = 0.0;
        let mut closed = 0u64;
        for r in &self.fault_records {
            let subject = match (r.worker, r.gpu) {
                (Some(w), _) => Subject::Worker(w),
                (None, Some(g)) => Subject::Gpu(g),
                (None, None) => continue,
            };
            match r.phase {
                FaultPhase::Injected | FaultPhase::Detected => {
                    open.entry(subject).or_insert(r.t);
                }
                FaultPhase::Recovered => {
                    if let Some(t0) = open.remove(&subject) {
                        total += r.t.duration_since(t0).as_secs_f64();
                        closed += 1;
                    }
                }
            }
        }
        (closed > 0).then(|| total / closed as f64)
    }

    /// Mean utilization of `gpu` over all samples.
    pub fn mean_utilization(&self, gpu: u32) -> f64 {
        let xs: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.gpu == gpu)
            .map(|s| s.utilization)
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    }

    /// Mean queue depth of an executor over all samples.
    pub fn mean_queue_depth(&self, executor: usize) -> f64 {
        let xs: Vec<usize> = self
            .queue_samples
            .iter()
            .filter(|s| s.executor == executor)
            .map(|s| s.depth)
            .collect();
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<usize>() as f64 / xs.len() as f64
        }
    }

    /// Peak sampled queue depth of an executor.
    pub fn peak_queue_depth(&self, executor: usize) -> usize {
        self.queue_samples
            .iter()
            .filter(|s| s.executor == executor)
            .map(|s| s.depth)
            .max()
            .unwrap_or(0)
    }

    /// Fraction of samples where `gpu` was fully idle.
    pub fn idle_fraction(&self, gpu: u32) -> f64 {
        let xs: Vec<&UtilSample> = self.samples.iter().filter(|s| s.gpu == gpu).collect();
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().filter(|s| s.utilization <= f64::EPSILON).count() as f64 / xs.len() as f64
    }

    /// Queue-depth p50/p95/p99 for an executor, from the periodic queue
    /// samples. `None` when the executor was never sampled.
    pub fn queue_depth_percentiles(&self, executor: usize) -> Option<Percentiles> {
        let xs: Vec<f64> = self
            .queue_samples
            .iter()
            .filter(|s| s.executor == executor)
            .map(|s| s.depth as f64)
            .collect();
        Percentiles::of(xs)
    }
}

/// p50/p95/p99 of an empirical distribution (nearest-rank on the sorted
/// sample, the same convention the bench scenarios use for p95).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Compute from an unsorted sample; `None` when empty.
    pub fn of(mut xs: Vec<f64>) -> Option<Self> {
        if xs.is_empty() {
            return None;
        }
        xs.sort_by(f64::total_cmp);
        let pick = |q: f64| {
            let n = xs.len();
            xs[((n as f64 * q).ceil() as usize)
                .saturating_sub(1)
                .min(n - 1)]
        };
        Some(Percentiles {
            p50: pick(0.50),
            p95: pick(0.95),
            p99: pick(0.99),
        })
    }
}

/// Time-in-queue (submit → dispatch; for retried tasks the last
/// attempt's dispatch, matching the task record) p50/p95/p99 over every
/// dispatched task of an executor. `None` when nothing was dispatched
/// there yet.
pub fn time_in_queue_percentiles(dfk: &Dfk, executor: usize) -> Option<Percentiles> {
    let xs: Vec<f64> = dfk
        .tasks()
        .iter()
        .filter(|t| t.executor == executor)
        .filter_map(|t| {
            t.dispatched
                .map(|d| d.duration_since(t.submitted).as_secs_f64())
        })
        .collect();
    Percentiles::of(xs)
}

/// Name a task state.
fn state_name(s: TaskState) -> &'static str {
    match s {
        TaskState::Waiting => "waiting",
        TaskState::Ready => "ready",
        TaskState::Running => "running",
        TaskState::Done => "done",
        TaskState::Failed => "failed",
    }
}

/// Serialize a full monitoring snapshot (task rows + GPU samples +
/// worker events) as pretty JSON — the moral equivalent of dumping
/// Parsl's monitoring database for offline analysis.
pub fn export_json(dfk: &Dfk, monitor: &Monitoring) -> String {
    #[derive(Serialize)]
    struct Snapshot<'a> {
        tasks: Vec<TaskRow>,
        samples: &'a [UtilSample],
        queue_samples: &'a [QueueSample],
        worker_events: &'a [WorkerEvent],
        fault_records: &'a [FaultRecord],
    }
    serde_json::to_string_pretty(&Snapshot {
        tasks: task_rows(dfk),
        samples: &monitor.samples,
        queue_samples: &monitor.queue_samples,
        worker_events: &monitor.worker_events,
        fault_records: &monitor.fault_records,
    })
    .expect("monitoring snapshot serializes")
}

/// Flatten the DFK task table for export.
pub fn task_rows(dfk: &Dfk) -> Vec<TaskRow> {
    dfk.tasks()
        .iter()
        .map(|t| TaskRow {
            id: t.id.0,
            app: t.app.clone(),
            executor: t.executor,
            state: state_name(t.state),
            turnaround_s: t
                .finished
                .map(|f| f.duration_since(t.submitted).as_secs_f64()),
            exec_s: match (t.started, t.finished) {
                (Some(s), Some(f)) => Some(f.duration_since(s).as_secs_f64()),
                _ => None,
            },
            worker: t.worker,
            error: t.error.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_aggregates() {
        let mut m = Monitoring::new();
        for (t, u) in [(1u64, 0.0), (2, 1.0), (3, 0.5), (4, 0.0)] {
            m.samples.push(UtilSample {
                t: SimTime::from_secs(t),
                gpu: 0,
                busy_sms: u * 108.0,
                utilization: u,
                memory_used: 0,
            });
        }
        assert!((m.mean_utilization(0) - 0.375).abs() < 1e-12);
        assert!((m.idle_fraction(0) - 0.5).abs() < 1e-12);
        assert_eq!(m.mean_utilization(1), 0.0);
    }

    #[test]
    fn export_json_roundtrips_through_serde() {
        use crate::app::bodies::CpuBurn;
        use crate::app::AppCall;
        use parfait_simcore::SimDuration;
        let mut dfk = Dfk::new();
        let (a, _) = dfk.submit(
            SimTime::ZERO,
            AppCall::new("demo", "cpu", |_| {
                Box::new(CpuBurn::new(SimDuration::from_secs(1)))
            }),
            0,
            0,
        );
        dfk.mark_dispatched(a, SimTime::ZERO, 0);
        dfk.mark_started(a, SimTime::ZERO);
        dfk.mark_done(a, SimTime::from_secs(1));
        let mut m = Monitoring::new();
        m.worker_event(SimTime::ZERO, 0, WorkerEventKind::Ready, "");
        m.samples.push(UtilSample {
            t: SimTime::from_secs(1),
            gpu: 0,
            busy_sms: 54.0,
            utilization: 0.5,
            memory_used: 1024,
        });
        let json = export_json(&dfk, &m);
        let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(v["tasks"][0]["app"], "demo");
        assert_eq!(v["tasks"][0]["state"], "done");
        assert_eq!(v["samples"][0]["utilization"], 0.5);
        assert_eq!(v["worker_events"][0]["kind"], "Ready");
    }

    #[test]
    fn queue_depth_aggregates() {
        let mut m = Monitoring::new();
        for (t, d) in [(1u64, 0usize), (2, 4), (3, 8), (4, 0)] {
            m.queue_samples.push(QueueSample {
                t: SimTime::from_secs(t),
                executor: 0,
                depth: d,
            });
        }
        assert!((m.mean_queue_depth(0) - 3.0).abs() < 1e-12);
        assert_eq!(m.peak_queue_depth(0), 8);
        assert_eq!(m.peak_queue_depth(5), 0);
    }

    #[test]
    fn mttr_pairs_loss_with_recovery_per_subject() {
        let mut m = Monitoring::new();
        assert_eq!(m.mttr_s(), None);
        let s = SimTime::from_secs;
        // Worker 0: injected at 10, detected at 12, recovered at 16 → 6 s.
        m.fault_event(
            s(10),
            FaultPhase::Injected,
            "worker-crash",
            None,
            Some(0),
            "",
        );
        m.fault_event(
            s(12),
            FaultPhase::Detected,
            "worker-crash",
            None,
            Some(0),
            "",
        );
        m.fault_event(
            s(16),
            FaultPhase::Recovered,
            "worker-restored",
            None,
            Some(0),
            "",
        );
        // GPU 1: detected at 20, recovered at 30 → 10 s.
        m.fault_event(
            s(20),
            FaultPhase::Detected,
            "gpu-quarantine",
            Some(1),
            None,
            "",
        );
        m.fault_event(
            s(30),
            FaultPhase::Recovered,
            "gpu-readmitted",
            Some(1),
            None,
            "",
        );
        // Worker 5: lost, never recovered → excluded.
        m.fault_event(
            s(40),
            FaultPhase::Detected,
            "worker-crash",
            None,
            Some(5),
            "",
        );
        let mttr = m.mttr_s().unwrap();
        assert!((mttr - 8.0).abs() < 1e-9, "mttr {mttr}");
    }

    #[test]
    fn latency_ewma_seeds_then_smooths() {
        let mut m = Monitoring::new();
        assert_eq!(m.latency_ewma(0), None);
        m.note_latency(0, 2.0);
        assert_eq!(m.latency_ewma(0), Some(2.0));
        m.note_latency(0, 4.0);
        // 2.0 + 0.2 * (4.0 - 2.0) = 2.4
        assert!((m.latency_ewma(0).unwrap() - 2.4).abs() < 1e-12);
        assert_eq!(m.latency_ewma(3), None);
    }

    #[test]
    fn worker_events_record() {
        let mut m = Monitoring::new();
        m.worker_event(SimTime::ZERO, 3, WorkerEventKind::Spawned, "");
        m.worker_event(SimTime::from_secs(2), 3, WorkerEventKind::Ready, "cold=2s");
        assert_eq!(m.worker_events.len(), 2);
        assert_eq!(m.worker_events[1].kind, WorkerEventKind::Ready);
    }
}
