//! Overload-protection state: admission/hedge RNGs, retry-budget token
//! buckets, live hedge pairs, and the shed/hedge/brownout counters.
//!
//! The mechanisms themselves live where the traffic flows: admission
//! control and retry budgets gate [`crate::world::submit`] and the retry
//! scheduler, hedging hooks the body-start/finish paths in
//! [`crate::world`], and the brownout controller is a strategy-layer
//! tick ([`crate::strategy::enable_brownout`]). This module only owns
//! the shared state so every entry point mutates one place. Knobs are in
//! [`crate::config::OverloadConfig`]; see DESIGN.md "Overload model".

use crate::app::TaskId;
use parfait_simcore::SimRng;
use serde::Serialize;
use std::collections::BTreeMap;

/// Counters for every protective action taken (all zero when protection
/// is disabled). Serialized into the BENCH reports next to
/// [`crate::RecoveryStats`].
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct OverloadStats {
    /// Queued tasks evicted by a shed policy to admit newer work.
    pub tasks_shed: u64,
    /// Tasks refused at the door (queue full under `Reject`, newcomer
    /// was the lowest priority, or deadline unattainable at submit).
    pub tasks_rejected: u64,
    /// Retries dropped because the app's retry-budget bucket was dry.
    pub retries_suppressed: u64,
    /// Speculative duplicates launched for suspected stragglers.
    pub hedges_launched: u64,
    /// Hedged tasks whose *duplicate* finished first.
    pub hedges_won: u64,
    /// Hedged tasks whose primary finished first (the duplicate's work
    /// was thrown away).
    pub hedges_wasted: u64,
    /// Cumulative time any brownout controller spent engaged (degraded
    /// tier active).
    pub brownout_seconds: f64,
}

/// A live hedge pair: one task running on two workers at once.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HedgePair {
    /// Worker running the original attempt.
    pub primary: usize,
    /// Worker running the speculative duplicate.
    pub hedge: usize,
}

/// Mutable overload-protection state owned by the world.
pub struct OverloadState {
    /// Shed tie-break draws (`simcore::streams::ADMISSION`).
    pub(crate) admission_rng: SimRng,
    /// Hedge-delay jitter draws (`simcore::streams::HEDGE_TIMING`).
    pub(crate) hedge_rng: SimRng,
    /// Per-app retry-budget token balances. Created lazily at the app's
    /// first admission, seeded with the configured burst.
    pub(crate) retry_tokens: BTreeMap<String, f64>,
    /// Tasks currently running as a primary/duplicate pair. An entry
    /// exists from hedge launch until the first attempt finishes (either
    /// way); its absence plus a `Done` task state is how a late loser
    /// recognizes the race is over.
    pub(crate) hedges: BTreeMap<TaskId, HedgePair>,
    /// Action counters.
    pub stats: OverloadStats,
}

impl OverloadState {
    /// Fresh state from the two registered streams.
    pub(crate) fn new(admission_rng: SimRng, hedge_rng: SimRng) -> Self {
        OverloadState {
            admission_rng,
            hedge_rng,
            retry_tokens: BTreeMap::new(),
            hedges: BTreeMap::new(),
            stats: OverloadStats::default(),
        }
    }

    /// Current retry-token balance for an app (`None` = app never
    /// admitted, bucket not yet created).
    pub fn retry_tokens(&self, app: &str) -> Option<f64> {
        self.retry_tokens.get(app).copied()
    }

    /// Is this task currently running as a primary/duplicate pair?
    pub fn is_hedged(&self, task: TaskId) -> bool {
        self.hedges.contains_key(&task)
    }
}
