//! Apps, tasks and task bodies.
//!
//! In Parsl a decorated Python function is an **app**; each invocation
//! becomes a task dispatched to a worker. Here an app invocation carries a
//! [`TaskBody`] — a resumable state machine that yields [`TaskStep`]s; the
//! worker interprets the steps against the simulated node (CPU timers,
//! GPU kernel launches, device memory). This is the moral equivalent of
//! the Python function's trace of framework calls.

use parfait_gpu::KernelDesc;
use parfait_simcore::{SimDuration, SimRng, SimTime};
use serde::Serialize;
use std::rc::Rc;

/// Global task identifier assigned by the DataFlowKernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct TaskId(pub u64);

/// A model artifact a task needs resident in GPU memory (weights + KV
/// cache + activation workspace). Workers cache loads by `id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ModelProfile {
    /// Stable identity (e.g. hash of "llama2-7b-fp16").
    pub id: u64,
    /// Total resident bytes once loaded.
    pub bytes: u64,
    /// Of `bytes`, how many are immutable weights that the §7 GPU-resident
    /// weight cache may share across function instances (the remainder —
    /// KV cache, activations — is always private to the process).
    pub shared_bytes: u64,
}

impl ModelProfile {
    /// A fully private model (no shareable weights).
    pub fn private(id: u64, bytes: u64) -> Self {
        ModelProfile {
            id,
            bytes,
            shared_bytes: 0,
        }
    }

    /// Private (per-process) bytes.
    pub fn private_bytes(&self) -> u64 {
        self.bytes - self.shared_bytes.min(self.bytes)
    }
}

/// What a task body wants to do next.
pub enum TaskStep {
    /// Host-side compute/IO on the worker for the given duration
    /// (tokenization, Python dispatch, result serialization...).
    Cpu(SimDuration),
    /// Launch one GPU kernel and wait for it.
    Gpu(KernelDesc),
    /// Allocate device memory (activations, buffers). Fails the task on
    /// OOM, like a CUDA allocation error would.
    AllocGpu(u64),
    /// Free device memory previously allocated by this task.
    FreeGpu(u64),
    /// The task finished successfully.
    Done,
}

/// Context handed to [`TaskBody::next`].
pub struct TaskCtx<'a> {
    /// Task-private randomness (derived deterministically per task).
    pub rng: &'a mut SimRng,
    /// Current virtual time.
    pub now: SimTime,
}

/// A resumable task program.
///
/// `next` is called when the previous step completes; returning
/// [`TaskStep::Done`] ends the task. Bodies run on exactly one worker and
/// need not be `Send` — the simulation is single-threaded.
pub trait TaskBody: 'static {
    /// Model that must be resident before the first step runs (`None` for
    /// model-free tasks). The worker loads it once and keeps it warm.
    fn model(&self) -> Option<ModelProfile> {
        None
    }
    /// Produce the next step.
    fn next(&mut self, ctx: &mut TaskCtx<'_>) -> TaskStep;
    /// Can this body's progress be snapshotted at step boundaries and
    /// later resumed by fast-forwarding a fresh body past the completed
    /// steps? Opt-in: bodies whose step sequence is a deterministic
    /// function of construction (kernel sequences, completion sessions)
    /// return `true`; the default is `false`.
    fn checkpointable(&self) -> bool {
        false
    }
    /// Durable private state a snapshot must serialize, beyond the
    /// task's explicit device allocations (e.g. the KV cache grown so
    /// far in a completion session). Activation scratch is *not*
    /// durable — it is recomputed on resume — so this is typically far
    /// smaller than [`ModelProfile::private_bytes`].
    fn checkpoint_bytes(&self) -> u64 {
        0
    }
}

/// Factory recreating a fresh body per attempt (retries re-run from the
/// start, as Parsl re-executes the function).
pub type BodyFactory = Rc<dyn Fn(&mut SimRng) -> Box<dyn TaskBody>>;

/// One app invocation submitted to the DataFlowKernel.
pub struct AppCall {
    /// App (function) name; becomes the timeline track for Fig. 3-style
    /// phase plots.
    pub app: String,
    /// Executor label this call is routed to (Parsl's `executors=[...]`).
    pub executor: String,
    /// Body factory.
    pub make_body: BodyFactory,
    /// Tasks that must complete successfully first.
    pub depends_on: Vec<TaskId>,
    /// Serialized argument payload size (drives the wire-dispatch latency
    /// of [`crate::wire::WireCodec`]). Defaults to a small pickled tuple.
    pub payload_bytes: usize,
    /// Per-attempt execution walltime limit (Parsl's `walltime` app
    /// option). The worker kills the attempt when it expires; retries
    /// apply as for any failure.
    pub walltime: Option<parfait_simcore::SimDuration>,
    /// End-to-end completion deadline relative to submit time. Used by
    /// deadline-aware admission control (`Config::overload`) and by the
    /// goodput accounting in the overload benchmarks. `None` = no SLO.
    pub deadline: Option<SimDuration>,
    /// Admission priority: higher values survive shed-lowest-priority
    /// queue eviction longer. Defaults to 0.
    pub priority: i32,
    /// Caller-estimated service time of one attempt (from the GPU
    /// performance model, e.g. `LlmSpec::solo_completion_seconds` at the
    /// partition's SM share). Drives the queue-wait estimate of
    /// deadline-aware admission and the straggler-hedge trigger.
    pub est_service: Option<SimDuration>,
}

impl AppCall {
    /// Convenience constructor for a dependency-free call.
    pub fn new(
        app: impl Into<String>,
        executor: impl Into<String>,
        make_body: impl Fn(&mut SimRng) -> Box<dyn TaskBody> + 'static,
    ) -> Self {
        AppCall {
            app: app.into(),
            executor: executor.into(),
            make_body: Rc::new(make_body),
            depends_on: Vec::new(),
            payload_bytes: 2 * 1024,
            walltime: None,
            deadline: None,
            priority: 0,
            est_service: None,
        }
    }

    /// Add dependencies.
    pub fn after(mut self, deps: &[TaskId]) -> Self {
        self.depends_on.extend_from_slice(deps);
        self
    }

    /// Set the serialized argument payload size (e.g. a closed-over
    /// numpy array).
    pub fn with_payload(mut self, bytes: usize) -> Self {
        self.payload_bytes = bytes;
        self
    }

    /// Set a per-attempt walltime limit (Parsl's `walltime` option).
    pub fn with_walltime(mut self, limit: SimDuration) -> Self {
        self.walltime = Some(limit);
        self
    }

    /// Set an end-to-end completion deadline relative to submit time.
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Set the admission priority (higher survives shedding longer).
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    /// Set the estimated single-attempt service time.
    pub fn with_est_service(mut self, est: SimDuration) -> Self {
        self.est_service = Some(est);
        self
    }
}

/// Simple reusable bodies.
pub mod bodies {
    use super::*;

    /// A body that burns CPU for a fixed duration.
    pub struct CpuBurn {
        remaining: Option<SimDuration>,
    }

    impl CpuBurn {
        /// Burn for `d`.
        pub fn new(d: SimDuration) -> Self {
            CpuBurn { remaining: Some(d) }
        }
    }

    impl TaskBody for CpuBurn {
        fn next(&mut self, _ctx: &mut TaskCtx<'_>) -> TaskStep {
            match self.remaining.take() {
                Some(d) => TaskStep::Cpu(d),
                None => TaskStep::Done,
            }
        }
    }

    /// A body that runs a fixed sequence of kernels with optional host
    /// time between them.
    pub struct KernelSeq {
        kernels: std::vec::IntoIter<KernelDesc>,
        host_between: SimDuration,
        pending: Option<KernelDesc>,
        model: Option<ModelProfile>,
    }

    impl KernelSeq {
        /// Sequence of `kernels` with `host_between` of CPU before each.
        pub fn new(kernels: Vec<KernelDesc>, host_between: SimDuration) -> Self {
            KernelSeq {
                kernels: kernels.into_iter(),
                host_between,
                pending: None,
                model: None,
            }
        }

        /// Require a model resident.
        pub fn with_model(mut self, m: ModelProfile) -> Self {
            self.model = Some(m);
            self
        }
    }

    impl TaskBody for KernelSeq {
        fn model(&self) -> Option<ModelProfile> {
            self.model
        }
        fn checkpointable(&self) -> bool {
            // The kernel list is fixed at construction; a fresh body
            // replays identically and can fast-forward past a snapshot.
            true
        }
        fn next(&mut self, _ctx: &mut TaskCtx<'_>) -> TaskStep {
            if let Some(k) = self.pending.take() {
                return TaskStep::Gpu(k);
            }
            match self.kernels.next() {
                Some(k) if !self.host_between.is_zero() => {
                    self.pending = Some(k);
                    TaskStep::Cpu(self.host_between)
                }
                Some(k) => TaskStep::Gpu(k),
                None => TaskStep::Done,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::bodies::*;
    use super::*;

    fn ctx_call(body: &mut dyn TaskBody) -> Vec<&'static str> {
        let mut rng = SimRng::new(0);
        let mut out = Vec::new();
        for _ in 0..32 {
            let mut ctx = TaskCtx {
                rng: &mut rng,
                now: SimTime::ZERO,
            };
            match body.next(&mut ctx) {
                TaskStep::Cpu(_) => out.push("cpu"),
                TaskStep::Gpu(_) => out.push("gpu"),
                TaskStep::AllocGpu(_) => out.push("alloc"),
                TaskStep::FreeGpu(_) => out.push("free"),
                TaskStep::Done => {
                    out.push("done");
                    break;
                }
            }
        }
        out
    }

    #[test]
    fn cpu_burn_is_one_step() {
        let mut b = CpuBurn::new(SimDuration::from_secs(1));
        assert_eq!(ctx_call(&mut b), vec!["cpu", "done"]);
    }

    #[test]
    fn kernel_seq_interleaves_host_time() {
        let k = KernelDesc::new("k", 1.0, 10, 10, 0.0);
        let mut b = KernelSeq::new(vec![k.clone(), k], SimDuration::from_millis(5));
        assert_eq!(ctx_call(&mut b), vec!["cpu", "gpu", "cpu", "gpu", "done"]);
    }

    #[test]
    fn kernel_seq_without_host_time() {
        let k = KernelDesc::new("k", 1.0, 10, 10, 0.0);
        let mut b = KernelSeq::new(vec![k.clone(), k.clone(), k], SimDuration::ZERO);
        assert_eq!(ctx_call(&mut b), vec!["gpu", "gpu", "gpu", "done"]);
    }

    #[test]
    fn app_call_builder() {
        let call = AppCall::new("infer", "gpu", |_rng| {
            Box::new(CpuBurn::new(SimDuration::from_secs(1)))
        })
        .after(&[TaskId(3), TaskId(4)]);
        assert_eq!(call.app, "infer");
        assert_eq!(call.executor, "gpu");
        assert_eq!(call.depends_on, vec![TaskId(3), TaskId(4)]);
    }

    #[test]
    fn model_profile_surfaces() {
        let k = KernelDesc::new("k", 1.0, 10, 10, 0.0);
        let m = ModelProfile::private(9, 1 << 30);
        let b = KernelSeq::new(vec![k], SimDuration::ZERO).with_model(m);
        assert_eq!(b.model(), Some(m));
    }
}
