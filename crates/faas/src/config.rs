//! Runtime configuration, mirroring the paper's Listings 1–3.
//!
//! A [`Config`] holds one or more executor definitions. The GPU-visible
//! surface matches the enhanced Parsl of §4: `available_accelerators` may
//! repeat a GPU to multiplex it (Listing 2), an optional parallel
//! `gpu_percentage` list caps each worker's SMs through MPS, and entries
//! may be MIG UUIDs (Listing 3). String parsing and plan synthesis live in
//! `parfait-core` (the paper's contribution); this layer consumes the
//! resolved [`AcceleratorSpec`]s.

use crate::wire::WireCodec;
use parfait_gpu::context::ColdStartModel;
use parfait_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// A resolved accelerator binding for one worker slot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcceleratorSpec {
    /// Whole GPU by fleet index (`CUDA_VISIBLE_DEVICES=<n>`), sharing per
    /// the device's current mode.
    Gpu(u32),
    /// GPU index with an MPS active-thread percentage
    /// (`CUDA_MPS_ACTIVE_THREAD_PERCENTAGE=<pct>`).
    GpuPercentage(u32, u32),
    /// A MIG instance by UUID (`CUDA_VISIBLE_DEVICES=MIG-...`).
    Mig(String),
    /// A vGPU slot on a GPU.
    VgpuSlot(u32, u32),
}

impl AcceleratorSpec {
    /// Fleet index of the underlying physical GPU, when directly named.
    /// MIG UUIDs resolve at worker start via the fleet.
    pub fn gpu_index(&self) -> Option<u32> {
        match self {
            AcceleratorSpec::Gpu(i)
            | AcceleratorSpec::GpuPercentage(i, _)
            | AcceleratorSpec::VgpuSlot(i, _) => Some(*i),
            AcceleratorSpec::Mig(_) => None,
        }
    }
}

/// How workers are provisioned (Parsl execution providers, §2.2.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ProviderConfig {
    /// `LocalProvider`: fork worker processes on the local node.
    Local {
        /// Process fork+exec delay before cold start begins.
        spawn_delay: SimDuration,
    },
    /// `SlurmProvider`: batch-queue wait then remote launch.
    Slurm {
        /// Mean queue wait (exponential).
        queue_wait_mean: SimDuration,
        /// srun launch delay once scheduled.
        spawn_delay: SimDuration,
    },
}

impl Default for ProviderConfig {
    fn default() -> Self {
        ProviderConfig::Local {
            spawn_delay: SimDuration::from_millis(150),
        }
    }
}

/// Executor flavours (§2.2.1: Parsl "supports Executors designed to
/// support different use cases; from extreme-scale to low latency").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutorKind {
    /// The pilot-job `HighThroughputExecutor`: provider-spawned worker
    /// processes with full cold starts — the executor this paper extends.
    HighThroughput,
    /// Python's `ThreadPoolExecutor`: threads of the already-running
    /// submitting process — no provider delay, no cold start, CPU-only.
    ThreadPool,
}

/// One executor definition.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Label tasks route by (Listing 1's `label='cpu'` / `label="gpu"`).
    pub label: String,
    /// Worker process count (`max_workers`).
    pub max_workers: usize,
    /// Accelerator bound to each worker slot, cycled Parsl-style: worker
    /// `i` takes `accelerators[i % len]`. Empty = CPU-only workers.
    pub accelerators: Vec<AcceleratorSpec>,
    /// Provider used to provision the workers.
    pub provider: ProviderConfig,
    /// Executor flavour.
    pub kind: ExecutorKind,
}

impl ExecutorConfig {
    /// CPU-only executor (Listing 1's first entry).
    pub fn cpu(label: impl Into<String>, max_workers: usize) -> Self {
        ExecutorConfig {
            label: label.into(),
            max_workers,
            accelerators: Vec::new(),
            provider: ProviderConfig::default(),
            kind: ExecutorKind::HighThroughput,
        }
    }

    /// `ThreadPoolExecutor`-style in-process thread pool (§2.2.1):
    /// CPU-only, instantly warm, no provider.
    pub fn thread_pool(label: impl Into<String>, threads: usize) -> Self {
        ExecutorConfig {
            label: label.into(),
            max_workers: threads,
            accelerators: Vec::new(),
            provider: ProviderConfig::Local {
                spawn_delay: SimDuration::ZERO,
            },
            kind: ExecutorKind::ThreadPool,
        }
    }

    /// GPU executor with explicit accelerator slots; `max_workers`
    /// defaults to one worker per slot, as the paper's multiplexing
    /// configurations do.
    pub fn gpu(label: impl Into<String>, accelerators: Vec<AcceleratorSpec>) -> Self {
        let n = accelerators.len();
        ExecutorConfig {
            label: label.into(),
            max_workers: n,
            accelerators,
            provider: ProviderConfig::default(),
            kind: ExecutorKind::HighThroughput,
        }
    }

    /// Accelerator for worker slot `i` (cycled).
    pub fn accelerator_for(&self, worker_index: usize) -> Option<&AcceleratorSpec> {
        if self.accelerators.is_empty() {
            None
        } else {
            Some(&self.accelerators[worker_index % self.accelerators.len()])
        }
    }
}

/// Top-level configuration (Listing 1's `Config`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Config {
    /// Executor definitions.
    pub executors: Vec<ExecutorConfig>,
    /// Task retry budget on failure (`retries=1` in Listing 1).
    pub retries: u32,
    /// Cold-start model applied to new worker processes.
    pub cold_start: ColdStartModel,
    /// Task-dispatch serialization/transport model.
    pub wire: WireCodec,
    /// Physical cores on the node (the paper's testbed has 24 Xeon
    /// cores). CPU steps slow down proportionally when more workers are
    /// simultaneously compute-bound than there are cores.
    pub node_cores: usize,
    /// Sampling period for node/GPU monitoring records (None = off).
    pub monitoring_period: Option<SimDuration>,
    /// Failure detection and recovery parameters (heartbeat watchdog,
    /// retry backoff, restart budget, per-GPU circuit breaker).
    pub recovery: RecoveryConfig,
    /// Physical placement of the GPU fleet (GPU → host → rack). Drives
    /// the blast radius of correlated faults ([`crate::FaultKind::HostReboot`],
    /// [`crate::FaultKind::RackPower`]).
    pub topology: Topology,
    /// Periodic checkpointing of long-running task bodies (disabled by
    /// default; recovery then re-executes lost attempts from scratch).
    pub checkpoint: CheckpointPolicy,
    /// Overload protection: bounded queues with shedding, deadline-aware
    /// admission, retry budgets, and straggler hedging. Fully disabled by
    /// default so existing scenarios and artifacts are untouched.
    pub overload: OverloadConfig,
    /// Online-reconfiguration protocol knobs: staged-drain timeout and
    /// injectable transaction-failure probability.
    pub reconfig: ReconfigConfig,
}

/// Knobs for the staged drain / reconfig-transaction protocol (see
/// DESIGN.md §11). Reconfigurations requested through the core crate's
/// `begin_resize_mps` / `begin_reconfigure_mig` first stop dispatch to
/// the target workers, wait for in-flight tasks to finish (or
/// checkpoint), and force-kill whatever is still running after
/// `drain_timeout`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ReconfigConfig {
    /// How long a staged drain waits for in-flight tasks before
    /// force-killing the stragglers and proceeding to commit.
    pub drain_timeout: SimDuration,
    /// Probability that a reconfig transaction's commit fails (drawn on
    /// the dedicated `simcore::streams::RECONFIG_FAULTS` stream). `0.0`
    /// never draws, so enabling it elsewhere perturbs nothing.
    pub fail_prob: f64,
}

impl Default for ReconfigConfig {
    fn default() -> Self {
        ReconfigConfig {
            drain_timeout: SimDuration::from_secs(30),
            fail_prob: 0.0,
        }
    }
}

/// Physical placement of the GPU fleet: fleet index → host → rack.
///
/// The mapping is positional: host `h` owns GPUs
/// `[h * gpus_per_host, (h+1) * gpus_per_host)` and rack `r` owns hosts
/// `[r * hosts_per_rack, (r+1) * hosts_per_rack)`. CPU-only workers have
/// no GPU binding and therefore sit outside every GPU fault domain —
/// a host reboot in this model fences accelerators, not the submitting
/// process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Topology {
    /// GPUs per host (the paper's testbed packs 4 A100s per node).
    pub gpus_per_host: u32,
    /// Hosts per rack.
    pub hosts_per_rack: u32,
}

impl Default for Topology {
    fn default() -> Self {
        Topology {
            gpus_per_host: 4,
            hosts_per_rack: 4,
        }
    }
}

impl Topology {
    /// Host owning fleet GPU `gpu`.
    pub fn host_of(&self, gpu: u32) -> u32 {
        gpu / self.gpus_per_host.max(1)
    }

    /// Rack owning host `host`.
    pub fn rack_of_host(&self, host: u32) -> u32 {
        host / self.hosts_per_rack.max(1)
    }

    /// Rack owning fleet GPU `gpu`.
    pub fn rack_of(&self, gpu: u32) -> u32 {
        self.rack_of_host(self.host_of(gpu))
    }

    /// Fleet GPUs resident on `host`, in fleet order, bounded by the
    /// fleet size.
    pub fn gpus_on_host(&self, host: u32, gpu_count: u32) -> Vec<u32> {
        (0..gpu_count)
            .filter(|g| self.host_of(*g) == host)
            .collect()
    }

    /// Hosts in `rack` that own at least one of the fleet's GPUs, in
    /// host order.
    pub fn hosts_in_rack(&self, rack: u32, gpu_count: u32) -> Vec<u32> {
        let mut hosts: Vec<u32> = (0..gpu_count)
            .map(|g| self.host_of(g))
            .filter(|h| self.rack_of_host(*h) == rack)
            .collect();
        hosts.dedup();
        hosts
    }
}

/// Periodic checkpointing of long-running task bodies.
///
/// When enabled, checkpointable bodies (LLM completion sessions, kernel
/// sequences) snapshot their progress at step boundaries roughly every
/// `interval`. A snapshot stalls the task for `overhead` plus the
/// device-priced writeback of the snapshot bytes (KV/workspace state +
/// live task allocations) over the same effective PCIe bandwidth the
/// model loader uses; recovery then resumes the task from its last
/// committed snapshot instead of re-executing from scratch.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Target gap between snapshots of one task. `None` disables
    /// checkpointing entirely.
    pub interval: Option<SimDuration>,
    /// Fixed per-snapshot overhead (serialization, consistency barrier)
    /// added on top of the bandwidth-priced writeback.
    pub overhead: SimDuration,
    /// Uniform jitter fraction applied to each arm of the checkpoint
    /// timer (`interval * (1 + jitter * U[0,1))`), drawn from the seeded
    /// checkpoint stream so co-resident workers de-synchronize their
    /// writebacks reproducibly. Clamped to `[0, 1]`.
    pub jitter: f64,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            interval: None,
            overhead: SimDuration::from_millis(200),
            jitter: 0.10,
        }
    }
}

impl CheckpointPolicy {
    /// Policy snapshotting every `interval` with default overhead/jitter.
    pub fn every(interval: SimDuration) -> Self {
        CheckpointPolicy {
            interval: Some(interval),
            ..CheckpointPolicy::default()
        }
    }
}

/// Overload-protection knobs (see DESIGN.md "Overload model"). Every
/// mechanism is opt-in and independent; the default config disables all
/// of them, which reproduces the historical accept-everything behaviour.
///
/// Admission decisions apply to tasks that are *ready at submit time*.
/// Tasks released later by a completing dependency were already accepted
/// as part of their workflow and bypass admission — shedding the tail of
/// an admitted DAG would waste the work already sunk into its head.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct OverloadConfig {
    /// Per-executor queue depth bound. A ready task submitted while the
    /// queue holds this many entries triggers [`OverloadConfig::shed_policy`].
    /// `None` = unbounded (historical behaviour).
    pub queue_cap: Option<usize>,
    /// What to do when the queue is full.
    pub shed_policy: ShedPolicy,
    /// Reject tasks whose estimated queue wait plus service time already
    /// exceeds their deadline at submit time. Only tasks carrying both a
    /// deadline and a service estimate (see
    /// [`crate::AppCall::with_deadline`] /
    /// [`crate::AppCall::with_est_service`]) are screened.
    pub deadline_admission: bool,
    /// Per-app token bucket capping retry traffic as a fraction of
    /// first-attempt traffic. `None` = retries limited only by the
    /// per-task `retries` budget (historical behaviour).
    pub retry_budget: Option<RetryBudget>,
    /// Straggler hedging: launch a speculative duplicate of a slow task
    /// on another partition and cancel the loser on first completion.
    /// `None` = never hedge.
    pub hedge: Option<HedgePolicy>,
}

/// Victim selection when a bounded queue is full at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ShedPolicy {
    /// Refuse the incoming task; the queue is untouched.
    #[default]
    Reject,
    /// Drop the oldest queued task (it has waited longest and is the
    /// most likely to miss its deadline anyway) and admit the newcomer.
    ShedOldest,
    /// Drop the lowest-priority task among the queue and the newcomer;
    /// ties are broken uniformly on the seeded admission stream
    /// (`simcore::streams::ADMISSION`).
    ShedLowestPriority,
}

/// Token bucket capping retry traffic per app.
///
/// Every admitted first attempt of an app deposits `ratio` tokens
/// (capped at `burst`); every retry withdraws one. A dry bucket sheds
/// the retry permanently and counts `retries_suppressed` — during an
/// outage the retry stream therefore decays to at most `ratio` of the
/// first-attempt stream instead of multiplying it by the per-task retry
/// budget.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RetryBudget {
    /// Tokens deposited per admitted first attempt (the steady-state
    /// retry fraction; e.g. `0.1` allows one retry per ten admissions).
    pub ratio: f64,
    /// Bucket capacity, and the initial balance, in tokens (the burst of
    /// back-to-back retries tolerated before the ratio bites).
    pub burst: f64,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            ratio: 0.1,
            burst: 3.0,
        }
    }
}

/// Straggler-hedging policy.
///
/// A running primary attempt with a service estimate arms a hedge timer
/// for `est_service * trigger_factor * (1 + jitter * U[0,1))` (jitter on
/// `simcore::streams::HEDGE_TIMING`). If the attempt is still running
/// when the timer fires and an idle worker exists in the executor (a
/// different GPU preferred) while the queue is empty, a speculative
/// duplicate launches there — restoring from the task's last committed
/// checkpoint when one exists. The first attempt to complete wins; the
/// loser is cancelled `cancel_latency` later (the control-plane
/// round-trip of the cancellation).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HedgePolicy {
    /// Multiple of the task's service estimate at which the attempt is
    /// declared a straggler suspect (e.g. `1.5` hedges attempts running
    /// 50% past their estimate).
    pub trigger_factor: f64,
    /// Uniform jitter fraction on the hedge delay, clamped to `[0, 1]`.
    pub jitter: f64,
    /// Delay between the winner's completion and the loser's teardown.
    pub cancel_latency: SimDuration,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            trigger_factor: 1.5,
            jitter: 0.10,
            cancel_latency: SimDuration::from_millis(50),
        }
    }
}

/// Failure detection and recovery knobs (see DESIGN.md "Failure model").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Interval between heartbeat-watchdog scans. A crashed (silently
    /// dead) worker is discovered on the first scan after its silence
    /// exceeds [`RecoveryConfig::heartbeat_timeout`].
    pub heartbeat_period: SimDuration,
    /// Heartbeat silence that declares a worker dead. Should be a small
    /// multiple of `heartbeat_period` to bound false positives.
    pub heartbeat_timeout: SimDuration,
    /// First retry delay; attempt `n` of a task waits
    /// `backoff_base * 2^(n-1)`, capped at `backoff_cap`.
    pub backoff_base: SimDuration,
    /// Ceiling on the exponential retry backoff.
    pub backoff_cap: SimDuration,
    /// Uniform jitter fraction added on top of each backoff delay
    /// (`delay * (1 + jitter * U[0,1))`), drawn from the seeded recovery
    /// stream so runs stay reproducible. Clamped to `[0, 1]`.
    pub backoff_jitter: f64,
    /// Automatic restarts allowed per worker slot across the run.
    /// Fault-induced deaths auto-respawn while budget remains; explicit
    /// [`crate::world::kill_worker`] calls never auto-respawn.
    pub restart_budget: u32,
    /// Contained client faults on one GPU before its circuit breaker
    /// trips and the device is quarantined.
    pub breaker_threshold: u32,
    /// How long a quarantined GPU stays fenced before re-admission.
    pub breaker_cooldown: SimDuration,
    /// Host reboot time for [`crate::FaultKind::HostReboot`]: the host's
    /// GPUs stay fenced at least this long after the fault.
    pub host_reboot: SimDuration,
    /// Stagger between consecutive host boot completions when a whole
    /// rack power-cycles (hosts never all return in the same instant).
    pub host_boot_stagger: SimDuration,
    /// Stagger between consecutive GPU re-enrollments on one host after
    /// it boots: the host comes back first, then its GPUs re-enroll one
    /// by one (driver probe + MPS/MIG re-setup serializes per host).
    pub gpu_reenroll_stagger: SimDuration,
    /// Time to restore rack power before any host in the rack can even
    /// begin booting ([`crate::FaultKind::RackPower`]).
    pub rack_power_restore: SimDuration,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            heartbeat_period: SimDuration::from_millis(500),
            heartbeat_timeout: SimDuration::from_secs(2),
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_secs(10),
            backoff_jitter: 0.25,
            restart_budget: 3,
            breaker_threshold: 3,
            breaker_cooldown: SimDuration::from_secs(30),
            host_reboot: SimDuration::from_secs(120),
            host_boot_stagger: SimDuration::from_secs(15),
            gpu_reenroll_stagger: SimDuration::from_secs(5),
            rack_power_restore: SimDuration::from_secs(60),
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            executors: Vec::new(),
            retries: 1,
            cold_start: ColdStartModel::default(),
            wire: WireCodec::default(),
            node_cores: 24,
            monitoring_period: Some(SimDuration::from_millis(500)),
            recovery: RecoveryConfig::default(),
            topology: Topology::default(),
            checkpoint: CheckpointPolicy::default(),
            overload: OverloadConfig::default(),
            reconfig: ReconfigConfig::default(),
        }
    }
}

impl Config {
    /// Config with the given executors and Listing-1 defaults.
    pub fn new(executors: Vec<ExecutorConfig>) -> Self {
        Config {
            executors,
            ..Config::default()
        }
    }

    /// Find an executor index by label.
    pub fn executor_index(&self, label: &str) -> Option<usize> {
        self.executors.iter().position(|e| e.label == label)
    }

    /// Validate the configuration against a fleet of `gpu_count` devices.
    /// Returns every problem found (empty = valid). Run before `boot`;
    /// a worker with a bad binding otherwise dies at cold-start time.
    pub fn validate(&self, gpu_count: u32) -> Vec<ConfigIssue> {
        let mut issues = Vec::new();
        // lint:allow(hash-order, membership probe for duplicate labels; issues are pushed in executor-vec order, the set is never iterated)
        let mut seen = std::collections::HashSet::new();
        for (ei, e) in self.executors.iter().enumerate() {
            if !seen.insert(e.label.clone()) {
                issues.push(ConfigIssue::DuplicateLabel(e.label.clone()));
            }
            if e.max_workers == 0 {
                issues.push(ConfigIssue::NoWorkers(e.label.clone()));
            }
            if e.kind == ExecutorKind::ThreadPool && !e.accelerators.is_empty() {
                issues.push(ConfigIssue::ThreadPoolWithAccelerators(e.label.clone()));
            }
            let mut pct_by_gpu: std::collections::BTreeMap<u32, u32> =
                std::collections::BTreeMap::new();
            for a in &e.accelerators {
                match a {
                    AcceleratorSpec::Gpu(g)
                    | AcceleratorSpec::GpuPercentage(g, _)
                    | AcceleratorSpec::VgpuSlot(g, _)
                        if *g >= gpu_count =>
                    {
                        issues.push(ConfigIssue::UnknownGpu {
                            executor: ei,
                            gpu: *g,
                        });
                    }
                    AcceleratorSpec::GpuPercentage(g, p) => {
                        if !(1..=100).contains(p) {
                            issues.push(ConfigIssue::BadPercentage {
                                executor: ei,
                                pct: *p,
                            });
                        }
                        *pct_by_gpu.entry(*g).or_insert(0) += p;
                    }
                    _ => {}
                }
            }
            for (gpu, total) in pct_by_gpu {
                if total > 200 {
                    issues.push(ConfigIssue::Oversubscribed {
                        executor: ei,
                        gpu,
                        total,
                    });
                }
            }
        }
        issues
    }

    /// The paper's Listing-1 shape: 16 CPU workers + one whole-GPU worker.
    pub fn hsc() -> Self {
        Config::new(vec![
            ExecutorConfig::cpu("cpu", 16),
            ExecutorConfig::gpu("gpu", vec![AcceleratorSpec::Gpu(0)]),
        ])
    }
}

/// A problem found by [`Config::validate`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub enum ConfigIssue {
    /// Two executors share a label; task routing would be ambiguous.
    DuplicateLabel(String),
    /// Executor has zero workers.
    NoWorkers(String),
    /// ThreadPool executors are CPU-only (§2.2.1).
    ThreadPoolWithAccelerators(String),
    /// Accelerator names a GPU index the fleet does not have.
    UnknownGpu {
        /// Executor index.
        executor: usize,
        /// Offending GPU index.
        gpu: u32,
    },
    /// MPS percentage outside 1..=100.
    BadPercentage {
        /// Executor index.
        executor: usize,
        /// Offending percentage.
        pct: u32,
    },
    /// Percentages on one GPU exceed the 200% oversubscription guard.
    Oversubscribed {
        /// Executor index.
        executor: usize,
        /// GPU index.
        gpu: u32,
        /// Sum of percentages.
        total: u32,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hsc_matches_listing1() {
        let c = Config::hsc();
        assert_eq!(c.executors.len(), 2);
        assert_eq!(c.executors[0].label, "cpu");
        assert_eq!(c.executors[0].max_workers, 16);
        assert!(c.executors[0].accelerators.is_empty());
        assert_eq!(c.executors[1].label, "gpu");
        assert_eq!(c.executors[1].max_workers, 1);
        assert_eq!(c.retries, 1);
    }

    #[test]
    fn accelerators_cycle_across_workers() {
        // Listing 2: GPUs 1, 2, 4 with percentages; 6 workers cycle.
        let mut e = ExecutorConfig::gpu(
            "gpu",
            vec![
                AcceleratorSpec::GpuPercentage(1, 50),
                AcceleratorSpec::GpuPercentage(2, 25),
                AcceleratorSpec::GpuPercentage(4, 30),
            ],
        );
        e.max_workers = 6;
        assert_eq!(
            e.accelerator_for(0),
            Some(&AcceleratorSpec::GpuPercentage(1, 50))
        );
        assert_eq!(
            e.accelerator_for(4),
            Some(&AcceleratorSpec::GpuPercentage(2, 25))
        );
        assert_eq!(ExecutorConfig::cpu("c", 2).accelerator_for(0), None);
    }

    #[test]
    fn duplicated_gpu_entries_multiplex() {
        // Listing 2's trick: list a GPU twice to give it to two workers.
        let e = ExecutorConfig::gpu(
            "gpu",
            vec![
                AcceleratorSpec::GpuPercentage(0, 50),
                AcceleratorSpec::GpuPercentage(0, 50),
            ],
        );
        assert_eq!(e.max_workers, 2);
        assert_eq!(e.accelerator_for(0).unwrap().gpu_index(), Some(0));
        assert_eq!(e.accelerator_for(1).unwrap().gpu_index(), Some(0));
    }

    #[test]
    fn executor_lookup() {
        let c = Config::hsc();
        assert_eq!(c.executor_index("gpu"), Some(1));
        assert_eq!(c.executor_index("nope"), None);
    }

    #[test]
    fn validate_catches_misconfigurations() {
        let mut c = Config::new(vec![
            ExecutorConfig::cpu("dup", 2),
            ExecutorConfig::cpu("dup", 0),
            ExecutorConfig::gpu(
                "gpu",
                vec![
                    AcceleratorSpec::GpuPercentage(5, 50),
                    AcceleratorSpec::GpuPercentage(0, 90),
                    AcceleratorSpec::GpuPercentage(0, 90),
                    AcceleratorSpec::GpuPercentage(0, 90),
                ],
            ),
        ]);
        let mut tp = ExecutorConfig::thread_pool("tp", 2);
        tp.accelerators.push(AcceleratorSpec::Gpu(0));
        c.executors.push(tp);
        let issues = c.validate(1);
        assert!(issues.contains(&ConfigIssue::DuplicateLabel("dup".into())));
        assert!(issues.contains(&ConfigIssue::NoWorkers("dup".into())));
        assert!(issues.contains(&ConfigIssue::UnknownGpu {
            executor: 2,
            gpu: 5
        }));
        assert!(issues.contains(&ConfigIssue::Oversubscribed {
            executor: 2,
            gpu: 0,
            total: 270
        }));
        assert!(issues.contains(&ConfigIssue::ThreadPoolWithAccelerators("tp".into())));
    }

    #[test]
    fn hsc_validates_clean() {
        assert!(Config::hsc().validate(1).is_empty());
        // ...but not against an empty fleet.
        assert!(!Config::hsc().validate(0).is_empty());
    }

    #[test]
    fn topology_maps_gpus_to_hosts_and_racks() {
        let t = Topology {
            gpus_per_host: 2,
            hosts_per_rack: 2,
        };
        assert_eq!(t.host_of(0), 0);
        assert_eq!(t.host_of(3), 1);
        assert_eq!(t.rack_of(3), 0);
        assert_eq!(t.rack_of(5), 1);
        assert_eq!(t.gpus_on_host(1, 6), vec![2, 3]);
        assert_eq!(t.hosts_in_rack(0, 6), vec![0, 1]);
        // Bounded by the fleet: a 3-GPU fleet has a partial host 1.
        assert_eq!(t.gpus_on_host(1, 3), vec![2]);
        assert_eq!(t.hosts_in_rack(1, 3), Vec::<u32>::new());
    }

    #[test]
    fn checkpoint_policy_defaults_off() {
        let p = CheckpointPolicy::default();
        assert!(p.interval.is_none());
        let on = CheckpointPolicy::every(SimDuration::from_secs(10));
        assert_eq!(on.interval, Some(SimDuration::from_secs(10)));
    }

    #[test]
    fn mig_spec_has_no_direct_index() {
        let s = AcceleratorSpec::Mig("MIG-GPU0-0-3g.40gb".into());
        assert_eq!(s.gpu_index(), None);
    }
}
