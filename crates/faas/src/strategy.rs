//! Elastic worker scaling (Parsl's `strategy` loop).
//!
//! §2.1 of the paper: "FaaS enables the rapid spin up and down of
//! function instances". Parsl implements it as a strategy thread that
//! periodically compares outstanding tasks to live workers and asks the
//! provider for more blocks (or retires idle ones). [`ElasticPolicy`]
//! reproduces that loop: scale out when the ready queue backs up, scale
//! in workers that have idled past a TTL.

use crate::config::AcceleratorSpec;
use crate::monitoring::FaultPhase;
use crate::world::{add_worker, kill_worker, FaasWorld, WorkerState};
use parfait_simcore::{Engine, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Elastic-scaling parameters for one executor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticPolicy {
    /// Strategy-loop period.
    pub period: SimDuration,
    /// Scale out when `queue_len > queue_high × live_workers`.
    pub queue_high: usize,
    /// Workers added per scale-out decision.
    pub scale_out_step: usize,
    /// Upper bound on live workers.
    pub max_workers: usize,
    /// Lower bound on live workers (never scale in below this).
    pub min_workers: usize,
    /// Retire a worker idle for at least this long while the queue is
    /// empty.
    pub idle_ttl: SimDuration,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        ElasticPolicy {
            period: SimDuration::from_secs(5),
            queue_high: 2,
            scale_out_step: 1,
            max_workers: 32,
            min_workers: 1,
            idle_ttl: SimDuration::from_secs(30),
        }
    }
}

/// Start the strategy loop for one executor. The loop re-arms itself
/// while tasks remain unsettled (so a finished simulation drains
/// naturally) and stops afterwards; call again if more phases follow.
pub fn enable_elastic(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    exec: usize,
    policy: ElasticPolicy,
) {
    assert!(
        policy.min_workers <= policy.max_workers,
        "min_workers must not exceed max_workers"
    );
    tick(world, eng, exec, policy);
}

fn live_workers(world: &FaasWorld, exec: usize) -> usize {
    if world.index_enabled() {
        return world.index.not_dead[exec];
    }
    world
        .workers
        .iter()
        .filter(|w| w.executor == exec && w.state != WorkerState::Dead)
        .count()
}

/// Does any worker keep the controller loops alive (provisioning, cold
/// starting, or busy — crashes don't; the watchdog owns those)?
fn any_spinning_or_busy(world: &FaasWorld) -> bool {
    if world.index_enabled() {
        return world.index.spinning_or_busy() > 0;
    }
    world.workers.iter().any(|w| {
        matches!(
            w.state,
            WorkerState::Provisioning | WorkerState::ColdStart | WorkerState::Busy
        )
    })
}

fn tick(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, exec: usize, policy: ElasticPolicy) {
    let now = eng.now();
    let queue = world.queues[exec].len();
    let live = live_workers(world, exec);

    if queue > policy.queue_high * live.max(1) && live < policy.max_workers {
        let add = policy.scale_out_step.min(policy.max_workers - live).max(1);
        for _ in 0..add {
            add_worker(world, eng, exec, None);
        }
    } else if queue == 0 && live > policy.min_workers {
        // Retire the longest-idle worker past its TTL, one per tick. The
        // idle free list bounds the candidate set; ties keep the lowest
        // id like the full scan's first-minimum did.
        let victim = if world.index_enabled() {
            let mut best: Option<(SimTime, usize)> = None;
            for &wid in &world.index.idle[exec] {
                let Some(t) = world.workers[wid].idle_since else {
                    continue;
                };
                if now.duration_since(t) < policy.idle_ttl {
                    continue;
                }
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, wid));
                }
            }
            best.map(|(_, wid)| wid)
        } else {
            world
                .workers
                .iter()
                .filter(|w| {
                    w.executor == exec
                        && w.state == WorkerState::Idle
                        && w.idle_since
                            .map(|t| now.duration_since(t) >= policy.idle_ttl)
                            .unwrap_or(false)
                })
                .min_by_key(|w| w.idle_since.expect("filtered on Some"))
                .map(|w| w.id)
        };
        if let Some(wid) = victim {
            kill_worker(world, eng, wid, "elastic scale-in");
        }
    }

    // Keep looping while there could be future work; stop once everything
    // settled (mirrors the monitoring sampler's lifetime).
    let active = !world.dfk.all_settled() || any_spinning_or_busy(world);
    if active {
        let p = policy.clone();
        eng.schedule_in(policy.period, move |w: &mut FaasWorld, e| {
            tick(w, e, exec, p)
        });
    }
}

/// Brownout degradation for one executor: under sustained queue pressure
/// the executor spins up a *degraded-service tier* — extra workers on
/// deliberately small partitions (low MPS thread percentages, spare MIG
/// slices) — absorbing new admissions at reduced quality before the
/// admission layer starts shedding, and retires the tier when pressure
/// clears.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BrownoutPolicy {
    /// Controller-loop period.
    pub period: SimDuration,
    /// Pressure (`queue_len / live_workers`) at or above which a tick
    /// counts toward engaging.
    pub pressure_high: f64,
    /// Pressure at or below which a tick counts toward releasing.
    pub pressure_low: f64,
    /// Consecutive high-pressure ticks before the tier engages.
    pub engage_after: u32,
    /// Consecutive low-pressure ticks before the tier releases.
    pub release_after: u32,
    /// The degraded tier: one worker per listed accelerator slot (e.g.
    /// small `GpuPercentage` shares). Empty = brownout is a no-op, which
    /// is the honest encoding for modes with nothing left to carve
    /// (MIG with every slice already placed).
    pub degraded: Vec<AcceleratorSpec>,
}

impl Default for BrownoutPolicy {
    fn default() -> Self {
        BrownoutPolicy {
            period: SimDuration::from_secs(5),
            pressure_high: 2.0,
            pressure_low: 0.5,
            engage_after: 2,
            release_after: 2,
            degraded: Vec::new(),
        }
    }
}

/// Controller state threaded through the brownout ticks.
#[derive(Debug, Clone, Default)]
struct BrownoutSt {
    /// Consecutive high-pressure ticks observed while disengaged.
    high: u32,
    /// Consecutive low-pressure ticks observed while engaged.
    low: u32,
    /// Degraded-tier worker ids spawned by this controller.
    spawned: Vec<usize>,
    /// When the tier engaged (drives `brownout_seconds`).
    engaged_at: Option<SimTime>,
    /// Release decided; draining the remaining busy tier workers.
    releasing: bool,
}

/// Start the brownout controller for one executor. Mirrors
/// [`enable_elastic`]'s lifetime: the loop re-arms while work remains
/// unsettled and winds down afterwards (releasing the tier if engaged).
pub fn enable_brownout(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    exec: usize,
    policy: BrownoutPolicy,
) {
    brownout_tick(world, eng, exec, policy, BrownoutSt::default());
}

fn brownout_tick(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    exec: usize,
    policy: BrownoutPolicy,
    mut st: BrownoutSt,
) {
    let now = eng.now();
    let queue = world.queues[exec].len();
    let live = live_workers(world, exec);
    let pressure = queue as f64 / live.max(1) as f64;

    if st.engaged_at.is_none() {
        st.high = if pressure >= policy.pressure_high {
            st.high + 1
        } else {
            0
        };
        if st.high >= policy.engage_after && !policy.degraded.is_empty() {
            for spec in &policy.degraded {
                if let Some(id) = add_worker(world, eng, exec, Some(spec.clone())) {
                    st.spawned.push(id);
                }
            }
            st.engaged_at = Some(now);
            st.high = 0;
            st.low = 0;
            st.releasing = false;
            world.monitor.fault_event(
                now,
                FaultPhase::Detected,
                "brownout-engaged",
                None,
                None,
                format!(
                    "executor {exec}: pressure {pressure:.2}, degraded tier of {} workers up",
                    st.spawned.len()
                ),
            );
        }
    } else if !st.releasing {
        st.low = if pressure <= policy.pressure_low {
            st.low + 1
        } else {
            0
        };
        if st.low >= policy.release_after {
            brownout_release(world, &mut st, exec, now, "pressure cleared");
        }
    }
    if st.releasing {
        drain_degraded(world, eng, &mut st);
    }

    let active = !world.dfk.all_settled() || any_spinning_or_busy(world);
    if active {
        let p = policy.clone();
        eng.schedule_in(policy.period, move |w: &mut FaasWorld, e| {
            brownout_tick(w, e, exec, p, st)
        });
    } else {
        // Wind-down: everything settled, so the tier is idle — account
        // the engagement and retire whatever remains.
        if st.engaged_at.is_some() {
            brownout_release(world, &mut st, exec, now, "work settled");
            drain_degraded(world, eng, &mut st);
        }
    }
}

/// Decide release: close the `brownout_seconds` accounting and switch to
/// draining. Busy tier workers finish their current task first; idle
/// ones are retired by [`drain_degraded`].
fn brownout_release(
    world: &mut FaasWorld,
    st: &mut BrownoutSt,
    exec: usize,
    now: SimTime,
    why: &str,
) {
    if let Some(since) = st.engaged_at.take() {
        world.overload.stats.brownout_seconds += now.duration_since(since).as_secs_f64();
    }
    st.releasing = true;
    st.low = 0;
    world.monitor.fault_event(
        now,
        FaultPhase::Recovered,
        "brownout-released",
        None,
        None,
        format!("executor {exec}: {why}, retiring degraded tier"),
    );
}

/// Retire every spawned tier worker that is currently retirable (idle or
/// never successfully provisioned); busy ones drain on later ticks.
fn drain_degraded(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, st: &mut BrownoutSt) {
    let mut remaining = Vec::new();
    for wid in st.spawned.drain(..) {
        match world.workers[wid].state {
            WorkerState::Busy | WorkerState::Crashed => remaining.push(wid),
            WorkerState::Dead => {}
            _ => kill_worker(world, eng, wid, "brownout release"),
        }
    }
    st.spawned = remaining;
    if st.spawned.is_empty() {
        st.releasing = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::bodies::CpuBurn;
    use crate::{boot, submit, AppCall, Config, ExecutorConfig};
    use parfait_gpu::host::GpuFleet;
    use parfait_simcore::Engine;

    fn burst_call(secs: u64) -> AppCall {
        AppCall::new("burst", "cpu", move |_| {
            Box::new(CpuBurn::new(SimDuration::from_secs(secs)))
        })
    }

    #[test]
    fn scales_out_under_backlog() {
        let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
        let mut w = FaasWorld::new(config, GpuFleet::new(), 1);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        enable_elastic(
            &mut w,
            &mut eng,
            0,
            ElasticPolicy {
                period: SimDuration::from_secs(2),
                queue_high: 2,
                scale_out_step: 2,
                max_workers: 6,
                min_workers: 1,
                idle_ttl: SimDuration::from_secs(3600),
            },
        );
        for _ in 0..24 {
            submit(&mut w, &mut eng, burst_call(10));
        }
        eng.run(&mut w);
        assert_eq!(w.dfk.done_count(), 24);
        assert!(
            w.workers.len() > 1,
            "backlog should have spawned extra workers"
        );
        assert!(w.workers.len() <= 6, "respects max_workers");
    }

    #[test]
    fn scale_out_speeds_up_bursts() {
        let run = |elastic: bool| -> f64 {
            let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
            let mut w = FaasWorld::new(config, GpuFleet::new(), 2);
            let mut eng = Engine::new();
            boot(&mut w, &mut eng);
            if elastic {
                enable_elastic(
                    &mut w,
                    &mut eng,
                    0,
                    ElasticPolicy {
                        period: SimDuration::from_secs(1),
                        queue_high: 1,
                        scale_out_step: 3,
                        max_workers: 8,
                        min_workers: 1,
                        idle_ttl: SimDuration::from_secs(3600),
                    },
                );
            }
            for _ in 0..16 {
                submit(&mut w, &mut eng, burst_call(10));
            }
            eng.run(&mut w);
            eng.now().as_secs_f64()
        };
        let fixed = run(false);
        let elastic = run(true);
        assert!(
            elastic < fixed * 0.5,
            "elastic ({elastic:.0}s) should cut the burst makespan vs fixed ({fixed:.0}s)"
        );
    }

    #[test]
    fn scales_in_idle_workers() {
        let config = Config::new(vec![ExecutorConfig::cpu("cpu", 4)]);
        let mut w = FaasWorld::new(config, GpuFleet::new(), 3);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        enable_elastic(
            &mut w,
            &mut eng,
            0,
            ElasticPolicy {
                period: SimDuration::from_secs(1),
                queue_high: 100,
                scale_out_step: 1,
                max_workers: 4,
                min_workers: 1,
                idle_ttl: SimDuration::from_secs(5),
            },
        );
        // One long task keeps the loop alive while the other three
        // workers idle past the TTL.
        submit(&mut w, &mut eng, burst_call(60));
        eng.run(&mut w);
        let live = w
            .workers
            .iter()
            .filter(|wk| wk.state != WorkerState::Dead)
            .count();
        assert!(live <= 2, "idle workers should be retired (live = {live})");
        let killed = w
            .workers
            .iter()
            .filter(|wk| wk.state == WorkerState::Dead)
            .count();
        assert!(killed >= 2, "expected retirements, got {killed}");
    }

    #[test]
    fn never_scales_below_min() {
        let config = Config::new(vec![ExecutorConfig::cpu("cpu", 3)]);
        let mut w = FaasWorld::new(config, GpuFleet::new(), 4);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        enable_elastic(
            &mut w,
            &mut eng,
            0,
            ElasticPolicy {
                period: SimDuration::from_secs(1),
                queue_high: 100,
                scale_out_step: 1,
                max_workers: 3,
                min_workers: 2,
                idle_ttl: SimDuration::from_secs(1),
            },
        );
        submit(&mut w, &mut eng, burst_call(30));
        eng.run(&mut w);
        let live = w
            .workers
            .iter()
            .filter(|wk| wk.state != WorkerState::Dead)
            .count();
        assert!(live >= 2, "min_workers violated (live = {live})");
    }
}
