//! Elastic worker scaling (Parsl's `strategy` loop).
//!
//! §2.1 of the paper: "FaaS enables the rapid spin up and down of
//! function instances". Parsl implements it as a strategy thread that
//! periodically compares outstanding tasks to live workers and asks the
//! provider for more blocks (or retires idle ones). [`ElasticPolicy`]
//! reproduces that loop: scale out when the ready queue backs up, scale
//! in workers that have idled past a TTL.

use crate::world::{add_worker, kill_worker, FaasWorld, WorkerState};
use parfait_simcore::{Engine, SimDuration};
use serde::{Deserialize, Serialize};

/// Elastic-scaling parameters for one executor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ElasticPolicy {
    /// Strategy-loop period.
    pub period: SimDuration,
    /// Scale out when `queue_len > queue_high × live_workers`.
    pub queue_high: usize,
    /// Workers added per scale-out decision.
    pub scale_out_step: usize,
    /// Upper bound on live workers.
    pub max_workers: usize,
    /// Lower bound on live workers (never scale in below this).
    pub min_workers: usize,
    /// Retire a worker idle for at least this long while the queue is
    /// empty.
    pub idle_ttl: SimDuration,
}

impl Default for ElasticPolicy {
    fn default() -> Self {
        ElasticPolicy {
            period: SimDuration::from_secs(5),
            queue_high: 2,
            scale_out_step: 1,
            max_workers: 32,
            min_workers: 1,
            idle_ttl: SimDuration::from_secs(30),
        }
    }
}

/// Start the strategy loop for one executor. The loop re-arms itself
/// while tasks remain unsettled (so a finished simulation drains
/// naturally) and stops afterwards; call again if more phases follow.
pub fn enable_elastic(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    exec: usize,
    policy: ElasticPolicy,
) {
    assert!(
        policy.min_workers <= policy.max_workers,
        "min_workers must not exceed max_workers"
    );
    tick(world, eng, exec, policy);
}

fn live_workers(world: &FaasWorld, exec: usize) -> usize {
    world
        .workers
        .iter()
        .filter(|w| w.executor == exec && w.state != WorkerState::Dead)
        .count()
}

fn tick(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, exec: usize, policy: ElasticPolicy) {
    let now = eng.now();
    let queue = world.queues[exec].len();
    let live = live_workers(world, exec);

    if queue > policy.queue_high * live.max(1) && live < policy.max_workers {
        let add = policy.scale_out_step.min(policy.max_workers - live).max(1);
        for _ in 0..add {
            add_worker(world, eng, exec, None);
        }
    } else if queue == 0 && live > policy.min_workers {
        // Retire the longest-idle worker past its TTL, one per tick.
        let victim = world
            .workers
            .iter()
            .filter(|w| {
                w.executor == exec
                    && w.state == WorkerState::Idle
                    && w.idle_since
                        .map(|t| now.duration_since(t) >= policy.idle_ttl)
                        .unwrap_or(false)
            })
            .min_by_key(|w| w.idle_since.expect("filtered on Some"))
            .map(|w| w.id);
        if let Some(wid) = victim {
            kill_worker(world, eng, wid, "elastic scale-in");
        }
    }

    // Keep looping while there could be future work; stop once everything
    // settled (mirrors the monitoring sampler's lifetime).
    let active = !world.dfk.all_settled()
        || world.workers.iter().any(|w| {
            matches!(
                w.state,
                WorkerState::Provisioning | WorkerState::ColdStart | WorkerState::Busy
            )
        });
    if active {
        let p = policy.clone();
        eng.schedule_in(policy.period, move |w: &mut FaasWorld, e| {
            tick(w, e, exec, p)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::bodies::CpuBurn;
    use crate::{boot, submit, AppCall, Config, ExecutorConfig};
    use parfait_gpu::host::GpuFleet;
    use parfait_simcore::Engine;

    fn burst_call(secs: u64) -> AppCall {
        AppCall::new("burst", "cpu", move |_| {
            Box::new(CpuBurn::new(SimDuration::from_secs(secs)))
        })
    }

    #[test]
    fn scales_out_under_backlog() {
        let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
        let mut w = FaasWorld::new(config, GpuFleet::new(), 1);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        enable_elastic(
            &mut w,
            &mut eng,
            0,
            ElasticPolicy {
                period: SimDuration::from_secs(2),
                queue_high: 2,
                scale_out_step: 2,
                max_workers: 6,
                min_workers: 1,
                idle_ttl: SimDuration::from_secs(3600),
            },
        );
        for _ in 0..24 {
            submit(&mut w, &mut eng, burst_call(10));
        }
        eng.run(&mut w);
        assert_eq!(w.dfk.done_count(), 24);
        assert!(
            w.workers.len() > 1,
            "backlog should have spawned extra workers"
        );
        assert!(w.workers.len() <= 6, "respects max_workers");
    }

    #[test]
    fn scale_out_speeds_up_bursts() {
        let run = |elastic: bool| -> f64 {
            let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
            let mut w = FaasWorld::new(config, GpuFleet::new(), 2);
            let mut eng = Engine::new();
            boot(&mut w, &mut eng);
            if elastic {
                enable_elastic(
                    &mut w,
                    &mut eng,
                    0,
                    ElasticPolicy {
                        period: SimDuration::from_secs(1),
                        queue_high: 1,
                        scale_out_step: 3,
                        max_workers: 8,
                        min_workers: 1,
                        idle_ttl: SimDuration::from_secs(3600),
                    },
                );
            }
            for _ in 0..16 {
                submit(&mut w, &mut eng, burst_call(10));
            }
            eng.run(&mut w);
            eng.now().as_secs_f64()
        };
        let fixed = run(false);
        let elastic = run(true);
        assert!(
            elastic < fixed * 0.5,
            "elastic ({elastic:.0}s) should cut the burst makespan vs fixed ({fixed:.0}s)"
        );
    }

    #[test]
    fn scales_in_idle_workers() {
        let config = Config::new(vec![ExecutorConfig::cpu("cpu", 4)]);
        let mut w = FaasWorld::new(config, GpuFleet::new(), 3);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        enable_elastic(
            &mut w,
            &mut eng,
            0,
            ElasticPolicy {
                period: SimDuration::from_secs(1),
                queue_high: 100,
                scale_out_step: 1,
                max_workers: 4,
                min_workers: 1,
                idle_ttl: SimDuration::from_secs(5),
            },
        );
        // One long task keeps the loop alive while the other three
        // workers idle past the TTL.
        submit(&mut w, &mut eng, burst_call(60));
        eng.run(&mut w);
        let live = w
            .workers
            .iter()
            .filter(|wk| wk.state != WorkerState::Dead)
            .count();
        assert!(live <= 2, "idle workers should be retired (live = {live})");
        let killed = w
            .workers
            .iter()
            .filter(|wk| wk.state == WorkerState::Dead)
            .count();
        assert!(killed >= 2, "expected retirements, got {killed}");
    }

    #[test]
    fn never_scales_below_min() {
        let config = Config::new(vec![ExecutorConfig::cpu("cpu", 3)]);
        let mut w = FaasWorld::new(config, GpuFleet::new(), 4);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        enable_elastic(
            &mut w,
            &mut eng,
            0,
            ElasticPolicy {
                period: SimDuration::from_secs(1),
                queue_high: 100,
                scale_out_step: 1,
                max_workers: 3,
                min_workers: 2,
                idle_ttl: SimDuration::from_secs(1),
            },
        );
        submit(&mut w, &mut eng, burst_call(30));
        eng.run(&mut w);
        let live = w
            .workers
            .iter()
            .filter(|wk| wk.state != WorkerState::Dead)
            .count();
        assert!(live >= 2, "min_workers violated (live = {live})");
    }
}
