//! The running platform: executors, workers, and event wiring.
//!
//! [`FaasWorld`] is the simulation world type — it owns the GPU fleet, the
//! DataFlowKernel, the worker pool, monitoring and timeline stores, and an
//! optional experiment [`Driver`]. Free functions ([`boot`], [`submit`],
//! [`kill_worker`], ...) mutate it under an `Engine<FaasWorld>`.
//!
//! ## Worker lifecycle (HighThroughputExecutor pilot model)
//!
//! ```text
//! Provisioning --provider delay--> ColdStart --fi+ctx init--> Idle
//!     Idle --task assigned--> Busy --steps/kernels--> Idle ...
//!     any --kill_worker--> Dead --respawn_worker--> Provisioning
//! ```
//!
//! Cold start covers §6 parts (1) function init and (2) GPU context init;
//! part (3), model load, is paid by the first task whose
//! [`crate::app::ModelProfile`] is not yet resident on the worker —
//! subsequent tasks reuse the warm model exactly like a warmed serverless
//! function instance.

use crate::app::{AppCall, ModelProfile, TaskBody, TaskCtx, TaskId, TaskStep};
use crate::cache::WeightCache;
use crate::checkpoint::{Checkpoint, CHECKPOINT_BASE_BYTES};
use crate::config::{AcceleratorSpec, Config, ExecutorKind, ProviderConfig, ShedPolicy};
use crate::dfk::{Dfk, FailureOutcome, TaskState};
use crate::drain::{note_drained, ReconfigControl};
use crate::faults::RecoveryState;
use crate::index::WorldIndex;
use crate::monitoring::{FaultPhase, Monitoring, QueueSample, UtilSample, WorkerEventKind};
use crate::overload::{HedgePair, OverloadState};
use parfait_gpu::context::ColdStartBreakdown;
use parfait_gpu::host::{launch_kernel, resync, GpuFleet, GpuHost};
use parfait_gpu::mps::MPS_ENV_VAR;
use parfait_gpu::{CtxBinding, GpuId, KernelDone};
use parfait_simcore::resource::{PsJobId, PsPool};
use parfait_simcore::timeline::{SpanId, Timeline};
use parfait_simcore::{streams, Engine, EventId, SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Kernel tags carry (worker, launch-sequence) so completions of aborted
/// or superseded launches cannot resume the wrong task. 20 bits of worker
/// id leave 44 bits of sequence.
fn pack_kernel_tag(wid: usize, seq: u64) -> u64 {
    debug_assert!(wid < (1 << 20), "worker id overflows tag packing");
    (wid as u64) | (seq << 20)
}

fn unpack_kernel_tag(tag: u64) -> (usize, u64) {
    ((tag & 0xF_FFFF) as usize, tag >> 20)
}

/// Worker lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Waiting for the provider to hand over a process slot.
    Provisioning,
    /// Function + GPU context initialization in progress.
    ColdStart,
    /// Ready for a task.
    Idle,
    /// Executing a task.
    Busy,
    /// Process lost silently (injected crash); the platform still thinks
    /// it is alive until the heartbeat watchdog times out.
    Crashed,
    /// Terminated.
    Dead,
}

struct Running {
    task: TaskId,
    body: Option<Box<dyn TaskBody>>,
    span: Option<SpanId>,
    /// Bytes allocated by the task body, auto-released at task end.
    task_allocs: u64,
    /// Model load in progress for this profile.
    loading: Option<ModelProfile>,
    /// Body steps issued this attempt. Incremented at issue time, so at
    /// a step *boundary* (top of the advance loop) it equals the number
    /// of completed steps — the checkpoint cursor.
    steps_issued: u64,
    /// The checkpoint timer fired; a snapshot is captured at the next
    /// step boundary.
    ckpt_pending: bool,
    /// Time after which this attempt's completed work is unpreserved:
    /// body start, then each committed snapshot's capture time. Failing
    /// the attempt charges `now - progress_mark` to `work_lost_s`.
    progress_mark: Option<SimTime>,
    /// This attempt is a speculative straggler hedge (duplicate of a
    /// primary attempt running elsewhere). Hedges never arm further
    /// hedges and never touch the DFK dispatch/attempt accounting.
    is_hedge: bool,
}

/// One worker process.
pub struct Worker {
    /// Index in `FaasWorld::workers`.
    pub id: usize,
    /// Owning executor index.
    pub executor: usize,
    /// Display name, e.g. `"gpu.w0"`.
    pub label: String,
    /// Accelerator slot assigned by the executor config.
    pub accel: Option<AcceleratorSpec>,
    /// Resolved GPU binding once the context exists.
    pub gpu: Option<(GpuId, parfait_gpu::CtxId)>,
    /// The environment the executor exported to this process (§4's
    /// `CUDA_VISIBLE_DEVICES` / `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`).
    pub env: BTreeMap<String, String>,
    /// Lifecycle state.
    pub state: WorkerState,
    /// Cold-start decomposition of the most recent start.
    pub cold_breakdown: Option<ColdStartBreakdown>,
    /// When the current incarnation was spawned.
    pub spawned_at: SimTime,
    /// When it became idle (cold start complete).
    pub ready_at: Option<SimTime>,
    /// Tasks completed over all incarnations.
    pub tasks_completed: u64,
    /// Models resident in this worker's GPU memory.
    loaded_models: BTreeSet<u64>,
    /// Bytes held by resident models.
    model_bytes: u64,
    current: Option<Running>,
    /// When the worker last became idle (None while busy/dead) — drives
    /// elastic scale-in decisions.
    pub idle_since: Option<SimTime>,
    /// Monotone kernel-launch sequence; completions only resume the
    /// launch they belong to (stale/orphaned kernels are ignored).
    kernel_seq: u64,
    /// The sequence number the worker is currently blocked on.
    awaiting_kernel: Option<u64>,
    /// Incarnation counter; timers from older incarnations are ignored.
    epoch: u64,
    rng: SimRng,
    /// When the process silently crashed (set while `Crashed`; the
    /// watchdog compares this against the heartbeat timeout).
    pub(crate) crashed_at: Option<SimTime>,
    /// Automatic restarts consumed from the recovery budget.
    pub restarts_used: u32,
    /// True between a budgeted auto-respawn and the next Ready; closes
    /// the fault incident (MTTR) when cold start completes.
    pub(crate) recovering: bool,
    /// Injected fault: the next provider hand-over fails.
    pub(crate) provision_poisoned: bool,
    /// Injected fault: the next model load dies with a transient OOM.
    pub(crate) model_load_poisoned: bool,
}

impl Worker {
    /// Task currently running, if any.
    pub fn current_task(&self) -> Option<TaskId> {
        self.current.as_ref().map(|r| r.task)
    }

    /// Incarnation number (bumped by kill/respawn).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Is a model resident?
    pub fn has_model(&self, id: u64) -> bool {
        self.loaded_models.contains(&id)
    }
}

/// Experiment logic hooked into the platform.
pub trait Driver: 'static {
    /// Called once at boot (submit initial tasks here).
    fn on_start(&mut self, _w: &mut FaasWorld, _eng: &mut Engine<FaasWorld>) {}
    /// Called when a task reaches a terminal state (done or failed).
    fn on_task_done(&mut self, _w: &mut FaasWorld, _eng: &mut Engine<FaasWorld>, _task: TaskId) {}
}

/// The platform state (the DES world type).
pub struct FaasWorld {
    /// Static configuration.
    pub config: Config,
    /// GPUs on the node.
    pub fleet: GpuFleet,
    /// All workers across executors.
    pub workers: Vec<Worker>,
    /// Per-executor ready queues.
    pub queues: Vec<VecDeque<TaskId>>,
    /// Task table.
    pub dfk: Dfk,
    /// Span recorder (Fig. 3 source).
    pub timeline: Timeline,
    /// Monitoring store.
    pub monitor: Monitoring,
    /// Root RNG.
    pub rng: SimRng,
    /// §7 GPU-resident model weight cache (disabled by default).
    pub weight_cache: WeightCache,
    /// Processor-sharing pool over the node's cores: every CPU step is a
    /// job; oversubscription slows all compute-bound workers exactly
    /// proportionally (the testbed has 24 Xeons).
    cpu_pool: PsPool,
    /// Pool job → (worker, epoch) for resuming the right incarnation.
    cpu_jobs: BTreeMap<PsJobId, (usize, u64)>,
    /// Single armed wake event for the CPU pool.
    cpu_event: Option<EventId>,
    driver: Option<Box<dyn Driver>>,
    sampler_armed: bool,
    /// Failure-detection and recovery machinery (watchdog, backoff RNG,
    /// per-GPU circuit breakers, fault statistics).
    pub recovery: RecoveryState,
    /// Host-side checkpoint store, keyed by task: the last *committed*
    /// snapshot of each checkpointable in-flight task. Survives worker,
    /// GPU, and host fault domains; entries drop when tasks settle.
    pub checkpoints: BTreeMap<TaskId, Checkpoint>,
    /// Overload-protection state (admission/hedge RNG streams, retry
    /// buckets, live hedge pairs, shed/hedge counters).
    pub overload: OverloadState,
    /// Online-reconfiguration state: active staged drains, the
    /// stop-dispatch set, injected commit-failure poison, and counters.
    pub reconfig: ReconfigControl,
    /// Incrementally maintained worker/queue lookup structures; hot
    /// paths use them instead of scanning `workers`/`queues` (see the
    /// `index` module). Always kept in sync; consult gated on
    /// [`FaasWorld::set_index_enabled`].
    pub(crate) index: WorldIndex,
}

impl GpuHost for FaasWorld {
    fn fleet_mut(&mut self) -> &mut GpuFleet {
        &mut self.fleet
    }
    fn on_kernel_done(&mut self, eng: &mut Engine<Self>, done: KernelDone) {
        let (wid, seq) = unpack_kernel_tag(done.tag);
        if wid < self.workers.len()
            && self.workers[wid].state == WorkerState::Busy
            && self.workers[wid].awaiting_kernel == Some(seq)
        {
            self.workers[wid].awaiting_kernel = None;
            advance_worker(self, eng, wid);
        }
    }
}

impl FaasWorld {
    /// Build the platform. Workers are created in `Provisioning`; call
    /// [`boot`] to start them.
    // lint:allow(stream-hygiene, per-worker streams are WORKER_BASE + worker id, a fixed function of fleet layout, so the in-loop split cannot depend on iteration order)
    pub fn new(config: Config, fleet: GpuFleet, seed: u64) -> Self {
        let config_cores = config.node_cores.max(1);
        let rng = SimRng::new(seed);
        let mut workers = Vec::new();
        let mut queues = Vec::new();
        for (ei, ex) in config.executors.iter().enumerate() {
            queues.push(VecDeque::new());
            for wi in 0..ex.max_workers {
                let id = workers.len();
                workers.push(Worker {
                    id,
                    executor: ei,
                    label: format!("{}.w{}", ex.label, wi),
                    accel: ex.accelerator_for(wi).cloned(),
                    gpu: None,
                    env: BTreeMap::new(),
                    state: WorkerState::Provisioning,
                    cold_breakdown: None,
                    spawned_at: SimTime::ZERO,
                    ready_at: None,
                    tasks_completed: 0,
                    loaded_models: BTreeSet::new(),
                    model_bytes: 0,
                    current: None,
                    idle_since: None,
                    kernel_seq: 0,
                    awaiting_kernel: None,
                    epoch: 0,
                    rng: rng.split(streams::WORKER_BASE + id as u64),
                    crashed_at: None,
                    restarts_used: 0,
                    recovering: false,
                    provision_poisoned: false,
                    model_load_poisoned: false,
                });
            }
        }
        let retry_rng = rng.split(streams::RETRY_JITTER);
        let checkpoint_rng = rng.split(streams::CHECKPOINT_TIMING);
        let recovery = RecoveryState::new(retry_rng, checkpoint_rng, fleet.len());
        let admission_rng = rng.split(streams::ADMISSION);
        let hedge_rng = rng.split(streams::HEDGE_TIMING);
        let overload = OverloadState::new(admission_rng, hedge_rng);
        let reconfig_rng = rng.split(streams::RECONFIG_FAULTS);
        let reconfig = ReconfigControl::new(reconfig_rng);
        let mut index = WorldIndex::new(config.executors.len(), fleet.len());
        for w in &workers {
            index.register_worker(w.id, w.executor, w.state);
        }
        FaasWorld {
            config,
            fleet,
            workers,
            queues,
            dfk: Dfk::new(),
            timeline: Timeline::new(),
            monitor: Monitoring::new(),
            rng,
            weight_cache: WeightCache::new(),
            cpu_pool: PsPool::new(config_cores, SimTime::ZERO),
            cpu_jobs: BTreeMap::new(),
            cpu_event: None,
            driver: None,
            sampler_armed: false,
            recovery,
            checkpoints: BTreeMap::new(),
            overload,
            reconfig,
            index,
        }
    }

    /// Toggle the indexed fast paths (dispatch, admission, watchdog,
    /// fencing, fail-over, scaling). The index is maintained either way;
    /// disabling only makes the hot paths fall back to the original
    /// full scans — the A/B baseline for the fleet benchmark.
    pub fn set_index_enabled(&mut self, on: bool) {
        self.index.enabled = on;
    }

    /// Are the indexed fast paths in use?
    pub fn index_enabled(&self) -> bool {
        self.index.enabled
    }

    /// Apply a worker state change, keeping the index in sync. Every
    /// `state` write in the crate funnels through here.
    pub(crate) fn transition(&mut self, wid: usize, new: WorkerState) {
        let old = self.workers[wid].state;
        if old == new {
            return;
        }
        let exec = self.workers[wid].executor;
        self.index.on_state_change(wid, exec, old, new);
        self.workers[wid].state = new;
    }

    /// (Un)bind a worker's GPU context, keeping the resident sets in
    /// sync. Every `gpu` write in the crate funnels through here.
    pub(crate) fn bind_gpu(&mut self, wid: usize, binding: Option<(GpuId, parfait_gpu::CtxId)>) {
        let old = self.workers[wid].gpu.map(|(g, _)| g.0);
        self.index
            .on_gpu_change(wid, old, binding.map(|(g, _)| g.0));
        self.workers[wid].gpu = binding;
    }

    /// Recompute every index structure from scratch and assert it equals
    /// the incrementally maintained one. Debug builds only (the asserts
    /// and the recompute both compile away in release).
    pub fn check_index_consistency(&self) {
        #[cfg(debug_assertions)]
        {
            use std::collections::BTreeSet;
            let nexec = self.queues.len();
            let mut idle = vec![BTreeSet::new(); nexec];
            let mut live = vec![0usize; nexec];
            let mut not_dead = vec![0usize; nexec];
            let mut total = vec![0usize; nexec];
            let mut crashed = BTreeSet::new();
            let mut dead = BTreeSet::new();
            let mut state_counts = [0usize; 6];
            let mut residents = vec![BTreeSet::new(); self.index.residents.len()];
            for w in &self.workers {
                total[w.executor] += 1;
                let slot = match w.state {
                    WorkerState::Provisioning => 0,
                    WorkerState::ColdStart => 1,
                    WorkerState::Idle => 2,
                    WorkerState::Busy => 3,
                    WorkerState::Crashed => 4,
                    WorkerState::Dead => 5,
                };
                state_counts[slot] += 1;
                match w.state {
                    WorkerState::Idle => {
                        idle[w.executor].insert(w.id);
                    }
                    WorkerState::Crashed => {
                        crashed.insert(w.id);
                    }
                    WorkerState::Dead => {
                        dead.insert(w.id);
                    }
                    _ => {}
                }
                if !matches!(w.state, WorkerState::Dead | WorkerState::Crashed) {
                    live[w.executor] += 1;
                }
                if w.state != WorkerState::Dead {
                    not_dead[w.executor] += 1;
                }
                if let Some((g, _)) = w.gpu {
                    residents[g.0 as usize].insert(w.id);
                }
            }
            assert_eq!(self.index.idle, idle, "idle sets drifted");
            assert_eq!(self.index.live, live, "live counts drifted");
            assert_eq!(self.index.not_dead, not_dead, "not-dead counts drifted");
            assert_eq!(self.index.total, total, "total counts drifted");
            assert_eq!(self.index.crashed, crashed, "crashed set drifted");
            assert_eq!(self.index.dead, dead, "dead set drifted");
            assert_eq!(
                self.index.state_counts, state_counts,
                "state counts drifted"
            );
            assert_eq!(self.index.residents, residents, "resident sets drifted");
            for e in 0..nexec {
                let mut known: u128 = 0;
                let mut unknown = 0usize;
                for t in &self.queues[e] {
                    match self.dfk.task(*t).est_service {
                        Some(d) => known += d.as_nanos() as u128,
                        None => unknown += 1,
                    }
                }
                assert_eq!(
                    self.index.queued_known_nanos[e], known,
                    "queued estimate sum drifted (executor {e})"
                );
                assert_eq!(
                    self.index.queued_unknown[e], unknown,
                    "queued unknown count drifted (executor {e})"
                );
            }
        }
    }

    /// Install the experiment driver.
    pub fn set_driver(&mut self, d: impl Driver) {
        self.driver = Some(Box::new(d));
    }

    /// Are all workers of an executor dead?
    pub fn executor_dead(&self, exec: usize) -> bool {
        if self.index.enabled {
            return self.index.not_dead[exec] == 0;
        }
        self.workers
            .iter()
            .filter(|w| w.executor == exec)
            .all(|w| w.state == WorkerState::Dead)
    }

    fn with_driver(
        &mut self,
        eng: &mut Engine<FaasWorld>,
        f: impl FnOnce(&mut dyn Driver, &mut FaasWorld, &mut Engine<FaasWorld>),
    ) {
        if let Some(mut d) = self.driver.take() {
            f(d.as_mut(), self, eng);
            // A driver installed during dispatch would be overwritten;
            // drivers installing drivers is not supported.
            debug_assert!(self.driver.is_none());
            self.driver = Some(d);
        }
    }
}

/// Enqueue a task on an executor's ready queue, keeping the index's
/// queued-estimate totals in sync. Every queue push funnels through
/// here (and every removal through [`queue_pop_front`]/[`queue_remove`]).
fn queue_push(world: &mut FaasWorld, exec: usize, task: TaskId) {
    let est = world.dfk.task(task).est_service;
    world.index.queue_delta_push(exec, est);
    world.queues[exec].push_back(task);
}

/// Dequeue the oldest task of an executor's ready queue.
fn queue_pop_front(world: &mut FaasWorld, exec: usize) -> Option<TaskId> {
    let task = world.queues[exec].pop_front()?;
    let est = world.dfk.task(task).est_service;
    world.index.queue_delta_pop(exec, est);
    Some(task)
}

/// Remove a specific task from an executor's ready queue (shed, cancel).
fn queue_remove(world: &mut FaasWorld, exec: usize, task: TaskId) {
    let before = world.queues[exec].len();
    world.queues[exec].retain(|t| *t != task);
    let removed = before - world.queues[exec].len();
    let est = world.dfk.task(task).est_service;
    for _ in 0..removed {
        world.index.queue_delta_pop(exec, est);
    }
}

/// Start the platform: spawn every worker through its provider, arm the
/// monitoring sampler, and run the driver's `on_start`.
pub fn boot(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
    for wid in 0..world.workers.len() {
        schedule_spawn(world, eng, wid);
    }
    if world.config.monitoring_period.is_some() && !world.sampler_armed {
        world.sampler_armed = true;
        sample_monitors(world, eng);
    }
    world.with_driver(eng, |d, w, e| d.on_start(w, e));
}

fn provider_delay(world: &mut FaasWorld, wid: usize) -> SimDuration {
    let exec = world.workers[wid].executor;
    match &world.config.executors[exec].provider {
        ProviderConfig::Local { spawn_delay } => *spawn_delay,
        ProviderConfig::Slurm {
            queue_wait_mean,
            spawn_delay,
        } => {
            let q = world.workers[wid].rng.exp(queue_wait_mean.as_secs_f64());
            *spawn_delay + SimDuration::from_secs_f64(q)
        }
    }
}

fn schedule_spawn(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) {
    // ThreadPool executors are threads of the already-warm submitting
    // process: ready immediately, no provider round-trip, no cold start.
    let exec = world.workers[wid].executor;
    if world.config.executors[exec].kind == ExecutorKind::ThreadPool {
        let now = eng.now();
        world.transition(wid, WorkerState::Idle);
        {
            let w = &mut world.workers[wid];
            w.spawned_at = now;
            w.ready_at = Some(now);
            w.idle_since = Some(now);
        }
        world
            .monitor
            .worker_event(now, wid, WorkerEventKind::Ready, "thread-pool");
        kick_executor(world, eng, exec);
        return;
    }
    let delay = provider_delay(world, wid);
    let epoch = world.workers[wid].epoch;
    eng.schedule_in(delay, move |w: &mut FaasWorld, e| {
        if w.workers[wid].epoch != epoch || w.workers[wid].state != WorkerState::Provisioning {
            return;
        }
        if w.workers[wid].provision_poisoned {
            // Injected provider failure: the slot never materializes.
            let now = e.now();
            w.workers[wid].provision_poisoned = false;
            w.transition(wid, WorkerState::Dead);
            w.workers[wid].recovering = false;
            w.recovery.stats.workers_lost += 1;
            w.monitor.fault_event(
                now,
                FaultPhase::Detected,
                "provisioning-failure",
                None,
                Some(wid),
                "provider failed to hand over the process slot",
            );
            w.monitor
                .worker_event(now, wid, WorkerEventKind::Killed, "provisioning failed");
            auto_respawn(w, e, wid);
            return;
        }
        begin_cold_start(w, e, wid);
    });
}

fn begin_cold_start(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) {
    let now = eng.now();
    let has_gpu = world.workers[wid].accel.is_some();
    let spec = if has_gpu {
        // Spec only sets the context-init constant; any device works.
        Some(world.fleet.device(GpuId(0)).spec.clone())
    } else {
        None
    };
    world.transition(wid, WorkerState::ColdStart);
    let breakdown = {
        let w = &mut world.workers[wid];
        w.spawned_at = now;
        let b = world.config.cold_start.sample(&mut w.rng, spec.as_ref(), 0);
        w.cold_breakdown = Some(b);
        b
    };
    world
        .monitor
        .worker_event(now, wid, WorkerEventKind::Spawned, "");
    let epoch = world.workers[wid].epoch;
    eng.schedule_in(
        breakdown.function_init + breakdown.gpu_context_init,
        move |w: &mut FaasWorld, e| {
            if w.workers[wid].epoch != epoch || w.workers[wid].state != WorkerState::ColdStart {
                return;
            }
            finish_cold_start(w, e, wid);
        },
    );
}

/// Resolve an accelerator spec into a device + binding and build the
/// environment the worker process would see.
fn resolve_accel(
    fleet: &GpuFleet,
    spec: &AcceleratorSpec,
) -> Result<(GpuId, CtxBinding, BTreeMap<String, String>), String> {
    let mut env = BTreeMap::new();
    match spec {
        AcceleratorSpec::Gpu(i) => {
            env.insert("CUDA_VISIBLE_DEVICES".into(), i.to_string());
            Ok((GpuId(*i), CtxBinding::Bare, env))
        }
        AcceleratorSpec::GpuPercentage(i, pct) => {
            env.insert("CUDA_VISIBLE_DEVICES".into(), i.to_string());
            env.insert(MPS_ENV_VAR.into(), pct.to_string());
            Ok((GpuId(*i), CtxBinding::MpsPercentage(*pct), env))
        }
        AcceleratorSpec::Mig(uuid) => {
            env.insert("CUDA_VISIBLE_DEVICES".into(), uuid.clone());
            for gi in 0..fleet.len() as u32 {
                if fleet.device(GpuId(gi)).mig.by_uuid(uuid).is_some() {
                    return Ok((GpuId(gi), CtxBinding::MigInstance(uuid.clone()), env));
                }
            }
            Err(format!("MIG instance {uuid} not found on any device"))
        }
        AcceleratorSpec::VgpuSlot(i, s) => {
            env.insert("CUDA_VISIBLE_DEVICES".into(), format!("vgpu{i}:{s}"));
            Ok((GpuId(*i), CtxBinding::VgpuSlot(*s), env))
        }
    }
}

fn finish_cold_start(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) {
    let now = eng.now();
    if let Some(spec) = world.workers[wid].accel.clone() {
        match resolve_accel(&world.fleet, &spec) {
            Ok((gpu, binding, env)) => {
                if gpu_quarantined(world, gpu) {
                    // The breaker is open: park instead of burning the
                    // restart budget on a doomed context creation. The
                    // worker respawns when the device is re-admitted.
                    world.transition(wid, WorkerState::Dead);
                    world.workers[wid].recovering = false;
                    world.recovery.health_mut(gpu).parked.push(wid);
                    world.monitor.worker_event(
                        now,
                        wid,
                        WorkerEventKind::Killed,
                        format!("GPU {} quarantined; parked for re-admission", gpu.0),
                    );
                    return;
                }
                let label = world.workers[wid].label.clone();
                match world
                    .fleet
                    .device_mut(gpu)
                    .create_context(now, &label, binding)
                {
                    Ok(ctx) => {
                        world.bind_gpu(wid, Some((gpu, ctx)));
                        world.workers[wid].env = env;
                        resync(world, eng, gpu);
                    }
                    Err(e) => {
                        world.transition(wid, WorkerState::Dead);
                        world.monitor.worker_event(
                            now,
                            wid,
                            WorkerEventKind::Killed,
                            format!("context creation failed: {e}"),
                        );
                        return;
                    }
                }
            }
            Err(e) => {
                world.transition(wid, WorkerState::Dead);
                world
                    .monitor
                    .worker_event(now, wid, WorkerEventKind::Killed, e);
                return;
            }
        }
    }
    world.transition(wid, WorkerState::Idle);
    {
        let w = &mut world.workers[wid];
        w.ready_at = Some(now);
        w.idle_since = Some(now);
    }
    let cold = world.workers[wid]
        .cold_breakdown
        .map(|b| format!("cold={:.3}s", b.total().as_secs_f64()))
        .unwrap_or_default();
    world
        .monitor
        .worker_event(now, wid, WorkerEventKind::Ready, cold);
    if world.workers[wid].recovering {
        // Auto-respawn completed: close the fault incident (MTTR).
        world.workers[wid].recovering = false;
        let gpu = world.workers[wid].gpu.map(|(g, _)| g.0);
        world.monitor.fault_event(
            now,
            FaultPhase::Recovered,
            "worker-restored",
            gpu,
            Some(wid),
            "respawn complete",
        );
    }
    kick_executor(world, eng, world.workers[wid].executor);
}

/// Submit an app call; returns its task id. A call naming an unknown
/// executor label is registered and immediately failed terminally (the
/// driver sees it as a fatal task, same as an admission refusal).
pub fn submit(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, call: AppCall) -> TaskId {
    let Some(exec) = world.config.executor_index(&call.executor) else {
        let label = call.executor.clone();
        let (id, _) = world.dfk.submit(eng.now(), call, 0, 0);
        fail_terminally(world, eng, id, &format!("unknown executor label {label:?}"));
        return id;
    };
    let retries = world.config.retries;
    let (id, ready) = world.dfk.submit(eng.now(), call, exec, retries);
    if ready {
        if !admit(world, eng, id, exec) {
            return id;
        }
        queue_push(world, exec, id);
        kick_executor(world, eng, exec);
    }
    id
}

/// Admission control for a ready task at submit time. Returns whether
/// the task may enter its executor queue; a refused task has already
/// been failed terminally. Tasks released later by completing
/// dependencies bypass this gate — their workflow was admitted whole,
/// and shedding the tail would waste the work sunk into the head.
fn admit(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, task: TaskId, exec: usize) -> bool {
    let ov = &world.config.overload;
    let now = eng.now();
    // Deadline-aware screening: estimate the queue wait from the service
    // estimates of everything already queued, spread over the executor's
    // live workers, and refuse work that cannot finish in time even if
    // nothing else goes wrong.
    if ov.deadline_admission {
        let t = world.dfk.task(task);
        if let (Some(deadline), Some(est)) = (t.deadline, t.est_service) {
            let live = if world.index.enabled {
                world.index.live[exec].max(1)
            } else {
                world
                    .workers
                    .iter()
                    .filter(|w| {
                        w.executor == exec
                            && !matches!(w.state, WorkerState::Dead | WorkerState::Crashed)
                    })
                    .count()
                    .max(1)
            };
            let queued_work: f64 = if world.index.enabled {
                world.index.queued_known_nanos[exec] as f64 / 1e9
                    + world.index.queued_unknown[exec] as f64 * est.as_secs_f64()
            } else {
                world.queues[exec]
                    .iter()
                    .map(|q| world.dfk.task(*q).est_service.unwrap_or(est).as_secs_f64())
                    .sum()
            };
            let wait_est = queued_work / live as f64;
            if wait_est + est.as_secs_f64() > deadline.as_secs_f64() {
                world.overload.stats.tasks_rejected += 1;
                world.monitor.fault_event(
                    now,
                    FaultPhase::Detected,
                    "admission-reject",
                    None,
                    None,
                    format!(
                        "task {}: est wait {wait_est:.2}s + service {:.2}s exceeds deadline {:.2}s",
                        task.0,
                        est.as_secs_f64(),
                        deadline.as_secs_f64()
                    ),
                );
                fail_terminally(
                    world,
                    eng,
                    task,
                    "admission rejected: deadline unattainable",
                );
                return false;
            }
        }
    }
    // Bounded queue: past the cap, apply the shed policy.
    if let Some(cap) = ov.queue_cap {
        if world.queues[exec].len() >= cap {
            match ov.shed_policy {
                ShedPolicy::Reject => {
                    world.overload.stats.tasks_rejected += 1;
                    world.monitor.fault_event(
                        now,
                        FaultPhase::Detected,
                        "admission-reject",
                        None,
                        None,
                        format!("task {}: queue {exec} full ({cap})", task.0),
                    );
                    fail_terminally(world, eng, task, "admission rejected: queue full");
                    return false;
                }
                ShedPolicy::ShedOldest => {
                    if let Some(victim) = queue_pop_front(world, exec) {
                        world.overload.stats.tasks_shed += 1;
                        world.monitor.fault_event(
                            now,
                            FaultPhase::Detected,
                            "queue-shed",
                            None,
                            None,
                            format!("task {}: shed for task {} (oldest)", victim.0, task.0),
                        );
                        fail_terminally(world, eng, victim, "shed: queue full (oldest)");
                    }
                }
                ShedPolicy::ShedLowestPriority => {
                    // Victim = lowest priority among the queue and the
                    // newcomer; ties broken uniformly on the admission
                    // stream so the choice is seeded, not positional.
                    let my_pri = world.dfk.task(task).priority;
                    let min_pri = world.queues[exec]
                        .iter()
                        .map(|q| world.dfk.task(*q).priority)
                        .fold(my_pri, i32::min);
                    let mut candidates: Vec<TaskId> = world.queues[exec]
                        .iter()
                        .copied()
                        .filter(|q| world.dfk.task(*q).priority == min_pri)
                        .collect();
                    if my_pri == min_pri {
                        candidates.push(task);
                    }
                    let pick = candidates
                        [world.overload.admission_rng.below(candidates.len() as u64) as usize];
                    if pick == task {
                        world.overload.stats.tasks_rejected += 1;
                        fail_terminally(world, eng, task, "admission rejected: lowest priority");
                        return false;
                    }
                    queue_remove(world, exec, pick);
                    world.overload.stats.tasks_shed += 1;
                    world.monitor.fault_event(
                        now,
                        FaultPhase::Detected,
                        "queue-shed",
                        None,
                        None,
                        format!(
                            "task {}: shed for task {} (lowest priority)",
                            pick.0, task.0
                        ),
                    );
                    fail_terminally(world, eng, pick, "shed: queue full (lowest priority)");
                }
            }
        }
    }
    // An admitted first attempt funds its app's retry bucket.
    if let Some(rb) = world.config.overload.retry_budget {
        let app = world.dfk.task(task).app.clone();
        let tokens = world
            .overload
            .retry_tokens
            .entry(app)
            .or_insert(rb.burst.max(0.0));
        *tokens = (*tokens + rb.ratio.max(0.0)).min(rb.burst.max(0.0));
    }
    true
}

/// Fail a queued/ready task permanently (admission refusal, shed, or
/// suppressed retry): zero its remaining retries so the DFK cascades it
/// as fatal, then run the terminal bookkeeping `finish_task` would have.
fn fail_terminally(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, task: TaskId, error: &str) {
    let now = eng.now();
    world.dfk.task_mut(task).retries_left = 0;
    if let FailureOutcome::Fatal { cascade } = world.dfk.mark_failed(task, now, error) {
        for c in cascade {
            world.with_driver(eng, |d, w, e| d.on_task_done(w, e, c));
        }
    }
    world.checkpoints.remove(&task);
    world.with_driver(eng, |d, w, e| d.on_task_done(w, e, task));
}

/// Cancel a task that has not started running (queued or waiting on
/// dependencies). Returns `true` on success; running/settled tasks are
/// not cancellable. Cancellation cascades to dependents, and the task is
/// removed from its executor queue.
pub fn cancel(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, task: TaskId) -> bool {
    let now = eng.now();
    if !world.dfk.cancel(task, now) {
        return false;
    }
    for exec in 0..world.queues.len() {
        queue_remove(world, exec, task);
    }
    world.with_driver(eng, |d, w, e| d.on_task_done(w, e, task));
    true
}

/// Hand queued tasks to idle workers of an executor.
pub fn kick_executor(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, exec: usize) {
    loop {
        if world.queues[exec].is_empty() {
            return;
        }
        // The index's ordered idle set yields the lowest-id idle worker —
        // exactly what the linear `position` scan found. Workers under an
        // active staged drain are excluded on both paths identically
        // (stop-dispatch; see the `drain` module).
        let pick = if world.index.enabled {
            if world.reconfig.draining.is_empty() {
                world.index.idle[exec].first().copied()
            } else {
                world.index.idle[exec]
                    .iter()
                    .copied()
                    .find(|wid| !world.reconfig.draining.contains(wid))
            }
        } else {
            world.workers.iter().position(|w| {
                w.executor == exec
                    && w.state == WorkerState::Idle
                    && !world.reconfig.draining.contains(&w.id)
            })
        };
        let Some(wid) = pick else {
            return;
        };
        let task = queue_pop_front(world, exec).expect("non-empty");
        assign_task(world, eng, wid, task);
    }
}

fn assign_task(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize, task: TaskId) {
    let now = eng.now();
    world.dfk.mark_dispatched(task, now, wid);
    world.transition(wid, WorkerState::Busy);
    let body = {
        let w = &mut world.workers[wid];
        w.idle_since = None;
        world.dfk.make_body(task, &mut w.rng)
    };
    // Guarded at the call site so the hot path skips the `format!` too.
    if world.monitor.record_worker_events {
        world.monitor.worker_event(
            now,
            wid,
            WorkerEventKind::TaskStart,
            format!("task {}", task.0),
        );
    }
    world.workers[wid].current = Some(Running {
        task,
        body: Some(body),
        span: None,
        task_allocs: 0,
        loading: None,
        steps_issued: 0,
        ckpt_pending: false,
        progress_mark: None,
        is_hedge: false,
    });
    // Wire dispatch (interchange -> manager -> worker serialization).
    let delay = world
        .config
        .wire
        .dispatch_latency(world.dfk.task(task).payload_bytes);
    let epoch = world.workers[wid].epoch;
    eng.schedule_in(delay, move |w: &mut FaasWorld, e| {
        if w.workers[wid].epoch != epoch || w.workers[wid].state != WorkerState::Busy {
            return;
        }
        after_dispatch(w, e, wid);
    });
}

fn after_dispatch(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) {
    // Model load (§6 part 3) if this worker hasn't it resident.
    let model = world.workers[wid]
        .current
        .as_ref()
        .and_then(|r| r.body.as_ref())
        .and_then(|b| b.model());
    if let Some(m) = model {
        if !world.workers[wid].has_model(m.id) {
            begin_model_load(world, eng, wid, m);
            return;
        }
    }
    start_body(world, eng, wid);
}

fn begin_model_load(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    wid: usize,
    m: ModelProfile,
) {
    let Some((gpu, ctx)) = world.workers[wid].gpu else {
        finish_task(
            world,
            eng,
            wid,
            Err("model load requires a GPU worker".into()),
        );
        return;
    };
    if world.workers[wid].model_load_poisoned {
        // Injected transient OOM: the attempt fails, the worker survives,
        // and the retry (with backoff) loads cleanly.
        world.workers[wid].model_load_poisoned = false;
        world.monitor.fault_event(
            eng.now(),
            FaultPhase::Detected,
            "model-load-oom",
            None,
            None,
            format!("worker {wid}: model {} load hit transient OOM", m.id),
        );
        finish_task(
            world,
            eng,
            wid,
            Err("model load failed: injected out-of-memory".into()),
        );
        return;
    }
    // Decide the load path: stock (whole blob into the process context)
    // or through the §7 GPU-resident weight cache (shared weights pinned
    // device-wide, only private KV/workspace per process).
    let use_cache = world.weight_cache.enabled() && m.shared_bytes > 0;
    let (ctx_bytes, cache_bytes, secs) = if use_cache {
        if world.weight_cache.contains(gpu.0, m.id) {
            world.weight_cache.hits += 1;
            // Re-bind: pointer fix-up, no weight copy.
            (
                m.private_bytes(),
                0,
                world.config.cold_start.cached_attach_s,
            )
        } else {
            world.weight_cache.misses += 1;
            let full = world.fleet.device(gpu).spec.model_load_seconds(m.bytes);
            (m.private_bytes(), m.shared_bytes, full)
        }
    } else {
        let full = world.fleet.device(gpu).spec.model_load_seconds(m.bytes);
        (m.bytes, 0, full)
    };
    if cache_bytes > 0 {
        if let Err(e) = world.fleet.device_mut(gpu).cache_alloc(cache_bytes) {
            finish_task(world, eng, wid, Err(format!("model alloc failed: {e}")));
            return;
        }
        world.weight_cache.insert(gpu.0, m.id, cache_bytes);
    }
    if ctx_bytes > 0 {
        if let Err(e) = world.fleet.device_mut(gpu).alloc_memory(ctx, ctx_bytes) {
            if cache_bytes > 0 {
                let _ = world.fleet.device_mut(gpu).cache_free(cache_bytes);
                world.weight_cache.remove(gpu.0, m.id);
            }
            finish_task(world, eng, wid, Err(format!("model alloc failed: {e}")));
            return;
        }
    }
    resync(world, eng, gpu);
    if let Some(r) = world.workers[wid].current.as_mut() {
        r.loading = Some(m);
    }
    let epoch = world.workers[wid].epoch;
    eng.schedule_in(
        SimDuration::from_secs_f64(secs),
        move |w: &mut FaasWorld, e| {
            if w.workers[wid].epoch != epoch || w.workers[wid].state != WorkerState::Busy {
                return;
            }
            {
                let wk = &mut w.workers[wid];
                wk.loaded_models.insert(m.id);
                wk.model_bytes += ctx_bytes;
                if let Some(r) = wk.current.as_mut() {
                    r.loading = None;
                }
            }
            start_body(w, e, wid);
        },
    );
}

fn start_body(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) {
    let now = eng.now();
    let task = world.workers[wid].current.as_ref().expect("running").task;
    world.dfk.mark_started(task, now);
    // Parsl's `walltime` option: the attempt is killed when the limit
    // expires (the worker survives; the task fails and may retry).
    if let Some(limit) = world.dfk.task(task).walltime {
        let epoch = world.workers[wid].epoch;
        eng.schedule_in(limit, move |w: &mut FaasWorld, e| {
            let still_on_it = w.workers[wid].epoch == epoch
                && w.workers[wid].state == WorkerState::Busy
                && w.workers[wid].current_task() == Some(task);
            if still_on_it {
                // Abort the in-flight kernel so it stops burning SMs and
                // its completion can never fire.
                if let (Some((gpu, _ctx)), Some(seq)) =
                    (w.workers[wid].gpu, w.workers[wid].awaiting_kernel)
                {
                    w.fleet
                        .device_mut(gpu)
                        .abort_tagged(e.now(), pack_kernel_tag(wid, seq));
                    resync(w, e, gpu);
                }
                w.workers[wid].awaiting_kernel = None;
                finish_task(w, e, wid, Err("walltime exceeded".into()));
            }
        });
    }
    let app = world.dfk.task(task).app.clone();
    let span = world.timeline.start(&app, &format!("task-{}", task.0), now);
    if let Some(r) = world.workers[wid].current.as_mut() {
        r.span = Some(span);
        r.progress_mark = Some(now);
    }
    arm_hedge(world, eng, wid, task);
    let ckpt_capable = world.workers[wid].gpu.is_some()
        && world.workers[wid]
            .current
            .as_ref()
            .and_then(|r| r.body.as_ref())
            .is_some_and(|b| b.checkpointable());
    if ckpt_capable {
        // Restore-on-respawn: a retried attempt with a committed
        // snapshot pays the host→device restore transfer, then
        // fast-forwards its fresh body to the snapshot cursor instead of
        // re-executing from scratch.
        let snapshot = world.checkpoints.get(&task).copied();
        if let (Some(ck), Some((gpu, _))) = (snapshot, world.workers[wid].gpu) {
            if ck.steps > 0 {
                let secs = world
                    .fleet
                    .device(gpu)
                    .spec
                    .checkpoint_restore_seconds(ck.bytes);
                world.recovery.stats.tasks_resumed += 1;
                world.monitor.fault_event(
                    now,
                    FaultPhase::Recovered,
                    "checkpoint-restore",
                    None,
                    None,
                    format!(
                        "task {}: resuming from step {} ({} bytes, {secs:.3}s restore)",
                        task.0, ck.steps, ck.bytes
                    ),
                );
                let epoch = world.workers[wid].epoch;
                eng.schedule_in(
                    SimDuration::from_secs_f64(secs),
                    move |w: &mut FaasWorld, e| {
                        let on_it = w.workers[wid].epoch == epoch
                            && w.workers[wid].state == WorkerState::Busy
                            && w.workers[wid].current_task() == Some(task);
                        if !on_it {
                            return;
                        }
                        if fast_forward(w, e, wid, ck.steps) {
                            arm_checkpoint(w, e, wid, task);
                            advance_worker(w, e, wid);
                        }
                    },
                );
                return;
            }
        }
        arm_checkpoint(world, eng, wid, task);
    }
    advance_worker(world, eng, wid);
}

/// Ask a busy worker to snapshot at its next step boundary (staged-drain
/// support: preserve in-flight progress before a planned restart). No-op
/// for idle workers, CPU-only workers, and non-checkpointable bodies.
pub(crate) fn request_checkpoint(world: &mut FaasWorld, wid: usize) {
    if world.workers[wid].gpu.is_none() {
        return;
    }
    if let Some(r) = world.workers[wid].current.as_mut() {
        if r.body.as_ref().is_some_and(|b| b.checkpointable()) {
            r.ckpt_pending = true;
        }
    }
}

/// Arm the (jittered) checkpoint timer for a checkpointable attempt. The
/// timer only *requests* a snapshot; it is captured at the next step
/// boundary so it is always consistent with completed work.
fn arm_checkpoint(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize, task: TaskId) {
    let Some(interval) = world.config.checkpoint.interval else {
        return;
    };
    let jitter = world.config.checkpoint.jitter.clamp(0.0, 1.0);
    let mult = 1.0 + jitter * world.recovery.ckpt_rng.f64();
    let epoch = world.workers[wid].epoch;
    eng.schedule_in(
        SimDuration::from_secs_f64(interval.as_secs_f64() * mult),
        move |w: &mut FaasWorld, _e| {
            let on_it = w.workers[wid].epoch == epoch
                && w.workers[wid].state == WorkerState::Busy
                && w.workers[wid].current_task() == Some(task);
            if !on_it {
                return; // attempt ended; the timer dies with it
            }
            if let Some(r) = w.workers[wid].current.as_mut() {
                r.ckpt_pending = true;
            }
        },
    );
}

/// Capture a snapshot at a step boundary and stall the body for the
/// device-priced writeback. The commit is epoch-guarded: a worker killed
/// mid-write never publishes a torn snapshot. Returns whether the body
/// stalled (caller returns) or the snapshot was skipped (caller keeps
/// advancing).
fn begin_checkpoint(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) -> bool {
    let now = eng.now();
    let (task, steps, bytes) = {
        let Some(r) = world.workers[wid].current.as_mut() else {
            return false;
        };
        r.ckpt_pending = false;
        let durable = r.body.as_ref().map(|b| b.checkpoint_bytes()).unwrap_or(0);
        (
            r.task,
            r.steps_issued,
            durable + r.task_allocs + CHECKPOINT_BASE_BYTES,
        )
    };
    let Some((gpu, _)) = world.workers[wid].gpu else {
        return false;
    };
    if steps == 0 {
        // Nothing completed yet; try again one interval later.
        arm_checkpoint(world, eng, wid, task);
        return false;
    }
    let write = world.fleet.device(gpu).spec.checkpoint_write_seconds(bytes);
    let stall = world.config.checkpoint.overhead + SimDuration::from_secs_f64(write);
    let captured_at = now;
    let epoch = world.workers[wid].epoch;
    eng.schedule_in(stall, move |w: &mut FaasWorld, e| {
        let on_it = w.workers[wid].epoch == epoch
            && w.workers[wid].state == WorkerState::Busy
            && w.workers[wid].current_task() == Some(task);
        if !on_it {
            return; // died mid-write: the previous snapshot stands
        }
        w.checkpoints.insert(
            task,
            Checkpoint {
                steps,
                bytes,
                captured_at,
            },
        );
        w.recovery.stats.checkpoints_committed += 1;
        if let Some(r) = w.workers[wid].current.as_mut() {
            r.progress_mark = Some(captured_at);
        }
        w.monitor.fault_event(
            e.now(),
            FaultPhase::Recovered,
            "checkpoint-commit",
            None,
            None,
            format!("task {}: step {steps} ({bytes} bytes)", task.0),
        );
        arm_checkpoint(w, e, wid, task);
        advance_worker(w, e, wid);
    });
    true
}

/// Replay a fresh body up to `steps` completed steps without simulating
/// time: compute and kernel steps are skipped outright (their effects
/// were captured in the snapshot), while allocation steps are applied so
/// device memory accounting matches the restored state. Returns `false`
/// if the task settled during replay (short body, allocation failure).
fn fast_forward(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    wid: usize,
    steps: u64,
) -> bool {
    let now = eng.now();
    let mut done = 0u64;
    while done < steps {
        let mut body = match world.workers[wid]
            .current
            .as_mut()
            .and_then(|r| r.body.take())
        {
            Some(b) => b,
            None => return false,
        };
        let step = {
            let w = &mut world.workers[wid];
            let mut ctx = TaskCtx {
                rng: &mut w.rng,
                now,
            };
            body.next(&mut ctx)
        };
        if let Some(r) = world.workers[wid].current.as_mut() {
            r.body = Some(body);
        }
        match step {
            TaskStep::Cpu(_) | TaskStep::Gpu(_) => done += 1,
            TaskStep::AllocGpu(bytes) => {
                let Some((gpu, ctx)) = world.workers[wid].gpu else {
                    finish_task(world, eng, wid, Err("GPU alloc on CPU-only worker".into()));
                    return false;
                };
                match world.fleet.device_mut(gpu).alloc_memory(ctx, bytes) {
                    Ok(()) => {
                        if let Some(r) = world.workers[wid].current.as_mut() {
                            r.task_allocs += bytes;
                        }
                        resync(world, eng, gpu);
                        done += 1;
                    }
                    Err(e) => {
                        // The restored state no longer fits; drop the
                        // snapshot so the next attempt re-executes.
                        let task = world.workers[wid].current.as_ref().map(|r| r.task);
                        if let Some(t) = task {
                            world.checkpoints.remove(&t);
                        }
                        finish_task(
                            world,
                            eng,
                            wid,
                            Err(format!("checkpoint restore alloc failed: {e}")),
                        );
                        return false;
                    }
                }
            }
            TaskStep::FreeGpu(bytes) => {
                let Some((gpu, ctx)) = world.workers[wid].gpu else {
                    finish_task(world, eng, wid, Err("GPU free on CPU-only worker".into()));
                    return false;
                };
                match world.fleet.device_mut(gpu).free_memory(ctx, bytes) {
                    Ok(()) => {
                        if let Some(r) = world.workers[wid].current.as_mut() {
                            r.task_allocs = r.task_allocs.saturating_sub(bytes);
                        }
                        resync(world, eng, gpu);
                        done += 1;
                    }
                    Err(e) => {
                        finish_task(world, eng, wid, Err(format!("free failed: {e}")));
                        return false;
                    }
                }
            }
            TaskStep::Done => {
                // The fresh body ran out before the snapshot cursor
                // (e.g. the snapshot outlived a shrunken replay) — it is
                // simply complete.
                finish_task(world, eng, wid, Ok(()));
                return false;
            }
        }
    }
    if let Some(r) = world.workers[wid].current.as_mut() {
        r.steps_issued = done;
    }
    true
}

/// Drive the current task body until it blocks or finishes.
fn advance_worker(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) {
    loop {
        let now = eng.now();
        // Step boundary: every previously issued step has completed. If
        // the checkpoint timer fired since the last boundary, capture a
        // snapshot here (stalling the body for the writeback).
        if world.workers[wid]
            .current
            .as_ref()
            .is_some_and(|r| r.ckpt_pending)
            && begin_checkpoint(world, eng, wid)
        {
            return; // resumed by the snapshot commit
        }
        let mut body = match world.workers[wid]
            .current
            .as_mut()
            .and_then(|r| r.body.take())
        {
            Some(b) => b,
            None => return, // spurious resume
        };
        let step = {
            let w = &mut world.workers[wid];
            let mut ctx = TaskCtx {
                rng: &mut w.rng,
                now,
            };
            body.next(&mut ctx)
        };
        if let Some(r) = world.workers[wid].current.as_mut() {
            r.body = Some(body);
            if !matches!(step, TaskStep::Done) {
                r.steps_issued += 1;
            }
        }
        match step {
            TaskStep::Cpu(d) => {
                // Core contention via exact egalitarian processor
                // sharing: the step is a job of `d` core-seconds in the
                // node's pool; with more compute-bound workers than
                // cores, everyone slows proportionally (and speeds back
                // up as the pool drains).
                let epoch = world.workers[wid].epoch;
                let job = world.cpu_pool.add(now, d.as_secs_f64());
                world.cpu_jobs.insert(job, (wid, epoch));
                cpu_resync(world, eng);
                return;
            }
            TaskStep::Gpu(desc) => {
                let Some((gpu, ctx)) = world.workers[wid].gpu else {
                    finish_task(world, eng, wid, Err("GPU step on CPU-only worker".into()));
                    return;
                };
                let seq = {
                    let w = &mut world.workers[wid];
                    w.kernel_seq += 1;
                    w.awaiting_kernel = Some(w.kernel_seq);
                    w.kernel_seq
                };
                match launch_kernel(world, eng, gpu, ctx, desc, pack_kernel_tag(wid, seq)) {
                    Ok(_) => return, // resumed by on_kernel_done
                    Err(e) => {
                        world.workers[wid].awaiting_kernel = None;
                        finish_task(world, eng, wid, Err(format!("kernel launch failed: {e}")));
                        return;
                    }
                }
            }
            TaskStep::AllocGpu(bytes) => {
                let Some((gpu, ctx)) = world.workers[wid].gpu else {
                    finish_task(world, eng, wid, Err("GPU alloc on CPU-only worker".into()));
                    return;
                };
                match world.fleet.device_mut(gpu).alloc_memory(ctx, bytes) {
                    Ok(()) => {
                        if let Some(r) = world.workers[wid].current.as_mut() {
                            r.task_allocs += bytes;
                        }
                        resync(world, eng, gpu);
                    }
                    Err(e) => {
                        finish_task(world, eng, wid, Err(format!("allocation failed: {e}")));
                        return;
                    }
                }
            }
            TaskStep::FreeGpu(bytes) => {
                let Some((gpu, ctx)) = world.workers[wid].gpu else {
                    finish_task(world, eng, wid, Err("GPU free on CPU-only worker".into()));
                    return;
                };
                match world.fleet.device_mut(gpu).free_memory(ctx, bytes) {
                    Ok(()) => {
                        if let Some(r) = world.workers[wid].current.as_mut() {
                            r.task_allocs = r.task_allocs.saturating_sub(bytes);
                        }
                        resync(world, eng, gpu);
                    }
                    Err(e) => {
                        finish_task(world, eng, wid, Err(format!("free failed: {e}")));
                        return;
                    }
                }
            }
            TaskStep::Done => {
                finish_task(world, eng, wid, Ok(()));
                return;
            }
        }
    }
}

/// Re-arm the single wake event for the CPU processor-sharing pool.
fn cpu_resync(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
    if let Some(ev) = world.cpu_event.take() {
        eng.cancel(ev);
    }
    let now = eng.now();
    if let Some((_, at)) = world.cpu_pool.next_completion(now) {
        let at = at.saturating_add(SimDuration::from_nanos(1));
        world.cpu_event = Some(eng.schedule_at(at, cpu_tick));
    }
}

/// Pool wake: resume every worker whose CPU step finished.
fn cpu_tick(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
    world.cpu_event = None;
    let now = eng.now();
    let done = world.cpu_pool.take_finished(now);
    for job in done {
        if let Some((wid, epoch)) = world.cpu_jobs.remove(&job) {
            if world.workers[wid].epoch == epoch && world.workers[wid].state == WorkerState::Busy {
                advance_worker(world, eng, wid);
            }
        }
    }
    cpu_resync(world, eng);
}

/// Drop any CPU-pool jobs belonging to `wid` (its task ended or the
/// worker died); remaining workers speed up accordingly.
fn cancel_cpu_jobs(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) {
    let now = eng.now();
    let mine: Vec<PsJobId> = world
        .cpu_jobs
        .iter()
        .filter(|(_, (w, _))| *w == wid)
        .map(|(j, _)| *j)
        .collect();
    if mine.is_empty() {
        return;
    }
    for j in mine {
        world.cpu_jobs.remove(&j);
        let _ = world.cpu_pool.remove(now, j);
    }
    cpu_resync(world, eng);
}

/// Arm the straggler-hedge timer for a freshly started *primary*
/// attempt: after `est_service * trigger_factor * (1 + jitter * U[0,1))`
/// the attempt is a straggler suspect and a duplicate is launched if
/// capacity allows. Hedge attempts and tasks without a service estimate
/// never arm.
fn arm_hedge(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize, task: TaskId) {
    let Some(hp) = world.config.overload.hedge else {
        return;
    };
    let is_hedge = world.workers[wid]
        .current
        .as_ref()
        .is_some_and(|r| r.is_hedge);
    if is_hedge || world.overload.hedges.contains_key(&task) {
        return;
    }
    let Some(est) = world.dfk.task(task).est_service else {
        return;
    };
    let jitter = hp.jitter.clamp(0.0, 1.0);
    let mult = 1.0 + jitter * world.overload.hedge_rng.f64();
    let delay = SimDuration::from_secs_f64(est.as_secs_f64() * hp.trigger_factor.max(0.0) * mult);
    schedule_hedge_timer(world, eng, wid, task, delay);
}

/// (Re-)arm the hedge timer; the closure self-cancels if the primary
/// attempt moved on (finished, died, or was superseded).
fn schedule_hedge_timer(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    wid: usize,
    task: TaskId,
    delay: SimDuration,
) {
    let epoch = world.workers[wid].epoch;
    eng.schedule_in(delay, move |w: &mut FaasWorld, e| {
        let still_on_it = w.workers[wid].epoch == epoch
            && w.workers[wid].state == WorkerState::Busy
            && w.workers[wid].current_task() == Some(task);
        if !still_on_it || w.overload.hedges.contains_key(&task) {
            return;
        }
        try_launch_hedge(w, e, wid, task, delay);
    });
}

/// Launch a duplicate of `task` (running on `wid`) on an idle worker of
/// the same executor, preferring a different GPU. Queued first-attempt
/// work always outranks speculation: with a backlog (or no idle worker)
/// the timer re-arms instead.
fn try_launch_hedge(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    wid: usize,
    task: TaskId,
    delay: SimDuration,
) {
    let exec = world.workers[wid].executor;
    if !world.queues[exec].is_empty() {
        schedule_hedge_timer(world, eng, wid, task, delay);
        return;
    }
    let my_gpu = world.workers[wid].gpu.map(|(g, _)| g);
    // Prefer a different GPU; ties to the lowest id — the ordered idle
    // set reproduces the `min_by_key((same_gpu, id))` scan exactly: the
    // first id on another device wins, else the first id overall.
    let pick = if world.index.enabled {
        let mut same_gpu = None;
        let mut other_gpu = None;
        for &cand in &world.index.idle[exec] {
            if cand == wid || world.reconfig.draining.contains(&cand) {
                continue;
            }
            if world.workers[cand].gpu.map(|(g, _)| g) != my_gpu {
                other_gpu = Some(cand);
                break;
            }
            if same_gpu.is_none() {
                same_gpu = Some(cand);
            }
        }
        other_gpu.or(same_gpu)
    } else {
        world
            .workers
            .iter()
            .filter(|w| {
                w.executor == exec
                    && w.state == WorkerState::Idle
                    && w.id != wid
                    && !world.reconfig.draining.contains(&w.id)
            })
            .min_by_key(|w| (w.gpu.map(|(g, _)| g) == my_gpu, w.id))
            .map(|w| w.id)
    };
    let Some(hw) = pick else {
        schedule_hedge_timer(world, eng, wid, task, delay);
        return;
    };
    world.overload.hedges.insert(
        task,
        HedgePair {
            primary: wid,
            hedge: hw,
        },
    );
    world.overload.stats.hedges_launched += 1;
    world.monitor.fault_event(
        eng.now(),
        FaultPhase::Detected,
        "hedge-launched",
        None,
        Some(hw),
        format!(
            "task {}: straggler suspect on worker {wid}, duplicate on worker {hw}",
            task.0
        ),
    );
    dispatch_hedge(world, eng, hw, task);
}

/// Dispatch the speculative duplicate. Mirrors `assign_task` but leaves
/// the DFK untouched: the task is already `Running`, and hedge launches
/// must not perturb the dispatch/attempt accounting retries key off.
/// The duplicate then flows through the normal model-load/start-body
/// path — including a checkpoint restore when the task has a committed
/// snapshot, so a hedge resumes instead of cold-starting.
fn dispatch_hedge(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize, task: TaskId) {
    let now = eng.now();
    world.transition(wid, WorkerState::Busy);
    let body = {
        let w = &mut world.workers[wid];
        w.idle_since = None;
        world.dfk.make_body(task, &mut w.rng)
    };
    if world.monitor.record_worker_events {
        world.monitor.worker_event(
            now,
            wid,
            WorkerEventKind::TaskStart,
            format!("task {} (hedge)", task.0),
        );
    }
    world.workers[wid].current = Some(Running {
        task,
        body: Some(body),
        span: None,
        task_allocs: 0,
        loading: None,
        steps_issued: 0,
        ckpt_pending: false,
        progress_mark: None,
        is_hedge: true,
    });
    let delay = world
        .config
        .wire
        .dispatch_latency(world.dfk.task(task).payload_bytes);
    let epoch = world.workers[wid].epoch;
    eng.schedule_in(delay, move |w: &mut FaasWorld, e| {
        if w.workers[wid].epoch != epoch || w.workers[wid].state != WorkerState::Busy {
            return;
        }
        after_dispatch(w, e, wid);
    });
}

/// After a hedged task's winner completes, tear the loser down one
/// control-plane round-trip later.
fn schedule_hedge_cancel(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    wid: usize,
    task: TaskId,
) {
    let latency = world
        .config
        .overload
        .hedge
        .map(|h| h.cancel_latency)
        .unwrap_or(SimDuration::ZERO);
    let epoch = world.workers[wid].epoch;
    eng.schedule_in(latency, move |w: &mut FaasWorld, e| {
        let still_on_it = w.workers[wid].epoch == epoch
            && w.workers[wid].state == WorkerState::Busy
            && w.workers[wid].current_task() == Some(task);
        if still_on_it {
            cancel_attempt(w, e, wid);
        }
    });
}

/// Tear down a worker's in-flight attempt without touching the task
/// table — the task already settled via its hedge partner. The worker's
/// kernel is aborted, CPU jobs dropped, scratch freed, and the worker
/// returns to Idle. Deliberately *not* charged to `work_lost_s`: a
/// cancelled loser is the designed cost of speculation (counted in
/// `hedges_wasted`/`hedges_won`), not failure-induced loss.
fn cancel_attempt(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) {
    let now = eng.now();
    if let (Some((gpu, _ctx)), Some(seq)) =
        (world.workers[wid].gpu, world.workers[wid].awaiting_kernel)
    {
        world
            .fleet
            .device_mut(gpu)
            .abort_tagged(now, pack_kernel_tag(wid, seq));
        resync(world, eng, gpu);
    }
    world.workers[wid].awaiting_kernel = None;
    cancel_cpu_jobs(world, eng, wid);
    let Some(run) = world.workers[wid].current.take() else {
        return;
    };
    if let Some(span) = run.span {
        world.timeline.end(span, now);
    }
    if run.task_allocs > 0 {
        if let Some((gpu, ctx)) = world.workers[wid].gpu {
            let _ = world
                .fleet
                .device_mut(gpu)
                .free_memory(ctx, run.task_allocs);
            resync(world, eng, gpu);
        }
    }
    if world.monitor.record_worker_events {
        world.monitor.worker_event(
            now,
            wid,
            WorkerEventKind::TaskEnd,
            format!("task {} cancelled (hedge loser)", run.task.0),
        );
    }
    if world.workers[wid].state == WorkerState::Busy {
        world.transition(wid, WorkerState::Idle);
        world.workers[wid].idle_since = Some(now);
    }
    if world.reconfig.is_draining(wid) {
        note_drained(world, eng, wid);
    }
    kick_executor(world, eng, world.workers[wid].executor);
}

fn finish_task(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    wid: usize,
    result: Result<(), String>,
) {
    let now = eng.now();
    world.workers[wid].awaiting_kernel = None;
    cancel_cpu_jobs(world, eng, wid);
    let Some(run) = world.workers[wid].current.take() else {
        return;
    };
    if let Some(span) = run.span {
        world.timeline.end(span, now);
    }
    // Release the task's scratch allocations (a well-behaved function
    // frees per-request tensors; the worker enforces it on failure too).
    if run.task_allocs > 0 {
        if let Some((gpu, ctx)) = world.workers[wid].gpu {
            let _ = world
                .fleet
                .device_mut(gpu)
                .free_memory(ctx, run.task_allocs);
            resync(world, eng, gpu);
        }
    }
    if world.monitor.record_worker_events {
        world.monitor.worker_event(
            now,
            wid,
            WorkerEventKind::TaskEnd,
            format!(
                "task {} {}",
                run.task.0,
                if result.is_ok() { "ok" } else { "failed" }
            ),
        );
    }
    // Only a live worker returns to Idle; a worker being torn down
    // (kill_worker marks it Dead before failing its task) must stay Dead
    // so the requeued task cannot land back on it.
    if world.workers[wid].state == WorkerState::Busy {
        world.transition(wid, WorkerState::Idle);
        world.workers[wid].idle_since = Some(now);
    }
    // Completion is idempotent per task id: a hedge loser finishing (or
    // failing) after its partner already settled the task must not touch
    // the DFK, the counters, or the driver a second time.
    let already_done = world.dfk.task(run.task).state == TaskState::Done;
    // A failed attempt throws away everything since its last committed
    // snapshot (or since its body started, when none committed). A loser
    // outliving a settled task is discarded speculation, not loss.
    if result.is_err() && !already_done {
        if let Some(mark) = run.progress_mark {
            world.recovery.stats.work_lost_s += now.duration_since(mark).as_secs_f64();
        }
    }
    // The first attempt of a live hedge pair to finish — either way —
    // dissolves the pair; the other attempt becomes sole owner (Err) or
    // a cancellation target (Ok).
    let hedge = world.overload.hedges.remove(&run.task);
    let terminal = match result {
        Ok(()) if already_done => false,
        Ok(()) => {
            if let Some(pair) = hedge {
                let loser = if wid == pair.hedge {
                    world.overload.stats.hedges_won += 1;
                    pair.primary
                } else {
                    world.overload.stats.hedges_wasted += 1;
                    pair.hedge
                };
                schedule_hedge_cancel(world, eng, loser, run.task);
            }
            world.workers[wid].tasks_completed += 1;
            {
                // Live SLO telemetry: fold the turnaround into the
                // executor's EWMA for the closed-loop controller.
                let t = world.dfk.task(run.task);
                let (texec, submitted) = (t.executor, t.submitted);
                world
                    .monitor
                    .note_latency(texec, now.duration_since(submitted).as_secs_f64());
            }
            let ready = world.dfk.mark_done(run.task, now);
            for r in ready {
                let rexec = world.dfk.task(r).executor;
                queue_push(world, rexec, r);
            }
            true
        }
        Err(_) if already_done => false,
        Err(_) if hedge.is_some() => {
            // One attempt of a live pair died (crash, walltime, fault);
            // the surviving partner is now the defined winner path and
            // the task stays Running on it. No retry, no DFK failure.
            false
        }
        Err(e) => match world.dfk.mark_failed(run.task, now, &e) {
            FailureOutcome::Retry => {
                schedule_retry(world, eng, run.task);
                false
            }
            FailureOutcome::Fatal { cascade } => {
                for c in &cascade {
                    let task = *c;
                    world.with_driver(eng, |d, w, e| d.on_task_done(w, e, task));
                }
                true
            }
        },
    };
    if terminal || already_done {
        // Settled: snapshot no longer needed. The `already_done` arm also
        // purges here because a loser can commit one more snapshot after
        // the winner's terminal removal (its commit guard only checks it
        // is still on the task), which would otherwise leak forever.
        world.checkpoints.remove(&run.task);
    }
    if terminal {
        let task = run.task;
        world.with_driver(eng, |d, w, e| d.on_task_done(w, e, task));
    }
    // A draining worker's attempt just unwound; this may complete the
    // drain (and run its reconfig transaction) before the queues below
    // are kicked against the post-reconfig worker set.
    if world.reconfig.is_draining(wid) {
        note_drained(world, eng, wid);
    }
    // Kick every executor: completions may have released tasks elsewhere.
    for e in 0..world.queues.len() {
        kick_executor(world, eng, e);
    }
}

/// Kill a worker process (shutdown or §6 reconfiguration). The in-flight
/// task, if any, fails with `reason` (and retries elsewhere).
pub fn kill_worker(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize, reason: &str) {
    let now = eng.now();
    if world.workers[wid].state == WorkerState::Dead {
        return;
    }
    // Mark the worker Dead *before* failing its task: finish_task kicks
    // the executor queues, and the retried task must not be re-assigned
    // to the very worker being torn down.
    world.transition(wid, WorkerState::Dead);
    if world.workers[wid].current.is_some() {
        finish_task(world, eng, wid, Err(format!("worker killed: {reason}")));
    }
    {
        let w = &mut world.workers[wid];
        debug_assert!(w.current.is_none(), "teardown leaves no task behind");
        w.epoch += 1;
        w.loaded_models.clear();
        w.model_bytes = 0;
        w.ready_at = None;
        w.idle_since = None;
        w.crashed_at = None;
    }
    let gpu_binding = world.workers[wid].gpu;
    world.bind_gpu(wid, None);
    if let Some((gpu, ctx)) = gpu_binding {
        let _ = world.fleet.device_mut(gpu).destroy_context(now, ctx);
        resync(world, eng, gpu);
    }
    world
        .monitor
        .worker_event(now, wid, WorkerEventKind::Killed, reason.to_string());
}

/// Why [`respawn_worker`] refused to act.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespawnError {
    /// The worker id does not exist.
    UnknownWorker(usize),
    /// The worker is not `Dead` (respawning a live or still-crashed
    /// worker would leak its context and task).
    NotDead {
        /// The worker that was targeted.
        worker: usize,
        /// Its actual state.
        state: WorkerState,
    },
}

impl std::fmt::Display for RespawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RespawnError::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            RespawnError::NotDead { worker, state } => {
                write!(f, "worker {worker} is {state:?}, not Dead")
            }
        }
    }
}

impl std::error::Error for RespawnError {}

/// Restart a dead worker, optionally with a new accelerator binding — the
/// §6 MPS-resize path (process restart to change the GPU percentage).
///
/// Returns an error (instead of panicking) when the worker is unknown or
/// not `Dead`; the world is left untouched in that case.
pub fn respawn_worker(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    wid: usize,
    new_accel: Option<AcceleratorSpec>,
) -> Result<(), RespawnError> {
    {
        let Some(w) = world.workers.get_mut(wid) else {
            return Err(RespawnError::UnknownWorker(wid));
        };
        if w.state != WorkerState::Dead {
            return Err(RespawnError::NotDead {
                worker: wid,
                state: w.state,
            });
        }
        if let Some(a) = new_accel {
            w.accel = Some(a);
        }
    }
    world.transition(wid, WorkerState::Provisioning);
    schedule_spawn(world, eng, wid);
    Ok(())
}

/// Add a brand-new worker to an executor at runtime (elastic scale-out;
/// §2.1's "rapid spin up of function instances"). The accelerator slot is
/// taken from the executor config's list, cycled by worker index, unless
/// `accel` overrides it. Returns the new worker's id, or `None` (without
/// touching the world) when `exec` is out of range.
pub fn add_worker(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    exec: usize,
    accel: Option<AcceleratorSpec>,
) -> Option<usize> {
    let id = world.workers.len();
    let ex = world.config.executors.get(exec)?;
    // `total` tracks per-executor membership exactly (workers never
    // migrate), replacing the filter-count scan.
    let within = world.index.total[exec];
    let slot = accel.or_else(|| ex.accelerator_for(within).cloned());
    let rng = world.rng.split(streams::WORKER_BASE + id as u64);
    world.workers.push(Worker {
        id,
        executor: exec,
        label: format!("{}.w{}", ex.label, within),
        accel: slot,
        gpu: None,
        env: BTreeMap::new(),
        state: WorkerState::Provisioning,
        cold_breakdown: None,
        spawned_at: eng.now(),
        ready_at: None,
        tasks_completed: 0,
        loaded_models: BTreeSet::new(),
        model_bytes: 0,
        current: None,
        idle_since: None,
        kernel_seq: 0,
        awaiting_kernel: None,
        epoch: 0,
        rng,
        crashed_at: None,
        restarts_used: 0,
        recovering: false,
        provision_poisoned: false,
        model_load_poisoned: false,
    });
    world
        .index
        .register_worker(id, exec, WorkerState::Provisioning);
    schedule_spawn(world, eng, id);
    Some(id)
}

/// Kill every worker (platform shutdown).
pub fn shutdown(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
    for wid in 0..world.workers.len() {
        kill_worker(world, eng, wid, "shutdown");
    }
}

// ---------------------------------------------------------------------
// Failure detection & recovery
// ---------------------------------------------------------------------

/// Crash a worker process *silently*: the process is gone, but unlike
/// [`kill_worker`] the platform does not notice — the in-flight task stays
/// `Running` and the worker stays occupied until the heartbeat watchdog
/// times out and declares it dead. This is the injection point for
/// process-crash faults.
pub fn crash_worker(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize, reason: &str) {
    let now = eng.now();
    let Some(w) = world.workers.get(wid) else {
        return;
    };
    if matches!(w.state, WorkerState::Dead | WorkerState::Crashed) {
        return;
    }
    // The process is gone: its CPU jobs stop consuming cores and the
    // driver reaps its GPU context (kernels die with it). The *platform*
    // still believes the worker is alive — the task table is untouched.
    cancel_cpu_jobs(world, eng, wid);
    world.transition(wid, WorkerState::Crashed);
    {
        let w = &mut world.workers[wid];
        w.crashed_at = Some(now);
        w.epoch += 1; // pending timers of the dead incarnation are stale
        w.awaiting_kernel = None;
        w.loaded_models.clear();
        w.model_bytes = 0;
        w.ready_at = None;
        w.idle_since = None;
    }
    let crash_binding = world.workers[wid].gpu;
    world.bind_gpu(wid, None);
    if let Some((gpu, ctx)) = crash_binding {
        let _ = world.fleet.device_mut(gpu).destroy_context(now, ctx);
        resync(world, eng, gpu);
    }
    world.recovery.stats.workers_lost += 1;
    world
        .monitor
        .worker_event(now, wid, WorkerEventKind::Crashed, reason.to_string());
    arm_watchdog(world, eng);
}

/// Start the heartbeat watchdog if it is not already ticking. It disarms
/// itself once no crashed-but-undetected workers remain, so an idle
/// platform's event queue still drains.
pub(crate) fn arm_watchdog(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
    if world.recovery.watchdog_armed {
        return;
    }
    world.recovery.watchdog_armed = true;
    let period = world.config.recovery.heartbeat_period;
    eng.schedule_in(period, watchdog_tick);
}

fn watchdog_tick(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
    let now = eng.now();
    let timeout = world.config.recovery.heartbeat_timeout;
    // The crashed set iterates ascending by id — the same detection
    // order the full scan produced.
    let expired: Vec<usize> = if world.index.enabled {
        world
            .index
            .crashed
            .iter()
            .copied()
            .filter(|&wid| {
                world.workers[wid]
                    .crashed_at
                    .is_some_and(|t0| now.duration_since(t0) >= timeout)
            })
            .collect()
    } else {
        world
            .workers
            .iter()
            .filter(|w| {
                w.state == WorkerState::Crashed
                    && w.crashed_at
                        .is_some_and(|t0| now.duration_since(t0) >= timeout)
            })
            .map(|w| w.id)
            .collect()
    };
    for wid in expired {
        detect_worker_death(world, eng, wid);
    }
    let any_crashed = if world.index.enabled {
        !world.index.crashed.is_empty()
    } else {
        world
            .workers
            .iter()
            .any(|w| w.state == WorkerState::Crashed)
    };
    if any_crashed {
        eng.schedule_in(world.config.recovery.heartbeat_period, watchdog_tick);
    } else {
        world.recovery.watchdog_armed = false;
    }
}

/// The watchdog noticed a crashed worker: tear it down (failing its task,
/// which re-queues with backoff) and start a budgeted respawn.
fn detect_worker_death(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) {
    let now = eng.now();
    let silent = world.workers[wid]
        .crashed_at
        .map(|t0| now.duration_since(t0).as_secs_f64())
        .unwrap_or(0.0);
    world.recovery.stats.crashes_detected += 1;
    world.monitor.fault_event(
        now,
        FaultPhase::Detected,
        "worker-crash",
        None,
        Some(wid),
        format!("heartbeat silent for {silent:.2}s"),
    );
    kill_worker(world, eng, wid, "heartbeat timeout");
    if let Some(gpu) = worker_target_gpu(world, wid) {
        if gpu_quarantined(world, gpu) {
            world.recovery.health_mut(gpu).parked.push(wid);
            return;
        }
    }
    auto_respawn(world, eng, wid);
}

/// Respawn a dead worker if its restart budget allows; marks it
/// `recovering` so the fault incident closes (MTTR) when it comes back
/// `Idle`. Returns whether a respawn was started. Public because a failed
/// MPS-resize commit recovers its victims through this budgeted path —
/// the rollback consumes restart budget, exactly like a fault would.
pub fn auto_respawn(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, wid: usize) -> bool {
    let now = eng.now();
    let budget = world.config.recovery.restart_budget;
    let used = world.workers[wid].restarts_used;
    if used >= budget {
        world.monitor.fault_event(
            now,
            FaultPhase::Detected,
            "restart-budget-exhausted",
            None,
            Some(wid),
            format!("{used}/{budget} restarts used; worker stays down"),
        );
        return false;
    }
    world.workers[wid].restarts_used = used + 1;
    world.workers[wid].recovering = true;
    if respawn_worker(world, eng, wid, None).is_err() {
        world.workers[wid].recovering = false;
        return false;
    }
    world.recovery.stats.respawns += 1;
    world.monitor.worker_event(
        now,
        wid,
        WorkerEventKind::Respawned,
        format!("automatic restart {}/{budget}", used + 1),
    );
    true
}

/// Re-queue a failed-but-retryable task after exponential backoff with
/// seeded jitter (immediate re-queueing hammers a still-broken executor).
fn schedule_retry(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, task: TaskId) {
    // Retry budget: every retry spends a token from its app's bucket
    // (funded by admitted first attempts). A dry bucket sheds the retry
    // permanently — during an outage the retry stream decays to the
    // configured fraction of first-attempt traffic instead of a storm.
    if let Some(rb) = world.config.overload.retry_budget {
        let app = world.dfk.task(task).app.clone();
        let tokens = world
            .overload
            .retry_tokens
            .entry(app.clone())
            .or_insert(rb.burst.max(0.0));
        if *tokens < 1.0 {
            world.overload.stats.retries_suppressed += 1;
            world.monitor.fault_event(
                eng.now(),
                FaultPhase::Detected,
                "retry-suppressed",
                None,
                None,
                format!("task {}: app {app:?} retry budget dry", task.0),
            );
            fail_terminally(world, eng, task, "retry suppressed: retry budget exhausted");
            return;
        }
        *tokens -= 1.0;
    }
    let rc = &world.config.recovery;
    let attempt = world.dfk.task(task).attempts.max(1);
    let exp = (attempt - 1).min(16);
    let base = rc.backoff_base.as_secs_f64() * (1u64 << exp) as f64;
    let capped = base.min(rc.backoff_cap.as_secs_f64());
    let jitter = rc.backoff_jitter.clamp(0.0, 1.0);
    let mult = 1.0 + jitter * world.recovery.rng.f64();
    world.recovery.stats.retries_scheduled += 1;
    eng.schedule_in(
        SimDuration::from_secs_f64(capped * mult),
        move |w: &mut FaasWorld, e| {
            // The task may have been cancelled (or failed over and
            // already re-queued) while backing off.
            if w.dfk.task(task).state != TaskState::Ready {
                return;
            }
            let exec = w.dfk.task(task).executor;
            if w.queues[exec].contains(&task) {
                return;
            }
            queue_push(w, exec, task);
            kick_executor(w, e, exec);
        },
    );
}

/// Kill a worker as collateral of a GPU-side fault, recording the loss.
pub(crate) fn fault_kill_worker(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    wid: usize,
    kind: &'static str,
    reason: &str,
) {
    // Crashed workers still hold a task, so they get killed too; only an
    // already-Dead worker is skipped.
    if world.workers[wid].state == WorkerState::Dead {
        return;
    }
    let gpu = world.workers[wid].gpu.map(|(g, _)| g.0);
    world.recovery.stats.workers_lost += 1;
    // This teardown is itself a platform-side *discovery* of the death
    // (fatal device error surfaced to the runtime), the moral equivalent
    // of a watchdog hit — count it, not just the injection.
    world.recovery.stats.crashes_detected += 1;
    world.monitor.fault_event(
        eng.now(),
        FaultPhase::Detected,
        kind,
        gpu,
        Some(wid),
        reason.to_string(),
    );
    kill_worker(world, eng, wid, reason);
}

/// Record a contained client fault against a device's circuit breaker;
/// trips (quarantines) after `breaker_threshold` faults. Returns whether
/// the breaker tripped.
pub(crate) fn note_client_fault(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: GpuId,
) -> bool {
    let threshold = world.config.recovery.breaker_threshold;
    let h = world.recovery.health_mut(gpu);
    if h.open_until.is_some() {
        return true;
    }
    h.consecutive_faults += 1;
    if h.consecutive_faults >= threshold {
        quarantine_gpu(world, eng, gpu, "circuit breaker tripped");
        true
    } else {
        false
    }
}

/// Is the device's circuit breaker currently open?
pub fn gpu_quarantined(world: &FaasWorld, gpu: GpuId) -> bool {
    world
        .recovery
        .health(gpu)
        .is_some_and(|h| h.open_until.is_some())
}

/// Quarantine a GPU: mark it unhealthy, kill every resident client
/// (device-level blast radius), park its workers for re-admission, fail
/// queued work over to surviving executors, and schedule re-admission
/// after the cooldown. An already-quarantined device is untouched (the
/// breaker is already open; re-tripping it would extend the outage for
/// faults the fence itself caused).
pub fn quarantine_gpu(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: GpuId,
    reason: &str,
) {
    if gpu_quarantined(world, gpu) {
        return;
    }
    let until = eng.now() + world.config.recovery.breaker_cooldown;
    fence_gpu(world, eng, gpu, until, "gpu-quarantine", reason);
}

/// Fence a GPU until `until`: mark it unhealthy, kill every resident,
/// park its dead workers, fail queued work over, and schedule
/// re-admission. Fencing an already-fenced device only *extends* its
/// outage window — a rack fault landing on a quarantined GPU must not
/// shorten the quarantine, and the earlier-scheduled re-admission
/// becomes a stale no-op (see [`readmit_gpu`]'s time guard).
pub(crate) fn fence_gpu(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    gpu: GpuId,
    until: SimTime,
    kind: &'static str,
    reason: &str,
) {
    let now = eng.now();
    let already = gpu_quarantined(world, gpu);
    let new_until = {
        let h = world.recovery.health_mut(gpu);
        let u = h.open_until.map_or(until, |t| t.max(until));
        h.open_until = Some(u);
        h.consecutive_faults = 0;
        u
    };
    if !already {
        world.recovery.stats.quarantines += 1;
        world.fleet.device_mut(gpu).mark_unhealthy(now);
    }
    world.monitor.fault_event(
        now,
        FaultPhase::Detected,
        kind,
        Some(gpu.0),
        None,
        reason.to_string(),
    );
    let residents: Vec<usize> = if world.index.enabled {
        world
            .index
            .residents
            .get(gpu.0 as usize)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    } else {
        world
            .workers
            .iter()
            .filter(|w| w.gpu.map(|(g, _)| g) == Some(gpu))
            .map(|w| w.id)
            .collect()
    };
    for wid in residents {
        fault_kill_worker(world, eng, wid, "gpu-blast-radius", reason);
    }
    // Park every dead worker slotted on this device (the residents just
    // killed, plus any earlier casualties): they respawn at re-admission
    // instead of failing cold start against an unhealthy device. The
    // dead set bounds the scan to actual casualties instead of the
    // whole fleet.
    let parked: Vec<usize> = if world.index.enabled {
        world
            .index
            .dead
            .iter()
            .copied()
            .filter(|&wid| worker_target_gpu(world, wid) == Some(gpu))
            .collect()
    } else {
        (0..world.workers.len())
            .filter(|&wid| {
                world.workers[wid].state == WorkerState::Dead
                    && worker_target_gpu(world, wid) == Some(gpu)
            })
            .collect()
    };
    world.recovery.health_mut(gpu).parked = parked;
    fail_over_queues(world, eng);
    eng.schedule_at(new_until, move |w: &mut FaasWorld, e| {
        readmit_gpu(w, e, gpu)
    });
}

/// Apply a host-reboot domain fault: atomically fence every GPU the host
/// owns (per the configured [`crate::Topology`]). The host finishes
/// rebooting after `RecoveryConfig::host_reboot`; only then do its GPUs
/// re-enroll, one by one, staggered by
/// `RecoveryConfig::gpu_reenroll_stagger` (driver probe and MPS/MIG
/// re-setup serialize per host). Returns the number of GPUs fenced.
pub fn fault_host(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, host: u32) -> usize {
    let host_back = eng.now() + world.config.recovery.host_reboot;
    fence_host_gpus(world, eng, host, host_back, "host-reboot")
}

/// Apply a rack-power domain fault: every host in the rack loses power
/// in the same instant. Power returns after
/// `RecoveryConfig::rack_power_restore`; hosts then boot staggered by
/// `RecoveryConfig::host_boot_stagger` (in host order), and each host's
/// GPUs re-enroll as in [`fault_host`]. Returns the number of GPUs
/// fenced.
pub fn fault_rack(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, rack: u32) -> usize {
    let now = eng.now();
    let topo = world.config.topology;
    let rc = world.config.recovery.clone();
    let hosts = topo.hosts_in_rack(rack, world.fleet.len() as u32);
    let mut fenced = 0;
    for (j, host) in hosts.iter().enumerate() {
        let host_back =
            now + rc.rack_power_restore + rc.host_reboot + rc.host_boot_stagger * j as u64;
        fenced += fence_host_gpus(world, eng, *host, host_back, "rack-power");
    }
    fenced
}

/// Fence every GPU on one host, scheduling each GPU's re-enrollment at
/// `host_back + (k+1) * gpu_reenroll_stagger` for the host's `k`-th GPU —
/// the host is always back *before* any of its GPUs re-enroll.
fn fence_host_gpus(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    host: u32,
    host_back: SimTime,
    why: &'static str,
) -> usize {
    let topo = world.config.topology;
    let stagger = world.config.recovery.gpu_reenroll_stagger;
    let gpus = topo.gpus_on_host(host, world.fleet.len() as u32);
    for (k, g) in gpus.iter().enumerate() {
        let until = host_back + stagger * (k as u64 + 1);
        fence_gpu(
            world,
            eng,
            GpuId(*g),
            until,
            "gpu-fenced",
            &format!("{why}: host {host} down; re-enroll after host boot"),
        );
    }
    gpus.len()
}

/// Cooldown elapsed: close the breaker, mark the device healthy again,
/// and respawn its parked workers (budget permitting). Stale: if the
/// fence was *extended* after this re-admission was scheduled (a domain
/// fault landed on an already-quarantined device), the earlier event is
/// a no-op and the later one closes the breaker.
fn readmit_gpu(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, gpu: GpuId) {
    let now = eng.now();
    let parked = {
        let h = world.recovery.health_mut(gpu);
        match h.open_until {
            None => return,               // already re-admitted
            Some(t) if t > now => return, // fence extended; stale event
            Some(_) => {}
        }
        h.open_until = None;
        h.consecutive_faults = 0;
        std::mem::take(&mut h.parked)
    };
    world.fleet.device_mut(gpu).mark_healthy();
    world.monitor.fault_event(
        now,
        FaultPhase::Recovered,
        "gpu-readmitted",
        Some(gpu.0),
        None,
        "cooldown elapsed",
    );
    for wid in parked {
        if world.workers[wid].state == WorkerState::Dead {
            auto_respawn(world, eng, wid);
        }
    }
    for e in 0..world.queues.len() {
        kick_executor(world, eng, e);
    }
}

/// Move queued tasks off executors with no live workers onto the
/// healthiest surviving executor (most idle workers, ties to the lowest
/// index). Tasks keep their identity; only their placement changes.
fn fail_over_queues(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
    let live_counts: Vec<usize> = if world.index.enabled {
        world.index.live.clone()
    } else {
        (0..world.queues.len())
            .map(|e| {
                world
                    .workers
                    .iter()
                    .filter(|w| {
                        w.executor == e
                            && !matches!(w.state, WorkerState::Dead | WorkerState::Crashed)
                    })
                    .count()
            })
            .collect()
    };
    let Some(target) = (0..world.queues.len())
        .filter(|&e| live_counts[e] > 0)
        .max_by(|&a, &b| live_counts[a].cmp(&live_counts[b]).then(b.cmp(&a)))
    else {
        return; // nowhere to fail over to; queues drain at re-admission
    };
    let mut moved = 0usize;
    for (e, &live) in live_counts.iter().enumerate() {
        if e == target || live > 0 {
            continue;
        }
        while let Some(task) = queue_pop_front(world, e) {
            world.dfk.task_mut(task).executor = target;
            queue_push(world, target, task);
            moved += 1;
        }
    }
    if moved > 0 {
        world.recovery.stats.failovers += moved as u64;
        world.monitor.fault_event(
            eng.now(),
            FaultPhase::Detected,
            "queue-failover",
            None,
            None,
            format!("{moved} queued tasks moved to executor {target}"),
        );
        kick_executor(world, eng, target);
    }
}

/// The GPU a worker is (or would be, after respawn) bound to.
fn worker_target_gpu(world: &FaasWorld, wid: usize) -> Option<GpuId> {
    if let Some((gpu, _)) = world.workers[wid].gpu {
        return Some(gpu);
    }
    let spec = world.workers[wid].accel.as_ref()?;
    resolve_accel(&world.fleet, spec).ok().map(|(g, _, _)| g)
}

fn sample_monitors(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
    let Some(period) = world.config.monitoring_period else {
        return;
    };
    let now = eng.now();
    for gi in 0..world.fleet.len() as u32 {
        let d = world.fleet.device(GpuId(gi));
        world.monitor.samples.push(UtilSample {
            t: now,
            gpu: gi,
            busy_sms: d.busy_sms(),
            utilization: d.busy_sms() / d.spec.sms as f64,
            memory_used: d.memory_used(),
        });
    }
    for (ei, q) in world.queues.iter().enumerate() {
        world.monitor.queue_samples.push(QueueSample {
            t: now,
            executor: ei,
            depth: q.len(),
        });
    }
    // Keep sampling while work remains or workers are still coming up
    // (or silently crashed — the watchdog will generate more events).
    world.check_index_consistency();
    let active = !world.dfk.all_settled()
        || if world.index.enabled {
            world.index.active_workers() > 0
        } else {
            world.workers.iter().any(|w| {
                matches!(
                    w.state,
                    WorkerState::Provisioning
                        | WorkerState::ColdStart
                        | WorkerState::Busy
                        | WorkerState::Crashed
                )
            })
        };
    if active {
        eng.schedule_in(period, |w: &mut FaasWorld, e| sample_monitors(w, e));
    } else {
        world.sampler_armed = false;
    }
}

/// Re-arm the monitoring sampler after it stopped (it stops itself when
/// all tasks settle and no worker is active). Multi-phase experiments
/// call this when submitting a new phase of work.
pub fn resume_sampling(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
    if world.config.monitoring_period.is_some() && !world.sampler_armed {
        world.sampler_armed = true;
        sample_monitors(world, eng);
    }
}

/// Convenience: boot and run until the event queue drains.
pub fn run(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
    boot(world, eng);
    eng.run(world);
}
