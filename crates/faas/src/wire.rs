//! Task-dispatch serialization model.
//!
//! Parsl serializes each app invocation (function + arguments, typically
//! with dill/pickle) and ships it through the interchange to a manager,
//! which hands it to a worker over ZMQ. That wire path adds latency
//! proportional to payload size — negligible for small argument tuples,
//! very visible when users close over numpy arrays.
//!
//! [`WireCodec`] frames payloads the way the interchange does (fixed
//! header + body) and converts sizes into dispatch latency; the worker
//! charges it before the task body starts. Frames are [`bytes::Bytes`] so
//! queueing them (interchange → manager → worker) never copies the body.

use bytes::{BufMut, Bytes, BytesMut};
use parfait_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// Frame header magic (ASCII "PFT1").
pub const MAGIC: u32 = 0x5046_5431;

/// Header size: magic + task id + body length.
pub const HEADER_BYTES: usize = 4 + 8 + 4;

/// Serialization/transport cost parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireCodec {
    /// Fixed per-dispatch cost (pickle of the closure, ZMQ round trip).
    pub base_latency: SimDuration,
    /// Effective serialize+transfer bandwidth for the payload body, in
    /// bytes/second (loopback ZMQ + pickle throughput, not NIC line rate).
    pub bytes_per_sec: f64,
}

impl Default for WireCodec {
    fn default() -> Self {
        WireCodec {
            base_latency: SimDuration::from_micros(850),
            bytes_per_sec: 600e6,
        }
    }
}

/// A framed task payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Task id carried in the header.
    pub task: u64,
    /// Opaque serialized body.
    pub body: Bytes,
}

impl WireCodec {
    /// Frame a payload for the wire.
    pub fn encode(&self, task: u64, body: impl Into<Bytes>) -> Bytes {
        let body = body.into();
        let mut buf = BytesMut::with_capacity(HEADER_BYTES + body.len());
        buf.put_u32(MAGIC);
        buf.put_u64(task);
        buf.put_u32(body.len() as u32);
        buf.extend_from_slice(&body);
        buf.freeze()
    }

    /// Parse a frame; returns `None` on malformed input (bad magic,
    /// truncated body).
    pub fn decode(&self, mut wire: Bytes) -> Option<Frame> {
        use bytes::Buf;
        if wire.len() < HEADER_BYTES {
            return None;
        }
        if wire.get_u32() != MAGIC {
            return None;
        }
        let task = wire.get_u64();
        let len = wire.get_u32() as usize;
        if wire.len() != len {
            return None;
        }
        Some(Frame { task, body: wire })
    }

    /// Dispatch latency for a payload of `body_bytes`.
    pub fn dispatch_latency(&self, body_bytes: usize) -> SimDuration {
        self.base_latency
            + SimDuration::from_secs_f64((HEADER_BYTES + body_bytes) as f64 / self.bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let c = WireCodec::default();
        let wire = c.encode(42, Bytes::from_static(b"hello args"));
        assert_eq!(wire.len(), HEADER_BYTES + 10);
        let f = c.decode(wire).unwrap();
        assert_eq!(f.task, 42);
        assert_eq!(&f.body[..], b"hello args");
    }

    #[test]
    fn zero_copy_body() {
        let c = WireCodec::default();
        let wire = c.encode(1, Bytes::from(vec![7u8; 1 << 20]));
        let f = c.decode(wire.clone()).unwrap();
        // The decoded body aliases the wire buffer (no copy): same backing
        // allocation, so the pointer into it matches the offset.
        assert_eq!(f.body.as_ptr(), wire[HEADER_BYTES..].as_ptr());
    }

    #[test]
    fn malformed_frames_rejected() {
        let c = WireCodec::default();
        assert!(c.decode(Bytes::from_static(b"short")).is_none());
        let mut bad = BytesMut::new();
        bad.put_u32(0xDEAD_BEEF);
        bad.put_u64(0);
        bad.put_u32(0);
        assert!(c.decode(bad.freeze()).is_none());
        // Truncated body.
        let mut t = BytesMut::new();
        t.put_u32(MAGIC);
        t.put_u64(0);
        t.put_u32(100);
        t.extend_from_slice(b"only a bit");
        assert!(c.decode(t.freeze()).is_none());
    }

    #[test]
    fn latency_scales_with_size() {
        let c = WireCodec::default();
        let small = c.dispatch_latency(100);
        let big = c.dispatch_latency(600_000_000); // 600 MB numpy closure
        assert!(small < SimDuration::from_millis(2));
        assert!(
            big > SimDuration::from_millis(900),
            "600 MB at 600 MB/s ≈ 1 s, got {big}"
        );
    }
}
