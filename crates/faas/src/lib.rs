#![warn(missing_docs)]

//! # parfait-faas
//!
//! A Parsl-workalike FaaS runtime over the PARFAIT discrete-event
//! simulator — the substrate the paper's contribution plugs into.
//!
//! The shape mirrors Parsl/Globus Compute (§2.2 of the paper):
//!
//! * [`app`] — apps, task bodies ([`app::TaskStep`] programs), futures'
//!   moral equivalent via task ids.
//! * [`config`] — `Config`/executor definitions matching Listings 1–3,
//!   including duplicated `available_accelerators` entries, per-worker
//!   `gpu_percentage`, and MIG UUIDs.
//! * [`dfk`] — the DataFlowKernel: dependencies, retries, lifecycle.
//! * [`world`] — the HighThroughputExecutor pilot model: providers spawn
//!   worker processes, workers cold-start (§6 decomposition), bind GPU
//!   contexts from their environment, pull tasks, and interpret task
//!   bodies against the simulated node.
//! * [`monitoring`] — Parsl-monitoring-style records feeding the figures.

pub mod app;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod dfk;
pub mod drain;
pub mod faults;
mod index;
pub mod monitoring;
pub mod overload;
pub mod strategy;
pub mod wire;
pub mod world;

pub use app::{AppCall, ModelProfile, TaskBody, TaskCtx, TaskId, TaskStep};
pub use cache::WeightCache;
pub use checkpoint::{Checkpoint, CHECKPOINT_BASE_BYTES};
pub use config::{
    AcceleratorSpec, CheckpointPolicy, Config, ExecutorConfig, HedgePolicy, OverloadConfig,
    ProviderConfig, ReconfigConfig, RecoveryConfig, RetryBudget, ShedPolicy, Topology,
};
pub use dfk::{Dfk, FailureOutcome, TaskRecord, TaskState};
pub use drain::{
    begin_drain, reconfig_commit_fails, DrainCallback, DrainOutcome, ReconfigControl, ReconfigStats,
};
pub use faults::{
    inject_fault, install_faults, FaultEvent, FaultKind, FaultPlan, GpuHealth, RecoveryState,
    RecoveryStats, StochasticFaults,
};
pub use monitoring::{time_in_queue_percentiles, FaultPhase, FaultRecord, Percentiles};
pub use overload::{OverloadState, OverloadStats};
pub use strategy::{enable_brownout, enable_elastic, BrownoutPolicy, ElasticPolicy};
pub use world::{
    add_worker, auto_respawn, boot, cancel, crash_worker, fault_host, fault_rack, gpu_quarantined,
    kick_executor, kill_worker, quarantine_gpu, respawn_worker, resume_sampling, run, shutdown,
    submit, Driver, FaasWorld, RespawnError, Worker, WorkerState,
};
