//! GPU-resident model weight cache — the §7 "re-configuring GPU resources
//! faster" apparatus.
//!
//! The paper's future-work proposal: when an MPS resize forces a function
//! process to restart, the dominant cost is re-loading model weights into
//! GPU memory (10–20 s for LLaMa2). If the weights stay resident in a
//! cache that *outlives the process*, the restarted instance re-binds to
//! them in milliseconds.
//!
//! This module is the mechanism (lookup table + accounting); the policy
//! layer (enabling it around reconfigurations, eviction, ablations) lives
//! in `parfait-core::weightcache`. Cache memory is allocated on the
//! device under a synthetic owner (`GpuDevice::cache_alloc`), so it
//! survives context teardown but is wiped by a GPU reset — exactly the
//! semantics a CUDA IPC / driver-pinned region would have.

use std::collections::BTreeMap;

/// Weight-cache state for the whole node (keyed by GPU index + model id).
///
/// Entries live in a `BTreeMap` so that eviction scans and per-GPU sweeps
/// visit keys in a seed-independent order (determinism rule D1).
#[derive(Debug, Default)]
pub struct WeightCache {
    enabled: bool,
    entries: BTreeMap<(u32, u64), u64>,
    /// Re-bind count.
    pub hits: u64,
    /// Cold-load count (cache populated on miss while enabled).
    pub misses: u64,
}

impl WeightCache {
    /// Disabled cache (stock Parsl behaviour).
    pub fn new() -> Self {
        WeightCache::default()
    }

    /// Turn the cache on/off (existing entries are kept; disabling only
    /// stops lookups).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Is the cache consulted on model loads?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Are these weights resident on this GPU?
    pub fn contains(&self, gpu: u32, model: u64) -> bool {
        self.entries.contains_key(&(gpu, model))
    }

    /// Record newly resident weights.
    pub fn insert(&mut self, gpu: u32, model: u64, shared_bytes: u64) {
        self.entries.insert((gpu, model), shared_bytes);
    }

    /// Forget an entry; returns its byte size (caller must `cache_free`
    /// on the device).
    pub fn remove(&mut self, gpu: u32, model: u64) -> Option<u64> {
        self.entries.remove(&(gpu, model))
    }

    /// Drop all entries of one GPU (after a reset wiped its memory);
    /// returns the total bytes that were pinned.
    pub fn clear_gpu(&mut self, gpu: u32) -> u64 {
        let keys: Vec<(u32, u64)> = self
            .entries
            .keys()
            .filter(|(g, _)| *g == gpu)
            .copied()
            .collect();
        keys.iter()
            .map(|k| self.entries.remove(k).unwrap_or(0))
            .sum()
    }

    /// Bytes pinned on one GPU.
    pub fn bytes_on(&self, gpu: u32) -> u64 {
        self.entries
            .iter()
            .filter(|((g, _), _)| *g == gpu)
            .map(|(_, b)| *b)
            .sum()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Hit rate over all lookups (0 when never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut c = WeightCache::new();
        assert!(!c.enabled());
        c.set_enabled(true);
        assert!(!c.contains(0, 7));
        c.insert(0, 7, 100);
        c.insert(1, 7, 100);
        c.insert(0, 8, 50);
        assert!(c.contains(0, 7));
        assert_eq!(c.bytes_on(0), 150);
        assert_eq!(c.remove(0, 8), Some(50));
        assert_eq!(c.remove(0, 8), None);
        assert_eq!(c.clear_gpu(0), 100);
        assert!(c.contains(1, 7), "other GPU untouched");
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = WeightCache::new();
        assert_eq!(c.hit_rate(), 0.0);
        c.hits = 3;
        c.misses = 1;
        assert!((c.hit_rate() - 0.75).abs() < 1e-12);
    }
}
