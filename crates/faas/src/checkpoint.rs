//! Host-side checkpoint store for in-flight task state.
//!
//! Long-running checkpointable bodies (LLM completion sessions, kernel
//! sequences) periodically snapshot their progress at step boundaries
//! (see [`crate::CheckpointPolicy`]). A snapshot is *captured* at a
//! boundary, written back device→host at the device's effective PCIe
//! rate (`GpuSpec::checkpoint_write_seconds`), and *committed* to this
//! store only when the writeback finishes on the same worker incarnation
//! that started it — a worker killed mid-write (crash, quarantine, host
//! reboot) never commits a torn snapshot; the store keeps the previous
//! one. The store itself lives host-side (it survives GPU and host
//! fault domains), keyed by task, so a retried attempt may resume on any
//! worker after paying `GpuSpec::checkpoint_restore_seconds`.

use parfait_simcore::SimTime;
use serde::Serialize;

/// Fixed envelope added to every snapshot: tensor metadata, allocator
/// state, and serialization framing (64 MiB).
pub const CHECKPOINT_BASE_BYTES: u64 = 64 << 20;

/// A committed snapshot of one task's progress.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Checkpoint {
    /// Body steps completed when the snapshot was captured. A restored
    /// attempt fast-forwards its fresh body past this many steps.
    pub steps: u64,
    /// Snapshot size: the body's durable private state
    /// ([`crate::TaskBody::checkpoint_bytes`], e.g. the KV cache grown
    /// so far) plus live task allocations plus
    /// [`CHECKPOINT_BASE_BYTES`]. Priced through the device bandwidth
    /// model on both write and restore.
    pub bytes: u64,
    /// Capture time — the step boundary the snapshot is consistent with.
    pub captured_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_envelope_is_nonzero() {
        // The envelope keeps even alloc-free bodies from pricing a
        // zero-byte (free) snapshot.
        const { assert!(CHECKPOINT_BASE_BYTES >= 1 << 20) }
        let c = Checkpoint {
            steps: 3,
            bytes: CHECKPOINT_BASE_BYTES,
            captured_at: SimTime::ZERO,
        };
        assert_eq!(c.bytes, 64 << 20);
    }
}
