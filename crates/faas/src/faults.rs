//! Deterministic fault injection and the recovery bookkeeping it drives.
//!
//! A [`FaultPlan`] is a schedule of [`FaultEvent`]s — either authored
//! explicitly or realized from [`StochasticFaults`] rates through a
//! dedicated `SimRng` stream, so the *same seed always produces the same
//! fault timeline*. [`install_faults`] arms the plan on the engine;
//! [`inject_fault`] applies one fault with the blast radius its device
//! mode implies:
//!
//! | fault                  | MPS (shared context)        | MIG / exclusive        |
//! |------------------------|-----------------------------|------------------------|
//! | fatal client fault     | all co-resident clients die | one worker dies        |
//! | device ECC/Xid fault   | device quarantined          | device quarantined     |
//! | process crash          | one worker (silent)         | one worker (silent)    |
//!
//! Detection and repair (heartbeat watchdog, backoff retry, budgeted
//! respawn, per-GPU circuit breaker) live in [`crate::world`]; this module
//! holds the plan types, the injection dispatch, and [`RecoveryState`].

use crate::monitoring::FaultPhase;
use crate::world::{
    crash_worker, fault_kill_worker, note_client_fault, quarantine_gpu, FaasWorld, WorkerState,
};
use parfait_gpu::host::resync;
use parfait_gpu::{DeviceMode, GpuId};
use parfait_simcore::{streams, Engine, SimDuration, SimRng, SimTime};
use serde::Serialize;

/// What breaks.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum FaultKind {
    /// Worker process dies silently; the watchdog discovers it after the
    /// heartbeat timeout.
    WorkerCrash {
        /// Target worker id.
        worker: usize,
    },
    /// Fatal GPU fault raised by one client's work (illegal address,
    /// assert). Blast radius depends on the device mode: under MPS every
    /// co-resident client shares the faulted context and dies with it;
    /// under MIG or exclusive modes exactly one worker is lost.
    GpuClientFault {
        /// Worker whose kernel faults.
        worker: usize,
    },
    /// Uncorrectable device-level fault (double-bit ECC, Xid). The GPU is
    /// quarantined and every resident is lost, regardless of mode.
    DeviceFault {
        /// Target device index.
        gpu: u32,
    },
    /// The provider fails to hand over the process slot on the worker's
    /// next provisioning attempt.
    ProvisioningFailure {
        /// Target worker id.
        worker: usize,
    },
    /// Transient slowdown: every kernel on the device runs at
    /// `1/factor` speed for `duration` (thermal throttle, noisy
    /// neighbour on the host).
    Straggler {
        /// Target device index.
        gpu: u32,
        /// Rate multiplier in `(0, 1]` — `0.5` halves throughput.
        factor: f64,
        /// How long the slowdown lasts.
        duration: SimDuration,
    },
    /// The worker's next model load dies with a transient out-of-memory;
    /// the task fails and retries.
    ModelLoadOom {
        /// Target worker id.
        worker: usize,
    },
    /// Correlated domain fault: a host reboots, atomically fencing every
    /// GPU it owns (per [`crate::Topology`]) and killing their residents.
    /// The host comes back after `RecoveryConfig::host_reboot`; its GPUs
    /// then re-enroll one by one, staggered by
    /// `RecoveryConfig::gpu_reenroll_stagger`.
    HostReboot {
        /// Target host index.
        host: u32,
    },
    /// Correlated domain fault: a rack loses power, fencing every GPU on
    /// every host in the rack. Power is restored after
    /// `RecoveryConfig::rack_power_restore`, hosts boot staggered by
    /// `RecoveryConfig::host_boot_stagger`, and each host's GPUs then
    /// re-enroll staggered as for [`FaultKind::HostReboot`].
    RackPower {
        /// Target rack index.
        rack: u32,
    },
    /// The next reconfiguration transaction committed against this GPU
    /// fails: a failed MIG re-slice leaves the device quarantined on the
    /// degraded recovery path; a failed MPS respawn rolls the workers
    /// back to their previous percentages through the budgeted
    /// auto-respawn path (consuming restart budget).
    ReconfigFail {
        /// Target device index.
        gpu: u32,
    },
}

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultEvent {
    /// Absolute injection time.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// Rates for drawing a random-but-reproducible fault schedule. Arrivals
/// are Poisson (exponential inter-arrival times) over `[0, horizon)`;
/// targets are drawn uniformly. Everything comes from one dedicated RNG
/// stream, so the realized schedule is a pure function of the world seed.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StochasticFaults {
    /// Window faults may arrive in.
    pub horizon: SimDuration,
    /// Silent process crashes per hour (across all workers).
    pub crash_rate_per_hour: f64,
    /// Fatal client faults per hour (across all workers).
    pub client_fault_rate_per_hour: f64,
    /// Device ECC/Xid faults per hour (across all GPUs).
    pub device_fault_rate_per_hour: f64,
    /// Straggler episodes per hour (across all GPUs).
    pub straggler_rate_per_hour: f64,
    /// Slowdown factor stragglers apply.
    pub straggler_factor: f64,
    /// How long each straggler episode lasts.
    pub straggler_duration: SimDuration,
    /// Host reboots per hour (across all hosts with GPUs). Realized on
    /// the dedicated [`streams::CORRELATED_FAULTS`] stream so turning
    /// this on never perturbs the independent-fault draws above.
    pub host_reboot_rate_per_hour: f64,
    /// Rack power events per hour (across all racks with GPUs), realized
    /// on [`streams::CORRELATED_FAULTS`].
    pub rack_power_rate_per_hour: f64,
}

impl StochasticFaults {
    /// All-zero rates over `horizon`; builder-style starting point.
    pub fn quiet(horizon: SimDuration) -> Self {
        StochasticFaults {
            horizon,
            crash_rate_per_hour: 0.0,
            client_fault_rate_per_hour: 0.0,
            device_fault_rate_per_hour: 0.0,
            straggler_rate_per_hour: 0.0,
            straggler_factor: 1.0,
            straggler_duration: SimDuration::ZERO,
            host_reboot_rate_per_hour: 0.0,
            rack_power_rate_per_hour: 0.0,
        }
    }
}

/// A complete fault schedule: explicit events plus optional stochastic
/// rates realized at install time.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct FaultPlan {
    /// Explicitly scheduled faults.
    pub events: Vec<FaultEvent>,
    /// Rates to realize into additional events (seeded, reproducible).
    pub stochastic: Option<StochasticFaults>,
}

impl FaultPlan {
    /// Plan a single fault.
    pub fn one(at: SimTime, kind: FaultKind) -> Self {
        FaultPlan {
            events: vec![FaultEvent { at, kind }],
            stochastic: None,
        }
    }

    /// Add a fault to the schedule (builder style).
    pub fn with(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }
}

fn realize_stochastic(
    s: &StochasticFaults,
    rng: &mut SimRng,
    base: SimTime,
    workers: usize,
    gpus: usize,
) -> Vec<FaultEvent> {
    let mut out = Vec::new();
    let horizon = s.horizon.as_secs_f64();
    let mut draw = |rate_per_hour: f64,
                    rng: &mut SimRng,
                    mk: &mut dyn FnMut(&mut SimRng) -> Option<FaultKind>| {
        if rate_per_hour <= 0.0 {
            return;
        }
        let mean_gap = 3600.0 / rate_per_hour;
        let mut t = rng.exp(mean_gap);
        while t < horizon {
            if let Some(kind) = mk(rng) {
                out.push(FaultEvent {
                    at: base + SimDuration::from_secs_f64(t),
                    kind,
                });
            }
            t += rng.exp(mean_gap);
        }
    };
    if workers > 0 {
        draw(s.crash_rate_per_hour, rng, &mut |r| {
            Some(FaultKind::WorkerCrash {
                worker: r.below(workers as u64) as usize,
            })
        });
        draw(s.client_fault_rate_per_hour, rng, &mut |r| {
            Some(FaultKind::GpuClientFault {
                worker: r.below(workers as u64) as usize,
            })
        });
    }
    if gpus > 0 {
        draw(s.device_fault_rate_per_hour, rng, &mut |r| {
            Some(FaultKind::DeviceFault {
                gpu: r.below(gpus as u64) as u32,
            })
        });
        let factor = s.straggler_factor;
        let duration = s.straggler_duration;
        draw(s.straggler_rate_per_hour, rng, &mut |r| {
            Some(FaultKind::Straggler {
                gpu: r.below(gpus as u64) as u32,
                factor,
                duration,
            })
        });
    }
    out
}

/// Realize the correlated (domain-level) rates on their own RNG stream.
/// Drawing these separately from [`realize_stochastic`] keeps previously
/// recorded independent-fault schedules bit-identical when correlated
/// rates are enabled alongside them.
fn realize_correlated(
    s: &StochasticFaults,
    rng: &mut SimRng,
    base: SimTime,
    hosts: u64,
    racks: u64,
) -> Vec<FaultEvent> {
    let mut out = Vec::new();
    let horizon = s.horizon.as_secs_f64();
    let mut draw =
        |rate_per_hour: f64, rng: &mut SimRng, mk: &mut dyn FnMut(&mut SimRng) -> FaultKind| {
            if rate_per_hour <= 0.0 {
                return;
            }
            let mean_gap = 3600.0 / rate_per_hour;
            let mut t = rng.exp(mean_gap);
            while t < horizon {
                let kind = mk(rng);
                out.push(FaultEvent {
                    at: base + SimDuration::from_secs_f64(t),
                    kind,
                });
                t += rng.exp(mean_gap);
            }
        };
    if hosts > 0 {
        draw(s.host_reboot_rate_per_hour, rng, &mut |r| {
            FaultKind::HostReboot {
                host: r.below(hosts) as u32,
            }
        });
    }
    if racks > 0 {
        draw(s.rack_power_rate_per_hour, rng, &mut |r| {
            FaultKind::RackPower {
                rack: r.below(racks) as u32,
            }
        });
    }
    out
}

/// Realize and arm a fault plan on the engine. Events in the past fire
/// immediately (at `eng.now()`). Returns the realized schedule — explicit
/// events plus any stochastic draws — sorted by injection time, for
/// embedding in reports.
pub fn install_faults(
    world: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    plan: &FaultPlan,
) -> Vec<FaultEvent> {
    let mut events = plan.events.clone();
    if let Some(s) = &plan.stochastic {
        let mut rng = world.rng.split(streams::FAULT_REALIZATION);
        events.extend(realize_stochastic(
            s,
            &mut rng,
            eng.now(),
            world.workers.len(),
            world.fleet.len(),
        ));
        if s.host_reboot_rate_per_hour > 0.0 || s.rack_power_rate_per_hour > 0.0 {
            let topo = world.config.topology;
            let gpus = world.fleet.len() as u32;
            let hosts = if gpus == 0 {
                0
            } else {
                u64::from(topo.host_of(gpus - 1)) + 1
            };
            let racks = if gpus == 0 {
                0
            } else {
                u64::from(topo.rack_of(gpus - 1)) + 1
            };
            let mut crng = world.rng.split(streams::CORRELATED_FAULTS);
            events.extend(realize_correlated(s, &mut crng, eng.now(), hosts, racks));
        }
    }
    events.sort_by_key(|e| e.at); // stable: simultaneous faults keep plan order
    for ev in &events {
        let kind = ev.kind.clone();
        let at = ev.at.max(eng.now());
        eng.schedule_at(at, move |w: &mut FaasWorld, e| inject_fault(w, e, &kind));
    }
    events
}

/// Apply one fault right now, with mode-dependent blast radius.
pub fn inject_fault(world: &mut FaasWorld, eng: &mut Engine<FaasWorld>, kind: &FaultKind) {
    let now = eng.now();
    match kind {
        FaultKind::WorkerCrash { worker } => {
            let Some(w) = world.workers.get(*worker) else {
                return;
            };
            if matches!(w.state, WorkerState::Dead | WorkerState::Crashed) {
                return;
            }
            world.recovery.stats.faults_injected += 1;
            world.monitor.fault_event(
                now,
                FaultPhase::Injected,
                "worker-crash",
                None,
                Some(*worker),
                "process crashed silently",
            );
            crash_worker(world, eng, *worker, "injected process crash");
        }
        FaultKind::GpuClientFault { worker } => {
            let Some(w) = world.workers.get(*worker) else {
                return;
            };
            let Some((gpu, _)) = w.gpu else {
                return; // no context — nothing to fault against
            };
            world.recovery.stats.faults_injected += 1;
            let mode = world.fleet.device(gpu).mode();
            world.monitor.fault_event(
                now,
                FaultPhase::Injected,
                "gpu-client-fault",
                Some(gpu.0),
                Some(*worker),
                format!("fatal CUDA fault under {mode:?}"),
            );
            match mode {
                // One MPS server process serves every client: a fatal
                // fault poisons the shared context and takes the whole
                // device's residents down.
                DeviceMode::MpsDefault | DeviceMode::MpsPartitioned => {
                    quarantine_gpu(world, eng, gpu, "MPS shared context poisoned");
                }
                // Hardware (MIG) or temporal (time-sharing / vGPU)
                // isolation contains the fault to the faulting client.
                DeviceMode::TimeSharing | DeviceMode::Mig | DeviceMode::Vgpu { .. } => {
                    fault_kill_worker(
                        world,
                        eng,
                        *worker,
                        "gpu-client-fault",
                        "fatal CUDA fault (contained)",
                    );
                    if !note_client_fault(world, eng, gpu) {
                        crate::world::auto_respawn(world, eng, *worker);
                    }
                }
            }
        }
        FaultKind::DeviceFault { gpu } => {
            if (*gpu as usize) >= world.fleet.len() {
                return;
            }
            world.recovery.stats.faults_injected += 1;
            world.monitor.fault_event(
                now,
                FaultPhase::Injected,
                "device-fault",
                Some(*gpu),
                None,
                "uncorrectable ECC/Xid error",
            );
            quarantine_gpu(world, eng, GpuId(*gpu), "uncorrectable ECC/Xid error");
        }
        FaultKind::ProvisioningFailure { worker } => {
            if world.workers.get(*worker).is_none() {
                return;
            }
            world.recovery.stats.faults_injected += 1;
            world.monitor.fault_event(
                now,
                FaultPhase::Injected,
                "provisioning-failure",
                None,
                Some(*worker),
                "next provisioning attempt will fail",
            );
            world.workers[*worker].provision_poisoned = true;
        }
        FaultKind::Straggler {
            gpu,
            factor,
            duration,
        } => {
            if (*gpu as usize) >= world.fleet.len() {
                return;
            }
            world.recovery.stats.faults_injected += 1;
            let id = GpuId(*gpu);
            world.monitor.fault_event(
                now,
                FaultPhase::Injected,
                "straggler",
                Some(*gpu),
                None,
                format!("kernel rates scaled by {factor:.2} for {duration:?}"),
            );
            world.fleet.device_mut(id).set_slowdown(now, *factor);
            resync(world, eng, id);
            let g = *gpu;
            eng.schedule_in(*duration, move |w: &mut FaasWorld, e| {
                let id = GpuId(g);
                let t = e.now();
                w.fleet.device_mut(id).set_slowdown(t, 1.0);
                resync(w, e, id);
                w.monitor.fault_event(
                    t,
                    FaultPhase::Recovered,
                    "straggler-cleared",
                    Some(g),
                    None,
                    "kernel rates restored",
                );
            });
        }
        FaultKind::ModelLoadOom { worker } => {
            if world.workers.get(*worker).is_none() {
                return;
            }
            world.recovery.stats.faults_injected += 1;
            world.monitor.fault_event(
                now,
                FaultPhase::Injected,
                "model-load-oom",
                None,
                None,
                format!("worker {worker}: next model load will OOM"),
            );
            world.workers[*worker].model_load_poisoned = true;
        }
        FaultKind::HostReboot { host } => {
            let gpus = world
                .config
                .topology
                .gpus_on_host(*host, world.fleet.len() as u32);
            if gpus.is_empty() {
                return; // host owns none of the fleet — nothing to fence
            }
            world.recovery.stats.faults_injected += 1;
            world.recovery.stats.domain_outages += 1;
            // Domain-level record carries no worker/GPU subject (MTTR
            // pairs on the per-GPU fence/re-admit records instead).
            world.monitor.fault_event(
                now,
                FaultPhase::Injected,
                "host-reboot",
                None,
                None,
                format!("host {host}: {} resident GPUs fenced", gpus.len()),
            );
            crate::world::fault_host(world, eng, *host);
        }
        FaultKind::RackPower { rack } => {
            let hosts = world
                .config
                .topology
                .hosts_in_rack(*rack, world.fleet.len() as u32);
            if hosts.is_empty() {
                return;
            }
            world.recovery.stats.faults_injected += 1;
            world.recovery.stats.domain_outages += 1;
            world.monitor.fault_event(
                now,
                FaultPhase::Injected,
                "rack-power",
                None,
                None,
                format!("rack {rack}: {} hosts lost power", hosts.len()),
            );
            crate::world::fault_rack(world, eng, *rack);
        }
        FaultKind::ReconfigFail { gpu } => {
            if (*gpu as usize) >= world.fleet.len() {
                return;
            }
            world.recovery.stats.faults_injected += 1;
            world.monitor.fault_event(
                now,
                FaultPhase::Injected,
                "reconfig-fail-armed",
                Some(*gpu),
                None,
                "next reconfiguration commit on this device will fail",
            );
            world.reconfig.poisoned.insert(*gpu);
        }
    }
}

/// Per-GPU circuit-breaker state.
#[derive(Debug, Clone, Default)]
pub struct GpuHealth {
    /// `Some(t)` while quarantined; re-admission is scheduled for `t`.
    pub open_until: Option<SimTime>,
    /// Contained client faults since the last trip/re-admission.
    pub consecutive_faults: u32,
    /// Workers parked during quarantine, respawned at re-admission.
    pub parked: Vec<usize>,
}

/// Counters summarizing a run's fault and recovery activity.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct RecoveryStats {
    /// Faults actually applied (injections against dead targets are
    /// dropped and not counted).
    pub faults_injected: u64,
    /// Worker processes lost to faults (crash, blast radius, provider).
    pub workers_lost: u64,
    /// Worker deaths the platform itself discovered — heartbeat-watchdog
    /// timeouts *and* fatal-device-error teardowns on the quarantine /
    /// blast-radius path (every such death is platform-detected, not
    /// injector bookkeeping).
    pub crashes_detected: u64,
    /// Automatic respawns started (within the restart budget).
    pub respawns: u64,
    /// Task retries scheduled with backoff.
    pub retries_scheduled: u64,
    /// Circuit-breaker trips (device quarantines, including domain
    /// fences).
    pub quarantines: u64,
    /// Queued tasks failed over to a surviving executor.
    pub failovers: u64,
    /// Correlated domain faults applied (host reboots + rack power).
    pub domain_outages: u64,
    /// Checkpoints committed to the host-side store.
    pub checkpoints_committed: u64,
    /// Retried attempts that resumed from a committed checkpoint instead
    /// of re-executing from scratch.
    pub tasks_resumed: u64,
    /// Seconds of completed-but-unpreserved execution thrown away by
    /// failed attempts (time since the attempt's last committed
    /// checkpoint, or since its body started when none committed).
    pub work_lost_s: f64,
}

/// The platform's recovery machinery: watchdog flag, jitter RNG, per-GPU
/// breakers, and counters. Owned by [`FaasWorld`].
#[derive(Debug)]
pub struct RecoveryState {
    /// Backoff-jitter RNG (its own stream; consuming jitter never
    /// perturbs workload randomness).
    pub(crate) rng: SimRng,
    /// Checkpoint-timer jitter RNG (its own stream; arming checkpoint
    /// timers never perturbs backoff jitter or workload randomness).
    pub(crate) ckpt_rng: SimRng,
    gpu_health: Vec<GpuHealth>,
    /// True while the heartbeat watchdog is ticking.
    pub(crate) watchdog_armed: bool,
    /// Run counters.
    pub stats: RecoveryStats,
}

impl RecoveryState {
    /// Fresh state for a fleet of `gpus` devices.
    pub fn new(rng: SimRng, ckpt_rng: SimRng, gpus: usize) -> Self {
        RecoveryState {
            rng,
            ckpt_rng,
            gpu_health: (0..gpus).map(|_| GpuHealth::default()).collect(),
            watchdog_armed: false,
            stats: RecoveryStats::default(),
        }
    }

    /// Breaker state for a device, if tracked.
    pub fn health(&self, gpu: GpuId) -> Option<&GpuHealth> {
        self.gpu_health.get(gpu.0 as usize)
    }

    /// Mutable breaker state, growing the table if the fleet gained
    /// devices after construction.
    pub(crate) fn health_mut(&mut self, gpu: GpuId) -> &mut GpuHealth {
        let i = gpu.0 as usize;
        if i >= self.gpu_health.len() {
            self.gpu_health.resize_with(i + 1, GpuHealth::default);
        }
        &mut self.gpu_health[i]
    }
}
