//! Incrementally maintained lookup structures over the worker pool and
//! executor queues — the "indexed world".
//!
//! Dispatch, admission, the heartbeat watchdog, GPU fencing, queue
//! fail-over, and the scaling controllers all used to answer questions
//! like "is any worker of executor e idle?" by scanning
//! `FaasWorld::workers` or `FaasWorld::queues` end to end. At a handful
//! of workers that is noise; at a thousand GPUs with a million tasks it
//! makes *per-event* cost grow with fleet size. [`WorldIndex`] keeps the
//! answers materialized: per-executor idle-worker free lists, live/
//! not-dead counters, crashed/dead id sets, per-GPU resident sets, and
//! per-executor queued service-estimate totals, each updated O(log n) at
//! the state transition that changes it.
//!
//! Two invariants make this safe to rely on:
//!
//! * **Single funnel.** Every worker state write goes through
//!   `FaasWorld::transition`, every GPU (un)binding through
//!   `FaasWorld::bind_gpu`, and every queue mutation through the
//!   `queue_push`/`queue_pop_front`/`queue_remove` helpers in `world` —
//!   so the index cannot silently drift from the ground truth.
//! * **Always maintained, separately consumed.** The index is updated
//!   even when `enabled` is false; the flag only selects whether the hot
//!   paths consult it or run the original full scans (kept verbatim as
//!   the reference implementation and the A/B baseline for the fleet
//!   bench). `FaasWorld::check_index_consistency` recomputes everything
//!   from scratch and asserts equality in debug builds.
//!
//! Determinism: iteration over the [`BTreeSet`]s is ascending by worker
//! id, which is exactly the order the replaced `Vec` scans produced, so
//! picks (dispatch target, hedge target, watchdog detection order) are
//! bit-identical with the index on or off.

use crate::world::WorkerState;
use parfait_simcore::SimDuration;
use std::collections::BTreeSet;

/// Index a [`WorkerState`] into [`WorldIndex::state_counts`].
fn state_slot(s: WorkerState) -> usize {
    match s {
        WorkerState::Provisioning => 0,
        WorkerState::ColdStart => 1,
        WorkerState::Idle => 2,
        WorkerState::Busy => 3,
        WorkerState::Crashed => 4,
        WorkerState::Dead => 5,
    }
}

/// Materialized answers to the questions the hot paths ask every event.
#[derive(Debug)]
pub struct WorldIndex {
    /// Fast paths consult the index when true; otherwise the original
    /// full scans run. The index itself is maintained either way.
    pub(crate) enabled: bool,
    /// Per-executor ids of `Idle` workers, ascending.
    pub(crate) idle: Vec<BTreeSet<usize>>,
    /// Per-executor count of workers neither `Dead` nor `Crashed` (the
    /// admission/fail-over notion of "live").
    pub(crate) live: Vec<usize>,
    /// Per-executor count of workers not `Dead` (the scaling
    /// controllers' notion of "live"; also answers `executor_dead`).
    pub(crate) not_dead: Vec<usize>,
    /// Per-executor total workers ever created (workers never migrate
    /// between executors, so this equals the filter-count scan exactly).
    pub(crate) total: Vec<usize>,
    /// Ids of `Crashed` workers, ascending (watchdog detection order).
    pub(crate) crashed: BTreeSet<usize>,
    /// Ids of `Dead` workers, ascending (GPU-fence parking scan).
    pub(crate) dead: BTreeSet<usize>,
    /// Global worker counts by state, indexed by [`state_slot`].
    pub(crate) state_counts: [usize; 6],
    /// Per-GPU ids of workers holding a context on that device,
    /// ascending (fence blast-radius order). Grows on demand.
    pub(crate) residents: Vec<BTreeSet<usize>>,
    /// Per-executor sum of `est_service` nanos over queued tasks that
    /// carry an estimate (exact integer arithmetic; converted to seconds
    /// only at the admission comparison).
    pub(crate) queued_known_nanos: Vec<u128>,
    /// Per-executor count of queued tasks without a service estimate
    /// (admission prices them at the incoming task's own estimate).
    pub(crate) queued_unknown: Vec<usize>,
}

impl WorldIndex {
    /// Empty index for `executors` executors and `gpus` devices; workers
    /// are added via [`WorldIndex::register_worker`].
    pub(crate) fn new(executors: usize, gpus: usize) -> Self {
        WorldIndex {
            enabled: true,
            idle: vec![BTreeSet::new(); executors],
            live: vec![0; executors],
            not_dead: vec![0; executors],
            total: vec![0; executors],
            crashed: BTreeSet::new(),
            dead: BTreeSet::new(),
            state_counts: [0; 6],
            residents: vec![BTreeSet::new(); gpus],
            queued_known_nanos: vec![0; executors],
            queued_unknown: vec![0; executors],
        }
    }

    /// Account a freshly created worker (no GPU binding yet).
    pub(crate) fn register_worker(&mut self, wid: usize, exec: usize, state: WorkerState) {
        self.total[exec] += 1;
        self.state_counts[state_slot(state)] += 1;
        match state {
            WorkerState::Dead => {
                self.dead.insert(wid);
            }
            WorkerState::Crashed => {
                self.not_dead[exec] += 1;
                self.crashed.insert(wid);
            }
            other => {
                self.not_dead[exec] += 1;
                self.live[exec] += 1;
                if other == WorkerState::Idle {
                    self.idle[exec].insert(wid);
                }
            }
        }
    }

    /// Apply a worker state transition (`old` → `new`, `old != new`).
    pub(crate) fn on_state_change(
        &mut self,
        wid: usize,
        exec: usize,
        old: WorkerState,
        new: WorkerState,
    ) {
        self.state_counts[state_slot(old)] -= 1;
        self.state_counts[state_slot(new)] += 1;
        if old == WorkerState::Idle {
            self.idle[exec].remove(&wid);
        }
        if new == WorkerState::Idle {
            self.idle[exec].insert(wid);
        }
        if old == WorkerState::Crashed {
            self.crashed.remove(&wid);
        }
        if new == WorkerState::Crashed {
            self.crashed.insert(wid);
        }
        if old == WorkerState::Dead {
            self.dead.remove(&wid);
        }
        if new == WorkerState::Dead {
            self.dead.insert(wid);
        }
        let was_live = !matches!(old, WorkerState::Dead | WorkerState::Crashed);
        let is_live = !matches!(new, WorkerState::Dead | WorkerState::Crashed);
        match (was_live, is_live) {
            (true, false) => self.live[exec] -= 1,
            (false, true) => self.live[exec] += 1,
            _ => {}
        }
        match (old == WorkerState::Dead, new == WorkerState::Dead) {
            (false, true) => self.not_dead[exec] -= 1,
            (true, false) => self.not_dead[exec] += 1,
            _ => {}
        }
    }

    /// Apply a GPU (un)binding change for a worker.
    pub(crate) fn on_gpu_change(&mut self, wid: usize, old: Option<u32>, new: Option<u32>) {
        if old == new {
            return;
        }
        if let Some(g) = old {
            if let Some(set) = self.residents.get_mut(g as usize) {
                set.remove(&wid);
            }
        }
        if let Some(g) = new {
            let gi = g as usize;
            if gi >= self.residents.len() {
                self.residents.resize_with(gi + 1, BTreeSet::new);
            }
            self.residents[gi].insert(wid);
        }
    }

    /// A task entered executor `exec`'s ready queue.
    pub(crate) fn queue_delta_push(&mut self, exec: usize, est: Option<SimDuration>) {
        match est {
            Some(d) => self.queued_known_nanos[exec] += d.as_nanos() as u128,
            None => self.queued_unknown[exec] += 1,
        }
    }

    /// A task left executor `exec`'s ready queue.
    pub(crate) fn queue_delta_pop(&mut self, exec: usize, est: Option<SimDuration>) {
        match est {
            Some(d) => self.queued_known_nanos[exec] -= d.as_nanos() as u128,
            None => self.queued_unknown[exec] -= 1,
        }
    }

    /// Workers in a state that keeps the monitoring sampler alive
    /// (`Provisioning | ColdStart | Busy | Crashed`).
    pub(crate) fn active_workers(&self) -> usize {
        self.state_counts[0] + self.state_counts[1] + self.state_counts[3] + self.state_counts[4]
    }

    /// Workers in a state that keeps the scaling controllers alive
    /// (`Provisioning | ColdStart | Busy` — crashes don't).
    pub(crate) fn spinning_or_busy(&self) -> usize {
        self.state_counts[0] + self.state_counts[1] + self.state_counts[3]
    }
}
