//! Fault injection, detection, and recovery: blast radius per device
//! mode, heartbeat watchdog, backoff retry, restart budget, circuit
//! breaker, and end-to-end determinism.

use parfait_faas::app::bodies::{CpuBurn, KernelSeq};
use parfait_faas::monitoring::export_json;
use parfait_faas::*;
use parfait_gpu::{DeviceMode, GpuFleet, GpuId, GpuSpec, KernelDesc, GIB};
use parfait_simcore::{Engine, SimDuration, SimTime};

fn fleet_one(mode: DeviceMode) -> GpuFleet {
    let mut fleet = GpuFleet::new();
    let g = fleet.add(GpuSpec::a100_80gb());
    let d = fleet.device_mut(g);
    if matches!(mode, DeviceMode::MpsDefault | DeviceMode::MpsPartitioned) {
        d.mps.start();
    }
    d.set_mode(mode).unwrap();
    fleet
}

fn cpu_call(app: &str, secs: u64) -> AppCall {
    AppCall::new(app, "cpu", move |_| {
        Box::new(CpuBurn::new(SimDuration::from_secs(secs)))
    })
}

fn gpu_call(app: &str, sm_seconds: f64) -> AppCall {
    AppCall::new(app, "gpu", move |_| {
        Box::new(KernelSeq::new(
            vec![KernelDesc::new("k", sm_seconds, 75_600, 75_600, 0.0)],
            SimDuration::ZERO,
        ))
    })
}

/// The acceptance scenario, MPS half: a fatal client fault under
/// `MpsDefault` poisons the shared context — every co-resident worker on
/// the device dies and the device is quarantined — yet every task still
/// completes after re-admission.
#[test]
fn mps_client_fault_kills_all_residents_then_recovers() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![
            AcceleratorSpec::Gpu(0),
            AcceleratorSpec::Gpu(0),
            AcceleratorSpec::Gpu(0),
        ],
    )]);
    config.retries = 3;
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::MpsDefault), 42);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let ids: Vec<TaskId> = (0..6)
        .map(|i| submit(&mut w, &mut eng, gpu_call(&format!("t{i}"), 3.0)))
        .collect();
    let plan = FaultPlan::one(
        SimTime::from_secs(15),
        FaultKind::GpuClientFault { worker: 0 },
    );
    install_faults(&mut w, &mut eng, &plan);

    eng.run_until(&mut w, SimTime::from_secs(16));
    assert!(
        w.workers.iter().all(|wk| wk.state == WorkerState::Dead),
        "MPS blast radius: every co-resident client dies, states: {:?}",
        w.workers.iter().map(|wk| wk.state).collect::<Vec<_>>()
    );
    assert!(gpu_quarantined(&w, GpuId(0)), "device quarantined");
    assert!(!w.fleet.device(GpuId(0)).is_healthy());
    assert_eq!(w.fleet.device(GpuId(0)).context_count(), 0);
    assert_eq!(w.recovery.stats.quarantines, 1);
    assert!(w.recovery.stats.workers_lost >= 3);

    eng.run(&mut w);
    assert!(
        !gpu_quarantined(&w, GpuId(0)),
        "cooldown elapsed, breaker closed"
    );
    assert!(w.fleet.device(GpuId(0)).is_healthy());
    for id in &ids {
        assert_eq!(
            w.dfk.task(*id).state,
            TaskState::Done,
            "task {} must complete after re-admission",
            id.0
        );
    }
    assert!(w.recovery.stats.respawns >= 3, "parked workers respawned");
    assert!(w.monitor.mttr_s().is_some(), "incidents paired for MTTR");
}

/// The acceptance scenario, MIG half: the *same* fault under MIG is
/// contained to the faulting instance — exactly one worker dies, the
/// others never stop, and the breaker does not trip.
#[test]
fn mig_client_fault_is_contained_to_one_instance() {
    let mut fleet = fleet_one(DeviceMode::Mig);
    let d = fleet.device_mut(GpuId(0));
    let uuids: Vec<String> = (0..3)
        .map(|_| {
            let iid = d.mig_create("2g.20gb").unwrap();
            d.mig.get(iid).unwrap().uuid.clone()
        })
        .collect();
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        uuids.iter().cloned().map(AcceleratorSpec::Mig).collect(),
    )]);
    config.retries = 3;
    let mut w = FaasWorld::new(config, fleet, 42);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let ids: Vec<TaskId> = (0..6)
        .map(|i| submit(&mut w, &mut eng, gpu_call(&format!("t{i}"), 3.0)))
        .collect();
    let plan = FaultPlan::one(
        SimTime::from_secs(15),
        FaultKind::GpuClientFault { worker: 0 },
    );
    install_faults(&mut w, &mut eng, &plan);

    eng.run_until(&mut w, SimTime::from_secs(16));
    // The victim died (and may already be cold-starting its respawn).
    assert_eq!(w.recovery.stats.workers_lost, 1, "exactly one worker lost");
    assert_eq!(w.workers[0].restarts_used, 1, "victim respawning");
    let survivors = w
        .workers
        .iter()
        .skip(1)
        .filter(|wk| matches!(wk.state, WorkerState::Idle | WorkerState::Busy))
        .count();
    assert_eq!(
        survivors,
        2,
        "MIG contains the fault: co-resident instances untouched, states: {:?}",
        w.workers.iter().map(|wk| wk.state).collect::<Vec<_>>()
    );
    assert!(!gpu_quarantined(&w, GpuId(0)), "one fault does not trip");
    assert!(w.fleet.device(GpuId(0)).is_healthy());

    eng.run(&mut w);
    for id in &ids {
        assert_eq!(w.dfk.task(*id).state, TaskState::Done);
    }
    assert_eq!(w.recovery.stats.quarantines, 0);
    assert!(w.recovery.stats.respawns >= 1, "victim respawned");
}

/// A silent crash is invisible until the heartbeat watchdog times out; the
/// task held by the crashed worker is only failed (and retried) at
/// detection time.
#[test]
fn watchdog_detects_silent_crash_after_timeout() {
    let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
    let timeout = config.recovery.heartbeat_timeout;
    let mut w = FaasWorld::new(config, GpuFleet::new(), 7);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(&mut w, &mut eng, cpu_call("long", 60));
    let crash_at = SimTime::from_secs(10);
    install_faults(
        &mut w,
        &mut eng,
        &FaultPlan::one(crash_at, FaultKind::WorkerCrash { worker: 0 }),
    );

    eng.run_until(&mut w, crash_at + SimDuration::from_millis(1));
    assert_eq!(w.workers[0].state, WorkerState::Crashed);
    assert_eq!(
        w.dfk.task(id).state,
        TaskState::Running,
        "platform has not noticed yet"
    );

    eng.run(&mut w);
    let detected = w
        .monitor
        .fault_records
        .iter()
        .find(|r| r.kind == "worker-crash" && matches!(r.phase, FaultPhase::Detected))
        .expect("watchdog records the detection");
    let silence = detected.t.duration_since(crash_at);
    assert!(
        silence >= timeout,
        "detected after only {silence:?} of silence"
    );
    assert!(
        silence <= timeout + SimDuration::from_secs(1),
        "detection is prompt: {silence:?}"
    );
    assert_eq!(w.dfk.task(id).state, TaskState::Done, "retried and done");
    assert_eq!(w.recovery.stats.crashes_detected, 1);
    assert_eq!(w.recovery.stats.respawns, 1);
}

/// Failed attempts re-queue with exponential backoff, not instantly: the
/// gap between consecutive dispatches of the same task grows.
#[test]
fn retries_back_off_exponentially() {
    let mut config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
    config.retries = 3;
    let mut w = FaasWorld::new(config, GpuFleet::new(), 9);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    // A GPU step on a CPU-only worker fails instantly on every attempt.
    let id = submit(
        &mut w,
        &mut eng,
        AppCall::new("doomed", "cpu", |_| {
            Box::new(KernelSeq::new(
                vec![KernelDesc::new("k", 1.0, 75_600, 75_600, 0.0)],
                SimDuration::ZERO,
            ))
        }),
    );
    eng.run(&mut w);
    assert_eq!(w.dfk.task(id).state, TaskState::Failed);
    assert_eq!(w.dfk.task(id).attempts, 4, "1 try + 3 retries");
    assert_eq!(w.recovery.stats.retries_scheduled, 3);
    let detail = format!("task {}", id.0);
    let starts: Vec<SimTime> = w
        .monitor
        .worker_events
        .iter()
        .filter(|e| {
            matches!(e.kind, parfait_faas::monitoring::WorkerEventKind::TaskStart)
                && e.detail == detail
        })
        .map(|e| e.t)
        .collect();
    assert_eq!(starts.len(), 4);
    let gaps: Vec<f64> = starts
        .windows(2)
        .map(|p| p[1].duration_since(p[0]).as_secs_f64())
        .collect();
    // base 100 ms doubling, jitter in [1, 1.25): each gap is at least the
    // deterministic floor and the sequence grows.
    assert!(gaps[0] >= 0.1, "first backoff {gaps:?}");
    assert!(gaps[1] >= 0.2, "second backoff {gaps:?}");
    assert!(gaps[2] >= 0.4, "third backoff {gaps:?}");
    assert!(gaps[0] < gaps[1] && gaps[1] < gaps[2], "growing: {gaps:?}");
}

/// Auto-respawn is budgeted: after `restart_budget` restarts the worker
/// stays down and the exhaustion is recorded.
#[test]
fn restart_budget_caps_auto_respawns() {
    let mut config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
    config.recovery.restart_budget = 2;
    let mut w = FaasWorld::new(config, GpuFleet::new(), 11);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let plan = FaultPlan::default()
        .with(SimTime::from_secs(10), FaultKind::WorkerCrash { worker: 0 })
        .with(SimTime::from_secs(40), FaultKind::WorkerCrash { worker: 0 })
        .with(SimTime::from_secs(80), FaultKind::WorkerCrash { worker: 0 });
    install_faults(&mut w, &mut eng, &plan);
    eng.run(&mut w);
    assert_eq!(w.workers[0].state, WorkerState::Dead, "stays down");
    assert_eq!(w.recovery.stats.respawns, 2);
    assert_eq!(w.workers[0].restarts_used, 2);
    assert!(w
        .monitor
        .fault_records
        .iter()
        .any(|r| r.kind == "restart-budget-exhausted"));
}

/// Contained client faults accumulate on the per-GPU breaker and trip it
/// at the threshold, quarantining the device.
#[test]
fn breaker_trips_after_repeated_contained_faults() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    config.retries = 5;
    config.recovery.breaker_threshold = 2;
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 13);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(&mut w, &mut eng, gpu_call("t", 100.0));
    let plan = FaultPlan::default()
        .with(
            SimTime::from_secs(15),
            FaultKind::GpuClientFault { worker: 0 },
        )
        .with(
            SimTime::from_secs(30),
            FaultKind::GpuClientFault { worker: 0 },
        );
    install_faults(&mut w, &mut eng, &plan);
    eng.run_until(&mut w, SimTime::from_secs(20));
    assert!(
        !gpu_quarantined(&w, GpuId(0)),
        "below threshold: no quarantine yet"
    );
    eng.run_until(&mut w, SimTime::from_secs(31));
    assert!(gpu_quarantined(&w, GpuId(0)), "second fault trips");
    eng.run(&mut w);
    assert_eq!(w.recovery.stats.quarantines, 1);
    // 100 SM-seconds never fit before a fault; the task exhausts retries
    // or completes after re-admission — either way the world drains.
    let t = w.dfk.task(id);
    assert!(matches!(t.state, TaskState::Done | TaskState::Failed));
}

/// Provisioning failures and model-load OOMs are absorbed: the worker
/// retries provisioning (budgeted) and the task retries its load.
#[test]
fn provisioning_failure_and_model_oom_recover() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    config.retries = 2;
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 17);
    let mut eng = Engine::new();
    // Poison the first provisioning attempt before boot.
    inject_fault(
        &mut w,
        &mut eng,
        &FaultKind::ProvisioningFailure { worker: 0 },
    );
    boot(&mut w, &mut eng);
    let model = ModelProfile::private(7, GIB);
    let id = submit(
        &mut w,
        &mut eng,
        AppCall::new("infer", "gpu", move |_| {
            Box::new(
                KernelSeq::new(
                    vec![KernelDesc::new("k", 1.0, 75_600, 75_600, 0.0)],
                    SimDuration::ZERO,
                )
                .with_model(model),
            )
        }),
    );
    install_faults(
        &mut w,
        &mut eng,
        &FaultPlan::one(SimTime::from_secs(1), FaultKind::ModelLoadOom { worker: 0 }),
    );
    eng.run(&mut w);
    assert_eq!(w.dfk.task(id).state, TaskState::Done);
    assert_eq!(w.recovery.stats.respawns, 1, "provisioning retried");
    assert!(w.dfk.task(id).attempts >= 2, "load OOM burned one attempt");
    assert!(w
        .monitor
        .fault_records
        .iter()
        .any(|r| r.kind == "provisioning-failure"));
    assert!(w
        .monitor
        .fault_records
        .iter()
        .any(|r| r.kind == "model-load-oom"));
}

/// A straggler episode slows kernels and then clears, recording both
/// phases.
#[test]
fn straggler_slows_then_clears() {
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 19);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    // 216 SM-seconds on 108 SMs ≈ 2 s of device time at nominal rate.
    let fast = submit(&mut w, &mut eng, gpu_call("fast", 216.0));
    let plan = FaultPlan::one(
        SimTime::from_secs(2),
        FaultKind::Straggler {
            gpu: 0,
            factor: 0.25,
            duration: SimDuration::from_secs(60),
        },
    );
    install_faults(&mut w, &mut eng, &plan);
    eng.run(&mut w);
    let t = w.dfk.task(fast);
    assert_eq!(t.state, TaskState::Done);
    // At quarter speed the ~2 s kernel takes ~8 s.
    let dur = t
        .finished
        .unwrap()
        .duration_since(t.started.unwrap())
        .as_secs_f64();
    assert!(dur > 4.0, "straggler must stretch the kernel, took {dur}s");
    assert_eq!(w.fleet.device(GpuId(0)).slowdown(), 1.0, "restored");
    assert!(w
        .monitor
        .fault_records
        .iter()
        .any(|r| r.kind == "straggler-cleared"));
}

/// Same seed + same plan ⇒ bit-identical monitoring export (fault
/// records, task rows, worker events), including stochastic draws.
#[test]
fn fault_runs_are_deterministic() {
    fn run_once() -> (String, u64, u64) {
        let mut config = Config::new(vec![ExecutorConfig::gpu(
            "gpu",
            vec![AcceleratorSpec::Gpu(0), AcceleratorSpec::Gpu(0)],
        )]);
        config.retries = 3;
        let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 12345);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        for i in 0..8 {
            submit(&mut w, &mut eng, gpu_call(&format!("t{i}"), 2.0));
        }
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at: SimTime::from_secs(12),
                kind: FaultKind::WorkerCrash { worker: 0 },
            }],
            stochastic: Some(StochasticFaults {
                horizon: SimDuration::from_secs(120),
                crash_rate_per_hour: 30.0,
                client_fault_rate_per_hour: 30.0,
                device_fault_rate_per_hour: 0.0,
                straggler_rate_per_hour: 20.0,
                straggler_factor: 0.5,
                straggler_duration: SimDuration::from_secs(5),
                host_reboot_rate_per_hour: 0.0,
                rack_power_rate_per_hour: 0.0,
            }),
        };
        let realized = install_faults(&mut w, &mut eng, &plan);
        eng.run(&mut w);
        (
            export_json(&w.dfk, &w.monitor),
            realized.len() as u64,
            eng.events_fired(),
        )
    }
    let (a_json, a_events, a_fired) = run_once();
    let (b_json, b_events, b_fired) = run_once();
    assert_eq!(a_events, b_events, "identical realized schedules");
    assert_eq!(a_fired, b_fired, "identical event traces");
    assert_eq!(a_json, b_json, "bit-identical monitoring export");
}
