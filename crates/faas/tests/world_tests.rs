//! Integration tests for the FaaS runtime: worker lifecycle, task
//! dispatch, model caching, failures, and accelerator binding.

use parfait_faas::app::bodies::{CpuBurn, KernelSeq};
use parfait_faas::*;
use parfait_gpu::{DeviceMode, GpuFleet, GpuId, GpuSpec, KernelDesc, GIB};
use parfait_simcore::{Engine, SimDuration, SimTime};

fn fleet_one(mode: DeviceMode) -> GpuFleet {
    let mut fleet = GpuFleet::new();
    let g = fleet.add(GpuSpec::a100_80gb());
    let d = fleet.device_mut(g);
    if matches!(mode, DeviceMode::MpsDefault | DeviceMode::MpsPartitioned) {
        d.mps.start();
    }
    d.set_mode(mode).unwrap();
    fleet
}

fn cpu_call(app: &str, secs: u64) -> AppCall {
    AppCall::new(app, "cpu", move |_| {
        Box::new(CpuBurn::new(SimDuration::from_secs(secs)))
    })
}

/// A full-GPU kernel of `sm_seconds` SM-seconds of work.
fn gpu_kernel(sm_seconds: f64) -> KernelDesc {
    KernelDesc::new("k", sm_seconds, 75_600, 75_600, 0.0)
}

#[test]
fn cpu_task_runs_to_completion() {
    let config = Config::new(vec![ExecutorConfig::cpu("cpu", 2)]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 1);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(&mut w, &mut eng, cpu_call("hello", 3));
    eng.run(&mut w);
    let t = w.dfk.task(id);
    assert_eq!(t.state, TaskState::Done);
    // finish = spawn delay + cold start + 3 s of work
    let fin = t.finished.unwrap().as_secs_f64();
    assert!(fin > 3.0 && fin < 7.0, "finished at {fin}");
    assert_eq!(w.dfk.done_count(), 1);
}

#[test]
fn unknown_executor_label_fails_terminally_instead_of_panicking() {
    let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 1);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let bad = AppCall::new("app", "no-such-pool", |_| {
        Box::new(CpuBurn::new(SimDuration::from_secs(1)))
    });
    let id = submit(&mut w, &mut eng, bad);
    eng.run(&mut w);
    let t = w.dfk.task(id);
    assert_eq!(t.state, TaskState::Failed);
    assert!(
        t.error
            .as_deref()
            .unwrap_or_default()
            .contains("unknown executor"),
        "error: {:?}",
        t.error
    );
    // The platform keeps serving well-formed work afterwards.
    let ok = submit(&mut w, &mut eng, cpu_call("hello", 1));
    eng.run(&mut w);
    assert_eq!(w.dfk.task(ok).state, TaskState::Done);
}

#[test]
fn cold_start_precedes_first_task() {
    let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 2);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(&mut w, &mut eng, cpu_call("a", 1));
    eng.run(&mut w);
    let worker = &w.workers[0];
    let ready = worker.ready_at.unwrap();
    let started = w.dfk.task(id).started.unwrap();
    assert!(started >= ready, "task started before cold start finished");
    let b = worker.cold_breakdown.unwrap();
    assert!(
        b.gpu_context_init.is_zero(),
        "CPU worker has no GPU context"
    );
    assert!(!b.function_init.is_zero());
}

#[test]
fn queue_drains_with_fewer_workers_than_tasks() {
    let config = Config::new(vec![ExecutorConfig::cpu("cpu", 2)]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 3);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let ids: Vec<TaskId> = (0..6)
        .map(|_| submit(&mut w, &mut eng, cpu_call("a", 2)))
        .collect();
    eng.run(&mut w);
    assert!(w.dfk.all_settled());
    assert_eq!(w.dfk.done_count(), 6);
    // 6 × 2 s on 2 workers ⇒ last finishes ≥ 6 s after workers ready.
    let last = ids
        .iter()
        .map(|i| w.dfk.task(*i).finished.unwrap())
        .max()
        .unwrap();
    let ready = w
        .workers
        .iter()
        .map(|wk| wk.ready_at.unwrap())
        .min()
        .unwrap();
    assert!(last.duration_since(ready) >= SimDuration::from_secs(6));
}

#[test]
fn dependencies_run_in_order_across_executors() {
    let config = Config::new(vec![
        ExecutorConfig::cpu("cpu", 2),
        ExecutorConfig::cpu("cpu2", 1),
    ]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 4);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let a = submit(&mut w, &mut eng, cpu_call("stage-a", 2));
    let b = submit(
        &mut w,
        &mut eng,
        AppCall::new("stage-b", "cpu2", |_| {
            Box::new(CpuBurn::new(SimDuration::from_secs(1)))
        })
        .after(&[a]),
    );
    eng.run(&mut w);
    let fa = w.dfk.task(a).finished.unwrap();
    let sb = w.dfk.task(b).started.unwrap();
    assert!(
        sb >= fa,
        "dependent started at {sb} before dep finished at {fa}"
    );
    assert_eq!(w.dfk.task(b).state, TaskState::Done);
}

#[test]
fn gpu_task_executes_kernels() {
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 5);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(
        &mut w,
        &mut eng,
        AppCall::new("infer", "gpu", |_| {
            Box::new(KernelSeq::new(
                vec![gpu_kernel(54.0), gpu_kernel(54.0)],
                SimDuration::from_millis(100),
            ))
        }),
    );
    eng.run(&mut w);
    let t = w.dfk.task(id);
    assert_eq!(t.state, TaskState::Done);
    // 2 × (0.1 host + 0.5 GPU) = 1.2 s of execution.
    let exec = t
        .finished
        .unwrap()
        .duration_since(t.started.unwrap())
        .as_secs_f64();
    assert!((exec - 1.2).abs() < 0.01, "exec {exec}");
    // Env var surface of §4.
    assert_eq!(
        w.workers[0].env.get("CUDA_VISIBLE_DEVICES"),
        Some(&"0".to_string())
    );
}

#[test]
fn mps_percentage_binding_sets_env_and_caps() {
    let mut fleet = fleet_one(DeviceMode::MpsPartitioned);
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![
            AcceleratorSpec::GpuPercentage(0, 50),
            AcceleratorSpec::GpuPercentage(0, 50),
        ],
    )]);
    fleet.device_mut(GpuId(0)).mps.start();
    let mut w = FaasWorld::new(config, fleet, 6);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let mk = || {
        AppCall::new("infer", "gpu", |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(54.0)], SimDuration::ZERO))
        })
    };
    let a = submit(&mut w, &mut eng, mk());
    let b = submit(&mut w, &mut eng, mk());
    eng.run(&mut w);
    for id in [a, b] {
        let t = w.dfk.task(id);
        assert_eq!(t.state, TaskState::Done);
        // 54 SM-s at a 54-SM cap → 1 s each, concurrently.
        let exec = t
            .finished
            .unwrap()
            .duration_since(t.started.unwrap())
            .as_secs_f64();
        assert!((exec - 1.0).abs() < 0.01, "exec {exec}");
    }
    assert_eq!(
        w.workers[0].env.get("CUDA_MPS_ACTIVE_THREAD_PERCENTAGE"),
        Some(&"50".to_string())
    );
}

#[test]
fn mig_uuid_binding_resolves() {
    let mut fleet = fleet_one(DeviceMode::Mig);
    let iid = fleet.device_mut(GpuId(0)).mig_create("3g.40gb").unwrap();
    let uuid = fleet.device(GpuId(0)).mig.get(iid).unwrap().uuid.clone();
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Mig(uuid.clone())],
    )]);
    let mut w = FaasWorld::new(config, fleet, 7);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(
        &mut w,
        &mut eng,
        AppCall::new("infer", "gpu", |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(42.0)], SimDuration::ZERO))
        }),
    );
    eng.run(&mut w);
    let t = w.dfk.task(id);
    assert_eq!(t.state, TaskState::Done);
    // 42 SM-s in a 42-SM instance → 1 s.
    let exec = t
        .finished
        .unwrap()
        .duration_since(t.started.unwrap())
        .as_secs_f64();
    assert!((exec - 1.0).abs() < 0.01, "exec {exec}");
    assert_eq!(w.workers[0].env.get("CUDA_VISIBLE_DEVICES"), Some(&uuid));
}

#[test]
fn model_loads_once_then_stays_warm() {
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 8);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let model = ModelProfile::private(42, 10 * GIB); // 10 GiB at 2.5 GB/s ≈ 4.3 s load
    let mk = move || {
        AppCall::new("infer", "gpu", move |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(10.8)], SimDuration::ZERO).with_model(model))
        })
    };
    let a = submit(&mut w, &mut eng, mk());
    let b = submit(&mut w, &mut eng, mk());
    eng.run(&mut w);
    let ta = w.dfk.task(a);
    let tb = w.dfk.task(b);
    // First task pays dispatch→start load gap; second starts immediately.
    let load_a = ta
        .started
        .unwrap()
        .duration_since(ta.dispatched.unwrap())
        .as_secs_f64();
    let load_b = tb
        .started
        .unwrap()
        .duration_since(tb.dispatched.unwrap())
        .as_secs_f64();
    assert!(load_a > 4.0, "cold model load {load_a}");
    assert!(load_b < 0.01, "warm model load {load_b}");
    assert!(w.workers[0].has_model(42));
    // Weights stay resident.
    assert_eq!(w.fleet.device(GpuId(0)).memory_used(), 10 * GIB);
}

#[test]
fn model_oom_fails_task_after_retries() {
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 9);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let model = ModelProfile::private(1, 100 * GIB); // exceeds the 80 GiB A100
    let id = submit(
        &mut w,
        &mut eng,
        AppCall::new("big", "gpu", move |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(1.0)], SimDuration::ZERO).with_model(model))
        }),
    );
    eng.run(&mut w);
    let t = w.dfk.task(id);
    assert_eq!(t.state, TaskState::Failed);
    assert!(t.error.as_deref().unwrap().contains("alloc failed"));
    assert_eq!(w.dfk.failed_count(), 1);
}

#[test]
fn gpu_step_on_cpu_worker_fails() {
    let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 10);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(
        &mut w,
        &mut eng,
        AppCall::new("bad", "cpu", |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(1.0)], SimDuration::ZERO))
        }),
    );
    eng.run(&mut w);
    assert_eq!(w.dfk.task(id).state, TaskState::Failed);
}

#[test]
fn kill_and_respawn_worker_reloads_model() {
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 11);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let model = ModelProfile::private(7, GIB);
    let mk = move || {
        AppCall::new("infer", "gpu", move |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(10.8)], SimDuration::ZERO).with_model(model))
        })
    };
    let a = submit(&mut w, &mut eng, mk());
    eng.run(&mut w);
    assert_eq!(w.dfk.task(a).state, TaskState::Done);
    assert!(w.workers[0].has_model(7));
    let epoch_before = w.workers[0].epoch();

    kill_worker(&mut w, &mut eng, 0, "reconfigure");
    assert_eq!(w.workers[0].state, WorkerState::Dead);
    assert!(!w.workers[0].has_model(7), "kill clears the model cache");
    assert_eq!(
        w.fleet.device(GpuId(0)).memory_used(),
        0,
        "context memory freed"
    );

    respawn_worker(&mut w, &mut eng, 0, Some(AcceleratorSpec::Gpu(0))).unwrap();
    let b = submit(&mut w, &mut eng, mk());
    eng.run(&mut w);
    let tb = w.dfk.task(b);
    assert_eq!(tb.state, TaskState::Done);
    assert!(w.workers[0].epoch() > epoch_before);
    // Model reloaded (dispatch→start gap ≈ 0.43 s for 1 GiB).
    let load = tb
        .started
        .unwrap()
        .duration_since(tb.dispatched.unwrap())
        .as_secs_f64();
    assert!(
        load > 0.3,
        "respawned worker must reload the model, load={load}"
    );
}

#[test]
fn killing_busy_worker_retries_task_elsewhere() {
    let config = Config::new(vec![ExecutorConfig::cpu("cpu", 2)]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 12);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(&mut w, &mut eng, cpu_call("long", 100));
    // Let it start…
    eng.run_until(&mut w, SimTime::from_secs(10));
    let victim = w.dfk.task(id).worker.unwrap();
    kill_worker(&mut w, &mut eng, victim, "chaos");
    eng.run(&mut w);
    let t = w.dfk.task(id);
    assert_eq!(t.state, TaskState::Done, "retry on the surviving worker");
    assert_ne!(t.worker.unwrap(), victim);
}

#[test]
fn driver_hooks_fire() {
    struct Chain {
        submitted: u32,
    }
    impl Driver for Chain {
        fn on_start(&mut self, w: &mut FaasWorld, eng: &mut Engine<FaasWorld>) {
            self.submitted += 1;
            submit(w, eng, cpu_call("chain", 1));
        }
        fn on_task_done(&mut self, w: &mut FaasWorld, eng: &mut Engine<FaasWorld>, _t: TaskId) {
            if self.submitted < 4 {
                self.submitted += 1;
                submit(w, eng, cpu_call("chain", 1));
            }
        }
    }
    let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 13);
    w.set_driver(Chain { submitted: 0 });
    let mut eng = Engine::new();
    run(&mut w, &mut eng);
    assert_eq!(w.dfk.done_count(), 4, "closed-loop driver chained 4 tasks");
}

#[test]
fn monitoring_samples_gpu_utilization() {
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 14);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    submit(
        &mut w,
        &mut eng,
        AppCall::new("infer", "gpu", |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(540.0)], SimDuration::ZERO))
        }),
    );
    eng.run(&mut w);
    assert!(!w.monitor.samples.is_empty());
    let peak = w
        .monitor
        .samples
        .iter()
        .map(|s| s.utilization)
        .fold(0.0, f64::max);
    assert!(peak > 0.9, "kernel should saturate the GPU, peak={peak}");
    // Timeline recorded the task span on the app's track.
    assert_eq!(w.timeline.tracks(), vec!["infer".to_string()]);
}

#[test]
fn five_llama_instances_oom_on_80gb() {
    // The paper's constraint: only four 7B instances fit in 80 GB.
    let per_instance = (16.6 * GIB as f64) as u64;
    let mut fleet = fleet_one(DeviceMode::MpsPartitioned);
    fleet.device_mut(GpuId(0)).mps.start();
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        (0..5)
            .map(|_| AcceleratorSpec::GpuPercentage(0, 20))
            .collect(),
    )]);
    let mut w = FaasWorld::new(config, fleet, 15);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    for i in 0..5u64 {
        // five distinct chatbot deployments
        let model = ModelProfile::private(i, per_instance);
        submit(
            &mut w,
            &mut eng,
            AppCall::new("chat", "gpu", move |_| {
                Box::new(KernelSeq::new(vec![gpu_kernel(1.0)], SimDuration::ZERO).with_model(model))
            }),
        );
    }
    eng.run(&mut w);
    assert_eq!(w.dfk.done_count(), 4, "exactly four instances fit");
    assert_eq!(w.dfk.failed_count(), 1, "the fifth OOMs");
}

#[test]
fn kill_sole_worker_mid_task_recovers_after_respawn() {
    // Regression: killing a Busy worker requeues its task; the retry must
    // not land on the dying worker (it is torn down in the same event)
    // but must run on the respawned incarnation afterwards.
    let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 77);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(&mut w, &mut eng, cpu_call("long", 50));
    eng.run_until(&mut w, SimTime::from_secs(10));
    assert_eq!(w.workers[0].state, WorkerState::Busy);
    kill_worker(&mut w, &mut eng, 0, "chaos");
    assert_eq!(w.workers[0].state, WorkerState::Dead);
    assert!(w.workers[0].current_task().is_none(), "no orphaned task");
    assert_eq!(w.dfk.task(id).state, TaskState::Ready, "task requeued");
    respawn_worker(&mut w, &mut eng, 0, None).unwrap();
    eng.run(&mut w);
    assert_eq!(w.dfk.task(id).state, TaskState::Done);
    assert_eq!(w.dfk.done_count(), 1);
}

#[test]
fn concurrent_streams_within_one_context() {
    // A single process may have several kernels in flight (CUDA streams);
    // they share the context's SM budget.
    let mut fleet = fleet_one(DeviceMode::TimeSharing);
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    let g = GpuId(0);
    let ctx = fleet
        .device_mut(g)
        .create_context(SimTime::ZERO, "streams", parfait_gpu::CtxBinding::Bare)
        .unwrap();
    // Two half-GPU kernels launched together: they run side by side and
    // finish at ~1 s (not 2 s serialized).
    fleet
        .device_mut(g)
        .launch(SimTime::ZERO, ctx, gpu_kernel(54.0), 0)
        .unwrap();
    fleet
        .device_mut(g)
        .launch(SimTime::ZERO, ctx, gpu_kernel(54.0), 1)
        .unwrap();
    let wake = fleet.device(g).next_wake(SimTime::ZERO).unwrap();
    assert!((wake.as_secs_f64() - 1.0).abs() < 1e-5, "wake {wake}");
    let done = fleet.device_mut(g).collect_finished(wake);
    assert_eq!(done.len(), 2);
    let _ = config;
}

#[test]
fn thread_pool_executor_is_instantly_warm() {
    // §2.2.1: ThreadPoolExecutor schedules onto threads of the running
    // process — no provider spawn, no cold start.
    let config = Config::new(vec![ExecutorConfig::thread_pool("tp", 4)]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 21);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(
        &mut w,
        &mut eng,
        AppCall::new("quick", "tp", |_| {
            Box::new(CpuBurn::new(SimDuration::from_secs(1)))
        }),
    );
    eng.run(&mut w);
    let t = w.dfk.task(id);
    assert_eq!(t.state, TaskState::Done);
    // Only the wire-dispatch millisecond before start; no seconds of
    // cold start.
    let started = t.started.unwrap().as_secs_f64();
    assert!(started < 0.01, "thread pool started at {started}s");
    assert!(w.workers.iter().all(|wk| wk.cold_breakdown.is_none()));
}

#[test]
fn cpu_oversubscription_slows_compute_steps() {
    // 48 compute-bound workers on a 24-core node: each 10 s step takes
    // ~2x; with 24 workers it runs at full speed.
    let run = |workers: usize| -> f64 {
        let mut config = Config::new(vec![ExecutorConfig::thread_pool("tp", workers)]);
        config.node_cores = 24;
        let mut w = FaasWorld::new(config, GpuFleet::new(), 22);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        let ids: Vec<TaskId> = (0..workers)
            .map(|_| {
                submit(
                    &mut w,
                    &mut eng,
                    AppCall::new("burn", "tp", |_| {
                        Box::new(CpuBurn::new(SimDuration::from_secs(10)))
                    }),
                )
            })
            .collect();
        eng.run(&mut w);
        ids.iter()
            .map(|i| {
                let t = w.dfk.task(*i);
                t.finished
                    .unwrap()
                    .duration_since(t.started.unwrap())
                    .as_secs_f64()
            })
            .fold(0.0, f64::max)
    };
    let fits = run(24);
    let over = run(48);
    assert!((fits - 10.0).abs() < 0.1, "24 workers on 24 cores: {fits}s");
    assert!(
        (18.0..=22.0).contains(&over),
        "48 workers on 24 cores should take ~2x: {over}s"
    );
}

#[test]
fn slurm_provider_adds_queue_wait() {
    // SlurmProvider workers wait in the batch queue before spawning; the
    // LocalProvider ones do not.
    let mk = |slurm: bool| -> f64 {
        let mut e = ExecutorConfig::cpu("cpu", 4);
        if slurm {
            e.provider = ProviderConfig::Slurm {
                queue_wait_mean: SimDuration::from_secs(60),
                spawn_delay: SimDuration::from_millis(500),
            };
        }
        let config = Config::new(vec![e]);
        let mut w = FaasWorld::new(config, GpuFleet::new(), 31);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        submit(&mut w, &mut eng, cpu_call("probe", 1));
        eng.run(&mut w);
        w.workers
            .iter()
            .filter_map(|wk| wk.ready_at)
            .map(|t| t.as_secs_f64())
            .fold(0.0, f64::max)
    };
    let local = mk(false);
    let slurm = mk(true);
    assert!(local < 5.0, "local workers ready fast: {local}");
    assert!(slurm > 10.0, "slurm queue wait must show: {slurm}");
}

#[test]
fn world_cancel_removes_from_queue() {
    let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
    let mut w = FaasWorld::new(config, GpuFleet::new(), 41);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let running = submit(&mut w, &mut eng, cpu_call("long", 60));
    let queued = submit(&mut w, &mut eng, cpu_call("queued", 5));
    eng.run_until(&mut w, SimTime::from_secs(10));
    assert!(cancel(&mut w, &mut eng, queued), "queued task cancels");
    assert!(!cancel(&mut w, &mut eng, running), "running task does not");
    eng.run(&mut w);
    assert_eq!(w.dfk.task(running).state, TaskState::Done);
    assert_eq!(w.dfk.task(queued).state, TaskState::Failed);
    assert_eq!(w.dfk.task(queued).error.as_deref(), Some("cancelled"));
    assert!(w.dfk.all_settled());
}

#[test]
fn walltime_kills_attempt_but_not_worker() {
    // Parsl's `walltime` app option: the attempt dies at the limit; the
    // worker survives and serves the next task.
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 51);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    // A task that would run 100 s of kernels, capped at 5 s; retries = 1
    // so it fails permanently after two attempts.
    let runaway = submit(
        &mut w,
        &mut eng,
        AppCall::new("runaway", "gpu", |_| {
            Box::new(KernelSeq::new(
                vec![gpu_kernel(108.0 * 100.0)],
                SimDuration::ZERO,
            ))
        })
        .with_walltime(SimDuration::from_secs(5)),
    );
    let healthy = submit(
        &mut w,
        &mut eng,
        AppCall::new("healthy", "gpu", |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(54.0)], SimDuration::ZERO))
        }),
    );
    eng.run(&mut w);
    let rt = w.dfk.task(runaway);
    assert_eq!(rt.state, TaskState::Failed);
    assert_eq!(rt.error.as_deref(), Some("walltime exceeded"));
    assert_eq!(w.dfk.task(healthy).state, TaskState::Done);
    assert_eq!(w.workers[0].state, WorkerState::Idle, "worker survived");
    // The aborted kernels are gone from the device.
    assert_eq!(w.fleet.device(GpuId(0)).active_kernels(), 0);
    // Wall time: 2 × 5 s attempts + ~0.5 s healthy + startup, not 100 s.
    assert!(eng.now().as_secs_f64() < 20.0, "ended at {}", eng.now());
}

#[test]
fn orphaned_kernel_completion_cannot_resume_next_task() {
    // Regression guard for the tag-sequencing: a kernel launched by a
    // walltime-killed attempt completes later; the worker is already on
    // another task and must not be double-advanced.
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 52);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    for _ in 0..3 {
        submit(
            &mut w,
            &mut eng,
            AppCall::new("mixed", "gpu", |_| {
                Box::new(KernelSeq::new(
                    vec![gpu_kernel(108.0 * 3.0), gpu_kernel(54.0)],
                    SimDuration::from_millis(200),
                ))
            })
            .with_walltime(SimDuration::from_secs(2)),
        );
    }
    eng.run(&mut w);
    assert!(w.dfk.all_settled());
    // Every attempt exceeds 2 s (first kernel alone is 3 s), so all fail
    // by walltime — cleanly, with no stuck tasks or panics.
    assert_eq!(w.dfk.failed_count(), 3);
    assert_eq!(w.fleet.device(GpuId(0)).active_kernels(), 0);
}

// ---------------------------------------------------------------------
// Worker death at awkward lifecycle points
// ---------------------------------------------------------------------

/// Drive the engine in small steps until `cond` holds (or panic).
fn run_until_cond(
    w: &mut FaasWorld,
    eng: &mut Engine<FaasWorld>,
    limit_s: u64,
    mut cond: impl FnMut(&FaasWorld) -> bool,
) {
    let mut t = 0u64;
    while t < limit_s * 100 {
        t += 1;
        eng.run_until(w, SimTime::from_nanos(t * 10_000_000));
        if cond(w) {
            return;
        }
    }
    panic!("condition not reached within {limit_s}s");
}

#[test]
fn kill_during_cold_start_leaves_clean_state() {
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 23);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    run_until_cond(&mut w, &mut eng, 30, |w| {
        w.workers[0].state == WorkerState::ColdStart
    });
    kill_worker(&mut w, &mut eng, 0, "mid-cold-start kill");
    assert_eq!(w.workers[0].state, WorkerState::Dead);
    assert_eq!(w.fleet.device(GpuId(0)).context_count(), 0);
    assert_eq!(w.fleet.device(GpuId(0)).memory_used(), 0);
    // The stale cold-start completion timer must not resurrect it.
    eng.run(&mut w);
    assert_eq!(w.workers[0].state, WorkerState::Dead);
    // And the slot is fully reusable.
    respawn_worker(&mut w, &mut eng, 0, None).unwrap();
    let id = submit(
        &mut w,
        &mut eng,
        AppCall::new("after", "gpu", |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(1.0)], SimDuration::ZERO))
        }),
    );
    eng.run(&mut w);
    assert_eq!(w.dfk.task(id).state, TaskState::Done);
}

#[test]
fn kill_mid_model_load_keeps_cache_and_device_consistent() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    config.retries = 2;
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 29);
    w.weight_cache.set_enabled(true);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let model = ModelProfile {
        id: 7,
        bytes: 5 * GIB,
        shared_bytes: 4 * GIB,
    };
    let id = submit(
        &mut w,
        &mut eng,
        AppCall::new("infer", "gpu", move |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(1.0)], SimDuration::ZERO).with_model(model))
        }),
    );
    // Wait until the load is in flight: dispatched, not yet started.
    run_until_cond(&mut w, &mut eng, 60, |w| {
        w.dfk.task(id).dispatched.is_some() && w.dfk.task(id).started.is_none()
    });
    assert_eq!(w.workers[0].state, WorkerState::Busy);
    kill_worker(&mut w, &mut eng, 0, "mid-model-load kill");
    assert_eq!(w.workers[0].state, WorkerState::Dead);
    assert!(!w.workers[0].has_model(7), "partial load not recorded");
    assert_eq!(w.fleet.device(GpuId(0)).active_kernels(), 0);
    // The shared weights live in the device-wide cache and survive the
    // process; only the private context allocation is torn down.
    assert!(w.weight_cache.contains(0, 7));
    assert_eq!(
        w.fleet.device(GpuId(0)).cache_used(),
        4 * GIB,
        "pinned shared weights survive the process"
    );
    respawn_worker(&mut w, &mut eng, 0, None).unwrap();
    eng.run(&mut w);
    let t = w.dfk.task(id);
    assert_eq!(t.state, TaskState::Done, "retry completes: {:?}", t.error);
    assert!(w.workers[0].has_model(7));
    assert_eq!(w.dfk.reexecuted_attempts(), 1);
}

#[test]
fn walltime_expiry_racing_kernel_completion_is_clean() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    config.retries = 0;
    let mut w = FaasWorld::new(config, fleet_one(DeviceMode::TimeSharing), 31);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    // 216 SM-seconds on 108 SMs = exactly 2 s of device time; the
    // walltime limit expires at the very nanosecond the kernel would
    // complete. The walltime timer is scheduled first (at body start),
    // so FIFO ordering fires it first and the completion must be inert.
    let racing = submit(
        &mut w,
        &mut eng,
        AppCall::new("racing", "gpu", |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(216.0)], SimDuration::ZERO))
        })
        .with_walltime(SimDuration::from_secs(2)),
    );
    eng.run(&mut w);
    let t = w.dfk.task(racing);
    assert_eq!(t.state, TaskState::Failed);
    assert!(t.error.as_deref().unwrap().contains("walltime exceeded"));
    assert_eq!(w.fleet.device(GpuId(0)).active_kernels(), 0);
    assert_eq!(w.fleet.device(GpuId(0)).memory_used(), 0);
    assert_eq!(w.workers[0].state, WorkerState::Idle, "worker survives");
    // The worker is immediately reusable for a task that fits its limit.
    let ok = submit(
        &mut w,
        &mut eng,
        AppCall::new("fits", "gpu", |_| {
            Box::new(KernelSeq::new(vec![gpu_kernel(54.0)], SimDuration::ZERO))
        })
        .with_walltime(SimDuration::from_secs(2)),
    );
    eng.run(&mut w);
    assert_eq!(w.dfk.task(ok).state, TaskState::Done);
}
