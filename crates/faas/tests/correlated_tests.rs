//! Correlated fault domains (host reboot, rack power) and
//! checkpoint/restore of in-flight task state: domain blast radius,
//! staggered re-admission, fence extension over an existing quarantine,
//! torn-snapshot safety, and resume-from-checkpoint progress.

use parfait_faas::app::bodies::KernelSeq;
use parfait_faas::*;
use parfait_gpu::{DeviceMode, GpuFleet, GpuId, GpuSpec, KernelDesc};
use parfait_simcore::{Engine, SimDuration, SimTime};

fn fleet_n(n: u32, mode: DeviceMode) -> GpuFleet {
    let mut fleet = GpuFleet::new();
    for _ in 0..n {
        let g = fleet.add(GpuSpec::a100_80gb());
        let d = fleet.device_mut(g);
        if matches!(mode, DeviceMode::MpsDefault | DeviceMode::MpsPartitioned) {
            d.mps.start();
        }
        d.set_mode(mode).unwrap();
    }
    fleet
}

/// A checkpointable GPU task: `kernels` one-second kernels in sequence.
fn seq_call(app: &str, kernels: usize) -> AppCall {
    let app = app.to_string();
    AppCall::new(app, "gpu", move |_| {
        Box::new(KernelSeq::new(
            vec![KernelDesc::new("k", 108.0, 75_600, 75_600, 0.0); kernels],
            SimDuration::ZERO,
        ))
    })
}

/// A host reboot fences every GPU on the host atomically, kills all
/// resident workers, and re-admits the GPUs *staggered* after the host
/// is back — never before, never simultaneously.
#[test]
fn host_reboot_fences_all_host_gpus_with_staggered_readmission() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0), AcceleratorSpec::Gpu(1)],
    )]);
    config.retries = 3;
    // Default topology: 4 GPUs/host, so both GPUs live on host 0.
    config.recovery.host_reboot = SimDuration::from_secs(20);
    config.recovery.gpu_reenroll_stagger = SimDuration::from_secs(4);
    let mut w = FaasWorld::new(config, fleet_n(2, DeviceMode::TimeSharing), 42);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let ids: Vec<TaskId> = (0..4)
        .map(|i| submit(&mut w, &mut eng, seq_call(&format!("t{i}"), 60)))
        .collect();
    let at = SimTime::from_secs(10);
    install_faults(
        &mut w,
        &mut eng,
        &FaultPlan::one(at, FaultKind::HostReboot { host: 0 }),
    );

    eng.run_until(&mut w, SimTime::from_secs(11));
    assert!(gpu_quarantined(&w, GpuId(0)), "GPU 0 fenced");
    assert!(gpu_quarantined(&w, GpuId(1)), "GPU 1 fenced");
    assert!(
        w.workers.iter().all(|wk| wk.state == WorkerState::Dead),
        "every resident worker dies with the host: {:?}",
        w.workers.iter().map(|wk| wk.state).collect::<Vec<_>>()
    );
    assert_eq!(w.recovery.stats.domain_outages, 1);
    assert_eq!(w.recovery.stats.workers_lost, 2);
    assert_eq!(
        w.recovery.stats.crashes_detected, 2,
        "teardown on the blast-radius path is a platform-side discovery"
    );

    // Host back at 30 s; GPU k re-enrolls at 30 + 4·(k+1).
    eng.run_until(&mut w, SimTime::from_secs(35));
    assert!(!gpu_quarantined(&w, GpuId(0)), "GPU 0 re-enrolled at 34 s");
    assert!(gpu_quarantined(&w, GpuId(1)), "GPU 1 still fenced at 35 s");
    eng.run_until(&mut w, SimTime::from_secs(39));
    assert!(!gpu_quarantined(&w, GpuId(1)), "GPU 1 re-enrolled at 38 s");

    eng.run(&mut w);
    for id in &ids {
        assert_eq!(w.dfk.task(*id).state, TaskState::Done);
    }
    assert!(w.monitor.mttr_s().is_some(), "fence/readmit pairs close");
}

/// A rack power event takes out every host in the rack; hosts boot back
/// staggered, and each host's GPUs re-enroll only after their host.
#[test]
fn rack_power_fences_every_host_in_the_rack() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0), AcceleratorSpec::Gpu(1)],
    )]);
    config.retries = 3;
    // One GPU per host, two hosts per rack: the two GPUs are on
    // different hosts of the same rack.
    config.topology = Topology {
        gpus_per_host: 1,
        hosts_per_rack: 2,
    };
    config.recovery.rack_power_restore = SimDuration::from_secs(10);
    config.recovery.host_reboot = SimDuration::from_secs(20);
    config.recovery.host_boot_stagger = SimDuration::from_secs(5);
    config.recovery.gpu_reenroll_stagger = SimDuration::from_secs(2);
    let mut w = FaasWorld::new(config, fleet_n(2, DeviceMode::TimeSharing), 43);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let ids: Vec<TaskId> = (0..4)
        .map(|i| submit(&mut w, &mut eng, seq_call(&format!("t{i}"), 60)))
        .collect();
    install_faults(
        &mut w,
        &mut eng,
        &FaultPlan::one(SimTime::from_secs(10), FaultKind::RackPower { rack: 0 }),
    );

    eng.run_until(&mut w, SimTime::from_secs(11));
    assert!(gpu_quarantined(&w, GpuId(0)), "host 0's GPU fenced");
    assert!(gpu_quarantined(&w, GpuId(1)), "host 1's GPU fenced");
    assert_eq!(w.recovery.stats.domain_outages, 1, "one rack outage");
    assert_eq!(w.recovery.stats.workers_lost, 2);

    // Host 0 back at 10+10+20 = 40 s, GPU at 42 s; host 1 back at 45 s
    // (one boot stagger later), GPU at 47 s.
    eng.run_until(&mut w, SimTime::from_secs(43));
    assert!(!gpu_quarantined(&w, GpuId(0)), "host 0's GPU re-enrolled");
    assert!(gpu_quarantined(&w, GpuId(1)), "host 1 still booting");
    eng.run_until(&mut w, SimTime::from_secs(48));
    assert!(!gpu_quarantined(&w, GpuId(1)), "host 1's GPU re-enrolled");

    eng.run(&mut w);
    for id in &ids {
        assert_eq!(w.dfk.task(*id).state, TaskState::Done);
    }
}

/// A rack fault hitting an already-quarantined GPU *extends* the fence
/// to the domain's re-admission time — the earlier breaker cooldown
/// must not re-admit the device while its host is still down.
#[test]
fn rack_fault_extends_existing_quarantine() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    config.retries = 3;
    config.topology = Topology {
        gpus_per_host: 1,
        hosts_per_rack: 1,
    };
    config.recovery.breaker_cooldown = SimDuration::from_secs(10);
    config.recovery.rack_power_restore = SimDuration::from_secs(30);
    config.recovery.host_reboot = SimDuration::from_secs(20);
    config.recovery.gpu_reenroll_stagger = SimDuration::from_secs(2);
    let mut w = FaasWorld::new(config, fleet_n(1, DeviceMode::TimeSharing), 44);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(&mut w, &mut eng, seq_call("t", 60));

    // Quarantine at 5 s (cooldown would re-admit at 15 s), then the rack
    // dies at 6 s (re-admission at 6+30+20+2 = 58 s).
    eng.run_until(&mut w, SimTime::from_secs(5));
    quarantine_gpu(&mut w, &mut eng, GpuId(0), "test: breaker trip");
    assert!(gpu_quarantined(&w, GpuId(0)));
    eng.run_until(&mut w, SimTime::from_secs(6));
    install_faults(
        &mut w,
        &mut eng,
        &FaultPlan::one(SimTime::from_secs(6), FaultKind::RackPower { rack: 0 }),
    );

    // The original cooldown elapses with the rack still dark: the stale
    // re-admission event must not close the extended fence.
    eng.run_until(&mut w, SimTime::from_secs(20));
    assert!(
        gpu_quarantined(&w, GpuId(0)),
        "breaker cooldown must not re-admit a GPU whose rack is down"
    );
    eng.run_until(&mut w, SimTime::from_secs(57));
    assert!(gpu_quarantined(&w, GpuId(0)), "still fenced just before");
    eng.run_until(&mut w, SimTime::from_secs(59));
    assert!(!gpu_quarantined(&w, GpuId(0)), "re-admitted at 58 s");
    assert_eq!(
        w.recovery.stats.quarantines, 1,
        "extension is not a second quarantine"
    );

    eng.run(&mut w);
    assert_eq!(w.dfk.task(id).state, TaskState::Done);
}

/// A worker killed mid-checkpoint-write never publishes the snapshot:
/// the commit is epoch-guarded, so the restart re-executes from scratch
/// (or from the previous committed snapshot) — never from a torn one.
#[test]
fn checkpoint_write_torn_by_host_reboot_is_not_restored() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )]);
    config.retries = 3;
    config.checkpoint = CheckpointPolicy::every(SimDuration::from_secs(10));
    config.checkpoint.jitter = 0.0;
    // A long writeback window so the reboot lands mid-write: the timer
    // fires at 10 s, the snapshot is captured at the next step boundary
    // and commits ~5 s later — the reboot at 12 s interrupts it.
    config.checkpoint.overhead = SimDuration::from_secs(5);
    config.recovery.host_reboot = SimDuration::from_secs(10);
    config.recovery.gpu_reenroll_stagger = SimDuration::from_secs(1);
    let mut w = FaasWorld::new(config, fleet_n(1, DeviceMode::TimeSharing), 45);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(&mut w, &mut eng, seq_call("t", 30));
    install_faults(
        &mut w,
        &mut eng,
        &FaultPlan::one(SimTime::from_secs(12), FaultKind::HostReboot { host: 0 }),
    );

    eng.run_until(&mut w, SimTime::from_secs(18));
    assert_eq!(
        w.recovery.stats.checkpoints_committed, 0,
        "the in-flight write died with the worker"
    );
    assert!(w.checkpoints.is_empty(), "no torn snapshot in the store");

    eng.run(&mut w);
    assert_eq!(w.dfk.task(id).state, TaskState::Done);
    assert_eq!(
        w.recovery.stats.tasks_resumed, 0,
        "restart re-executes from scratch, not from a torn snapshot"
    );
    assert!(!w
        .monitor
        .fault_records
        .iter()
        .any(|r| r.kind == "checkpoint-restore"));
}

/// Committed checkpoints survive the worker and the whole host: after a
/// reboot the retried attempt restores the snapshot and fast-forwards
/// past the completed steps instead of re-executing them, finishing
/// strictly earlier than the same scenario without checkpointing.
#[test]
fn resume_from_checkpoint_skips_completed_work() {
    fn run_once(ckpt: bool) -> (FaasWorld, TaskId, Engine<FaasWorld>) {
        let mut config = Config::new(vec![ExecutorConfig::gpu(
            "gpu",
            vec![AcceleratorSpec::Gpu(0)],
        )]);
        config.retries = 3;
        if ckpt {
            config.checkpoint = CheckpointPolicy::every(SimDuration::from_secs(5));
            config.checkpoint.jitter = 0.0;
        }
        config.recovery.host_reboot = SimDuration::from_secs(10);
        config.recovery.gpu_reenroll_stagger = SimDuration::from_secs(1);
        let mut w = FaasWorld::new(config, fleet_n(1, DeviceMode::TimeSharing), 46);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        let id = submit(&mut w, &mut eng, seq_call("t", 30));
        install_faults(
            &mut w,
            &mut eng,
            &FaultPlan::one(SimTime::from_secs(22), FaultKind::HostReboot { host: 0 }),
        );
        eng.run(&mut w);
        (w, id, eng)
    }

    let (w, id, _eng) = run_once(true);
    assert_eq!(w.dfk.task(id).state, TaskState::Done);
    assert!(
        w.recovery.stats.checkpoints_committed >= 2,
        "{:?}",
        w.recovery.stats
    );
    assert_eq!(w.recovery.stats.tasks_resumed, 1, "{:?}", w.recovery.stats);
    assert!(w
        .monitor
        .fault_records
        .iter()
        .any(|r| r.kind == "checkpoint-restore"));
    let done_ckpt = w.dfk.task(id).finished.expect("finished");

    let (w_none, id_none, _eng) = run_once(false);
    assert_eq!(w_none.dfk.task(id_none).state, TaskState::Done);
    assert_eq!(w_none.recovery.stats.tasks_resumed, 0);
    let done_none = w_none.dfk.task(id_none).finished.expect("finished");
    assert!(
        done_ckpt < done_none,
        "resume must beat full re-execution: ckpt={done_ckpt:?} none={done_none:?}"
    );
    // The snapshot held ~20 s of the 30 s body; the saving must be of
    // that order, not epsilon.
    let saved = done_none.duration_since(done_ckpt).as_secs_f64();
    assert!(saved > 10.0, "saved only {saved}s");

    // Settled tasks leave no checkpoint behind.
    assert!(w.checkpoints.is_empty(), "store drained after completion");
}

/// PR-4 pin for the `crashes_detected` counter: the MPS blast-radius
/// teardown is a platform-side *discovery* of each resident's death and
/// must count every one — previously only watchdog timeouts counted and
/// MPS runs reported `crashes_detected: 0` despite losing four workers.
#[test]
fn blast_radius_teardown_counts_as_detected_crashes() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![
            AcceleratorSpec::Gpu(0),
            AcceleratorSpec::Gpu(0),
            AcceleratorSpec::Gpu(0),
        ],
    )]);
    config.retries = 3;
    let mut w = FaasWorld::new(config, fleet_n(1, DeviceMode::MpsDefault), 47);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    for i in 0..3 {
        submit(&mut w, &mut eng, seq_call(&format!("t{i}"), 10));
    }
    install_faults(
        &mut w,
        &mut eng,
        &FaultPlan::one(
            SimTime::from_secs(5),
            FaultKind::GpuClientFault { worker: 0 },
        ),
    );
    eng.run_until(&mut w, SimTime::from_secs(6));
    assert_eq!(w.recovery.stats.workers_lost, 3);
    assert_eq!(
        w.recovery.stats.crashes_detected, 3,
        "every blast-radius death is a detected crash: {:?}",
        w.recovery.stats
    );
    eng.run(&mut w);
}
