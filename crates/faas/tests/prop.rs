//! Property-based tests for the FaaS runtime: arbitrary task DAGs settle,
//! dependencies are honoured, and the worker pool conserves tasks.

use parfait_faas::app::bodies::CpuBurn;
use parfait_faas::*;
use parfait_gpu::host::GpuFleet;
use parfait_simcore::{Engine, SimDuration};
use proptest::prelude::*;

/// A randomly-shaped DAG workload: task `i` may depend on any subset of
/// earlier tasks (encoded as a bitmask over the previous ≤8 tasks).
#[derive(Debug, Clone)]
struct DagSpec {
    durations_ms: Vec<u64>,
    dep_masks: Vec<u8>,
}

fn arb_dag() -> impl Strategy<Value = DagSpec> {
    (1usize..25).prop_flat_map(|n| {
        (
            proptest::collection::vec(10u64..2_000, n),
            proptest::collection::vec(any::<u8>(), n),
        )
            .prop_map(|(durations_ms, dep_masks)| DagSpec {
                durations_ms,
                dep_masks,
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any DAG on any worker count: everything settles, nothing fails,
    /// and every task starts only after all of its dependencies finished.
    #[test]
    fn dag_execution_respects_dependencies(dag in arb_dag(), workers in 1usize..6, seed in any::<u64>()) {
        let config = Config::new(vec![ExecutorConfig::cpu("cpu", workers)]);
        let mut w = FaasWorld::new(config, GpuFleet::new(), seed);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        let mut ids: Vec<TaskId> = Vec::new();
        for (i, (&ms, &mask)) in dag.durations_ms.iter().zip(&dag.dep_masks).enumerate() {
            let deps: Vec<TaskId> = (0..8)
                .filter(|b| mask & (1 << b) != 0)
                .filter_map(|b| i.checked_sub(b + 1).map(|j| ids[j]))
                .collect();
            let call = AppCall::new("t", "cpu", move |_| {
                Box::new(CpuBurn::new(SimDuration::from_millis(ms)))
            })
            .after(&deps);
            ids.push(submit(&mut w, &mut eng, call));
        }
        eng.run(&mut w);
        prop_assert!(w.dfk.all_settled());
        prop_assert_eq!(w.dfk.done_count() as usize, dag.durations_ms.len());
        prop_assert_eq!(w.dfk.failed_count(), 0);
        for (i, &id) in ids.iter().enumerate() {
            let t = w.dfk.task(id);
            let started = t.started.unwrap();
            for dep in &t.depends_on {
                let df = w.dfk.task(*dep).finished.unwrap();
                prop_assert!(
                    started >= df,
                    "task {i} started {} before dep finished {}",
                    started,
                    df
                );
            }
        }
    }

    /// With one worker, total busy time equals the sum of task durations
    /// (no work lost or duplicated).
    #[test]
    fn single_worker_serializes_exactly(durations_ms in proptest::collection::vec(10u64..1_000, 1..20)) {
        let config = Config::new(vec![ExecutorConfig::cpu("cpu", 1)]);
        let mut w = FaasWorld::new(config, GpuFleet::new(), 1);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        let ids: Vec<TaskId> = durations_ms
            .iter()
            .map(|&ms| {
                submit(
                    &mut w,
                    &mut eng,
                    AppCall::new("t", "cpu", move |_| {
                        Box::new(CpuBurn::new(SimDuration::from_millis(ms)))
                    }),
                )
            })
            .collect();
        eng.run(&mut w);
        let first_start = ids.iter().map(|i| w.dfk.task(*i).started.unwrap()).min().unwrap();
        let last_end = ids.iter().map(|i| w.dfk.task(*i).finished.unwrap()).max().unwrap();
        let span_ms = last_end.duration_since(first_start).as_millis_f64();
        let total_ms: u64 = durations_ms.iter().sum();
        // Each dispatch adds one wire-serialization latency (< 2 ms for
        // the default small payload); no work may be lost or duplicated.
        let n = durations_ms.len() as f64;
        prop_assert!(
            span_ms >= total_ms as f64 - 1.0 && span_ms <= total_ms as f64 + n * 2.0,
            "span {span_ms} vs total {total_ms} (+ up to {n}×2 ms dispatch)"
        );
    }

    /// Deterministic replay: the same seed yields the identical task
    /// table timestamps.
    #[test]
    fn identical_seeds_identical_schedules(seed in any::<u64>()) {
        let run = |seed: u64| -> Vec<(u64, u64)> {
            let config = Config::new(vec![ExecutorConfig::cpu("cpu", 3)]);
            let mut w = FaasWorld::new(config, GpuFleet::new(), seed);
            let mut eng = Engine::new();
            boot(&mut w, &mut eng);
            for i in 0..10u64 {
                submit(
                    &mut w,
                    &mut eng,
                    AppCall::new("t", "cpu", move |rng| {
                        let ms = 50 + rng.below(500) + i;
                        Box::new(CpuBurn::new(SimDuration::from_millis(ms)))
                    }),
                );
            }
            eng.run(&mut w);
            w.dfk
                .tasks()
                .iter()
                .map(|t| {
                    (
                        t.started.unwrap().as_nanos(),
                        t.finished.unwrap().as_nanos(),
                    )
                })
                .collect()
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
