//! Overload protection: bounded queues with shed policies, deadline-aware
//! admission, retry budgets under a correlated outage, straggler hedging
//! with exactly-once completion (including the primary-crash race and the
//! duplicate-completion race), and the brownout degraded tier.

use parfait_faas::app::bodies::KernelSeq;
use parfait_faas::*;
use parfait_gpu::{DeviceMode, GpuFleet, GpuSpec, KernelDesc};
use parfait_simcore::{Engine, SimDuration, SimTime};

fn fleet_n(n: u32, mode: DeviceMode) -> GpuFleet {
    let mut fleet = GpuFleet::new();
    for _ in 0..n {
        let g = fleet.add(GpuSpec::a100_80gb());
        let d = fleet.device_mut(g);
        if matches!(mode, DeviceMode::MpsDefault | DeviceMode::MpsPartitioned) {
            d.mps.start();
        }
        d.set_mode(mode).unwrap();
    }
    fleet
}

/// A checkpointable GPU task: `kernels` one-second (full-device) kernels.
fn seq_call(app: &str, kernels: usize) -> AppCall {
    let app = app.to_string();
    AppCall::new(app, "gpu", move |_| {
        Box::new(KernelSeq::new(
            vec![KernelDesc::new("k", 108.0, 75_600, 75_600, 0.0); kernels],
            SimDuration::ZERO,
        ))
    })
}

fn one_worker_config() -> Config {
    Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0)],
    )])
}

/// Under `Reject`, a full queue refuses the newcomer; admitted work is
/// untouched and still completes.
#[test]
fn reject_policy_refuses_past_queue_cap() {
    let mut config = one_worker_config();
    config.overload.queue_cap = Some(2);
    config.overload.shed_policy = ShedPolicy::Reject;
    let mut w = FaasWorld::new(config, fleet_n(1, DeviceMode::TimeSharing), 7);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    // All five land before the worker finishes cold start, so the queue
    // only drains afterwards: 2 admitted, 3 turned away at the door.
    let ids: Vec<TaskId> = (0..5)
        .map(|i| submit(&mut w, &mut eng, seq_call(&format!("t{i}"), 3)))
        .collect();
    assert_eq!(w.overload.stats.tasks_rejected, 3);
    assert_eq!(w.overload.stats.tasks_shed, 0);
    eng.run(&mut w);
    assert_eq!(w.dfk.done_count(), 2);
    assert_eq!(w.dfk.failed_count(), 3);
    for id in &ids[2..] {
        let t = w.dfk.task(*id);
        assert_eq!(t.state, TaskState::Failed);
        assert!(
            t.error.as_deref().unwrap().contains("queue full"),
            "refusal reason recorded: {:?}",
            t.error
        );
        assert_eq!(t.attempts, 0, "rejected work never dispatched");
    }
}

/// `ShedOldest` evicts the head of the queue to admit newer work.
#[test]
fn shed_oldest_evicts_head_of_queue() {
    let mut config = one_worker_config();
    config.overload.queue_cap = Some(2);
    config.overload.shed_policy = ShedPolicy::ShedOldest;
    let mut w = FaasWorld::new(config, fleet_n(1, DeviceMode::TimeSharing), 8);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let ids: Vec<TaskId> = (0..5)
        .map(|i| submit(&mut w, &mut eng, seq_call(&format!("t{i}"), 3)))
        .collect();
    // t0,t1 fill the cap; t2 sheds t0, t3 sheds t1, t4 sheds t2.
    assert_eq!(w.overload.stats.tasks_shed, 3);
    assert_eq!(w.overload.stats.tasks_rejected, 0);
    eng.run(&mut w);
    for id in &ids[..3] {
        assert_eq!(w.dfk.task(*id).state, TaskState::Failed);
        assert!(w.dfk.task(*id).error.as_deref().unwrap().contains("oldest"));
    }
    for id in &ids[3..] {
        assert_eq!(w.dfk.task(*id).state, TaskState::Done);
    }
}

/// `ShedLowestPriority` victimizes the lowest-priority task — the
/// newcomer itself when it ranks lowest, a queued task otherwise.
#[test]
fn shed_lowest_priority_picks_min_priority_victim() {
    let mut config = one_worker_config();
    config.overload.queue_cap = Some(2);
    config.overload.shed_policy = ShedPolicy::ShedLowestPriority;
    let mut w = FaasWorld::new(config, fleet_n(1, DeviceMode::TimeSharing), 9);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let t0 = submit(&mut w, &mut eng, seq_call("t0", 3).with_priority(5));
    let t1 = submit(&mut w, &mut eng, seq_call("t1", 3).with_priority(5));
    // Lowest-ranked newcomer: rejected at the door, queue untouched.
    let t2 = submit(&mut w, &mut eng, seq_call("t2", 3).with_priority(1));
    assert_eq!(w.overload.stats.tasks_rejected, 1);
    assert_eq!(w.dfk.task(t2).state, TaskState::Failed);
    // High-priority newcomer: one of the queued pri-5 tasks is shed.
    let t3 = submit(&mut w, &mut eng, seq_call("t3", 3).with_priority(10));
    assert_eq!(w.overload.stats.tasks_shed, 1);
    eng.run(&mut w);
    assert_eq!(w.dfk.task(t3).state, TaskState::Done);
    let survivors = [t0, t1]
        .iter()
        .filter(|id| w.dfk.task(**id).state == TaskState::Done)
        .count();
    assert_eq!(survivors, 1, "exactly one pri-5 task was shed");
    assert_eq!(w.dfk.done_count(), 2);
    assert_eq!(w.dfk.failed_count(), 2);
}

/// Deadline-aware admission refuses work whose estimated queue wait plus
/// service time already exceeds its deadline at submit.
#[test]
fn deadline_admission_rejects_unattainable_work() {
    let mut config = one_worker_config();
    config.overload.deadline_admission = true;
    let mut w = FaasWorld::new(config, fleet_n(1, DeviceMode::TimeSharing), 10);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let est = SimDuration::from_secs(10);
    let t0 = submit(
        &mut w,
        &mut eng,
        seq_call("t0", 10)
            .with_est_service(est)
            .with_deadline(SimDuration::from_secs(100)),
    );
    // One 10 s task queued, one worker: estimated wait 10 s + service
    // 10 s = 20 s > 15 s deadline.
    let t1 = submit(
        &mut w,
        &mut eng,
        seq_call("t1", 10)
            .with_est_service(est)
            .with_deadline(SimDuration::from_secs(15)),
    );
    // Same position but a feasible deadline: admitted.
    let t2 = submit(
        &mut w,
        &mut eng,
        seq_call("t2", 10)
            .with_est_service(est)
            .with_deadline(SimDuration::from_secs(120)),
    );
    assert_eq!(w.overload.stats.tasks_rejected, 1);
    assert_eq!(w.dfk.task(t1).state, TaskState::Failed);
    assert!(w
        .dfk
        .task(t1)
        .error
        .as_deref()
        .unwrap()
        .contains("deadline"));
    eng.run(&mut w);
    assert_eq!(w.dfk.task(t0).state, TaskState::Done);
    assert_eq!(w.dfk.task(t2).state, TaskState::Done);
    // The admission refusal is visible in the monitoring stream.
    assert!(w
        .monitor
        .fault_records
        .iter()
        .any(|r| r.kind == "admission-reject"));
}

fn hedge_world(seed: u64, hedge: Option<HedgePolicy>) -> FaasWorld {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0), AcceleratorSpec::Gpu(1)],
    )]);
    config.retries = 3;
    config.overload.hedge = hedge;
    FaasWorld::new(config, fleet_n(2, DeviceMode::TimeSharing), seed)
}

/// Slow the GPU running `task`'s primary attempt by 4× for a long time.
fn slow_primary_gpu(w: &mut FaasWorld, eng: &mut Engine<FaasWorld>, task: TaskId) -> u32 {
    let wid = w.dfk.task(task).worker.expect("dispatched");
    let (gpu, _) = w.workers[wid].gpu.expect("gpu worker");
    inject_fault(
        w,
        eng,
        &FaultKind::Straggler {
            gpu: gpu.0,
            factor: 0.25,
            duration: SimDuration::from_secs(500),
        },
    );
    gpu.0
}

/// A hedge launched against a straggling primary wins on the healthy
/// GPU, the loser is cancelled, and the task completes exactly once —
/// faster than the same task without hedging.
#[test]
fn hedge_beats_straggler_and_counts_exactly_once() {
    let run_one = |hedge: Option<HedgePolicy>| {
        let mut w = hedge_world(21, hedge);
        let mut eng = Engine::new();
        boot(&mut w, &mut eng);
        let id = submit(
            &mut w,
            &mut eng,
            seq_call("svc", 10).with_est_service(SimDuration::from_secs(10)),
        );
        // Let the primary start, then throttle its GPU to 1/4 speed.
        eng.run_until(&mut w, SimTime::from_secs(5));
        assert_eq!(w.dfk.task(id).state, TaskState::Running);
        slow_primary_gpu(&mut w, &mut eng, id);
        eng.run(&mut w);
        let t = w.dfk.task(id);
        assert_eq!(t.state, TaskState::Done);
        let latency = t
            .finished
            .unwrap()
            .duration_since(t.submitted)
            .as_secs_f64();
        (w, latency)
    };

    let (slow_w, unhedged) = run_one(None);
    assert_eq!(slow_w.overload.stats.hedges_launched, 0);

    let (w, hedged) = run_one(Some(HedgePolicy {
        trigger_factor: 1.2,
        jitter: 0.0,
        cancel_latency: SimDuration::from_millis(50),
    }));
    assert_eq!(w.overload.stats.hedges_launched, 1);
    assert_eq!(w.overload.stats.hedges_won, 1, "duplicate finished first");
    assert_eq!(w.overload.stats.hedges_wasted, 0);
    assert_eq!(w.dfk.done_count(), 1);
    assert_eq!(w.dfk.failed_count(), 0);
    assert_eq!(
        w.workers.iter().map(|wk| wk.tasks_completed).sum::<u64>(),
        1,
        "exactly one attempt counted as a completion"
    );
    assert_eq!(w.dfk.task(TaskId(0)).attempts, 1, "hedge is not an attempt");
    // The loser's cancellation is speculation cost, not failure loss.
    assert_eq!(w.recovery.stats.work_lost_s, 0.0);
    assert!(
        hedged < 0.75 * unhedged,
        "hedging beat the straggler: {hedged:.1}s vs {unhedged:.1}s"
    );
}

/// Duplicate completion is idempotent: with cancellation effectively
/// disabled, the straggling loser also runs to completion, and the
/// second `Ok` must not double-count anything. The hedge restores from
/// the primary's committed checkpoint instead of cold-starting.
#[test]
fn hedge_duplicate_completion_is_idempotent() {
    let mut w = hedge_world(
        22,
        Some(HedgePolicy {
            trigger_factor: 1.5,
            jitter: 0.0,
            // So large the loser finishes long before the cancel arrives:
            // both attempts complete, exercising the duplicate-Ok path.
            cancel_latency: SimDuration::from_secs(10_000),
        }),
    );
    w.config.checkpoint = CheckpointPolicy {
        interval: Some(SimDuration::from_secs(2)),
        overhead: SimDuration::from_millis(200),
        jitter: 0.0,
    };
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(
        &mut w,
        &mut eng,
        seq_call("svc", 10).with_est_service(SimDuration::from_secs(10)),
    );
    eng.run_until(&mut w, SimTime::from_secs(5));
    assert_eq!(w.dfk.task(id).state, TaskState::Running);
    slow_primary_gpu(&mut w, &mut eng, id);
    eng.run(&mut w);

    assert_eq!(w.overload.stats.hedges_launched, 1);
    assert_eq!(w.overload.stats.hedges_won, 1);
    assert_eq!(w.dfk.task(id).state, TaskState::Done);
    assert_eq!(w.dfk.done_count(), 1, "one task, one completion");
    assert_eq!(
        w.workers.iter().map(|wk| wk.tasks_completed).sum::<u64>(),
        1,
        "the loser's late Ok did not count a second completion"
    );
    assert_eq!(
        w.recovery.stats.tasks_resumed, 1,
        "the hedge resumed from the committed checkpoint exactly once"
    );
    assert!(w.recovery.stats.checkpoints_committed >= 1);
    assert!(
        w.checkpoints.is_empty(),
        "a loser's post-settlement commit must not leak a snapshot"
    );
    assert_eq!(w.recovery.stats.work_lost_s, 0.0);
}

/// The primary-crash race has a defined winner: a worker dying between
/// hedge launch and first completion leaves the duplicate as sole owner;
/// the task completes exactly once with no retry scheduled.
#[test]
fn hedge_survives_primary_crash_with_defined_winner() {
    let mut w = hedge_world(
        23,
        Some(HedgePolicy {
            trigger_factor: 1.2,
            jitter: 0.0,
            cancel_latency: SimDuration::from_millis(50),
        }),
    );
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let id = submit(
        &mut w,
        &mut eng,
        seq_call("svc", 10).with_est_service(SimDuration::from_secs(10)),
    );
    eng.run_until(&mut w, SimTime::from_secs(5));
    assert_eq!(w.dfk.task(id).state, TaskState::Running);
    slow_primary_gpu(&mut w, &mut eng, id);
    // Hedge fires 12 s after body start; kill the primary in the window
    // between launch and the duplicate's completion.
    eng.run_until(&mut w, SimTime::from_secs(18));
    assert_eq!(w.overload.stats.hedges_launched, 1);
    assert!(w.overload.is_hedged(id), "pair still racing at 18 s");
    let primary = w.dfk.task(id).worker.expect("primary recorded");
    kill_worker(&mut w, &mut eng, primary, "host lost");
    assert!(
        !w.overload.is_hedged(id),
        "the crash dissolved the pair; the duplicate is sole owner"
    );
    assert_eq!(
        w.dfk.task(id).state,
        TaskState::Running,
        "task stays Running on the partner, no DFK failure"
    );
    eng.run(&mut w);
    assert_eq!(w.dfk.task(id).state, TaskState::Done);
    assert_eq!(w.dfk.done_count(), 1);
    assert_eq!(w.dfk.task(id).attempts, 1);
    assert_eq!(
        w.recovery.stats.retries_scheduled, 0,
        "no retry for the crash"
    );
    assert_eq!(
        w.workers.iter().map(|wk| wk.tasks_completed).sum::<u64>(),
        1
    );
    // Neither side won a race that the crash already decided.
    assert_eq!(w.overload.stats.hedges_won, 0);
    assert_eq!(w.overload.stats.hedges_wasted, 0);
}

/// A correlated host-reboot outage fails every in-flight task at once;
/// the retry budget caps the resulting retry traffic at the configured
/// fraction and recovery still converges once the domain re-admits.
#[test]
fn retry_budget_bounds_retry_storm_during_host_outage() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::Gpu(0), AcceleratorSpec::Gpu(1)],
    )]);
    config.retries = 5;
    // Default topology: both GPUs on host 0.
    config.recovery.host_reboot = SimDuration::from_secs(20);
    config.recovery.gpu_reenroll_stagger = SimDuration::from_secs(2);
    let budget = RetryBudget {
        ratio: 0.1,
        burst: 1.0,
    };
    config.overload.retry_budget = Some(budget);
    let mut w = FaasWorld::new(config, fleet_n(2, DeviceMode::TimeSharing), 24);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    // One shared service: all six tasks draw on the same app bucket.
    let n = 6;
    for _ in 0..n {
        submit(&mut w, &mut eng, seq_call("svc", 60));
    }
    install_faults(
        &mut w,
        &mut eng,
        &FaultPlan::one(SimTime::from_secs(10), FaultKind::HostReboot { host: 0 }),
    );
    eng.run_until(&mut w, SimTime::from_secs(11));
    // Two in-flight tasks died with the host: one retry fit the budget,
    // the other was suppressed and failed permanently.
    assert_eq!(w.recovery.stats.retries_scheduled, 1);
    assert_eq!(w.overload.stats.retries_suppressed, 1);
    assert_eq!(w.overload.retry_tokens("svc"), Some(0.0));
    assert!(
        (w.recovery.stats.retries_scheduled as f64) <= budget.burst + budget.ratio * n as f64,
        "retry traffic stays within the budget fraction"
    );
    assert!(w
        .monitor
        .fault_records
        .iter()
        .any(|r| r.kind == "retry-suppressed"));

    eng.run(&mut w);
    assert!(w.dfk.all_settled(), "recovery converged after re-admission");
    assert_eq!(w.dfk.done_count(), n - 1);
    assert_eq!(w.dfk.failed_count(), 1);
}

/// Sustained pressure engages the brownout tier (small MPS shares), the
/// extra capacity drains the backlog, and release retires the tier and
/// accounts the engaged time.
#[test]
fn brownout_engages_degraded_tier_and_releases() {
    let mut config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![
            AcceleratorSpec::GpuPercentage(0, 40),
            AcceleratorSpec::GpuPercentage(0, 40),
        ],
    )]);
    config.retries = 3;
    let mut w = FaasWorld::new(config, fleet_n(1, DeviceMode::MpsPartitioned), 25);
    let mut eng = Engine::new();
    boot(&mut w, &mut eng);
    let ids: Vec<TaskId> = (0..12)
        .map(|i| submit(&mut w, &mut eng, seq_call(&format!("t{i}"), 4)))
        .collect();
    let baseline_workers = w.workers.len();
    enable_brownout(
        &mut w,
        &mut eng,
        0,
        BrownoutPolicy {
            period: SimDuration::from_secs(5),
            pressure_high: 2.0,
            pressure_low: 0.5,
            engage_after: 2,
            release_after: 2,
            degraded: vec![
                AcceleratorSpec::GpuPercentage(0, 10),
                AcceleratorSpec::GpuPercentage(0, 10),
            ],
        },
    );
    eng.run(&mut w);
    for id in &ids {
        assert_eq!(w.dfk.task(*id).state, TaskState::Done);
    }
    assert!(
        w.overload.stats.brownout_seconds > 0.0,
        "tier engaged under pressure and the engagement was accounted"
    );
    assert!(w
        .monitor
        .fault_records
        .iter()
        .any(|r| r.kind == "brownout-engaged"));
    assert!(w
        .monitor
        .fault_records
        .iter()
        .any(|r| r.kind == "brownout-released"));
    assert_eq!(
        w.workers.len(),
        baseline_workers + 2,
        "the degraded tier was spawned"
    );
    assert!(
        w.workers[baseline_workers..]
            .iter()
            .all(|wk| wk.state == WorkerState::Dead),
        "release drained every tier worker"
    );
    // Queue-time percentiles over the drained backlog are well-formed.
    let p = time_in_queue_percentiles(&w.dfk, 0).unwrap();
    assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
    assert!(p.p99 > 0.0, "a 12-deep backlog queued somebody");
}
