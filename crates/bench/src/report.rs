//! Text-table and CSV rendering for the `repro` binary.

/// Render rows as an aligned text table.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let hdr: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  "),
    );
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r, &widths));
        out.push('\n');
    }
    out
}

/// Render rows as CSV (naive quoting: cells containing commas are
/// wrapped, embedded quotes doubled).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn cell(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| cell(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for r in rows {
        out.push_str(&r.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = text_table(
            &["mode", "value"],
            &[
                vec!["mps".into(), "1.5".into()],
                vec!["time-sharing".into(), "42".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("mode"));
        assert!(lines[2].starts_with("mps"));
        assert!(lines[3].starts_with("time-sharing"));
    }

    #[test]
    fn csv_quoting() {
        let c = csv(&["a", "b"], &[vec!["x,y".into(), "q\"q".into()]]);
        assert!(c.contains("\"x,y\""));
        assert!(c.contains("\"q\"\"q\""));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(pct(0.4567), "45.7%");
    }
}
