//! `repro lint` — run the determinism static-analysis pass in-process
//! and write `BENCH_lint.json`: the rule catalog, the stream-id
//! registry, per-crate panic/unwrap budgets vs the checked-in baseline,
//! and any diagnostics. The artifact makes lint posture reviewable next
//! to the performance artifacts it protects: a BENCH number is only
//! comparable across runs because these rules hold.

use parfait_lint::{
    find_workspace_root, rules::CATALOG, run_workspace_opts, Baseline, LintOptions,
};
use serde::Serialize;
use std::path::Path;
use std::time::Instant;

/// One catalog row.
#[derive(Debug, Clone, Serialize)]
pub struct RuleRow {
    /// Catalog code, e.g. `D1`.
    pub code: String,
    /// Rule id, e.g. `hash-order`.
    pub id: String,
    /// One-line summary.
    pub summary: String,
}

/// One registered RNG stream.
#[derive(Debug, Clone, Serialize)]
pub struct StreamRow {
    /// Constant name in `simcore::streams`.
    pub name: String,
    /// Stream id.
    pub id: u64,
}

/// One crate's D5 budget status.
#[derive(Debug, Clone, Serialize)]
pub struct BudgetRow {
    /// Crate name.
    pub crate_name: String,
    /// Current non-test `panic!` count.
    pub panics: u64,
    /// Current non-test `.unwrap()` count.
    pub unwraps: u64,
    /// Baseline panic budget.
    pub base_panics: u64,
    /// Baseline unwrap budget.
    pub base_unwraps: u64,
    /// Over budget (fails `--deny`).
    pub over: bool,
}

/// Wall time one lint pass spent in one phase, across all files.
#[derive(Debug, Clone, Serialize)]
pub struct RuleTimingRow {
    /// Pass key: `lex`, `scope`, or a rule code (`D1`..`F3`).
    pub pass: String,
    /// Accumulated nanoseconds.
    pub nanos: u64,
}

/// The full artifact written to `BENCH_lint.json`.
#[derive(Debug, Clone, Serialize)]
pub struct LintReport {
    /// Files scanned.
    pub files_scanned: usize,
    /// Whether the workspace passes `--deny` semantics.
    pub clean: bool,
    /// Rendered diagnostics (`path:line: [CODE id] msg`).
    pub diagnostics: Vec<String>,
    /// The rule catalog.
    pub rules: Vec<RuleRow>,
    /// The parsed stream registry.
    pub streams: Vec<StreamRow>,
    /// Per-crate budget status.
    pub budgets: Vec<BudgetRow>,
    /// Per-pass wall time. The lint crate is banned from wall clocks by
    /// its own D2 rule, so the clock is injected from here.
    pub rule_timings: Vec<RuleTimingRow>,
}

/// Run the lint over the workspace containing `start` and build the report.
pub fn measure(start: &Path) -> std::io::Result<LintReport> {
    let root = find_workspace_root(start).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::NotFound, "no workspace root found")
    })?;
    let t0 = Instant::now();
    let clock = move || t0.elapsed().as_nanos() as u64;
    let report = run_workspace_opts(
        &root,
        &LintOptions {
            clock: Some(&clock),
        },
    )?;
    let baseline = Baseline::load(&root)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    let budgets: Vec<BudgetRow> = baseline
        .check(&report.budgets)
        .into_iter()
        .map(|c| BudgetRow {
            over: c.over(),
            crate_name: c.crate_name,
            panics: c.panics,
            unwraps: c.unwraps,
            base_panics: c.base_panics,
            base_unwraps: c.base_unwraps,
        })
        .collect();
    let clean = report.diagnostics.is_empty() && budgets.iter().all(|b| !b.over);
    Ok(LintReport {
        files_scanned: report.files_scanned,
        clean,
        diagnostics: report.diagnostics.iter().map(|d| d.to_string()).collect(),
        rules: CATALOG
            .iter()
            .map(|r| RuleRow {
                code: r.code.to_string(),
                id: r.id.to_string(),
                summary: r.summary.to_string(),
            })
            .collect(),
        streams: report
            .registry
            .iter()
            .map(|(name, id)| StreamRow {
                name: name.clone(),
                id: *id,
            })
            .collect(),
        budgets,
        rule_timings: report
            .rule_nanos
            .iter()
            .map(|(pass, nanos)| RuleTimingRow {
                pass: pass.clone(),
                nanos: *nanos,
            })
            .collect(),
    })
}

/// Run the lint and write `BENCH_lint.json` into `dir`.
pub fn run_and_write(dir: &Path) -> std::io::Result<LintReport> {
    let report = measure(dir)?;
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(dir.join("BENCH_lint.json"), json + "\n")?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_report_is_clean_and_complete() {
        let r = measure(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("lint runs");
        assert!(r.clean, "diagnostics: {:?}", r.diagnostics);
        assert!(r.rules.len() >= 5);
        assert!(r.streams.len() >= 6);
        assert!(!r.budgets.is_empty());
        // Per-rule timings must be present (the CI artifact check keys
        // on them) and cover the structural passes.
        assert!(!r.rule_timings.is_empty());
        for pass in ["lex", "scope", "F1", "F2", "F3"] {
            assert!(
                r.rule_timings.iter().any(|t| t.pass == pass),
                "missing timing for pass {pass}: {:?}",
                r.rule_timings
            );
        }
    }
}
