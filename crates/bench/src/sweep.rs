//! Parallel multi-seed sweeps.
//!
//! A single simulation is deterministic and single-threaded by design;
//! statistical confidence comes from running *independent replicas* under
//! different seeds. [`run_replicas`] fans replica seeds out over a
//! `std::thread::scope` pool: workers claim seeds from a shared atomic
//! cursor and append results to a private buffer, and the buffers are
//! merged once when the scope joins — no lock is taken on the hot path.
//! This is the only real parallelism in the workspace, kept entirely
//! outside the deterministic core.

use parfait_simcore::stats::OnlineStats;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Summary over replicas of one metric.
#[derive(Debug, Clone)]
pub struct ReplicaStats {
    /// Per-seed values in seed order.
    pub values: Vec<f64>,
    /// Aggregate statistics.
    pub stats: OnlineStats,
}

impl ReplicaStats {
    /// Relative spread (std dev / mean; 0 when degenerate).
    pub fn relative_spread(&self) -> f64 {
        let m = self.stats.mean();
        if m.abs() < f64::EPSILON {
            0.0
        } else {
            self.stats.std_dev() / m
        }
    }
}

/// Run `f(seed)` for each seed across `threads` workers and collect the
/// metric in seed order.
pub fn run_replicas<F>(seeds: &[u64], threads: usize, f: F) -> ReplicaStats
where
    F: Fn(u64) -> f64 + Sync,
{
    assert!(threads >= 1, "need at least one worker thread");
    let workers = threads.min(seeds.len()).max(1);
    let cursor = AtomicUsize::new(0);
    let mut values = vec![0.0f64; seeds.len()];

    if workers == 1 {
        for (v, &s) in values.iter_mut().zip(seeds) {
            *v = f(s);
        }
    } else {
        let buffers: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        // Each worker fills a private buffer; nothing is
                        // shared but the claim cursor.
                        let mut local = Vec::with_capacity(seeds.len() / workers + 1);
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= seeds.len() {
                                break;
                            }
                            local.push((i, f(seeds[i])));
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replica worker panicked"))
                .collect()
        });
        for (i, v) in buffers.into_iter().flatten() {
            values[i] = v;
        }
    }

    let mut stats = OnlineStats::new();
    for &v in &values {
        stats.record(v);
    }
    ReplicaStats { values, stats }
}

/// `n` derived seeds from a base seed.
pub fn seed_series(base: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i * 7919 + 1)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_matches_serial() {
        let seeds = seed_series(1, 16);
        let f = |s: u64| (s % 1000) as f64;
        let serial: Vec<f64> = seeds.iter().map(|&s| f(s)).collect();
        let par = run_replicas(&seeds, 4, f);
        assert_eq!(par.values, serial, "order and values preserved");
        assert_eq!(par.stats.count(), 16);
    }

    #[test]
    fn single_thread_works() {
        let r = run_replicas(&[1, 2, 3], 1, |s| s as f64);
        assert_eq!(r.values, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn more_threads_than_seeds() {
        let r = run_replicas(&[5, 6], 8, |s| s as f64);
        assert_eq!(r.values, vec![5.0, 6.0]);
    }

    #[test]
    fn relative_spread() {
        let r = run_replicas(&[0, 0, 0], 2, |_| 5.0);
        assert_eq!(r.relative_spread(), 0.0);
    }

    #[test]
    fn seeds_are_distinct() {
        let s = seed_series(7, 64);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 64);
    }

    #[test]
    fn warmed_llama_phase_is_seed_invariant() {
        // The measured Fig-4 phase is deterministic once workers are
        // warm — seeds only perturb cold starts, which are excluded.
        use crate::scenarios::llama_multiplex;
        use parfait_core::Strategy;
        let seeds = seed_series(99, 4);
        let r = run_replicas(&seeds, 2, |s| {
            llama_multiplex(&Strategy::MpsEqual, 4, 20, s).makespan_s
        });
        assert!(r.stats.mean() > 0.0);
        assert!(
            r.relative_spread() < 1e-9,
            "warmed phase should be deterministic, spread {:.6}",
            r.relative_spread()
        );
    }

    #[test]
    fn stochastic_campaign_varies_but_agrees() {
        // The molecular campaign has real randomness; replicas vary but
        // stay within a tight band.
        use crate::scenarios::molecular_campaign;
        use parfait_workloads::molecular::Selection;
        let seeds = seed_series(7, 5);
        let r = run_replicas(&seeds, 3, |s| {
            molecular_campaign(Selection::ActiveLearning, s).wall_s
        });
        assert!(r.stats.std_dev() > 0.0, "campaign must vary across seeds");
        assert!(
            r.relative_spread() < 0.15,
            "campaign spread {:.3} too high",
            r.relative_spread()
        );
    }
}
