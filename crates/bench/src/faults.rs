//! Fault-injection benchmark: the isolation column of Table 1, reproduced.
//!
//! `repro faults` runs the §5.2 LLaMa2-7B deployment under MPS, MIG, and
//! time-sharing, twice per mode — once clean, once with an *identical*
//! injected fault schedule (a fatal client fault, a silent worker crash,
//! and a straggler episode, at fixed offsets from measurement start) —
//! and reports what each isolation mode's blast radius costs: makespan
//! inflation, workers lost, re-executed tasks, MTTR, and goodput. Under
//! MPS the client fault poisons the shared context and takes every
//! co-resident worker down; under MIG and time-sharing it is contained
//! to one worker. The whole schedule is seeded, so `BENCH_faults.json`
//! is bit-identical across runs of the same build.

use crate::scenarios::{build_llama_platform, build_session_platform, chat_call, mode_label};
use parfait_core::Strategy;
use parfait_faas::{
    boot, install_faults, resume_sampling, submit, AppCall, CheckpointPolicy, FaasWorld, FaultKind,
    FaultPlan, RecoveryStats, TaskState, Topology,
};
use parfait_gpu::GpuSpec;
use parfait_simcore::{SimDuration, SimTime};
use parfait_workloads::{CompletionBody, LlmSpec};
use serde::Serialize;

/// Offsets (from measurement start) of the injected fault schedule. The
/// same offsets are used for every mode, so the only variable is the
/// isolation mechanism.
const CLIENT_FAULT_AT_S: u64 = 5;
const CRASH_AT_S: u64 = 20;
const STRAGGLER_AT_S: u64 = 35;

fn fault_plan(base: SimTime) -> FaultPlan {
    FaultPlan::default()
        .with(
            base + SimDuration::from_secs(CLIENT_FAULT_AT_S),
            FaultKind::GpuClientFault { worker: 0 },
        )
        .with(
            base + SimDuration::from_secs(CRASH_AT_S),
            FaultKind::WorkerCrash { worker: 1 },
        )
        .with(
            base + SimDuration::from_secs(STRAGGLER_AT_S),
            FaultKind::Straggler {
                gpu: 0,
                factor: 0.5,
                duration: SimDuration::from_secs(10),
            },
        )
}

/// Offsets (from measurement start) of the correlated-outage schedule:
/// a fatal client fault early (exercises the single-GPU blast radius),
/// then a whole-host reboot once the long sessions are mid-flight.
const CORR_CLIENT_FAULT_AT_S: u64 = 5;
const CORR_HOST_REBOOT_AT_S: u64 = 75;

/// Correlated-outage deployment shape: two GPUs on one host, two
/// workers per GPU, eight long chat sessions in the measured phase.
const SESSION_GPUS: usize = 2;
const SESSION_PROCS_PER_GPU: usize = 2;
const SESSION_COUNT: usize = 8;

fn correlated_plan(base: SimTime) -> FaultPlan {
    FaultPlan::default()
        .with(
            base + SimDuration::from_secs(CORR_CLIENT_FAULT_AT_S),
            FaultKind::GpuClientFault { worker: 0 },
        )
        .with(
            base + SimDuration::from_secs(CORR_HOST_REBOOT_AT_S),
            FaultKind::HostReboot { host: 0 },
        )
}

/// A long-running chat session (~35 s of decode): 96 prompt tokens,
/// 220 generated. Long enough that a mid-flight host reboot costs real
/// work, which is what checkpointing is for.
fn session_call(llm: &LlmSpec, gpu_spec: &GpuSpec, app: &str) -> AppCall {
    let llm = llm.clone();
    let gpu_spec = gpu_spec.clone();
    AppCall::new(app, "gpu", move |_| {
        Box::new(CompletionBody::new(llm.clone(), gpu_spec.clone(), 96, 220))
    })
}

/// One mode's clean-vs-faulted comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ModeFaultReport {
    /// Sharing-mode label (`"mps"`, `"mig"`, `"time-sharing"`).
    pub mode: String,
    /// Makespan of the measured phase without faults (s).
    pub clean_makespan_s: f64,
    /// Makespan with the injected schedule (s).
    pub faulted_makespan_s: f64,
    /// Relative slowdown the faults cost, in percent.
    pub loss_pct: f64,
    /// Completions that finished despite the faults.
    pub completed: usize,
    /// Tasks that exhausted retries.
    pub failed: usize,
    /// Extra attempts beyond the first, summed over all tasks.
    pub reexecuted_tasks: u64,
    /// Mean time to recovery over paired incidents (s), if any closed.
    pub mttr_s: Option<f64>,
    /// Completions per second of faulted wall time (goodput).
    pub goodput_per_s: f64,
    /// Recovery counters for the faulted run.
    pub recovery: RecoveryStats,
    /// Engine events fired in the faulted run (trace fingerprint for the
    /// determinism acceptance check).
    pub events_fired: u64,
}

/// One cell of the correlated-outage sweep: a sharing mode crossed with
/// a checkpoint interval, run clean and then under the host-reboot
/// schedule.
#[derive(Debug, Clone, Serialize)]
pub struct CorrelatedOutageReport {
    /// Sharing-mode label (`"mps"`, `"mig"`).
    pub mode: String,
    /// Checkpoint interval in seconds (`None` = checkpointing off).
    pub checkpoint_interval_s: Option<u64>,
    /// Makespan of the measured sessions without faults (s); includes
    /// checkpoint overhead when the interval is set.
    pub clean_makespan_s: f64,
    /// Makespan with the client fault + host reboot injected (s).
    pub faulted_makespan_s: f64,
    /// Sessions that finished despite the outage.
    pub completed: usize,
    /// Sessions that exhausted retries.
    pub failed: usize,
    /// Extra attempts beyond the first, summed over all tasks.
    pub reexecuted_tasks: u64,
    /// Mean time to recovery over paired per-GPU incidents (s).
    pub mttr_s: Option<f64>,
    /// Recovery counters for the faulted run — `work_lost_s`,
    /// `tasks_resumed`, `checkpoints_committed`, `domain_outages`,
    /// `workers_lost` are the columns of interest here.
    pub recovery: RecoveryStats,
    /// Engine events fired in the faulted run (determinism fingerprint).
    pub events_fired: u64,
}

/// The full report written to `BENCH_faults.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FaultsReport {
    /// World seed.
    pub seed: u64,
    /// Completions in the measured phase, per run.
    pub completions: usize,
    /// Fault offsets from measurement start (s), for the record.
    pub schedule_offsets_s: [u64; 3],
    /// One entry per sharing mode.
    pub modes: Vec<ModeFaultReport>,
    /// Correlated-outage offsets (client fault, host reboot), s.
    pub correlated_offsets_s: [u64; 2],
    /// The correlated-outage sweep: {mps, mig} × {off, 10 s, 30 s}.
    pub correlated: Vec<CorrelatedOutageReport>,
}

/// Warm the platform and run `completions` chat requests, optionally
/// under the fault schedule. Returns (makespan_s, world).
fn run_phase(
    strategy: &Strategy,
    procs: usize,
    completions: usize,
    seed: u64,
    inject: bool,
) -> (f64, FaasWorld, u64) {
    let (mut world, mut eng, llm, gpu_spec) = build_llama_platform(strategy, procs, seed);
    // Faulted runs need headroom for re-execution and for workers lost
    // mid-flight; the clean run uses the same budget for comparability.
    world.config.retries = 4;
    boot(&mut world, &mut eng);
    for _ in 0..procs {
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "warmup"));
    }
    eng.run(&mut world);
    assert_eq!(world.dfk.failed_count(), 0, "warmup must be clean");
    let measure_start = eng.now();
    resume_sampling(&mut world, &mut eng);
    if inject {
        install_faults(&mut world, &mut eng, &fault_plan(measure_start));
    }
    for _ in 0..completions {
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "chat"));
    }
    eng.run(&mut world);
    let makespan = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == "chat")
        .filter_map(|t| t.finished)
        .max()
        .map(|end| end.duration_since(measure_start).as_secs_f64())
        .unwrap_or(0.0);
    let fired = eng.events_fired();
    (makespan, world, fired)
}

/// Warm the session platform and run the long-session phase, optionally
/// under the correlated-outage schedule. Returns (makespan_s, world,
/// events_fired). Pure function of its arguments.
fn run_correlated_phase(
    strategy: &Strategy,
    ckpt_interval: Option<SimDuration>,
    seed: u64,
    inject: bool,
) -> (f64, FaasWorld, u64) {
    let (mut world, mut eng, llm, gpu_spec) =
        build_session_platform(strategy, SESSION_GPUS, SESSION_PROCS_PER_GPU, seed);
    world.config.retries = 4;
    // Both GPUs live on host 0: a host reboot is a whole-fleet outage.
    world.config.topology = Topology {
        gpus_per_host: SESSION_GPUS as u32,
        hosts_per_rack: 4,
    };
    // Compressed reboot/re-enroll times keep the simulated episode short
    // without changing its structure (host back before GPUs re-enroll).
    world.config.recovery.host_reboot = SimDuration::from_secs(20);
    world.config.recovery.gpu_reenroll_stagger = SimDuration::from_secs(2);
    world.config.checkpoint = match ckpt_interval {
        Some(i) => CheckpointPolicy::every(i),
        None => CheckpointPolicy::default(),
    };
    boot(&mut world, &mut eng);
    let workers = SESSION_GPUS * SESSION_PROCS_PER_GPU;
    for _ in 0..workers {
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "warmup"));
    }
    eng.run(&mut world);
    assert_eq!(world.dfk.failed_count(), 0, "warmup must be clean");
    let measure_start = eng.now();
    resume_sampling(&mut world, &mut eng);
    if inject {
        install_faults(&mut world, &mut eng, &correlated_plan(measure_start));
    }
    for _ in 0..SESSION_COUNT {
        submit(
            &mut world,
            &mut eng,
            session_call(&llm, &gpu_spec, "session"),
        );
    }
    eng.run(&mut world);
    let makespan = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == "session")
        .filter_map(|t| t.finished)
        .max()
        .map(|end| end.duration_since(measure_start).as_secs_f64())
        .unwrap_or(0.0);
    let fired = eng.events_fired();
    (makespan, world, fired)
}

/// Run the clean/faulted pair for one (mode, checkpoint interval) cell.
pub fn correlated_mode_run(
    strategy: &Strategy,
    ckpt_interval_s: Option<u64>,
    seed: u64,
) -> CorrelatedOutageReport {
    let interval = ckpt_interval_s.map(SimDuration::from_secs);
    let (clean_makespan_s, _, _) = run_correlated_phase(strategy, interval, seed, false);
    let (faulted_makespan_s, world, events_fired) =
        run_correlated_phase(strategy, interval, seed, true);
    let completed = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == "session" && t.state == TaskState::Done)
        .count();
    let failed = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == "session" && t.state == TaskState::Failed)
        .count();
    CorrelatedOutageReport {
        mode: mode_label(strategy),
        checkpoint_interval_s: ckpt_interval_s,
        clean_makespan_s,
        faulted_makespan_s,
        completed,
        failed,
        reexecuted_tasks: world.dfk.reexecuted_attempts(),
        mttr_s: world.monitor.mttr_s(),
        recovery: world.recovery.stats,
        events_fired,
    }
}

/// Faulted correlated run plus a line-oriented trace (fault records +
/// task rows), byte-compared across double runs by `tests/determinism.rs`.
pub fn traced_correlated_run(
    strategy: &Strategy,
    ckpt_interval_s: Option<u64>,
    seed: u64,
) -> (CorrelatedOutageReport, String) {
    let report = correlated_mode_run(strategy, ckpt_interval_s, seed);
    let interval = ckpt_interval_s.map(SimDuration::from_secs);
    let (_, world, events_fired) = run_correlated_phase(strategy, interval, seed, true);
    let mut trace = String::new();
    trace.push_str(&format!(
        "mode={} ckpt={:?} seed={} events_fired={}\n",
        report.mode, ckpt_interval_s, seed, events_fired
    ));
    for r in &world.monitor.fault_records {
        trace.push_str(&format!(
            "fault t={:?} phase={:?} kind={} gpu={:?} worker={:?} detail={}\n",
            r.t, r.phase, r.kind, r.gpu, r.worker, r.detail
        ));
    }
    for t in world.dfk.tasks() {
        trace.push_str(&format!(
            "task id={:?} app={} state={:?} submitted={:?} finished={:?} attempts={}\n",
            t.id, t.app, t.state, t.submitted, t.finished, t.attempts
        ));
    }
    (report, trace)
}

/// Sweep the correlated-outage scenario: {MPS, MIG} × checkpoint
/// interval {off, 10 s, 30 s}, identical seed and fault schedule.
pub fn measure_correlated(seed: u64) -> Vec<CorrelatedOutageReport> {
    let mut out = Vec::new();
    for strategy in [Strategy::MpsEqual, Strategy::MigEqual] {
        for interval in [None, Some(10), Some(30)] {
            out.push(correlated_mode_run(&strategy, interval, seed));
        }
    }
    out
}

/// Run one faulted phase for `strategy` and return the mode report
/// together with a line-oriented event trace: every fault-incident
/// record (inject/detect/recover) and every chat task's lifecycle row.
/// Two runs with the same seed must produce byte-identical traces — the
/// root `tests/determinism.rs` acceptance test byte-compares this (and
/// the serialized report) across runs under both MPS and MIG.
pub fn traced_mode_run(
    strategy: &Strategy,
    procs: usize,
    completions: usize,
    seed: u64,
) -> (ModeFaultReport, String) {
    let report = mode_report(strategy, procs, completions, seed);
    // Re-run the faulted phase to harvest the world; run_phase is a pure
    // function of (strategy, procs, completions, seed, inject).
    let (_, world, events_fired) = run_phase(strategy, procs, completions, seed, true);
    let mut trace = String::new();
    trace.push_str(&format!(
        "mode={} seed={} events_fired={}\n",
        report.mode, seed, events_fired
    ));
    for r in &world.monitor.fault_records {
        trace.push_str(&format!(
            "fault t={:?} phase={:?} kind={} gpu={:?} worker={:?} detail={}\n",
            r.t, r.phase, r.kind, r.gpu, r.worker, r.detail
        ));
    }
    for t in world.dfk.tasks() {
        trace.push_str(&format!(
            "task id={:?} app={} state={:?} submitted={:?} finished={:?} attempts={}\n",
            t.id, t.app, t.state, t.submitted, t.finished, t.attempts
        ));
    }
    (report, trace)
}

/// Run the clean/faulted pair for one mode.
pub fn mode_report(
    strategy: &Strategy,
    procs: usize,
    completions: usize,
    seed: u64,
) -> ModeFaultReport {
    let (clean_makespan_s, _, _) = run_phase(strategy, procs, completions, seed, false);
    let (faulted_makespan_s, world, events_fired) =
        run_phase(strategy, procs, completions, seed, true);
    let completed = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == "chat" && t.state == TaskState::Done)
        .count();
    let failed = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == "chat" && t.state == TaskState::Failed)
        .count();
    let loss_pct = if clean_makespan_s > 0.0 {
        (faulted_makespan_s / clean_makespan_s - 1.0) * 100.0
    } else {
        0.0
    };
    ModeFaultReport {
        mode: mode_label(strategy),
        clean_makespan_s,
        faulted_makespan_s,
        loss_pct,
        completed,
        failed,
        reexecuted_tasks: world.dfk.reexecuted_attempts(),
        mttr_s: world.monitor.mttr_s(),
        goodput_per_s: if faulted_makespan_s > 0.0 {
            completed as f64 / faulted_makespan_s
        } else {
            0.0
        },
        recovery: world.recovery.stats,
        events_fired,
    }
}

/// Run all three modes with the same seed and schedule.
pub fn measure(procs: usize, completions: usize, seed: u64) -> FaultsReport {
    let modes = [
        Strategy::MpsEqual,
        Strategy::MigEqual,
        Strategy::TimeSharing,
    ]
    .iter()
    .map(|s| mode_report(s, procs, completions, seed))
    .collect();
    FaultsReport {
        seed,
        completions,
        schedule_offsets_s: [CLIENT_FAULT_AT_S, CRASH_AT_S, STRAGGLER_AT_S],
        modes,
        correlated_offsets_s: [CORR_CLIENT_FAULT_AT_S, CORR_HOST_REBOOT_AT_S],
        correlated: measure_correlated(seed),
    }
}

/// Run the benchmark and write `BENCH_faults.json` into `dir`.
pub fn run_and_write(
    dir: &std::path::Path,
    procs: usize,
    completions: usize,
    seed: u64,
) -> std::io::Result<FaultsReport> {
    let report = measure(procs, completions, seed);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(dir.join("BENCH_faults.json"), json + "\n")?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance: same seed + same plan ⇒ bit-identical report.
    #[test]
    fn faults_report_is_deterministic() {
        let a = serde_json::to_string(&measure(4, 6, 99)).unwrap();
        let b = serde_json::to_string(&measure(4, 6, 99)).unwrap();
        assert_eq!(a, b, "BENCH_faults.json must be bit-identical");
    }

    /// The isolation contrast the benchmark exists to show: MPS loses
    /// every co-resident worker to the client fault, MIG and
    /// time-sharing lose one.
    #[test]
    fn mps_blast_radius_exceeds_mig() {
        let mps = mode_report(&Strategy::MpsEqual, 4, 6, 99);
        let mig = mode_report(&Strategy::MigEqual, 4, 6, 99);
        assert!(
            mps.recovery.workers_lost >= 4,
            "MPS client fault takes all residents: {:?}",
            mps.recovery
        );
        assert!(
            mps.recovery.quarantines >= 1,
            "MPS fault poisons the shared context"
        );
        // MIG: the client fault costs one worker, the crash another.
        assert!(
            mig.recovery.workers_lost < mps.recovery.workers_lost,
            "MIG contains the fault: mig={:?} mps={:?}",
            mig.recovery,
            mps.recovery
        );
        assert_eq!(mig.recovery.quarantines, 0);
        assert_eq!(mps.completed, 6, "all completions survive under MPS");
        assert_eq!(mig.completed, 6, "all completions survive under MIG");
    }

    /// Acceptance: at identical seed and fault schedule, checkpointing
    /// strictly reduces both work lost and faulted makespan relative to
    /// no-checkpoint, and recovery resumes tasks instead of re-running
    /// them from scratch.
    #[test]
    fn checkpointing_bounds_work_lost() {
        for strategy in [Strategy::MpsEqual, Strategy::MigEqual] {
            let none = correlated_mode_run(&strategy, None, 99);
            let ckpt = correlated_mode_run(&strategy, Some(10), 99);
            assert_eq!(none.recovery.tasks_resumed, 0, "{none:?}");
            assert_eq!(none.recovery.checkpoints_committed, 0, "{none:?}");
            assert!(ckpt.recovery.checkpoints_committed > 0, "{ckpt:?}");
            assert!(ckpt.recovery.tasks_resumed > 0, "{ckpt:?}");
            assert!(
                ckpt.recovery.work_lost_s < none.recovery.work_lost_s,
                "checkpointing must strictly reduce work lost: ckpt={ckpt:?} none={none:?}"
            );
            assert!(
                ckpt.faulted_makespan_s < none.faulted_makespan_s,
                "checkpointing must strictly reduce faulted makespan: ckpt={ckpt:?} none={none:?}"
            );
            assert_eq!(none.completed, SESSION_COUNT, "{none:?}");
            assert_eq!(ckpt.completed, SESSION_COUNT, "{ckpt:?}");
        }
    }

    /// Acceptance: under a whole-host reboot the MPS blast radius is at
    /// least as wide as MIG's — the early client fault takes every MPS
    /// co-resident on GPU 0 but only one MIG slice, and the reboot then
    /// levels both at four workers.
    #[test]
    fn host_reboot_blast_radius_mps_vs_mig() {
        let mps = correlated_mode_run(&Strategy::MpsEqual, None, 99);
        let mig = correlated_mode_run(&Strategy::MigEqual, None, 99);
        assert_eq!(mps.recovery.domain_outages, 1, "{mps:?}");
        assert_eq!(mig.recovery.domain_outages, 1, "{mig:?}");
        assert!(
            mps.recovery.workers_lost > mig.recovery.workers_lost,
            "MPS whole-host loss must exceed MIG: mps={mps:?} mig={mig:?}"
        );
        assert!(
            mps.recovery.work_lost_s >= mig.recovery.work_lost_s,
            "MPS loses at least as much in-flight work: mps={mps:?} mig={mig:?}"
        );
    }
}
