//! End-to-end experiment scenarios — one builder per paper artifact.
//!
//! Every scenario constructs a fresh deterministic platform (fleet +
//! executors + workloads), runs it to completion under the discrete-event
//! engine, and reduces the run to the numbers the corresponding table or
//! figure reports. The `repro` binary and the Criterion benches are thin
//! wrappers over these functions.

use parfait_core::metrics::{self, ModeSummary};
use parfait_core::{apply_plan, plan, resize_mps, weightcache, Strategy};
use parfait_faas::{
    boot, resume_sampling, submit, AcceleratorSpec, AppCall, Config, ExecutorConfig, FaasWorld,
    TaskState,
};
use parfait_gpu::context::ColdStartModel;
use parfait_gpu::host::GpuFleet;
use parfait_gpu::{DeviceMode, GpuSpec, ShareConfig};
use parfait_simcore::stats::OnlineStats;
use parfait_simcore::{Engine, SimTime};
use parfait_workloads::dnn::{exec, models};
use parfait_workloads::llm::RequestProfile;
use parfait_workloads::molecular::{Campaign, CampaignConfig, Selection};
use parfait_workloads::trace;
use parfait_workloads::{CompletionBody, LlmSpec};
use serde::Serialize;

/// Default experiment seed (any seed reproduces the paper's shapes; this
/// one is pinned so EXPERIMENTS.md numbers are exact).
pub const SEED: u64 = 20231112; // SC-W 2023 opening day

/// MPS co-residency interference used by the reproduction scenarios
/// (see `ShareConfig::mps_interference`).
pub const MPS_INTERFERENCE: f64 = 0.06;

fn scenario_share_config() -> ShareConfig {
    ShareConfig {
        mps_interference: MPS_INTERFERENCE,
        ..ShareConfig::default()
    }
}

/// Result of one multiplexing cell (one bar of Fig. 4 / point of Fig. 5).
#[derive(Debug, Clone, Serialize)]
pub struct MultiplexResult {
    /// Sharing-mode label.
    pub mode: String,
    /// Co-resident LLaMa2 processes.
    pub procs: usize,
    /// Completions executed.
    pub completions: usize,
    /// Fig. 4 value: time to finish all completions (s), workers warm.
    pub makespan_s: f64,
    /// Fig. 5 value: mean per-completion latency (s).
    pub mean_latency_s: f64,
    /// P95 per-completion latency (s).
    pub p95_latency_s: f64,
    /// Completions per second.
    pub throughput: f64,
    /// Mean sampled GPU utilization in `[0,1]`.
    pub mean_utilization: f64,
}

/// Build the §5.2 deployment: `procs` LLaMa2-7B workers sharing one
/// A100-80GB under `strategy`, ready to [`boot`]. Shared by the
/// multiplexing scenarios and the fault-injection benchmark.
pub fn build_llama_platform(
    strategy: &Strategy,
    procs: usize,
    seed: u64,
) -> (FaasWorld, Engine<FaasWorld>, LlmSpec, GpuSpec) {
    let gpu_spec = GpuSpec::a100_80gb();
    // §5.2 deployment: fp16 7B so four instances fit in 80 GB.
    let llm = LlmSpec::llama2_7b(2);
    let mut fleet = GpuFleet::new();
    let g = fleet.add(gpu_spec.clone());
    fleet
        .device_mut(g)
        .set_share_config(scenario_share_config());
    let p = plan(&gpu_spec, 0, procs, strategy).expect("valid plan");
    // A 4-way MIG split (1g.10gb) cannot hold a 16.6 GiB deployment; the
    // paper reports numbers anyway, so we enable UVM oversubscription for
    // MIG runs (documented in DESIGN.md §1, inconsistency 2).
    if matches!(strategy, Strategy::MigEqual) {
        fleet.device_mut(g).set_uvm(true);
    }
    let specs = apply_plan(&mut fleet, &p).expect("plan applies");
    let config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
    let world = FaasWorld::new(config, fleet, seed);
    (world, Engine::new(), llm, gpu_spec)
}

/// Build the correlated-outage deployment: `gpus` A100-80GBs on one
/// host, each partitioned into `procs_per_gpu` LLaMa2-7B workers under
/// `strategy`, all feeding a single `"gpu"` executor. The fault-domain
/// benchmark lays a [`parfait_faas::Topology`] over this fleet and
/// reboots the host out from under it.
pub fn build_session_platform(
    strategy: &Strategy,
    gpus: usize,
    procs_per_gpu: usize,
    seed: u64,
) -> (FaasWorld, Engine<FaasWorld>, LlmSpec, GpuSpec) {
    let gpu_spec = GpuSpec::a100_80gb();
    let llm = LlmSpec::llama2_7b(2);
    let mut fleet = GpuFleet::new();
    let mut specs = Vec::new();
    for g in 0..gpus as u32 {
        let id = fleet.add(gpu_spec.clone());
        fleet
            .device_mut(id)
            .set_share_config(scenario_share_config());
        let p = plan(&gpu_spec, g, procs_per_gpu, strategy).expect("valid plan");
        // Same UVM concession as `build_llama_platform`: narrow MIG
        // slices hold the deployment only with oversubscription.
        if matches!(strategy, Strategy::MigEqual) {
            fleet.device_mut(id).set_uvm(true);
        }
        specs.extend(apply_plan(&mut fleet, &p).expect("plan applies"));
    }
    let config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
    let world = FaasWorld::new(config, fleet, seed);
    (world, Engine::new(), llm, gpu_spec)
}

/// One paper-profile chat completion against the `"gpu"` executor.
pub fn chat_call(llm: &LlmSpec, gpu_spec: &GpuSpec, app: &str) -> AppCall {
    let llm = llm.clone();
    let gpu_spec = gpu_spec.clone();
    AppCall::new(app, "gpu", move |_| {
        Box::new(CompletionBody::paper_request(llm.clone(), gpu_spec.clone()))
    })
}

/// Run the §5.2 multiplexing experiment: `procs` LLaMa2-7B chatbot
/// workers share one A100-80GB under `strategy`; `completions` text
/// completions are drained from a shared queue. Workers are warmed (one
/// completion each) before measurement, matching the paper's steady-state
/// reading.
pub fn llama_multiplex(
    strategy: &Strategy,
    procs: usize,
    completions: usize,
    seed: u64,
) -> MultiplexResult {
    let (mut world, mut eng, llm, gpu_spec) = build_llama_platform(strategy, procs, seed);
    boot(&mut world, &mut eng);
    // Warm-up: cold starts + model loads happen here.
    for _ in 0..procs {
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "warmup"));
    }
    eng.run(&mut world);
    assert_eq!(
        world.dfk.failed_count(),
        0,
        "warmup failed: {:?}",
        world
            .dfk
            .tasks()
            .iter()
            .filter_map(|t| t.error.clone())
            .collect::<Vec<_>>()
    );
    // Measured phase.
    resume_sampling(&mut world, &mut eng);
    for _ in 0..completions {
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "chat"));
    }
    eng.run(&mut world);
    let lat = metrics::exec_latency(&world, "chat");
    let mut hist = OnlineStats::new();
    let mut lats: Vec<f64> = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == "chat" && t.state == TaskState::Done)
        .map(|t| {
            t.finished
                .expect("done")
                .duration_since(t.started.expect("started"))
                .as_secs_f64()
        })
        .collect();
    lats.sort_by(f64::total_cmp);
    for &l in &lats {
        hist.record(l);
    }
    let p95 = if lats.is_empty() {
        0.0
    } else {
        lats[((lats.len() as f64 * 0.95).ceil() as usize - 1).min(lats.len() - 1)]
    };
    MultiplexResult {
        mode: mode_label(strategy),
        procs,
        completions,
        makespan_s: metrics::makespan(&world, "chat")
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0),
        mean_latency_s: lat.mean(),
        p95_latency_s: p95,
        throughput: metrics::throughput(&world, "chat"),
        mean_utilization: world.monitor.mean_utilization(0),
    }
}

/// Human label for a strategy.
pub fn mode_label(s: &Strategy) -> String {
    match s {
        Strategy::TimeSharing => "time-sharing".into(),
        Strategy::MpsDefault => "mps-default".into(),
        Strategy::MpsEqual => "mps".into(),
        Strategy::MpsWeighted(_) => "mps-weighted".into(),
        Strategy::MigEqual => "mig".into(),
        Strategy::Vgpu => "vgpu".into(),
    }
}

/// One Fig. 2 point: measured completion latency with the model capped to
/// `pct` percent of the SMs (single process, warm worker).
pub fn fig2_point(llm: &LlmSpec, pct: u32, seed: u64) -> f64 {
    let gpu_spec = GpuSpec::a100_40gb();
    let mut fleet = GpuFleet::new();
    let g = fleet.add(gpu_spec.clone());
    fleet
        .device_mut(g)
        .set_share_config(scenario_share_config());
    fleet.device_mut(g).mps.start();
    fleet
        .device_mut(g)
        .set_mode(DeviceMode::MpsPartitioned)
        .expect("idle device");
    let config = Config::new(vec![ExecutorConfig::gpu(
        "gpu",
        vec![AcceleratorSpec::GpuPercentage(0, pct)],
    )]);
    let mut world = FaasWorld::new(config, fleet, seed);
    let mut eng = Engine::new();
    boot(&mut world, &mut eng);
    submit(&mut world, &mut eng, chat_call(llm, &gpu_spec, "warmup"));
    eng.run(&mut world);
    for _ in 0..5 {
        submit(&mut world, &mut eng, chat_call(llm, &gpu_spec, "probe"));
    }
    eng.run(&mut world);
    assert_eq!(world.dfk.failed_count(), 0, "fig2 probe failed");
    metrics::exec_latency(&world, "probe").mean()
}

/// Fig. 3 result: the campaign timeline plus phase/idleness summaries.
#[derive(Debug, Clone, Serialize)]
pub struct CampaignResult {
    /// Selection policy used.
    pub selection: String,
    /// Total campaign wall time (s).
    pub wall_s: f64,
    /// Union busy seconds per phase track.
    pub phase_busy_s: Vec<(String, f64)>,
    /// Fraction of monitoring samples with a fully idle GPU.
    pub gpu_idle_fraction: f64,
    /// Best ground-truth IP found.
    pub best_ip: f64,
    /// ASCII rendering of the phase timeline (the textual Fig. 3).
    pub ascii: String,
    /// Per-round best-IP progression.
    pub best_by_round: Vec<f64>,
}

/// Run the §3.1 molecular-design campaign on the Listing-1 platform
/// (16 CPU workers + 1 whole-GPU worker) and reduce it to Fig. 3.
pub fn molecular_campaign(selection: Selection, seed: u64) -> CampaignResult {
    molecular_campaign_with(selection, false, seed)
}

/// Campaign with the §3.4 pipelining flag exposed (overlap the next
/// round's CPU simulations with the GPU training/inference phases).
pub fn molecular_campaign_with(selection: Selection, pipelined: bool, seed: u64) -> CampaignResult {
    let gpu_spec = GpuSpec::a100_40gb();
    let mut fleet = GpuFleet::new();
    fleet.add(gpu_spec);
    let config = Config::new(vec![
        ExecutorConfig::cpu("cpu", 16),
        ExecutorConfig::gpu("gpu", vec![AcceleratorSpec::Gpu(0)]),
    ]);
    let mut world = FaasWorld::new(config, fleet, seed);
    let campaign = Campaign::new(
        CampaignConfig {
            selection,
            pipelined,
            ..CampaignConfig::default()
        },
        seed,
    );
    let history = campaign.history_handle();
    world.set_driver(campaign);
    let mut eng = Engine::new();
    parfait_faas::run(&mut world, &mut eng);
    let wall = eng.now();
    let tracks = world.timeline.tracks();
    let phase_busy_s = tracks
        .iter()
        .map(|t| {
            (
                t.clone(),
                world
                    .timeline
                    .union_busy(t, SimTime::ZERO, wall)
                    .as_secs_f64(),
            )
        })
        .collect();
    let rounds = history.borrow();
    let best_by_round: Vec<f64> = rounds.iter().map(|r| r.best_ip).collect();
    let best_ip = best_by_round.last().copied().unwrap_or(0.0);
    drop(rounds);
    CampaignResult {
        selection: format!("{selection:?}"),
        wall_s: wall.as_secs_f64(),
        phase_busy_s,
        gpu_idle_fraction: world.monitor.idle_fraction(0),
        best_ip,
        best_by_round,
        ascii: world.timeline.render_ascii(100),
    }
}

/// The §6 overheads, measured in-simulator.
#[derive(Debug, Clone, Serialize)]
pub struct OverheadReport {
    /// Cold-start decomposition for a LLaMa2-7B fp32 worker (s):
    /// (function init, GPU context init, model load).
    pub cold_start_7b: (f64, f64, f64),
    /// Same for 13B fp32.
    pub cold_start_13b: (f64, f64, f64),
    /// Time from MPS resize to the first completion afterwards (s).
    pub mps_resize_to_first_completion_s: f64,
    /// Same with the §7 weight cache enabled.
    pub mps_resize_cached_s: f64,
    /// Steady-state completion latency (no resize), for reference.
    pub baseline_completion_s: f64,
}

/// Measure §6: cold-start decomposition and the MPS-resize penalty, with
/// and without the §7 weight cache.
pub fn overheads(seed: u64) -> OverheadReport {
    let cold = ColdStartModel::default();
    let spec = GpuSpec::a100_80gb();
    let b7 = cold.mean(Some(&spec), LlmSpec::llama2_7b(4).weight_bytes());
    let b13 = cold.mean(
        Some(&spec),
        // single-GPU fp32 13B image (what §6's "10-20 s" refers to).
        (13.0e9 * 4.0) as u64,
    );
    let resize = |cache: bool| -> (f64, f64) {
        let (mut world, mut eng, llm, gpu_spec) =
            build_llama_platform(&Strategy::MpsEqual, 2, seed);
        if cache {
            weightcache::enable(&mut world);
        }
        boot(&mut world, &mut eng);
        for _ in 0..2 {
            submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "warmup"));
        }
        eng.run(&mut world);
        // Baseline warm completion.
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "baseline"));
        eng.run(&mut world);
        let baseline = metrics::exec_latency(&world, "baseline").mean();
        // Resize 50/50 → 75/25 (the §6 scenario: reallocating GPU share).
        let t0 = eng.now();
        resize_mps(&mut world, &mut eng, 0, &[75, 25]).expect("resize");
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "after"));
        eng.run(&mut world);
        let first_done = world
            .dfk
            .tasks()
            .iter()
            .filter(|t| t.app == "after" && t.state == TaskState::Done)
            .filter_map(|t| t.finished)
            .min()
            .expect("post-resize completion");
        (first_done.duration_since(t0).as_secs_f64(), baseline)
    };
    let (uncached, baseline) = resize(false);
    let (cached, _) = resize(true);
    OverheadReport {
        cold_start_7b: (
            b7.function_init.as_secs_f64(),
            b7.gpu_context_init.as_secs_f64(),
            b7.app_load.as_secs_f64(),
        ),
        cold_start_13b: (
            b13.function_init.as_secs_f64(),
            b13.gpu_context_init.as_secs_f64(),
            b13.app_load.as_secs_f64(),
        ),
        mps_resize_to_first_completion_s: uncached,
        mps_resize_cached_s: cached,
        baseline_completion_s: baseline,
    }
}

/// Quantified Table 1: run the 4-process LLaMa workload under every
/// multiplexing technique and report measured utilization/latency/
/// throughput next to the qualitative properties.
pub fn table1(completions: usize, seed: u64) -> Vec<(ModeSummary, &'static str, &'static str)> {
    let strategies: [(Strategy, &str, &str); 5] = [
        (Strategy::TimeSharing, "none", "low utilization"),
        (Strategy::MpsDefault, "none", "contention possible"),
        (Strategy::MpsEqual, "compute only", "restart to resize"),
        (Strategy::MigEqual, "compute+memory", "GPU reset to resize"),
        (Strategy::Vgpu, "compute+memory", "homogeneous only"),
    ];
    strategies
        .into_iter()
        .map(|(s, isolation, drawback)| {
            let r = llama_multiplex(&s, 4, completions, seed);
            (
                ModeSummary {
                    mode: r.mode.clone(),
                    makespan_s: r.makespan_s,
                    mean_latency_s: r.mean_latency_s,
                    throughput: r.throughput,
                    mean_utilization: r.mean_utilization,
                },
                isolation,
                drawback,
            )
        })
        .collect()
}

/// Extension: multiplex `procs` ResNet-50 batch-1 inference services on
/// one A100 and compare sharing modes — the §3.3/§3.4 workload the paper
/// profiles but never benchmarks end-to-end.
pub fn resnet_multiplex(
    strategy: &Strategy,
    procs: usize,
    images: usize,
    seed: u64,
) -> MultiplexResult {
    let gpu_spec = GpuSpec::a100_80gb();
    let model = models::resnet50();
    let kernels = exec::inference_kernels(&model, &gpu_spec, 1);
    let weight_bytes = model.weight_bytes(4);
    let mut fleet = GpuFleet::new();
    let g = fleet.add(gpu_spec.clone());
    fleet
        .device_mut(g)
        .set_share_config(scenario_share_config());
    let p = plan(&gpu_spec, 0, procs, strategy).expect("valid plan");
    let specs = apply_plan(&mut fleet, &p).expect("plan applies");
    let config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
    let mut world = FaasWorld::new(config, fleet, seed);
    let mut eng = Engine::new();
    boot(&mut world, &mut eng);
    let mk = |app: &str| {
        let kernels = kernels.clone();
        let profile = parfait_faas::ModelProfile {
            id: 0x7e5_e71,
            bytes: weight_bytes + parfait_gpu::GIB / 2,
            shared_bytes: weight_bytes,
        };
        AppCall::new(app, "gpu", move |_| {
            Box::new(
                parfait_faas::app::bodies::KernelSeq::new(
                    kernels.clone(),
                    exec::layer_host_overhead(),
                )
                .with_model(profile),
            )
        })
    };
    for _ in 0..procs {
        submit(&mut world, &mut eng, mk("warmup"));
    }
    eng.run(&mut world);
    assert_eq!(world.dfk.failed_count(), 0, "resnet warmup failed");
    resume_sampling(&mut world, &mut eng);
    for _ in 0..images {
        submit(&mut world, &mut eng, mk("infer"));
    }
    eng.run(&mut world);
    let lat = metrics::exec_latency(&world, "infer");
    MultiplexResult {
        mode: mode_label(strategy),
        procs,
        completions: images,
        makespan_s: metrics::makespan(&world, "infer")
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0),
        mean_latency_s: lat.mean(),
        p95_latency_s: lat.max().unwrap_or(0.0),
        throughput: metrics::throughput(&world, "infer"),
        mean_utilization: world.monitor.mean_utilization(0),
    }
}

/// Extension: the §3.2 text-vs-chat deployment comparison — same model,
/// different request-length distributions, same MPS partition.
pub fn chat_vs_text(procs: usize, requests: usize, seed: u64) -> Vec<(String, f64, f64)> {
    let gpu_spec = GpuSpec::a100_80gb();
    let llm = LlmSpec::llama2_7b(2);
    let mut out = Vec::new();
    for profile in [RequestProfile::text(), RequestProfile::chat()] {
        let mut fleet = GpuFleet::new();
        let g = fleet.add(gpu_spec.clone());
        fleet
            .device_mut(g)
            .set_share_config(scenario_share_config());
        let p = plan(&gpu_spec, 0, procs, &Strategy::MpsEqual).expect("plan");
        let specs = apply_plan(&mut fleet, &p).expect("apply");
        let config = Config::new(vec![ExecutorConfig::gpu("gpu", specs)]);
        let mut world = FaasWorld::new(config, fleet, seed);
        let mut eng = Engine::new();
        boot(&mut world, &mut eng);
        for _ in 0..procs {
            submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "warmup"));
        }
        eng.run(&mut world);
        let name = profile.name;
        for _ in 0..requests {
            let llm = llm.clone();
            let gpu_spec2 = gpu_spec.clone();
            let profile = profile.clone();
            submit(
                &mut world,
                &mut eng,
                AppCall::new("serve", "gpu", move |rng| {
                    Box::new(CompletionBody::sampled(
                        llm.clone(),
                        gpu_spec2.clone(),
                        &profile,
                        rng,
                    ))
                }),
            );
        }
        eng.run(&mut world);
        let lat = metrics::exec_latency(&world, "serve");
        out.push((
            name.to_string(),
            lat.mean(),
            metrics::throughput(&world, "serve"),
        ));
    }
    out
}

/// Result of an open-loop serving run.
#[derive(Debug, Clone, Serialize)]
pub struct ServingResult {
    /// Sharing-mode label.
    pub mode: String,
    /// Offered request rate (req/s).
    pub offered_rate: f64,
    /// Achieved throughput (req/s over the serving window).
    pub achieved_rate: f64,
    /// Mean *turnaround* (arrival → completion, queueing included).
    pub mean_turnaround_s: f64,
    /// P95 turnaround.
    pub p95_turnaround_s: f64,
}

/// Extension: open-loop Poisson serving — the serverless-operator view.
/// Requests for LLaMa2-7B completions arrive at `rate_per_sec`; the
/// platform runs `procs` workers under `strategy`. Saturation shows up as
/// exploding turnaround (arrival → completion), which the closed-loop
/// Fig. 4/5 experiments cannot express.
pub fn open_loop_serving(
    strategy: &Strategy,
    procs: usize,
    rate_per_sec: f64,
    requests: usize,
    seed: u64,
) -> ServingResult {
    let (mut world, mut eng, llm, gpu_spec) = build_llama_platform(strategy, procs, seed);
    boot(&mut world, &mut eng);
    for _ in 0..procs {
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "warmup"));
    }
    eng.run(&mut world);
    assert_eq!(world.dfk.failed_count(), 0, "warmup failed");
    // Generate the arrival trace and schedule submissions at those
    // offsets from "now".
    let mut rng = parfait_simcore::SimRng::new(seed).split(parfait_simcore::streams::ARRIVAL_TRACE);
    let tr = trace::poisson(&mut rng, rate_per_sec, requests);
    let t0 = eng.now();
    resume_sampling(&mut world, &mut eng);
    for a in &tr.arrivals {
        let llm = llm.clone();
        let gpu_spec = gpu_spec.clone();
        let at = t0 + parfait_simcore::SimDuration::from_nanos(a.as_nanos());
        eng.schedule_at(at, move |w: &mut FaasWorld, e| {
            submit(
                w,
                e,
                AppCall::new("serve", "gpu", move |_| {
                    Box::new(CompletionBody::paper_request(llm.clone(), gpu_spec.clone()))
                }),
            );
        });
    }
    eng.run(&mut world);
    let mut turns: Vec<f64> = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == "serve" && t.state == TaskState::Done)
        .map(|t| {
            t.finished
                .expect("done")
                .duration_since(t.submitted)
                .as_secs_f64()
        })
        .collect();
    turns.sort_by(f64::total_cmp);
    let n = turns.len();
    let mean = if n == 0 {
        0.0
    } else {
        turns.iter().sum::<f64>() / n as f64
    };
    let p95 = if n == 0 {
        0.0
    } else {
        turns[((n as f64 * 0.95).ceil() as usize - 1).min(n - 1)]
    };
    let window = eng.now().duration_since(t0).as_secs_f64();
    ServingResult {
        mode: mode_label(strategy),
        offered_rate: rate_per_sec,
        achieved_rate: if window > 0.0 { n as f64 / window } else { 0.0 },
        mean_turnaround_s: mean,
        p95_turnaround_s: p95,
    }
}
