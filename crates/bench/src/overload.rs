//! Overload-protection benchmark: goodput under offered-load sweep, plus
//! straggler hedging.
//!
//! `repro overload` sweeps offered load from 0.5× to 3× of measured
//! capacity over the §5.2 LLaMa deployment under {MPS, MIG} ×
//! {no-protection, shedding, shedding+hedging+brownout} and writes
//! `BENCH_overload.json`. The signal: with admission control and
//! shedding, goodput (deadline-met completions per second) stays flat
//! past saturation while the unprotected platform collapses — every
//! admitted request queues behind an unbounded backlog and misses its
//! deadline. A separate straggler scenario pins down hedging: a 4×
//! slowdown on one of two GPUs, eight spaced requests, and the p99 with
//! hedging must beat the p99 without — at identical completion counts
//! (exactly-once is load-bearing, not incidental).
//!
//! Everything is seeded (arrivals on `streams::ARRIVAL_TRACE`, hedge
//! jitter on `streams::HEDGE_TIMING`, shed tie-breaks on
//! `streams::ADMISSION`), so the JSON is bit-identical across runs of
//! the same build; `tests/determinism.rs` byte-compares a protected
//! cell across double runs.

use crate::scenarios::{build_llama_platform, build_session_platform, chat_call, mode_label};
use parfait_core::Strategy;
use parfait_faas::{
    boot, enable_brownout, install_faults, resume_sampling, submit, AcceleratorSpec, AppCall,
    BrownoutPolicy, FaasWorld, FaultKind, FaultPlan, HedgePolicy, OverloadStats, Percentiles,
    RetryBudget, ShedPolicy, TaskState,
};
use parfait_simcore::{streams, SimDuration, SimRng};
use parfait_workloads::{trace, CompletionBody};
use serde::Serialize;

/// Workers sharing the A100 in the sweep (§5.2 deployment shape).
const SWEEP_PROCS: usize = 4;
/// Offered-load multipliers relative to measured capacity.
const LOADS: [f64; 5] = [0.5, 1.0, 1.5, 2.0, 3.0];
/// Deadline as a multiple of the estimated service time.
const DEADLINE_FACTOR: f64 = 4.0;
/// Straggler scenario shape: two GPUs, two workers each, eight probes.
const STRAGGLER_GPUS: usize = 2;
const STRAGGLER_PROCS_PER_GPU: usize = 2;
const STRAGGLER_PROBES: usize = 8;

/// Protection level of one sweep cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protection {
    /// No overload protection: unbounded queue, no deadline screening.
    None,
    /// Bounded queue (shed-oldest), deadline-aware admission, retry
    /// budget.
    Shed,
    /// `Shed` plus straggler hedging and (under MPS) a brownout tier of
    /// small thread-percentage workers. Under MIG the degraded tier is
    /// empty — every slice is already placed, so brownout is honestly a
    /// no-op there.
    Full,
}

impl Protection {
    /// Stable label used in the report and tables.
    pub fn label(self) -> &'static str {
        match self {
            Protection::None => "none",
            Protection::Shed => "shed",
            Protection::Full => "full",
        }
    }
}

/// One (mode × protection × load) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadCell {
    /// Sharing-mode label (`"mps"`, `"mig"`).
    pub mode: String,
    /// Protection label (`"none"`, `"shed"`, `"full"`).
    pub protection: String,
    /// Offered load as a multiple of measured capacity.
    pub load_x: f64,
    /// Offered arrival rate (req/s).
    pub offered_per_s: f64,
    /// Deadline-met completions per second of measured wall time — the
    /// goodput curve the benchmark exists to draw.
    pub goodput_per_s: f64,
    /// p99 end-to-end latency over admitted-and-completed requests (s).
    pub p99_latency_s: f64,
    /// Requests that passed admission (offered minus door rejections).
    pub admitted: usize,
    /// Admitted requests that completed.
    pub completed: usize,
    /// Completions that met their deadline.
    pub deadline_met: usize,
    /// Requests refused or shed (terminal failures).
    pub failed: usize,
    /// Queue-depth p50/p95/p99 from the periodic samples.
    pub queue_depth: Option<Percentiles>,
    /// Time-in-queue p50/p95/p99 over dispatched requests (s).
    pub time_in_queue_s: Option<Percentiles>,
    /// Shed/reject/hedge/brownout counters for the cell.
    pub overload: OverloadStats,
    /// Engine events fired (determinism fingerprint).
    pub events_fired: u64,
}

/// One arm of the straggler scenario.
#[derive(Debug, Clone, Serialize)]
pub struct StragglerReport {
    /// Sharing-mode label.
    pub mode: String,
    /// Whether hedging was enabled.
    pub hedged: bool,
    /// p50 end-to-end probe latency (s).
    pub p50_latency_s: f64,
    /// p99 end-to-end probe latency (s).
    pub p99_latency_s: f64,
    /// Probes that completed (must equal the probe count either way —
    /// hedging changes latency, never completion counts).
    pub completed: usize,
    /// Completions counted across all workers (warmup + probes); a
    /// duplicate-counting bug would show up here.
    pub worker_completions: u64,
    /// Hedge counters.
    pub overload: OverloadStats,
}

/// The full report written to `BENCH_overload.json`.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadReport {
    /// World seed.
    pub seed: u64,
    /// Requests offered per sweep cell.
    pub requests: usize,
    /// Workers sharing the GPU in the sweep.
    pub procs: usize,
    /// Deadline factor over estimated service time.
    pub deadline_factor: f64,
    /// Per-mode estimated service time (s), measured from a warm run.
    pub est_service_s: Vec<(String, f64)>,
    /// Per-mode capacity (req/s) implied by the estimate.
    pub capacity_per_s: Vec<(String, f64)>,
    /// The sweep: mode × protection × load.
    pub cells: Vec<OverloadCell>,
    /// The straggler scenario: hedging off vs on.
    pub straggler: Vec<StragglerReport>,
}

/// Configure the world's overload knobs for a protection level. Returns
/// the brownout policy to install once traffic is flowing (empty tier ⇒
/// nothing to install).
fn apply_protection(
    world: &mut FaasWorld,
    protection: Protection,
    strategy: &Strategy,
    procs: usize,
) -> Option<BrownoutPolicy> {
    if protection == Protection::None {
        return None;
    }
    world.config.overload.queue_cap = Some(2 * procs);
    world.config.overload.shed_policy = ShedPolicy::ShedOldest;
    world.config.overload.deadline_admission = true;
    world.config.overload.retry_budget = Some(RetryBudget {
        ratio: 0.1,
        burst: 3.0,
    });
    if protection != Protection::Full {
        return None;
    }
    world.config.overload.hedge = Some(HedgePolicy {
        trigger_factor: 2.0,
        jitter: 0.10,
        cancel_latency: SimDuration::from_millis(50),
    });
    let degraded = match strategy {
        // Two small thread-percentage workers; MPS lets the active
        // thread percentage oversubscribe, so the tier rides on top of
        // the equal split.
        Strategy::MpsEqual => vec![
            AcceleratorSpec::GpuPercentage(0, 15),
            AcceleratorSpec::GpuPercentage(0, 15),
        ],
        _ => Vec::new(),
    };
    (!degraded.is_empty()).then(|| BrownoutPolicy {
        period: SimDuration::from_secs(5),
        pressure_high: 2.0,
        pressure_low: 0.5,
        engage_after: 2,
        release_after: 2,
        degraded,
    })
}

/// Measure the per-request service time (body start → finish, all
/// workers busy) from a warm run; the admission estimate and the
/// deadline derive from this.
pub fn measure_est(strategy: &Strategy, procs: usize, seed: u64) -> f64 {
    let (mut world, mut eng, llm, gpu_spec) = build_llama_platform(strategy, procs, seed);
    boot(&mut world, &mut eng);
    for _ in 0..procs {
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "warmup"));
    }
    eng.run(&mut world);
    assert_eq!(world.dfk.failed_count(), 0, "warmup must be clean");
    let xs: Vec<f64> = world
        .dfk
        .tasks()
        .iter()
        .filter_map(|t| match (t.started, t.finished) {
            (Some(s), Some(f)) => Some(f.duration_since(s).as_secs_f64()),
            _ => None,
        })
        .collect();
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Run one sweep cell: warm the platform, offer `requests` Poisson
/// arrivals at `load_x` × capacity, and report goodput/latency plus the
/// protection counters.
fn run_cell(
    strategy: &Strategy,
    protection: Protection,
    load_x: f64,
    requests: usize,
    est: f64,
    seed: u64,
) -> (OverloadCell, FaasWorld) {
    let procs = SWEEP_PROCS;
    let (mut world, mut eng, llm, gpu_spec) = build_llama_platform(strategy, procs, seed);
    world.config.retries = 2;
    let brownout = apply_protection(&mut world, protection, strategy, procs);
    boot(&mut world, &mut eng);
    for _ in 0..procs {
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "warmup"));
    }
    eng.run(&mut world);
    assert_eq!(world.dfk.failed_count(), 0, "warmup must be clean");
    let t0 = eng.now();
    resume_sampling(&mut world, &mut eng);

    let capacity = procs as f64 / est;
    let rate = load_x * capacity;
    let deadline = SimDuration::from_secs_f64(DEADLINE_FACTOR * est);
    let est_service = SimDuration::from_secs_f64(est);
    let mut rng = SimRng::new(seed).split(streams::ARRIVAL_TRACE);
    let tr = trace::poisson(&mut rng, rate, requests);
    for a in &tr.arrivals {
        let llm = llm.clone();
        let gpu_spec = gpu_spec.clone();
        let at = t0 + SimDuration::from_nanos(a.as_nanos());
        eng.schedule_at(at, move |w: &mut FaasWorld, e| {
            submit(
                w,
                e,
                AppCall::new("serve", "gpu", move |_| {
                    Box::new(CompletionBody::paper_request(llm.clone(), gpu_spec.clone()))
                })
                .with_deadline(deadline)
                .with_est_service(est_service),
            );
        });
    }
    // The brownout controller winds down whenever everything is settled,
    // so it starts with the traffic, just after the first arrival lands.
    if let (Some(policy), Some(first)) = (brownout, tr.arrivals.first().copied()) {
        let at = t0 + SimDuration::from_nanos(first.as_nanos()) + SimDuration::from_millis(1);
        eng.schedule_at(at, move |w: &mut FaasWorld, e| {
            enable_brownout(w, e, 0, policy.clone());
        });
    }
    eng.run(&mut world);

    let window = eng.now().duration_since(t0).as_secs_f64();
    let serve: Vec<_> = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == "serve")
        .collect();
    let latencies: Vec<f64> = serve
        .iter()
        .filter(|t| t.state == TaskState::Done)
        .map(|t| {
            t.finished
                .expect("done")
                .duration_since(t.submitted)
                .as_secs_f64()
        })
        .collect();
    let completed = latencies.len();
    let deadline_met = latencies
        .iter()
        .filter(|&&l| l <= deadline.as_secs_f64())
        .count();
    let failed = serve
        .iter()
        .filter(|t| t.state == TaskState::Failed)
        .count();
    let stats = world.overload.stats;
    let admitted = requests - stats.tasks_rejected as usize;
    let time_in_queue_s = Percentiles::of(
        serve
            .iter()
            .filter_map(|t| {
                t.dispatched
                    .map(|d| d.duration_since(t.submitted).as_secs_f64())
            })
            .collect(),
    );
    let cell = OverloadCell {
        mode: mode_label(strategy),
        protection: protection.label().to_string(),
        load_x,
        offered_per_s: rate,
        goodput_per_s: if window > 0.0 {
            deadline_met as f64 / window
        } else {
            0.0
        },
        p99_latency_s: Percentiles::of(latencies).map(|p| p.p99).unwrap_or(0.0),
        admitted,
        completed,
        deadline_met,
        failed,
        queue_depth: world.monitor.queue_depth_percentiles(0),
        time_in_queue_s,
        overload: stats,
        events_fired: eng.events_fired(),
    };
    (cell, world)
}

/// Run one arm of the straggler scenario: two GPUs, one throttled to
/// 1/4 speed, eight spaced probes; hedging either off or on.
pub fn straggler_run(strategy: &Strategy, hedged: bool, seed: u64) -> StragglerReport {
    let (mut world, mut eng, llm, gpu_spec) =
        build_session_platform(strategy, STRAGGLER_GPUS, STRAGGLER_PROCS_PER_GPU, seed);
    world.config.retries = 2;
    if hedged {
        world.config.overload.hedge = Some(HedgePolicy {
            trigger_factor: 1.5,
            jitter: 0.10,
            cancel_latency: SimDuration::from_millis(50),
        });
    }
    boot(&mut world, &mut eng);
    let workers = STRAGGLER_GPUS * STRAGGLER_PROCS_PER_GPU;
    for _ in 0..workers {
        submit(&mut world, &mut eng, chat_call(&llm, &gpu_spec, "warmup"));
    }
    eng.run(&mut world);
    assert_eq!(world.dfk.failed_count(), 0, "warmup must be clean");
    let xs: Vec<f64> = world
        .dfk
        .tasks()
        .iter()
        .filter_map(|t| match (t.started, t.finished) {
            (Some(s), Some(f)) => Some(f.duration_since(s).as_secs_f64()),
            _ => None,
        })
        .collect();
    let est = xs.iter().sum::<f64>() / xs.len() as f64;
    let t0 = eng.now();
    resume_sampling(&mut world, &mut eng);
    install_faults(
        &mut world,
        &mut eng,
        &FaultPlan::one(
            t0 + SimDuration::from_millis(1),
            FaultKind::Straggler {
                gpu: 0,
                factor: 0.25,
                duration: SimDuration::from_secs(600),
            },
        ),
    );
    // Deterministically spaced probes (no RNG: the straggler scenario
    // isolates hedging, so the arrival process carries no noise). The
    // spacing leaves healthy headroom — hedges launch only when a worker
    // is idle, and the point here is tail latency, not saturation (the
    // sweep covers that).
    let est_service = SimDuration::from_secs_f64(est);
    for i in 0..STRAGGLER_PROBES {
        let llm = llm.clone();
        let gpu_spec = gpu_spec.clone();
        let at = t0 + SimDuration::from_secs_f64(1.2 * est * i as f64);
        eng.schedule_at(at, move |w: &mut FaasWorld, e| {
            submit(
                w,
                e,
                AppCall::new("probe", "gpu", move |_| {
                    Box::new(CompletionBody::paper_request(llm.clone(), gpu_spec.clone()))
                })
                .with_est_service(est_service),
            );
        });
    }
    eng.run(&mut world);
    let latencies: Vec<f64> = world
        .dfk
        .tasks()
        .iter()
        .filter(|t| t.app == "probe" && t.state == TaskState::Done)
        .map(|t| {
            t.finished
                .expect("done")
                .duration_since(t.submitted)
                .as_secs_f64()
        })
        .collect();
    let completed = latencies.len();
    let p = Percentiles::of(latencies);
    StragglerReport {
        mode: mode_label(strategy),
        hedged,
        p50_latency_s: p.map(|p| p.p50).unwrap_or(0.0),
        p99_latency_s: p.map(|p| p.p99).unwrap_or(0.0),
        completed,
        worker_completions: world.workers.iter().map(|w| w.tasks_completed).sum(),
        overload: world.overload.stats,
    }
}

/// Run the full sweep plus the straggler scenario.
pub fn measure(requests: usize, seed: u64) -> OverloadReport {
    let mut est_service_s = Vec::new();
    let mut capacity_per_s = Vec::new();
    let mut cells = Vec::new();
    for strategy in [Strategy::MpsEqual, Strategy::MigEqual] {
        let est = measure_est(&strategy, SWEEP_PROCS, seed);
        est_service_s.push((mode_label(&strategy), est));
        capacity_per_s.push((mode_label(&strategy), SWEEP_PROCS as f64 / est));
        for protection in [Protection::None, Protection::Shed, Protection::Full] {
            for load_x in LOADS {
                let (cell, _) = run_cell(&strategy, protection, load_x, requests, est, seed);
                cells.push(cell);
            }
        }
    }
    let straggler = vec![
        straggler_run(&Strategy::MpsEqual, false, seed),
        straggler_run(&Strategy::MpsEqual, true, seed),
    ];
    OverloadReport {
        seed,
        requests,
        procs: SWEEP_PROCS,
        deadline_factor: DEADLINE_FACTOR,
        est_service_s,
        capacity_per_s,
        cells,
        straggler,
    }
}

/// One fully-protected cell at 2× load plus a line-oriented trace
/// (fault records + task rows + counters), byte-compared across double
/// runs by `tests/determinism.rs`. The cell exercises both new RNG
/// streams: `ADMISSION` (shed tie-breaks) and `HEDGE_TIMING` (hedge
/// delay jitter).
pub fn traced_overload_run(seed: u64) -> (OverloadCell, String) {
    let strategy = Strategy::MpsEqual;
    let est = measure_est(&strategy, SWEEP_PROCS, seed);
    let (cell, world) = run_cell(&strategy, Protection::Full, 2.0, 40, est, seed);
    let mut trace = String::new();
    trace.push_str(&format!(
        "mode={} protection={} load=2.0 seed={} events_fired={}\n",
        cell.mode, cell.protection, seed, cell.events_fired
    ));
    trace.push_str(&format!("stats={:?}\n", world.overload.stats));
    for r in &world.monitor.fault_records {
        trace.push_str(&format!(
            "fault t={:?} phase={:?} kind={} gpu={:?} worker={:?} detail={}\n",
            r.t, r.phase, r.kind, r.gpu, r.worker, r.detail
        ));
    }
    for t in world.dfk.tasks() {
        trace.push_str(&format!(
            "task id={:?} app={} state={:?} submitted={:?} finished={:?} attempts={}\n",
            t.id, t.app, t.state, t.submitted, t.finished, t.attempts
        ));
    }
    (cell, trace)
}

/// Run the benchmark and write `BENCH_overload.json` into `dir`.
pub fn run_and_write(
    dir: &std::path::Path,
    requests: usize,
    seed: u64,
) -> std::io::Result<OverloadReport> {
    let report = measure(requests, seed);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(dir.join("BENCH_overload.json"), json + "\n")?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn goodput_of(cells: &[OverloadCell], protection: &str, load_x: f64) -> f64 {
        cells
            .iter()
            .find(|c| c.protection == protection && c.load_x == load_x)
            .expect("cell present")
            .goodput_per_s
    }

    /// Acceptance: with protection, goodput at 3× offered load stays
    /// within 10% of the protected peak; without, it collapses by more
    /// than 40%.
    #[test]
    fn protection_keeps_goodput_flat_past_saturation() {
        let strategy = Strategy::MpsEqual;
        let est = measure_est(&strategy, SWEEP_PROCS, 99);
        let mut cells = Vec::new();
        for protection in [Protection::None, Protection::Full] {
            for load_x in [1.0, 3.0] {
                let (cell, _) = run_cell(&strategy, protection, load_x, 60, est, 99);
                cells.push(cell);
            }
        }
        let protected_peak = goodput_of(&cells, "full", 1.0).max(goodput_of(&cells, "full", 3.0));
        let protected_3x = goodput_of(&cells, "full", 3.0);
        assert!(
            protected_3x >= 0.9 * protected_peak,
            "protected goodput must stay within 10% of peak at 3x: {protected_3x} vs peak {protected_peak}"
        );
        let unprotected_peak = goodput_of(&cells, "none", 1.0).max(goodput_of(&cells, "none", 3.0));
        let unprotected_3x = goodput_of(&cells, "none", 3.0);
        assert!(
            unprotected_3x < 0.6 * unprotected_peak,
            "unprotected goodput must collapse >40% at 3x: {unprotected_3x} vs peak {unprotected_peak}"
        );
        // Protection actually acted: something was shed or rejected.
        let full_3x = cells
            .iter()
            .find(|c| c.protection == "full" && c.load_x == 3.0)
            .unwrap();
        assert!(full_3x.overload.tasks_rejected + full_3x.overload.tasks_shed > 0);
    }

    /// Acceptance: hedging cuts the straggler p99 without changing any
    /// completion count (exactly-once).
    #[test]
    fn hedging_reduces_straggler_p99_without_changing_counts() {
        let off = straggler_run(&Strategy::MpsEqual, false, 99);
        let on = straggler_run(&Strategy::MpsEqual, true, 99);
        assert_eq!(off.completed, STRAGGLER_PROBES, "{off:?}");
        assert_eq!(on.completed, STRAGGLER_PROBES, "{on:?}");
        let expect = (STRAGGLER_PROBES + STRAGGLER_GPUS * STRAGGLER_PROCS_PER_GPU) as u64;
        assert_eq!(off.worker_completions, expect, "{off:?}");
        assert_eq!(
            on.worker_completions, expect,
            "a hedge win must count exactly one completion: {on:?}"
        );
        assert!(on.overload.hedges_launched >= 1, "{on:?}");
        assert!(
            on.p99_latency_s < off.p99_latency_s,
            "hedging must reduce p99: {} vs {}",
            on.p99_latency_s,
            off.p99_latency_s
        );
    }

    /// Same seed ⇒ bit-identical protected cell and trace.
    #[test]
    fn overload_cell_is_deterministic() {
        let (cell_a, trace_a) = traced_overload_run(99);
        let (cell_b, trace_b) = traced_overload_run(99);
        assert_eq!(trace_a, trace_b);
        assert_eq!(
            serde_json::to_string(&cell_a).unwrap(),
            serde_json::to_string(&cell_b).unwrap()
        );
    }
}
