//! Closed-loop SLO autoscaling scenario: the ISSUE-7 acceptance run.
//!
//! Two tenants — `latency` and `batch` — share every GPU of a small MPS
//! fleet, one worker each per GPU. Their open-loop arrival processes are
//! diurnal sinusoids half a day out of phase
//! ([`parfait_workloads::trace::FleetShape`] with phases `0` and `π`),
//! so the *mix* shifts continuously while the combined offered load
//! stays below fleet capacity: a static 50/50 split overloads whichever
//! tenant is peaking, while a controller that chases the mix can keep
//! both inside the SLO.
//!
//! Three configurations run over the identical arrival trace
//! (`AUTOSCALE_ARRIVALS` stream):
//!
//! * **static MPS** — 50/50 active-thread split, never reconfigured;
//! * **static MIG** — two equal instances, never reconfigured;
//! * **closed loop** — [`parfait_core::enable_slo_autoscaler`] watches
//!   backlog + the monitoring latency EWMA and repartitions through the
//!   staged drain/transaction protocol (DESIGN.md §11).
//!
//! Each configuration runs with and without reconfiguration faults
//! (`reconfig.fail_prob = 0.2`: every fifth commit fails on average,
//! exercising rollback). The kernel is deliberately partition-
//! *sensitive* — 432 blocks across up to 108 SMs, so its service time
//! scales with the MPS share (unlike the fleet benchmark's 8-block
//! kernel, which is partition-independent by design).
//!
//! Headline metric: SLO attainment per GPU-second. Acceptance (checked
//! by [`measure`]): the closed loop beats both static baselines on that
//! metric, and with 20 % of commits failing it stays within 15 % of its
//! own no-fault attainment.

use parfait_core::{apply_plan, enable_slo_autoscaler, plan, GpuTenancy, SloPolicy, Strategy};
use parfait_faas::{
    boot, submit, AcceleratorSpec, AppCall, Config, ExecutorConfig, FaasWorld, TaskState,
};
use parfait_gpu::host::GpuFleet;
use parfait_gpu::{GpuSpec, KernelDesc};
use parfait_simcore::{streams, Engine, SimDuration, SimRng, SimTime};
use parfait_workloads::trace::{self, FleetShape};
use serde::Serialize;

/// Tenant executors sharing each GPU (latency + batch).
pub const TENANTS: usize = 2;

/// Per-request kernel work: 10.8 SM·s → 100 ms on a whole A100 (108
/// SMs), 200 ms at a 50 % MPS share — the share moves the service time.
const WORK_SM_S: f64 = 10.8;

/// Thread blocks per request: 4 per SM, so wave quantization stays fine-
/// grained across the share range instead of snapping to half-GPU steps.
const BLOCKS: u32 = 432;

/// Per-task turnaround objective.
const SLO: SimDuration = SimDuration::from_millis(500);

/// One simulated "day" of the diurnal demand sinusoid — long against
/// both the control period and the ~2.5 s restart a resize costs, so
/// tracking the mix pays for its own reconfigurations.
const DAY: SimDuration = SimDuration::from_secs(240);

/// Per-tenant base arrival rate per GPU (req/s). A 50 % share serves
/// 5 req/s per GPU (200 ms service); with the ±70 % diurnal swing each
/// tenant peaks at 4.59 req/s per GPU — ~0.92 utilization of its static
/// half, deep queueing territory for a 500 ms SLO — while the two
/// tenants' combined load always fits the GPU if the split tracks the
/// mix (the peak needs ~65–70 %, the opposite valley ~30 %).
const BASE_RATE_PER_GPU: f64 = 2.7;

/// How each cell shares its GPUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Mode {
    /// 50/50 MPS split, never reconfigured.
    StaticMps,
    /// Two equal MIG instances, never reconfigured.
    StaticMig,
    /// SLO controller over the staged MPS-resize transaction.
    ClosedLoop,
}

/// Deterministic outcome of one cell — pure function of
/// `(mode, fail_prob, gpus, tasks, seed)`; integer fields only so the
/// determinism suite can compare runs exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct CellBehavior {
    /// Tasks submitted (both tenants).
    pub submitted: usize,
    /// Tasks that completed.
    pub completed: usize,
    /// Tasks that failed permanently.
    pub failed: usize,
    /// Completed tasks whose turnaround met the SLO.
    pub slo_met: usize,
    /// First submission → last completion, integer nanoseconds.
    pub makespan_ns: u64,
    /// GPU-milliseconds held: `gpus × makespan`.
    pub gpu_ms: u64,
    /// Engine events executed.
    pub events_fired: u64,
    /// Staged drains started.
    pub drains_started: u64,
    /// Workers force-killed at drain timeouts.
    pub drains_forced_kills: u64,
    /// Reconfig transactions committed.
    pub txns_committed: u64,
    /// Commits that failed (rollback / degraded path).
    pub txns_failed: u64,
    /// Transactions aborted before commit (target fenced mid-drain).
    pub txns_aborted: u64,
    /// Rollbacks to the previous shares.
    pub rollbacks: u64,
}

/// One configuration × fault-level run.
#[derive(Debug, Clone, Serialize)]
pub struct CellReport {
    /// Sharing mode.
    pub mode: Mode,
    /// Probability that a reconfig commit fails.
    pub fail_prob: f64,
    /// Deterministic outcome.
    pub behavior: CellBehavior,
    /// `slo_met / submitted`.
    pub attainment: f64,
    /// `slo_met / (gpu_ms / 1000)` — the headline metric.
    pub slo_per_gpu_second: f64,
}

/// The full report written to `BENCH_autoscale.json`.
#[derive(Debug, Clone, Serialize)]
pub struct AutoscaleReport {
    /// Experiment seed.
    pub seed: u64,
    /// GPUs in the fleet.
    pub gpus: usize,
    /// Requests per tenant.
    pub tasks_per_tenant: usize,
    /// The turnaround objective, in milliseconds.
    pub slo_ms: u64,
    /// All six cells: {static MPS, static MIG, closed loop} × {no
    /// faults, 20 % commit failures}.
    pub cells: Vec<CellReport>,
    /// Closed-loop / best-static ratio on SLO-per-GPU-second (no-fault
    /// cells; acceptance bar: > 1).
    pub closed_over_static: f64,
    /// Faulty / no-fault closed-loop attainment ratio (acceptance bar:
    /// >= 0.85).
    pub fault_attainment_ratio: f64,
}

/// The demand profile of one tenant: diurnal sinusoid, no flash crowds.
fn tenant_shape(gpus: usize, phase: f64) -> FleetShape {
    FleetShape {
        base_rate: BASE_RATE_PER_GPU * gpus as f64,
        diurnal_amplitude: 0.9,
        day: DAY,
        phase,
        flash_every: DAY,
        flash_len: SimDuration::ZERO,
        flash_factor: 1.0,
    }
}

/// Build the shared platform: `gpus` A100s split between the two tenant
/// executors (`latency`, `batch`), one worker per tenant per GPU.
fn build_platform(
    mode: Mode,
    gpus: usize,
    seed: u64,
    fail_prob: f64,
) -> (FaasWorld, Engine<FaasWorld>) {
    let gpu_spec = GpuSpec::a100_80gb();
    let strategy = match mode {
        Mode::StaticMig => Strategy::MigEqual,
        _ => Strategy::MpsEqual,
    };
    let mut fleet = GpuFleet::new();
    let mut tenant_specs: Vec<Vec<AcceleratorSpec>> = vec![Vec::new(); TENANTS];
    for g in 0..gpus as u32 {
        let id = fleet.add(gpu_spec.clone());
        if matches!(strategy, Strategy::MigEqual) {
            fleet.device_mut(id).set_uvm(true);
        }
        let p = plan(&gpu_spec, g, TENANTS, &strategy).expect("valid plan");
        let specs = apply_plan(&mut fleet, &p).expect("plan applies");
        for (t, s) in specs.into_iter().enumerate() {
            tenant_specs[t].push(s);
        }
    }
    let mut it = tenant_specs.into_iter();
    let executors = vec![
        ExecutorConfig::gpu("latency", it.next().expect("two tenants")),
        ExecutorConfig::gpu("batch", it.next().expect("two tenants")),
    ];
    let mut config = Config::new(executors);
    config.monitoring_period = None;
    config.reconfig.fail_prob = fail_prob;
    // Rollbacks respawn through the budgeted recovery path; give the
    // long-running scenario enough budget that injected commit failures
    // degrade service without permanently retiring workers.
    config.recovery.restart_budget = 64;
    let world = FaasWorld::new(config, fleet, seed);
    (world, Engine::new())
}

/// One request for tenant `t` (0 = latency, 1 = batch).
fn tenant_call(t: usize) -> AppCall {
    let exec = if t == 0 { "latency" } else { "batch" };
    AppCall::new("autoscale", exec, |_| {
        Box::new(parfait_faas::app::bodies::KernelSeq::new(
            vec![KernelDesc::new("autoscale", WORK_SM_S, BLOCKS, 108, 0.0)],
            SimDuration::ZERO,
        ))
    })
}

/// Schedule arrival `i` of tenant `t`, chaining the next on fire (the
/// same O(1)-heap idiom as the fleet driver).
fn chain_arrival(eng: &mut Engine<FaasWorld>, arrivals: Vec<SimTime>, i: usize, tenant: usize) {
    if i >= arrivals.len() {
        return;
    }
    let at = arrivals[i];
    eng.schedule_at(at, move |w: &mut FaasWorld, e| {
        submit(w, e, tenant_call(tenant));
        chain_arrival(e, arrivals, i + 1, tenant);
    });
}

/// Run one cell and reduce it to a [`CellReport`].
pub fn run_cell(
    mode: Mode,
    gpus: usize,
    tasks_per_tenant: usize,
    seed: u64,
    fail_prob: f64,
) -> CellReport {
    let (mut world, mut eng) = build_platform(mode, gpus, seed, fail_prob);
    // Both tenant traces come off the dedicated stream, drawn in a fixed
    // order, so every cell replays the identical demand.
    let mut rng = SimRng::new(seed).split(streams::AUTOSCALE_ARRIVALS);
    let lat = trace::fleet(&mut rng, &tenant_shape(gpus, 0.0), tasks_per_tenant);
    let bat = trace::fleet(
        &mut rng,
        &tenant_shape(gpus, std::f64::consts::PI),
        tasks_per_tenant,
    );
    let horizon = lat
        .arrivals
        .last()
        .into_iter()
        .chain(bat.arrivals.last())
        .copied()
        .max()
        .expect("non-empty traces");
    boot(&mut world, &mut eng);
    if mode == Mode::ClosedLoop {
        let tenancy = (0..gpus as u32)
            .map(|gpu| GpuTenancy {
                gpu,
                tenants: (0..TENANTS).collect(),
            })
            .collect();
        enable_slo_autoscaler(
            &mut world,
            &mut eng,
            tenancy,
            SloPolicy {
                period: SimDuration::from_secs(15),
                slo: SLO,
                min_pct: 30,
                min_shift: 15,
                cooldown: SimDuration::from_secs(45),
                // One GPU restarts at a time: the rest keep serving.
                max_concurrent: 1,
                run_until: Some(horizon),
            },
        );
    }
    chain_arrival(&mut eng, lat.arrivals, 0, 0);
    chain_arrival(&mut eng, bat.arrivals, 0, 1);
    eng.run(&mut world);

    let slo_ns = SLO.as_nanos();
    let (mut submitted, mut completed, mut failed, mut slo_met) = (0usize, 0usize, 0usize, 0usize);
    let mut first_submit = u64::MAX;
    let mut last_done = 0u64;
    for t in world.dfk.tasks() {
        submitted += 1;
        first_submit = first_submit.min(t.submitted.as_nanos());
        match t.state {
            TaskState::Done => {
                completed += 1;
                let f = t.finished.expect("done task has finish time");
                last_done = last_done.max(f.as_nanos());
                if f.duration_since(t.submitted).as_nanos() <= slo_ns {
                    slo_met += 1;
                }
            }
            TaskState::Failed => failed += 1,
            _ => {}
        }
    }
    let makespan_ns = last_done.saturating_sub(first_submit.min(last_done));
    let gpu_ms = gpus as u64 * (makespan_ns / 1_000_000);
    let s = world.reconfig.stats;
    let behavior = CellBehavior {
        submitted,
        completed,
        failed,
        slo_met,
        makespan_ns,
        gpu_ms,
        events_fired: eng.events_fired(),
        drains_started: s.drains_started,
        drains_forced_kills: s.drains_forced_kills,
        txns_committed: s.txns_committed,
        txns_failed: s.txns_failed,
        txns_aborted: s.txns_aborted,
        rollbacks: s.rollbacks,
    };
    let attainment = slo_met as f64 / submitted.max(1) as f64;
    let slo_per_gpu_second = slo_met as f64 / (gpu_ms as f64 / 1_000.0).max(1e-9);
    CellReport {
        mode,
        fail_prob,
        behavior,
        attainment,
        slo_per_gpu_second,
    }
}

/// Run the full sweep and check the acceptance inequalities.
pub fn measure(gpus: usize, tasks_per_tenant: usize, seed: u64) -> AutoscaleReport {
    const FAIL_PROB: f64 = 0.2;
    let mut cells = Vec::new();
    for mode in [Mode::StaticMps, Mode::StaticMig, Mode::ClosedLoop] {
        for fail_prob in [0.0, FAIL_PROB] {
            cells.push(run_cell(mode, gpus, tasks_per_tenant, seed, fail_prob));
        }
    }
    let cell = |m: Mode, p: f64| {
        cells
            .iter()
            .find(|c| c.mode == m && c.fail_prob == p)
            .expect("cell present")
    };
    let closed = cell(Mode::ClosedLoop, 0.0);
    let closed_faulty = cell(Mode::ClosedLoop, FAIL_PROB);
    let best_static = cell(Mode::StaticMps, 0.0)
        .slo_per_gpu_second
        .max(cell(Mode::StaticMig, 0.0).slo_per_gpu_second);
    let closed_over_static = closed.slo_per_gpu_second / best_static.max(1e-9);
    let fault_attainment_ratio = closed_faulty.attainment / closed.attainment.max(1e-9);
    assert!(
        closed_over_static > 1.0,
        "closed loop must beat both static baselines on SLO per GPU-second \
         (got {closed_over_static:.3}x)"
    );
    assert!(
        fault_attainment_ratio >= 0.85,
        "attainment under 20% commit failures must stay within 15% of no-fault \
         (got ratio {fault_attainment_ratio:.3})"
    );
    assert!(
        closed.behavior.txns_committed > 0,
        "closed loop never reconfigured — the scenario is vacuous"
    );
    assert!(
        closed_faulty.behavior.txns_failed > 0,
        "no commit failed at fail_prob=0.2 — the fault axis is vacuous"
    );
    AutoscaleReport {
        seed,
        gpus,
        tasks_per_tenant,
        slo_ms: SLO.as_nanos() / 1_000_000,
        cells,
        closed_over_static,
        fault_attainment_ratio,
    }
}

/// Measure and write `BENCH_autoscale.json` into `dir`.
pub fn run_and_write(
    dir: &std::path::Path,
    gpus: usize,
    tasks_per_tenant: usize,
    seed: u64,
) -> std::io::Result<AutoscaleReport> {
    let report = measure(gpus, tasks_per_tenant, seed);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(dir.join("BENCH_autoscale.json"), json + "\n")?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small end-to-end cell: everything the driver submits settles, and
    /// the closed loop actually reconfigures.
    #[test]
    fn closed_loop_cell_reconfigures_and_settles() {
        let c = run_cell(Mode::ClosedLoop, 1, 250, 11, 0.0);
        assert_eq!(c.behavior.submitted, 500);
        assert_eq!(c.behavior.completed + c.behavior.failed, 500);
        assert!(c.behavior.txns_committed > 0, "no reconfig happened");
        assert_eq!(c.behavior.txns_committed, c.behavior.drains_started);
        assert!(c.behavior.slo_met > 0);
    }

    /// Static cells never touch the reconfig machinery.
    #[test]
    fn static_cells_never_reconfigure() {
        let c = run_cell(Mode::StaticMps, 1, 100, 11, 0.2);
        assert_eq!(c.behavior.drains_started, 0);
        assert_eq!(c.behavior.txns_committed, 0);
        assert_eq!(c.behavior.txns_failed, 0);
    }
}
