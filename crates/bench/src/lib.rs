#![warn(missing_docs)]

//! # parfait-bench
//!
//! The benchmark harness: scenario builders regenerating every table and
//! figure of the paper ([`scenarios`]), plus text/CSV rendering
//! ([`report`]). The `repro` binary (`cargo run -p parfait-bench --bin
//! repro -- <artifact>`) and the Criterion benches wrap these.

pub mod autoscale;
pub mod faults;
pub mod fleet;
pub mod lint;
pub mod overload;
pub mod report;
pub mod scenarios;
pub mod substrate;
pub mod sweep;
