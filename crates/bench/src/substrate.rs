//! Substrate micro-benchmarks: how fast is the simulator itself?
//!
//! Every paper figure rides on two hot paths — the event engine's
//! schedule/cancel/fire cycle and the GPU device's arbitration
//! recompute. `repro substrate` times both with wall-clock sampling and
//! writes `BENCH_substrate.json` so substrate throughput is tracked in
//! the repo alongside the scientific outputs, and regressions show up
//! in review rather than as mysteriously slower campaigns.
//!
//! Cases:
//! - `timer_events_100k` — 100k one-shot timers scheduled upfront, run
//!   to completion (pure heap throughput; the acceptance metric).
//! - `cancel_heavy_100k` — 100k timers, every other one cancelled
//!   before the run (tombstone handling).
//! - `reschedule_heavy_100k` — 100k timers that each get cancelled and
//!   re-armed at a later instant, as a timeout wheel would.
//! - `contended_arbitration` — the 8-context × 50-kernel MPS trace
//!   (arbitration recompute throughput, reported in kernels/sec).

use parfait_gpu::host::{launch_kernel, GpuFleet, GpuHost};
use parfait_gpu::{CtxBinding, CtxId, DeviceMode, GpuSpec, KernelDesc, KernelDone};
use parfait_simcore::{Engine, SimTime};
use serde::Serialize;
use std::time::Instant;

/// Measured wall-clock samples per case (after one warmup run).
const RUNS: usize = 9;

/// One benchmark case: operation count and wall-time distribution.
#[derive(Debug, Clone, Serialize)]
pub struct CaseReport {
    /// Case name (stable key for cross-commit comparison).
    pub name: String,
    /// Logical operations per run (events fired or kernels completed).
    pub ops: u64,
    /// Measured runs (excluding warmup).
    pub runs: usize,
    /// Median wall seconds per run.
    pub wall_p50_s: f64,
    /// 95th-percentile wall seconds per run.
    pub wall_p95_s: f64,
    /// `ops / wall_p50_s`.
    pub ops_per_sec: f64,
}

/// The full substrate report written to `BENCH_substrate.json`.
#[derive(Debug, Clone, Serialize)]
pub struct SubstrateReport {
    /// Headline metric: events/sec on `timer_events_100k`.
    pub events_per_sec: f64,
    /// Headline metric: kernels/sec on `contended_arbitration`.
    pub kernels_per_sec: f64,
    /// All cases, with their wall-time distributions.
    pub cases: Vec<CaseReport>,
    /// Deterministic cost proxy (ratcheted by `cost-baseline.txt`).
    pub cost: CostProxy,
}

/// Deterministic cost counters over the fixed substrate cases: pure
/// functions of the code under test (no wall clock, no seed variance),
/// so CI can ratchet them exactly — a hot-path regression moves a
/// counter, not a ±30% timing sample.
#[derive(Debug, Clone, Serialize)]
pub struct CostProxy {
    /// Events fired by `timer_events_100k`.
    pub timer_events_fired: u64,
    /// Event-heap pushes on `timer_events_100k`.
    pub timer_heap_pushes: u64,
    /// Event-heap pops on `timer_events_100k` (fired + tombstones).
    pub timer_heap_pops: u64,
    /// Heap pops on `cancel_heavy_100k` (tombstone-drain cost).
    pub cancel_heap_pops: u64,
    /// Events fired by `contended_arbitration`.
    pub arbitration_events_fired: u64,
    /// `GpuDevice::recompute` invocations on `contended_arbitration`.
    pub arbitration_recompute_calls: u64,
    /// Dirty domains re-derived across those recomputes.
    pub arbitration_domains_visited: u64,
    /// Events fired by the scaled-down fleet case (4 GPUs × 2 000 tasks,
    /// seed 42, optimized driver) — extends the ratchet over the whole
    /// FaaS dispatch/monitoring path, not just the event substrate.
    pub fleet_events_fired: u64,
    /// Event-heap pushes on the scaled-down fleet case.
    pub fleet_heap_pushes: u64,
    /// Event-heap pops on the scaled-down fleet case.
    pub fleet_heap_pops: u64,
}

impl CostProxy {
    /// Stable `(name, value)` pairs — the `cost-baseline.txt` schema.
    pub fn entries(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("timer_events_fired", self.timer_events_fired),
            ("timer_heap_pushes", self.timer_heap_pushes),
            ("timer_heap_pops", self.timer_heap_pops),
            ("cancel_heap_pops", self.cancel_heap_pops),
            ("arbitration_events_fired", self.arbitration_events_fired),
            (
                "arbitration_recompute_calls",
                self.arbitration_recompute_calls,
            ),
            (
                "arbitration_domains_visited",
                self.arbitration_domains_visited,
            ),
            ("fleet_events_fired", self.fleet_events_fired),
            ("fleet_heap_pushes", self.fleet_heap_pushes),
            ("fleet_heap_pops", self.fleet_heap_pops),
        ]
    }
}

/// Time `f` once for warmup and [`RUNS`] times for real, returning the
/// per-run wall seconds. `f` returns the number of logical ops it did.
fn sample(mut f: impl FnMut() -> u64) -> (u64, Vec<f64>) {
    let ops = f();
    let mut walls = Vec::with_capacity(RUNS);
    for _ in 0..RUNS {
        let t = Instant::now();
        let got = std::hint::black_box(f());
        walls.push(t.elapsed().as_secs_f64());
        assert_eq!(got, ops, "benchmark case must be deterministic");
    }
    walls.sort_by(|a, b| a.total_cmp(b));
    (ops, walls)
}

/// Interpolated quantile of ascending-sorted samples.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let (lo, hi) = (pos.floor() as usize, pos.ceil() as usize);
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

fn case(name: &str, f: impl FnMut() -> u64) -> CaseReport {
    let (ops, walls) = sample(f);
    let p50 = quantile(&walls, 0.50);
    CaseReport {
        name: name.to_string(),
        ops,
        runs: walls.len(),
        wall_p50_s: p50,
        wall_p95_s: quantile(&walls, 0.95),
        ops_per_sec: ops as f64 / p50,
    }
}

/// 100k one-shot timers scheduled upfront (same spread as the
/// `engine_throughput` criterion bench), run to completion. Returns
/// `(fired, heap pushes, heap pops)`.
fn timer_events_instrumented(n: u64) -> (u64, u64, u64) {
    let mut eng: Engine<u64> = Engine::new();
    let mut fired = 0u64;
    for i in 0..n {
        eng.schedule_at(SimTime::from_nanos(i * 997 % 1_000_000), |w, _| {
            *w += 1;
        });
    }
    eng.run(&mut fired);
    assert_eq!(fired, n);
    (fired, eng.heap_pushes(), eng.heap_pops())
}

fn timer_events(n: u64) -> u64 {
    timer_events_instrumented(n).0
}

/// 100k timers, every other one cancelled before the run starts; the
/// engine must skip 50k tombstones without firing them. Returns
/// `(scheduled, heap pops)`.
fn cancel_heavy_instrumented(n: u64) -> (u64, u64) {
    let mut eng: Engine<u64> = Engine::new();
    let mut fired = 0u64;
    let mut ids = Vec::with_capacity(n as usize);
    for i in 0..n {
        ids.push(
            eng.schedule_at(SimTime::from_nanos(i * 997 % 1_000_000), |w, _| {
                *w += 1;
            }),
        );
    }
    for id in ids.iter().step_by(2) {
        assert!(eng.cancel(*id));
    }
    eng.run(&mut fired);
    assert_eq!(fired, n - n / 2 - n % 2);
    (n, eng.heap_pops())
}

fn cancel_heavy(n: u64) -> u64 {
    cancel_heavy_instrumented(n).0
}

/// 100k timers that are each re-armed once (cancel + schedule later),
/// the dominant pattern for timeout bookkeeping.
fn reschedule_heavy(n: u64) -> u64 {
    let mut eng: Engine<u64> = Engine::new();
    let mut fired = 0u64;
    let mut ids = Vec::with_capacity(n as usize);
    for i in 0..n {
        ids.push(
            eng.schedule_at(SimTime::from_nanos(i * 997 % 1_000_000), |w, _| {
                *w += 1;
            }),
        );
    }
    for (i, id) in ids.into_iter().enumerate() {
        assert!(eng.cancel(id));
        eng.schedule_at(
            SimTime::from_nanos(1_000_000 + (i as u64 * 31) % 1_000_000),
            |w, _| {
                *w += 1;
            },
        );
    }
    eng.run(&mut fired);
    assert_eq!(fired, n);
    n
}

struct TraceWorld {
    fleet: GpuFleet,
    completions: u64,
}

impl GpuHost for TraceWorld {
    fn fleet_mut(&mut self) -> &mut GpuFleet {
        &mut self.fleet
    }
    fn on_kernel_done(&mut self, _e: &mut Engine<Self>, _d: KernelDone) {
        self.completions += 1;
    }
}

/// The contended MPS trace from `engine_throughput` /
/// `arbitration_regression`: 8 contexts × 50 kernels on one A100-80GB.
/// Returns `(completions, events fired, recompute calls, domains
/// visited)`.
fn contended_arbitration_instrumented() -> (u64, u64, u64, u64) {
    let mut fleet = GpuFleet::new();
    let gid = fleet.add(GpuSpec::a100_80gb());
    fleet.device_mut(gid).mps.start();
    fleet
        .device_mut(gid)
        .set_mode(DeviceMode::MpsDefault)
        .expect("mode");
    let ctxs: Vec<CtxId> = (0..8)
        .map(|i| {
            fleet
                .device_mut(gid)
                .create_context(SimTime::ZERO, &format!("p{i}"), CtxBinding::Bare)
                .expect("ctx")
        })
        .collect();
    let mut w = TraceWorld {
        fleet,
        completions: 0,
    };
    let mut eng = Engine::new();
    for (i, &ctx) in ctxs.iter().enumerate() {
        for j in 0..50u64 {
            launch_kernel(
                &mut w,
                &mut eng,
                gid,
                ctx,
                KernelDesc::new("k", 0.5 + j as f64 * 0.01, 40, 40, 0.3),
                (i as u64) << 32 | j,
            )
            .expect("launch");
        }
    }
    eng.run(&mut w);
    assert_eq!(w.completions, 400);
    let (calls, visited, _skipped) = w.fleet.cost_counters();
    (w.completions, eng.events_fired(), calls, visited)
}

fn contended_arbitration() -> u64 {
    contended_arbitration_instrumented().0
}

/// One instrumented pass over the deterministic cases, collecting the
/// exact operation counts (no timing involved).
pub fn cost_proxy() -> CostProxy {
    const N: u64 = 100_000;
    let (fired, pushes, pops) = timer_events_instrumented(N);
    let (_, cancel_pops) = cancel_heavy_instrumented(N);
    let (_, arb_fired, calls, visited) = contended_arbitration_instrumented();
    let fleet = crate::fleet::run_fleet(4, 2_000, 42, true).sim.behavior;
    CostProxy {
        timer_events_fired: fired,
        timer_heap_pushes: pushes,
        timer_heap_pops: pops,
        cancel_heap_pops: cancel_pops,
        arbitration_events_fired: arb_fired,
        arbitration_recompute_calls: calls,
        arbitration_domains_visited: visited,
        fleet_events_fired: fleet.events_fired,
        fleet_heap_pushes: fleet.heap_pushes,
        fleet_heap_pops: fleet.heap_pops,
    }
}

/// Run every case and assemble the report.
pub fn measure() -> SubstrateReport {
    const N: u64 = 100_000;
    let cases = vec![
        case("timer_events_100k", || timer_events(N)),
        case("cancel_heavy_100k", || cancel_heavy(N)),
        case("reschedule_heavy_100k", || reschedule_heavy(N)),
        case("contended_arbitration", contended_arbitration),
    ];
    SubstrateReport {
        events_per_sec: cases[0].ops_per_sec,
        kernels_per_sec: cases[3].ops_per_sec,
        cases,
        cost: cost_proxy(),
    }
}

/// Measure and write `BENCH_substrate.json` into `dir`; returns the
/// report for printing.
pub fn run_and_write(dir: &std::path::Path) -> std::io::Result<SubstrateReport> {
    let report = measure();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(dir.join("BENCH_substrate.json"), json + "\n")?;
    Ok(report)
}

/// Outcome of the cost-ratchet comparison.
#[derive(Debug, Clone)]
pub struct RatchetOutcome {
    /// Regressions — counters above their recorded baseline. Non-empty
    /// means the check fails.
    pub regressions: Vec<String>,
    /// Improvements — counters now below the baseline (advisory; the
    /// baseline should be re-recorded to lock the win in).
    pub improvements: Vec<String>,
}

/// Serialize `cost` in the `cost-baseline.txt` schema.
fn render_baseline(cost: &CostProxy) -> String {
    let mut out = String::from(
        "# Deterministic substrate cost baseline: exact operation counts on the\n\
         # fixed `repro substrate` cases (events fired, heap ops, recompute\n\
         # domain visits). Pure functions of the code — no seed or timing\n\
         # variance — so any increase is a hot-path regression and fails CI.\n\
         # Re-record after a deliberate change with:\n\
         #   cargo run --release -p parfait-bench --bin repro -- substrate --record-cost\n",
    );
    for (name, value) in cost.entries() {
        out.push_str(&format!("{name} {value}\n"));
    }
    out
}

/// Compare `cost` against `dir/cost-baseline.txt`. With `record`, the
/// file is (re)written from the current counters instead and the check
/// trivially passes.
pub fn check_cost_ratchet(
    dir: &std::path::Path,
    cost: &CostProxy,
    record: bool,
) -> std::io::Result<RatchetOutcome> {
    let path = dir.join("cost-baseline.txt");
    let mut outcome = RatchetOutcome {
        regressions: Vec::new(),
        improvements: Vec::new(),
    };
    if record {
        std::fs::write(&path, render_baseline(cost))?;
        return Ok(outcome);
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(_) => {
            outcome.regressions.push(format!(
                "missing {}: record it with `repro substrate --record-cost`",
                path.display()
            ));
            return Ok(outcome);
        }
    };
    let mut baseline = std::collections::BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (
            parts.next(),
            parts.next().and_then(|v| v.parse::<u64>().ok()),
        ) {
            (Some(name), Some(value)) => {
                baseline.insert(name.to_string(), value);
            }
            _ => outcome
                .regressions
                .push(format!("malformed cost-baseline.txt line: `{line}`")),
        }
    }
    for (name, value) in cost.entries() {
        match baseline.get(name) {
            None => outcome.regressions.push(format!(
                "counter `{name}` missing from cost-baseline.txt (current {value}); re-record"
            )),
            Some(&base) if value > base => outcome.regressions.push(format!(
                "cost regression: {name} {value} > baseline {base} (+{})",
                value - base
            )),
            Some(&base) if value < base => outcome.improvements.push(format!(
                "{name} improved: {value} < baseline {base} (-{}); consider --record-cost",
                base - value
            )),
            _ => {}
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_run_and_report_sane_numbers() {
        // Tiny sizes: correctness of the harness, not performance.
        assert_eq!(timer_events(500), 500);
        assert_eq!(cancel_heavy(500), 500);
        assert_eq!(reschedule_heavy(500), 500);
        assert_eq!(contended_arbitration(), 400);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert!((quantile(&xs, 0.5) - 2.5).abs() < 1e-12);
        assert_eq!(quantile(&xs, 1.0), 4.0);
    }
}
