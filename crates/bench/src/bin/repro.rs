//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p parfait-bench --bin repro -- all
//! cargo run --release -p parfait-bench --bin repro -- fig4 --csv
//! ```
//!
//! Subcommands: `table1 fig1 fig2 fig3 fig4 fig5 overheads ablation
//! extension all`, plus five explicit-only artifacts (never under
//! `all`): `substrate` times the simulator's own hot paths, writes
//! `BENCH_substrate.json`, and checks the deterministic cost-proxy
//! counters against `cost-baseline.txt` (exit 1 on regression;
//! `--record-cost` re-records); `faults` replays an identical injected
//! fault schedule under MPS / MIG / time-sharing and writes
//! `BENCH_faults.json` (the isolation column of Table 1, reproduced);
//! `overload` sweeps offered load past saturation under the
//! overload-protection stack and writes `BENCH_overload.json`; `lint`
//! runs the determinism static-analysis pass (`parfait-lint`) over the
//! workspace and writes `BENCH_lint.json`; `fleet` drives ~1M open-loop
//! requests through a 1000-GPU MIG topology (`--gpus N --tasks N` to
//! rescale) and writes `BENCH_fleet.json` with the optimized-vs-scans
//! events/sec comparison.
//! `--csv` switches the output to CSV; `--completions N` rescales the
//! §5.2 experiments (default 100, as in the paper).

use parfait_bench::report::{csv, f2, f3, pct, text_table};
use parfait_bench::scenarios::{
    self, chat_vs_text, llama_multiplex, mode_label, molecular_campaign, molecular_campaign_with,
    open_loop_serving, overheads, resnet_multiplex, table1, SEED,
};
use parfait_bench::sweep;
use parfait_core::advisor::{recommend_strategy, TenancyRequirements};
use parfait_core::{recommend, rightsize, Strategy};
use parfait_gpu::GpuSpec;
use parfait_gpu::GIB;
use parfait_workloads::dnn::models;
use parfait_workloads::molecular::Selection;
use parfait_workloads::LlmSpec;

struct Opts {
    csv: bool,
    completions: usize,
    seed: u64,
    /// `repro fleet`: GPUs in the fleet scenario.
    gpus: usize,
    /// `repro fleet`: requests pushed through the fleet.
    tasks: usize,
    /// `--gpus` / `--tasks` given explicitly? (`repro autoscale` has its
    /// own, much smaller defaults than the fleet driver.)
    gpus_set: bool,
    tasks_set: bool,
    /// `repro substrate`: re-record cost-baseline.txt instead of
    /// checking against it.
    record_cost: bool,
}

fn emit(opts: &Opts, title: &str, headers: &[&str], rows: Vec<Vec<String>>) {
    println!("== {title} ==");
    if opts.csv {
        print!("{}", csv(headers, &rows));
    } else {
        print!("{}", text_table(headers, &rows));
    }
    println!();
}

fn run_table1(opts: &Opts) {
    let rows = table1(opts.completions, opts.seed)
        .into_iter()
        .map(|(s, isolation, drawback)| {
            vec![
                s.mode,
                pct(s.mean_utilization),
                f2(s.makespan_s),
                f2(s.mean_latency_s),
                f3(s.throughput),
                isolation.to_string(),
                drawback.to_string(),
            ]
        })
        .collect();
    emit(
        opts,
        "Table 1 (quantified): multiplexing techniques, 4 LLaMa2-7B workers / A100-80GB",
        &[
            "technique",
            "gpu util",
            "makespan (s)",
            "mean latency (s)",
            "req/s",
            "isolation",
            "drawback",
        ],
        rows,
    );
}

fn run_fig1(opts: &Opts) {
    for m in models::fig1_models() {
        let rows = m
            .conv_series()
            .into_iter()
            .enumerate()
            .map(|(i, (name, flops))| vec![i.to_string(), name, format!("{:.1}", flops / 1e6)])
            .collect();
        emit(
            opts,
            &format!(
                "Fig 1: per-conv-layer MFLOPs of {} ({} conv layers, {:.2} GFLOPs total)",
                m.name,
                m.conv_series().len(),
                m.flops_per_image() / 1e9
            ),
            &["layer#", "layer", "MFLOPs/image"],
            rows,
        );
    }
}

fn run_fig2(opts: &Opts) {
    let specs = [LlmSpec::llama2_7b(4), LlmSpec::llama2_13b(4)];
    let gpu = GpuSpec::a100_40gb();
    let sm_grid: Vec<u32> = vec![5, 10, 14, 18, 20, 22, 27, 32, 43, 54, 76, 97, 108];
    let mut rows = Vec::new();
    for llm in &specs {
        for &sms in &sm_grid {
            let pct_raw = (sms as f64 / gpu.sms as f64 * 100.0).round() as u32;
            let pct_arg = pct_raw.clamp(1, 100);
            let measured = scenarios::fig2_point(llm, pct_arg, opts.seed);
            let analytic = llm.solo_completion_seconds(&gpu, sms as f64, 16, 27);
            rows.push(vec![
                llm.name.to_string(),
                sms.to_string(),
                pct_arg.to_string(),
                f3(measured),
                f3(analytic),
            ]);
        }
        let cpu = llm.cpu_completion_seconds(&gpu, 16, 27);
        rows.push(vec![
            llm.name.to_string(),
            "cpu".into(),
            "-".into(),
            f2(cpu),
            f2(cpu),
        ]);
    }
    emit(
        opts,
        "Fig 2: LLaMa2 completion latency vs SMs (A100-40GB, fp32; 16-token prompt, 27 new tokens)",
        &["model", "SMs", "MPS %", "measured (s)", "analytic (s)"],
        rows,
    );
}

fn run_fig3(opts: &Opts) {
    for sel in [Selection::ActiveLearning, Selection::Random] {
        let r = molecular_campaign(sel, opts.seed);
        let mut rows: Vec<Vec<String>> = r
            .phase_busy_s
            .iter()
            .map(|(t, b)| vec![t.clone(), f2(*b), pct(b / r.wall_s)])
            .collect();
        rows.push(vec![
            "gpu idle samples".into(),
            "-".into(),
            pct(r.gpu_idle_fraction),
        ]);
        emit(
            opts,
            &format!(
                "Fig 3: molecular-design phases ({}; wall {:.0}s, best IP {:.3}, rounds {:?})",
                r.selection,
                r.wall_s,
                r.best_ip,
                r.best_by_round
                    .iter()
                    .map(|b| format!("{b:.2}"))
                    .collect::<Vec<_>>()
            ),
            &["phase", "busy (s)", "of wall"],
            rows,
        );
        if !opts.csv {
            println!("{}", r.ascii);
        }
    }
}

fn fig45_rows(opts: &Opts) -> Vec<scenarios::MultiplexResult> {
    let mut out = Vec::new();
    out.push(llama_multiplex(
        &Strategy::TimeSharing,
        1,
        opts.completions,
        opts.seed,
    ));
    for procs in [2usize, 3, 4] {
        for s in [
            Strategy::TimeSharing,
            Strategy::MpsEqual,
            Strategy::MigEqual,
        ] {
            out.push(llama_multiplex(&s, procs, opts.completions, opts.seed));
        }
    }
    out
}

fn run_fig4(opts: &Opts) {
    let results = fig45_rows(opts);
    let base = results[0].makespan_s;
    let rows = results
        .iter()
        .map(|r| {
            vec![
                r.procs.to_string(),
                r.mode.clone(),
                f2(r.makespan_s),
                format!("{:.2}x", base / r.makespan_s),
                f3(r.throughput),
                pct(r.mean_utilization),
            ]
        })
        .collect();
    emit(
        opts,
        &format!(
            "Fig 4: time to complete {} completions, 1-4 LLaMa2-7B processes (baseline {}s)",
            opts.completions,
            f2(base)
        ),
        &[
            "procs",
            "mode",
            "completion time (s)",
            "speedup",
            "req/s",
            "gpu util",
        ],
        rows,
    );
}

fn run_fig5(opts: &Opts) {
    let results = fig45_rows(opts);
    let rows = results
        .iter()
        .map(|r| {
            vec![
                r.procs.to_string(),
                r.mode.clone(),
                f3(r.mean_latency_s),
                f3(r.p95_latency_s),
            ]
        })
        .collect();
    emit(
        opts,
        "Fig 5: average LLaMa2 inference latency under multiplexing",
        &["procs", "mode", "mean latency (s)", "p95 (s)"],
        rows,
    );
}

fn run_overheads(opts: &Opts) {
    let o = overheads(opts.seed);
    let rows = vec![
        vec![
            "cold start 7B fp32".into(),
            f2(o.cold_start_7b.0),
            f2(o.cold_start_7b.1),
            f2(o.cold_start_7b.2),
            f2(o.cold_start_7b.0 + o.cold_start_7b.1 + o.cold_start_7b.2),
        ],
        vec![
            "cold start 13B fp32".into(),
            f2(o.cold_start_13b.0),
            f2(o.cold_start_13b.1),
            f2(o.cold_start_13b.2),
            f2(o.cold_start_13b.0 + o.cold_start_13b.1 + o.cold_start_13b.2),
        ],
    ];
    emit(
        opts,
        "§6 cold-start decomposition",
        &[
            "scenario",
            "function init (s)",
            "ctx init (s)",
            "model load (s)",
            "total (s)",
        ],
        rows,
    );
    let rows = vec![
        vec![
            "warm completion (no resize)".into(),
            f2(o.baseline_completion_s),
        ],
        vec![
            "MPS resize -> first completion".into(),
            f2(o.mps_resize_to_first_completion_s),
        ],
        vec![
            "MPS resize with weight cache (§7)".into(),
            f2(o.mps_resize_cached_s),
        ],
    ];
    emit(
        opts,
        "§6 reconfiguration penalty (LLaMa2-7B fp16, 2 workers, 50/50 -> 75/25)",
        &["scenario", "seconds"],
        rows,
    );
}

fn run_ablation(opts: &Opts) {
    // Right-sizing ablation (§7): recommendation vs sweep optimum.
    let gpu = GpuSpec::a100_40gb();
    let mut rows = Vec::new();
    let llm = LlmSpec::llama2_7b(4);
    let pts = rightsize::profile(
        |sms| llm.solo_completion_seconds(&gpu, sms, 16, 27),
        rightsize::full_grid(&gpu),
    );
    let rec = recommend(&gpu, &pts, llm.footprint_bytes(), 0.10).expect("profile non-empty");
    rows.push(vec![
        llm.name.to_string(),
        format!("{:.0}", rec.knee_sms),
        format!("{}%", rec.mps_percentage),
        rec.mig_profile.unwrap_or("-").to_string(),
    ]);
    for m in [models::resnet50(), models::resnet101(), models::vgg16()] {
        let pts = rightsize::profile(
            |sms| parfait_workloads::dnn::exec::solo_latency(&m, &gpu, 1, sms),
            rightsize::full_grid(&gpu),
        );
        let rec = recommend(&gpu, &pts, m.weight_bytes(4), 0.10).expect("profile non-empty");
        rows.push(vec![
            m.name.to_string(),
            format!("{:.0}", rec.knee_sms),
            format!("{}%", rec.mps_percentage),
            rec.mig_profile.unwrap_or("-").to_string(),
        ]);
    }
    emit(
        opts,
        "§7 ablation: right-sizing recommendations (10% latency tolerance)",
        &["workload", "knee (SMs)", "MPS %", "MIG profile"],
        rows,
    );

    // Weight-cache ablation is part of `overheads`; repeat the headline.
    let o = overheads(opts.seed);
    let speedup = o.mps_resize_to_first_completion_s / o.mps_resize_cached_s;
    emit(
        opts,
        "§7 ablation: GPU-resident weight cache on MPS resize",
        &["variant", "resize -> first completion (s)"],
        vec![
            vec![
                "stock (reload weights)".into(),
                f2(o.mps_resize_to_first_completion_s),
            ],
            vec!["weight cache (re-bind)".into(), f2(o.mps_resize_cached_s)],
            vec!["speedup".into(), format!("{speedup:.2}x")],
        ],
    );
}

fn run_extension(opts: &Opts) {
    // ResNet-50 services multiplexed (the workload the paper profiles in
    // §3.3/§3.4 but never benchmarks end-to-end).
    let images = 200;
    let mut rows = Vec::new();
    let base = resnet_multiplex(&Strategy::TimeSharing, 1, images, opts.seed);
    for (procs, s) in [
        (1usize, Strategy::TimeSharing),
        (4, Strategy::TimeSharing),
        (4, Strategy::MpsEqual),
        (4, Strategy::MigEqual),
    ] {
        let r = resnet_multiplex(&s, procs, images, opts.seed);
        rows.push(vec![
            procs.to_string(),
            r.mode.clone(),
            f2(r.makespan_s),
            format!("{:.2}x", base.makespan_s / r.makespan_s),
            f3(r.mean_latency_s),
        ]);
    }
    emit(
        opts,
        &format!(
            "Extension: {images} ResNet-50 batch-1 inferences, multiplexed services \
             (sub-ms kernels make time-sharing thrash; spatial sharing scales)"
        ),
        &[
            "procs",
            "mode",
            "makespan (s)",
            "speedup",
            "mean latency (s)",
        ],
        rows,
    );

    // Text vs chat deployments (§3.2's use-case distinction).
    let rows = chat_vs_text(4, 60, opts.seed)
        .into_iter()
        .map(|(name, lat, thr)| vec![name, f3(lat), f3(thr)])
        .collect();
    emit(
        opts,
        "Extension: LLaMa2 text vs chat request profiles (4-way MPS)",
        &["profile", "mean latency (s)", "req/s"],
        rows,
    );

    // Strategy advisor (Table 1 as a decision procedure).
    let cases = [
        (
            "4 trusted LLaMa tenants",
            TenancyRequirements {
                tenants: 4,
                require_isolation: false,
                sms_needed: 20,
                footprint_bytes: 16 * GIB,
                resize_rate_hz: 0.0,
                homogeneous: true,
            },
        ),
        (
            "2 untrusted tenants, 30 GiB each",
            TenancyRequirements {
                tenants: 2,
                require_isolation: true,
                sms_needed: 20,
                footprint_bytes: 30 * GIB,
                resize_rate_hz: 0.0,
                homogeneous: true,
            },
        ),
        (
            "4 untrusted tenants, 16 GiB each",
            TenancyRequirements {
                tenants: 4,
                require_isolation: true,
                sms_needed: 20,
                footprint_bytes: 16 * GIB,
                resize_rate_hz: 0.0,
                homogeneous: true,
            },
        ),
        (
            "frequent resizes (autoscaling)",
            TenancyRequirements {
                tenants: 4,
                require_isolation: false,
                sms_needed: 20,
                footprint_bytes: 16 * GIB,
                resize_rate_hz: 0.2,
                homogeneous: true,
            },
        ),
    ];
    let spec = parfait_gpu::GpuSpec::a100_80gb();
    let rows = cases
        .iter()
        .map(|(label, req)| {
            let a = recommend_strategy(&spec, req);
            vec![
                label.to_string(),
                mode_label(&a.strategy),
                a.rationale.last().cloned().unwrap_or_default(),
            ]
        })
        .collect();
    emit(
        opts,
        "Extension: strategy advisor (Table 1 as a decision procedure)",
        &["tenancy", "advice", "final rationale"],
        rows,
    );

    // Dynamic batching: the other §3.4 lever, measured end to end.
    {
        use parfait_simcore::{streams, SimDuration, SimRng};
        use parfait_workloads::batching::{BatchPolicy, BatchingDriver, BatchingService};
        use std::cell::RefCell;
        use std::rc::Rc;
        let serve = |policy: BatchPolicy| -> (f64, f64) {
            let gpu_spec = parfait_gpu::GpuSpec::a100_80gb();
            let mut fleet = parfait_gpu::host::GpuFleet::new();
            fleet.add(gpu_spec.clone());
            let config = parfait_faas::Config::new(vec![parfait_faas::ExecutorConfig::gpu(
                "gpu",
                vec![parfait_faas::AcceleratorSpec::Gpu(0)],
            )]);
            let mut world = parfait_faas::FaasWorld::new(config, fleet, opts.seed);
            let svc = Rc::new(RefCell::new(BatchingService::new(
                models::resnet50(),
                gpu_spec,
                "gpu",
                policy,
            )));
            let log = svc.borrow().log_handle();
            world.set_driver(BatchingDriver {
                service: Rc::clone(&svc),
            });
            let mut eng = parfait_simcore::Engine::new();
            parfait_faas::boot(&mut world, &mut eng);
            let mut rng = SimRng::new(opts.seed).split(streams::BATCH_ARRIVALS);
            let tr = parfait_workloads::trace::poisson(&mut rng, 200.0, 400);
            for a in tr.arrivals {
                let svc2 = Rc::clone(&svc);
                // Offset past the cold start so steady state dominates.
                let at = a + SimDuration::from_secs(3);
                eng.schedule_at(at, move |w: &mut parfait_faas::FaasWorld, e| {
                    BatchingService::request(w, e, &svc2);
                });
            }
            eng.run(&mut world);
            let recs = log.borrow();
            let mean_wait = recs
                .iter()
                .map(|r| r.completed.duration_since(r.arrived).as_secs_f64())
                .sum::<f64>()
                / recs.len() as f64;
            let first = recs.iter().map(|r| r.arrived).min().expect("records");
            let last = recs.iter().map(|r| r.completed).max().expect("records");
            let thr = recs.len() as f64 / last.duration_since(first).as_secs_f64();
            (thr, mean_wait)
        };
        let (t_un, w_un) = serve(BatchPolicy::none());
        let (t_b, w_b) = serve(BatchPolicy {
            max_batch: 8,
            max_delay: SimDuration::from_millis(40),
        });
        emit(
            opts,
            "Extension: dynamic batching (ResNet-50, 400 Poisson requests @ 200 req/s)",
            &["policy", "achieved req/s", "mean wait (s)"],
            vec![
                vec!["unbatched".into(), format!("{t_un:.1}"), f3(w_un)],
                vec!["batch ≤8, ≤40 ms".into(), format!("{t_b:.1}"), f3(w_b)],
            ],
        );
    }

    // §3.4 pipelining: overlap next-round simulations with GPU phases.
    let seq = molecular_campaign_with(
        parfait_workloads::molecular::Selection::ActiveLearning,
        false,
        opts.seed,
    );
    let pipe = molecular_campaign_with(
        parfait_workloads::molecular::Selection::ActiveLearning,
        true,
        opts.seed,
    );
    emit(
        opts,
        "Extension: §3.4 pipelined molecular-design campaign",
        &["variant", "wall (s)", "gpu idle samples", "best IP"],
        vec![
            vec![
                "sequential".into(),
                f2(seq.wall_s),
                pct(seq.gpu_idle_fraction),
                f3(seq.best_ip),
            ],
            vec![
                "pipelined".into(),
                f2(pipe.wall_s),
                pct(pipe.gpu_idle_fraction),
                f3(pipe.best_ip),
            ],
            vec![
                "wall reduction".into(),
                pct(1.0 - pipe.wall_s / seq.wall_s),
                "".into(),
                "".into(),
            ],
        ],
    );

    // §3.4 batch-size saturation: "to saturate the GPU SMs ... training
    // of a deep neural network using large data batches is usually
    // needed". Analytic ResNet-50 throughput vs batch on a full A100.
    let spec = parfait_gpu::GpuSpec::a100_80gb();
    let m = models::resnet50();
    let rows = [1u32, 4, 16, 64, 256]
        .into_iter()
        .map(|batch| {
            let t = parfait_workloads::dnn::exec::solo_latency(&m, &spec, batch, spec.sms as f64);
            let t_half = parfait_workloads::dnn::exec::solo_latency(&m, &spec, batch, 54.0);
            vec![
                batch.to_string(),
                format!("{:.1}", batch as f64 / t),
                format!("{:.3}", t * 1000.0 / batch as f64),
                format!("{:.2}x", t_half / t),
            ]
        })
        .collect();
    emit(
        opts,
        "Extension: §3.4 batch-size saturation (ResNet-50, full A100 vs half)",
        &["batch", "images/s", "ms/image", "speedup of 108 vs 54 SMs"],
        rows,
    );

    // Open-loop Poisson serving: sustainable load per sharing mode.
    let mut rows = Vec::new();
    for rate in [0.15f64, 0.3, 0.45] {
        for (strategy, procs) in [(Strategy::TimeSharing, 1usize), (Strategy::MpsEqual, 4)] {
            let r = open_loop_serving(&strategy, procs, rate, 60, opts.seed);
            rows.push(vec![
                format!("{:.2}", r.offered_rate),
                format!("{} x{}", r.mode, procs),
                f3(r.achieved_rate),
                f2(r.mean_turnaround_s),
                f2(r.p95_turnaround_s),
            ]);
        }
    }
    emit(
        opts,
        "Extension: open-loop Poisson serving (60 requests; turnaround includes queueing)",
        &[
            "offered req/s",
            "platform",
            "achieved req/s",
            "mean turnaround (s)",
            "p95 (s)",
        ],
        rows,
    );

    // Multi-seed confidence. The warmed LLaMa phase is fully
    // deterministic (zero variance by construction); the molecular
    // campaign carries real stochasticity (lognormal simulation times,
    // sampled molecules), so sweep that.
    let seeds = sweep::seed_series(opts.seed, 6);
    let r = sweep::run_replicas(&seeds, 3, |s| {
        molecular_campaign(Selection::ActiveLearning, s).wall_s
    });
    emit(
        opts,
        "Extension: 6-seed replica sweep of the Fig-3 campaign wall time",
        &["metric", "value"],
        vec![
            vec!["mean wall (s)".into(), f2(r.stats.mean())],
            vec!["std dev (s)".into(), f2(r.stats.std_dev())],
            vec!["relative spread".into(), pct(r.relative_spread())],
        ],
    );
}

fn run_faults(opts: &Opts) {
    // Fault runs re-execute work; a smaller completion count than the
    // throughput figures keeps the artifact quick (override with
    // --completions).
    let completions = opts.completions.min(40);
    let report =
        parfait_bench::faults::run_and_write(std::path::Path::new("."), 4, completions, opts.seed)
            .expect("write BENCH_faults.json");
    let rows = report
        .modes
        .iter()
        .map(|m| {
            vec![
                m.mode.clone(),
                f2(m.clean_makespan_s),
                f2(m.faulted_makespan_s),
                format!("{:+.1}%", m.loss_pct),
                m.recovery.workers_lost.to_string(),
                m.reexecuted_tasks.to_string(),
                m.mttr_s.map(f2).unwrap_or_else(|| "-".into()),
                f3(m.goodput_per_s),
            ]
        })
        .collect();
    emit(
        opts,
        &format!(
            "Faults: identical injected schedule per mode, {completions} completions \
             (written to BENCH_faults.json)"
        ),
        &[
            "mode",
            "clean (s)",
            "faulted (s)",
            "loss",
            "workers lost",
            "re-executed",
            "MTTR (s)",
            "goodput/s",
        ],
        rows,
    );

    let corr_rows = report
        .correlated
        .iter()
        .map(|c| {
            vec![
                c.mode.clone(),
                c.checkpoint_interval_s
                    .map(|s| format!("{s}s"))
                    .unwrap_or_else(|| "off".into()),
                f2(c.clean_makespan_s),
                f2(c.faulted_makespan_s),
                f2(c.recovery.work_lost_s),
                c.recovery.workers_lost.to_string(),
                format!(
                    "{}/{}",
                    c.recovery.tasks_resumed,
                    c.reexecuted_tasks.saturating_sub(c.recovery.tasks_resumed)
                ),
                c.recovery.checkpoints_committed.to_string(),
                c.mttr_s.map(f2).unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    emit(
        opts,
        &format!(
            "Correlated outage: client fault at +{}s, whole-host reboot at +{}s, \
             8 long sessions over 2 GPUs on one host (sweep of checkpoint interval)",
            report.correlated_offsets_s[0], report.correlated_offsets_s[1]
        ),
        &[
            "mode",
            "ckpt",
            "clean (s)",
            "faulted (s)",
            "work lost (s)",
            "workers lost",
            "resumed/re-run",
            "commits",
            "MTTR (s)",
        ],
        corr_rows,
    );
}

fn run_overload(opts: &Opts) {
    let report = parfait_bench::overload::run_and_write(
        std::path::Path::new("."),
        opts.completions,
        opts.seed,
    )
    .expect("write BENCH_overload.json");
    let rows = report
        .cells
        .iter()
        .map(|c| {
            vec![
                c.mode.clone(),
                c.protection.clone(),
                format!("{:.1}x", c.load_x),
                f3(c.offered_per_s),
                f3(c.goodput_per_s),
                f2(c.p99_latency_s),
                format!("{}/{}", c.deadline_met, c.admitted),
                (c.overload.tasks_shed + c.overload.tasks_rejected).to_string(),
                c.queue_depth
                    .map(|p| format!("{:.0}/{:.0}", p.p50, p.p99))
                    .unwrap_or_else(|| "-".into()),
                c.time_in_queue_s
                    .map(|p| format!("{}/{}", f2(p.p50), f2(p.p99)))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    emit(
        opts,
        &format!(
            "Overload: offered-load sweep, {} requests/cell, deadline {}x service \
             (written to BENCH_overload.json)",
            report.requests, report.deadline_factor
        ),
        &[
            "mode",
            "protection",
            "load",
            "offered/s",
            "goodput/s",
            "p99 (s)",
            "met/admitted",
            "shed+rej",
            "qdepth p50/p99",
            "queue-time p50/p99 (s)",
        ],
        rows,
    );

    let straggler_rows = report
        .straggler
        .iter()
        .map(|s| {
            vec![
                s.mode.clone(),
                if s.hedged { "on" } else { "off" }.to_string(),
                f2(s.p50_latency_s),
                f2(s.p99_latency_s),
                s.completed.to_string(),
                format!(
                    "{}/{}/{}",
                    s.overload.hedges_launched, s.overload.hedges_won, s.overload.hedges_wasted
                ),
            ]
        })
        .collect();
    emit(
        opts,
        "Straggler hedging: one of two GPUs at 1/4 speed, 8 spaced probes",
        &[
            "mode",
            "hedging",
            "p50 (s)",
            "p99 (s)",
            "completed",
            "hedges launched/won/wasted",
        ],
        straggler_rows,
    );
}

fn run_lint(opts: &Opts) {
    let report = parfait_bench::lint::run_and_write(std::path::Path::new("."))
        .expect("write BENCH_lint.json");
    for d in &report.diagnostics {
        println!("{d}");
    }
    let rows = report
        .budgets
        .iter()
        .map(|b| {
            vec![
                b.crate_name.clone(),
                format!("{}/{}", b.panics, b.base_panics),
                format!("{}/{}", b.unwraps, b.base_unwraps),
                if b.over { "OVER" } else { "ok" }.to_string(),
            ]
        })
        .collect();
    emit(
        opts,
        &format!(
            "Lint: determinism audit, {} files, {} stream id(s), {} — written to BENCH_lint.json",
            report.files_scanned,
            report.streams.len(),
            if report.clean { "clean" } else { "FAILING" }
        ),
        &["crate", "panic!/budget", "unwrap/budget", "status"],
        rows,
    );
    if !report.clean {
        std::process::exit(1);
    }
}

fn run_substrate(opts: &Opts) {
    let report = parfait_bench::substrate::run_and_write(std::path::Path::new("."))
        .expect("write BENCH_substrate.json");
    let rows = report
        .cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.ops.to_string(),
                format!("{:.3}", c.wall_p50_s * 1e3),
                format!("{:.3}", c.wall_p95_s * 1e3),
                format!("{:.3e}", c.ops_per_sec),
            ]
        })
        .collect();
    emit(
        opts,
        "Substrate: simulator hot-path throughput (written to BENCH_substrate.json)",
        &["case", "ops", "wall p50 (ms)", "wall p95 (ms)", "ops/sec"],
        rows,
    );
    let cost_rows = report
        .cost
        .entries()
        .into_iter()
        .map(|(name, value)| vec![name.to_string(), value.to_string()])
        .collect();
    emit(
        opts,
        "Substrate cost proxy: deterministic op counts (ratcheted by cost-baseline.txt)",
        &["counter", "value"],
        cost_rows,
    );
    let outcome = parfait_bench::substrate::check_cost_ratchet(
        std::path::Path::new("."),
        &report.cost,
        opts.record_cost,
    )
    .expect("read/write cost-baseline.txt");
    for msg in &outcome.improvements {
        println!("note: {msg}");
    }
    if !outcome.regressions.is_empty() {
        for msg in &outcome.regressions {
            eprintln!("error: {msg}");
        }
        std::process::exit(1);
    }
    if opts.record_cost {
        println!("cost-baseline.txt re-recorded from current counters");
    }
}

fn run_fleet(opts: &Opts) {
    let report = parfait_bench::fleet::run_and_write(
        std::path::Path::new("."),
        opts.gpus,
        opts.tasks,
        opts.seed,
    )
    .expect("write BENCH_fleet.json");
    let row = |r: &parfait_bench::fleet::FleetRun| {
        vec![
            if r.optimized { "optimized" } else { "baseline" }.to_string(),
            r.sim.gpus.to_string(),
            r.sim.workers.to_string(),
            r.sim.tasks.to_string(),
            f2(r.sim.behavior.makespan_ns as f64 / 1e9),
            r.sim.behavior.peak_in_flight.to_string(),
            r.sim.behavior.events_fired.to_string(),
            format!("{}/{}", r.sim.domains_visited, r.sim.domains_skipped),
            f2(r.wall_s),
            format!("{:.3e}", r.events_per_sec),
        ]
    };
    emit(
        opts,
        &format!(
            "Fleet: open-loop driver, {} GPUs x {} MIG workers (written to BENCH_fleet.json; \
             equivalence checked at {} tasks)",
            report.optimized.sim.gpus,
            parfait_bench::fleet::WORKERS_PER_GPU,
            report.equivalence_checked_tasks
        ),
        &[
            "run",
            "gpus",
            "workers",
            "tasks",
            "makespan (s)",
            "peak in-flight",
            "events",
            "domains visited/skipped",
            "wall (s)",
            "events/sec",
        ],
        vec![row(&report.optimized), row(&report.baseline)],
    );
    println!(
        "events/sec speedup (optimized vs scans+full-recompute): {:.1}x",
        report.speedup_events_per_sec
    );
    println!();
}

fn run_autoscale(opts: &Opts) {
    // The autoscale scenario is a control-plane study, not a throughput
    // driver: its own defaults are a small fleet and a few thousand
    // requests (a couple of simulated demand days).
    let gpus = if opts.gpus_set { opts.gpus } else { 2 };
    let tasks = if opts.tasks_set { opts.tasks } else { 2_000 };
    let report =
        parfait_bench::autoscale::run_and_write(std::path::Path::new("."), gpus, tasks, opts.seed)
            .expect("write BENCH_autoscale.json");
    let rows = report
        .cells
        .iter()
        .map(|c| {
            vec![
                format!("{:?}", c.mode),
                f2(c.fail_prob),
                c.behavior.submitted.to_string(),
                c.behavior.slo_met.to_string(),
                pct(c.attainment),
                f2(c.behavior.makespan_ns as f64 / 1e9),
                f3(c.slo_per_gpu_second),
                format!(
                    "{}/{}/{}",
                    c.behavior.txns_committed, c.behavior.txns_failed, c.behavior.txns_aborted
                ),
                c.behavior.rollbacks.to_string(),
                c.behavior.drains_forced_kills.to_string(),
            ]
        })
        .collect();
    emit(
        opts,
        &format!(
            "Autoscale: closed-loop SLO control, {} GPUs x 2 tenants, SLO {} ms \
             (written to BENCH_autoscale.json; closed/static = {:.2}x, \
             fault attainment ratio = {:.3})",
            report.gpus, report.slo_ms, report.closed_over_static, report.fault_attainment_ratio
        ),
        &[
            "mode",
            "fail prob",
            "tasks",
            "SLO met",
            "attainment",
            "makespan (s)",
            "SLO met/GPU-s",
            "commit/fail/abort",
            "rollbacks",
            "forced kills",
        ],
        rows,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut opts = Opts {
        csv: false,
        completions: 100,
        seed: SEED,
        gpus: 1000,
        tasks: 1_000_000,
        gpus_set: false,
        tasks_set: false,
        record_cost: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => opts.csv = true,
            "--completions" => {
                i += 1;
                opts.completions = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--completions N");
            }
            "--seed" => {
                i += 1;
                opts.seed = args.get(i).and_then(|s| s.parse().ok()).expect("--seed N");
            }
            "--gpus" => {
                i += 1;
                opts.gpus = args.get(i).and_then(|s| s.parse().ok()).expect("--gpus N");
                opts.gpus_set = true;
            }
            "--tasks" => {
                i += 1;
                opts.tasks = args.get(i).and_then(|s| s.parse().ok()).expect("--tasks N");
                opts.tasks_set = true;
            }
            "--record-cost" => opts.record_cost = true,
            other => which.push(other.to_string()),
        }
        i += 1;
    }
    const KNOWN: &[&str] = &[
        "all",
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "fig5",
        "overheads",
        "ablation",
        "extension",
        "substrate",
        "faults",
        "overload",
        "lint",
        "fleet",
        "autoscale",
    ];
    if let Some(bad) = which.iter().find(|w| !KNOWN.contains(&w.as_str())) {
        eprintln!(
            "repro: unknown artifact `{bad}` (known: {})",
            KNOWN.join(", ")
        );
        std::process::exit(2);
    }
    if which.is_empty() {
        which.push("all".into());
    }
    let all = which.iter().any(|w| w == "all");
    let want = |name: &str| all || which.iter().any(|w| w == name);
    if want("table1") {
        run_table1(&opts);
    }
    if want("fig1") {
        run_fig1(&opts);
    }
    if want("fig2") {
        run_fig2(&opts);
    }
    if want("fig3") {
        run_fig3(&opts);
    }
    if want("fig4") {
        run_fig4(&opts);
    }
    if want("fig5") {
        run_fig5(&opts);
    }
    if want("overheads") {
        run_overheads(&opts);
    }
    if want("ablation") {
        run_ablation(&opts);
    }
    if want("extension") {
        run_extension(&opts);
    }
    // Substrate timing and fault replay are development artifacts, not
    // paper figures: only on explicit request, so `repro all` output
    // stays stable.
    if which.iter().any(|w| w == "substrate") {
        run_substrate(&opts);
    }
    if which.iter().any(|w| w == "faults") {
        run_faults(&opts);
    }
    if which.iter().any(|w| w == "overload") {
        run_overload(&opts);
    }
    if which.iter().any(|w| w == "lint") {
        run_lint(&opts);
    }
    if which.iter().any(|w| w == "fleet") {
        run_fleet(&opts);
    }
    if which.iter().any(|w| w == "autoscale") {
        run_autoscale(&opts);
    }
}
