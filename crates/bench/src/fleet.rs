//! Fleet-scale open-loop driver: the ISSUE-6 acceptance scenario.
//!
//! Pushes ~1M requests through a 1000-GPU MIG-partitioned topology and
//! measures how fast the *simulator* chews through it. The platform is
//! deliberately simple — one short kernel per request, no model loads,
//! no faults — so the run isolates the per-event cost of the substrate
//! (engine heap, GPU arbitration recompute, world dispatch/bookkeeping)
//! rather than the physics of any particular workload.
//!
//! Two runs are compared:
//! - **optimized**: world index + per-domain dirty tracking on (the
//!   defaults) and per-task monitoring rows off, at the full task count;
//! - **baseline**: all three off — every dispatch/watchdog/controller
//!   question answered by the original full scans, every recompute
//!   re-deriving every kernel, every task start/end retaining a
//!   formatted monitoring row — at `tasks / 10` (its per-event cost is
//!   what matters, and it grows with fleet size).
//!
//! The headline metric is engine events per wall-second; the acceptance
//! bar is `>= 10×` optimized over baseline. A third, small run re-checks
//! behavioural equivalence: the baseline task count executed *with* the
//! optimizations must produce bit-identical simulation results
//! (makespan, event counts, peak population) — the optimizations are
//! pure strength reductions, never semantic changes.
//!
//! Requests arrive open-loop on the `FLEET_ARRIVALS` stream via
//! [`parfait_workloads::trace::fleet`]: Poisson at 60% of fleet
//! capacity, modulated by a diurnal sinusoid (amplitude 0.3, 20 s "day")
//! and periodic flash crowds (1 s every 7 s at 1.6×), so the fleet
//! sweeps through under-load, saturation and queue-drain phases.

use parfait_core::{apply_plan, plan, Strategy};
use parfait_faas::{boot, submit, AppCall, Config, ExecutorConfig, FaasWorld, TaskState};
use parfait_gpu::host::{GpuFleet, GpuHost};
use parfait_gpu::{GpuSpec, KernelDesc};
use parfait_simcore::{streams, Engine, SimDuration, SimRng};
use parfait_workloads::trace::{self, FleetShape};
use serde::Serialize;
use std::time::Instant;

/// MIG instances (= workers) carved out of each GPU.
pub const WORKERS_PER_GPU: usize = 4;

/// Executor pools the fleet is sharded into (capped by the GPU count):
/// ~62 workers per pool at full scale, the granularity of a per-tenant
/// or per-rack pool. Each completion kicks every executor, so this also
/// scales the number of dispatch decisions per event.
pub const EXECUTOR_POOLS: usize = 64;

/// Single-request service time: the kernel is sized (8 blocks, 0.4
/// SM·s) so every MIG instance runs it at exactly 8 SMs → 50 ms,
/// independent of the instance profile.
const SERVICE_SECONDS: f64 = 0.05;

/// Offered base load as a fraction of fleet capacity.
const BASE_UTILIZATION: f64 = 0.6;

/// The arrival-rate profile for a fleet of `workers` workers.
pub fn arrival_shape(workers: usize) -> FleetShape {
    FleetShape {
        base_rate: BASE_UTILIZATION * workers as f64 / SERVICE_SECONDS,
        diurnal_amplitude: 0.3,
        day: SimDuration::from_secs(20),
        phase: 0.0,
        flash_every: SimDuration::from_secs(7),
        flash_len: SimDuration::from_secs(1),
        flash_factor: 1.6,
    }
}

/// The deterministic outcome of a run — a pure function of
/// `(gpus, tasks, seed)` and *provably independent* of the
/// optimization toggles (checked by [`measure`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FleetBehavior {
    /// Tasks that completed successfully.
    pub completed: usize,
    /// Tasks that failed (must be 0).
    pub failed: usize,
    /// First submission → last completion, in integer nanoseconds
    /// (exact compare; no float formatting in the equivalence check).
    pub makespan_ns: u64,
    /// Peak number of submitted-but-unfinished tasks.
    pub peak_in_flight: usize,
    /// Engine events executed.
    pub events_fired: u64,
    /// Event-heap pushes (deterministic cost proxy).
    pub heap_pushes: u64,
    /// Event-heap pops (fired events + drained tombstones).
    pub heap_pops: u64,
}

/// Deterministic statistics of one fleet run.
#[derive(Debug, Clone, Serialize)]
pub struct FleetSimStats {
    /// GPUs in the fleet.
    pub gpus: usize,
    /// Worker processes (MIG instances).
    pub workers: usize,
    /// Executor pools.
    pub executors: usize,
    /// Requests offered.
    pub tasks: usize,
    /// Toggle-independent outcome.
    pub behavior: FleetBehavior,
    /// GPU arbitration recomputes (cost proxy; *does* depend on the
    /// dirty-tracking toggle — that is the point of the counter).
    pub recompute_calls: u64,
    /// Dirty domains re-derived across all recomputes.
    pub domains_visited: u64,
    /// Clean domains skipped (0 with dirty tracking off).
    pub domains_skipped: u64,
}

/// One timed fleet run.
#[derive(Debug, Clone, Serialize)]
pub struct FleetRun {
    /// World index + dirty tracking enabled?
    pub optimized: bool,
    /// Deterministic statistics.
    pub sim: FleetSimStats,
    /// Wall-clock seconds spent inside the event loop.
    pub wall_s: f64,
    /// `behavior.events_fired / wall_s` — the headline metric.
    pub events_per_sec: f64,
}

/// The full report written to `BENCH_fleet.json`.
#[derive(Debug, Clone, Serialize)]
pub struct FleetReport {
    /// Experiment seed.
    pub seed: u64,
    /// Full-scale run with the optimizations on.
    pub optimized: FleetRun,
    /// Scaled-down (`tasks / 10`) run with both optimizations off.
    pub baseline: FleetRun,
    /// `optimized.events_per_sec / baseline.events_per_sec`
    /// (acceptance bar: >= 10).
    pub speedup_events_per_sec: f64,
    /// Task count of the behavioural-equivalence cross-check (the
    /// baseline count re-run optimized and bit-compared).
    pub equivalence_checked_tasks: usize,
}

/// Build the fleet platform: `gpus` A100-80GBs, each MIG-partitioned
/// into [`WORKERS_PER_GPU`] instances, sharded round-robin over
/// `min(EXECUTOR_POOLS, gpus)` executor pools. Monitoring is off — this
/// is a throughput driver, not a figure.
fn build_platform(gpus: usize, seed: u64) -> (FaasWorld, Engine<FaasWorld>, usize) {
    let gpu_spec = GpuSpec::a100_80gb();
    let pools = EXECUTOR_POOLS.min(gpus).max(1);
    let mut fleet = GpuFleet::new();
    let mut pool_specs: Vec<Vec<parfait_faas::AcceleratorSpec>> = vec![Vec::new(); pools];
    for g in 0..gpus as u32 {
        fleet.add(gpu_spec.clone());
        let p = plan(&gpu_spec, g, WORKERS_PER_GPU, &Strategy::MigEqual).expect("valid plan");
        let specs = apply_plan(&mut fleet, &p).expect("plan applies");
        pool_specs[g as usize % pools].extend(specs);
    }
    let executors = pool_specs
        .into_iter()
        .enumerate()
        .map(|(i, specs)| ExecutorConfig::gpu(format!("pool{i}"), specs))
        .collect();
    let mut config = Config::new(executors);
    config.monitoring_period = None;
    let world = FaasWorld::new(config, fleet, seed);
    (world, Engine::new(), pools)
}

/// One request: a single 50 ms kernel, model-free.
fn fleet_call(pool: usize) -> AppCall {
    AppCall::new("fleet", format!("pool{pool}"), |_| {
        Box::new(parfait_faas::app::bodies::KernelSeq::new(
            vec![KernelDesc::new("fleet", 0.4, 8, 8, 0.0)],
            SimDuration::ZERO,
        ))
    })
}

/// Schedule arrival `i` and, when it fires, the next one — the heap
/// holds one pending arrival at a time instead of all of them. With
/// ~10⁶ requests, preloading every boxed arrival closure costs hundreds
/// of MB and makes every heap push/pop a cache miss; chaining keeps the
/// heap at O(active devices + in-service work) so per-event cost stays
/// independent of the *total* request count too.
fn chain_arrival(
    eng: &mut Engine<FaasWorld>,
    arrivals: Vec<parfait_simcore::SimTime>,
    i: usize,
    pools: usize,
) {
    if i >= arrivals.len() {
        return;
    }
    let at = arrivals[i];
    eng.schedule_at(at, move |w: &mut FaasWorld, e| {
        submit(w, e, fleet_call(i % pools));
        chain_arrival(e, arrivals, i + 1, pools);
    });
}

/// Run the fleet scenario once and reduce it to [`FleetRun`].
pub fn run_fleet(gpus: usize, tasks: usize, seed: u64, optimized: bool) -> FleetRun {
    let (mut world, mut eng, pools) = build_platform(gpus, seed);
    let workers = gpus * WORKERS_PER_GPU;
    world.set_index_enabled(optimized);
    world.fleet_mut().set_dirty_tracking(optimized);
    // The third fleet-scale optimization: pre-change, every task start/
    // end retained a formatted monitoring row — O(tasks) memory and
    // allocator churn. The baseline keeps that behaviour; the store is
    // write-only, so the toggle cannot affect simulation behaviour
    // (and the equivalence check proves it).
    world.monitor.record_worker_events = !optimized;
    let mut rng = SimRng::new(seed).split(streams::FLEET_ARRIVALS);
    let tr = trace::fleet(&mut rng, &arrival_shape(workers), tasks);
    boot(&mut world, &mut eng);
    chain_arrival(&mut eng, tr.arrivals, 0, pools);
    let t = Instant::now();
    eng.run(&mut world);
    let wall_s = t.elapsed().as_secs_f64();

    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut deltas: Vec<(u64, i32)> = Vec::with_capacity(2 * tasks);
    let mut last_done = 0u64;
    let mut first_submit = u64::MAX;
    for t in world.dfk.tasks() {
        match t.state {
            TaskState::Done => completed += 1,
            TaskState::Failed => failed += 1,
            _ => {}
        }
        let s = t.submitted.as_nanos();
        first_submit = first_submit.min(s);
        deltas.push((s, 1));
        if let Some(f) = t.finished {
            deltas.push((f.as_nanos(), -1));
            last_done = last_done.max(f.as_nanos());
        }
    }
    deltas.sort_unstable();
    let (mut cur, mut peak) = (0i64, 0i64);
    for (_, d) in deltas {
        cur += d as i64;
        peak = peak.max(cur);
    }
    let (recompute_calls, domains_visited, domains_skipped) = world.fleet_mut().cost_counters();
    let behavior = FleetBehavior {
        completed,
        failed,
        makespan_ns: last_done.saturating_sub(first_submit.min(last_done)),
        peak_in_flight: peak as usize,
        events_fired: eng.events_fired(),
        heap_pushes: eng.heap_pushes(),
        heap_pops: eng.heap_pops(),
    };
    FleetRun {
        optimized,
        sim: FleetSimStats {
            gpus,
            workers,
            executors: pools,
            tasks,
            behavior,
            recompute_calls,
            domains_visited,
            domains_skipped,
        },
        wall_s,
        events_per_sec: eng.events_fired() as f64 / wall_s.max(1e-9),
    }
}

/// Run the full comparison: optimized at `tasks`, baseline (both
/// optimizations off) at `tasks / 10`, plus the behavioural-equivalence
/// cross-check at the baseline scale.
pub fn measure(gpus: usize, tasks: usize, seed: u64) -> FleetReport {
    let base_tasks = (tasks / 10).max(1);
    let optimized = run_fleet(gpus, tasks, seed, true);
    let baseline = run_fleet(gpus, base_tasks, seed, false);
    let check = run_fleet(gpus, base_tasks, seed, true);
    assert_eq!(
        baseline.sim.behavior, check.sim.behavior,
        "optimizations changed simulation behaviour"
    );
    assert_eq!(optimized.sim.behavior.failed, 0, "fleet tasks failed");
    assert_eq!(
        optimized.sim.behavior.completed, tasks,
        "not all fleet tasks completed"
    );
    let speedup = optimized.events_per_sec / baseline.events_per_sec.max(1e-9);
    FleetReport {
        seed,
        optimized,
        baseline,
        speedup_events_per_sec: speedup,
        equivalence_checked_tasks: base_tasks,
    }
}

/// Measure and write `BENCH_fleet.json` into `dir`; returns the report
/// for printing.
pub fn run_and_write(
    dir: &std::path::Path,
    gpus: usize,
    tasks: usize,
    seed: u64,
) -> std::io::Result<FleetReport> {
    let report = measure(gpus, tasks, seed);
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(dir.join("BENCH_fleet.json"), json + "\n")?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny fleet, end to end: everything completes, the population
    /// sweep is sane, and disabled-vs-enabled behaviour matches (the
    /// same assertion `measure` makes at scale).
    #[test]
    fn small_fleet_completes_and_matches_across_toggles() {
        let on = run_fleet(4, 300, 7, true);
        let off = run_fleet(4, 300, 7, false);
        assert_eq!(on.sim.behavior, off.sim.behavior);
        assert_eq!(on.sim.behavior.completed, 300);
        assert_eq!(on.sim.behavior.failed, 0);
        assert!(on.sim.behavior.peak_in_flight >= 1);
        assert!(on.sim.behavior.makespan_ns > 0);
        // Dirty tracking must actually skip clean domains on the
        // optimized run and skip nothing on the baseline.
        assert!(on.sim.domains_skipped > 0);
        assert_eq!(off.sim.domains_skipped, 0);
        assert_eq!(on.sim.recompute_calls, off.sim.recompute_calls);
    }

    #[test]
    fn arrival_shape_scales_with_workers() {
        let s = arrival_shape(4000);
        assert!((s.base_rate - 48_000.0).abs() < 1e-9);
        assert!(s.rate_max() > s.base_rate);
    }
}
