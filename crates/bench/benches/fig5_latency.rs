//! Fig. 5 bench: average per-completion inference latency under
//! multiplexing — time-sharing's rapid latency growth vs the slow growth
//! of spatial sharing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfait_bench::scenarios::{llama_multiplex, SEED};
use parfait_core::Strategy;
use std::hint::black_box;

const N: usize = 40;

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for procs in [1usize, 2, 3, 4] {
        let strategies: &[Strategy] = if procs == 1 {
            &[Strategy::TimeSharing]
        } else {
            &[
                Strategy::TimeSharing,
                Strategy::MpsEqual,
                Strategy::MigEqual,
            ]
        };
        for s in strategies {
            let r = llama_multiplex(s, procs, N, SEED);
            println!(
                "fig5 {} x{}: mean latency {:.2}s (p95 {:.2}s)",
                r.mode, procs, r.mean_latency_s, r.p95_latency_s
            );
            let s = s.clone();
            g.bench_with_input(
                BenchmarkId::new(r.mode.clone(), procs),
                &procs,
                move |b, &procs| {
                    b.iter(|| black_box(llama_multiplex(&s, procs, N, SEED).mean_latency_s))
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
