//! Substrate bench: raw event throughput of the DES engine and the GPU
//! arbitration hot path — how many simulated kernels per second the
//! reproduction can push (relevant for scaling the experiments up).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parfait_gpu::host::{launch_kernel, GpuFleet, GpuHost};
use parfait_gpu::{CtxBinding, DeviceMode, GpuSpec, KernelDesc, KernelDone};
use parfait_simcore::{Engine, SimDuration, SimTime};
use std::hint::black_box;

fn bench_engine_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for n in [1_000u64, 10_000, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("timer_events", n), &n, |b, &n| {
            b.iter(|| {
                let mut eng: Engine<u64> = Engine::new();
                let mut count: u64 = 0;
                for i in 0..n {
                    eng.schedule_at(
                        SimTime::from_nanos(i * 997 % 1_000_000),
                        |w: &mut u64, _| *w += 1,
                    );
                }
                eng.run(&mut count);
                black_box(count)
            })
        });
    }
    // Cancellation-heavy: every other timer is cancelled before the run,
    // so half the heap entries are tombstones the engine must skip.
    for n in [10_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("cancel_heavy", n), &n, |b, &n| {
            b.iter(|| {
                let mut eng: Engine<u64> = Engine::new();
                let mut count: u64 = 0;
                let mut ids = Vec::with_capacity(n as usize);
                for i in 0..n {
                    ids.push(eng.schedule_at(
                        SimTime::from_nanos(i * 997 % 1_000_000),
                        |w: &mut u64, _| *w += 1,
                    ));
                }
                for id in ids.iter().step_by(2) {
                    eng.cancel(*id);
                }
                eng.run(&mut count);
                black_box(count)
            })
        });
    }
    // Reschedule-heavy: every timer is cancelled and re-armed later, the
    // dominant pattern for timeout bookkeeping (walltime guards).
    for n in [10_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("reschedule_heavy", n), &n, |b, &n| {
            b.iter(|| {
                let mut eng: Engine<u64> = Engine::new();
                let mut count: u64 = 0;
                let mut ids = Vec::with_capacity(n as usize);
                for i in 0..n {
                    ids.push(eng.schedule_at(
                        SimTime::from_nanos(i * 997 % 1_000_000),
                        |w: &mut u64, _| *w += 1,
                    ));
                }
                for (i, id) in ids.into_iter().enumerate() {
                    eng.cancel(id);
                    eng.schedule_at(
                        SimTime::from_nanos(1_000_000 + (i as u64 * 31) % 1_000_000),
                        |w: &mut u64, _| *w += 1,
                    );
                }
                eng.run(&mut count);
                black_box(count)
            })
        });
    }
    g.finish();
}

struct ChainWorld {
    fleet: GpuFleet,
    remaining: u64,
    ctx: parfait_gpu::CtxId,
}

impl GpuHost for ChainWorld {
    fn fleet_mut(&mut self) -> &mut GpuFleet {
        &mut self.fleet
    }
    fn on_kernel_done(&mut self, eng: &mut Engine<Self>, done: KernelDone) {
        if self.remaining > 0 {
            self.remaining -= 1;
            let desc = KernelDesc::new("chain", 0.02, 108, 108, 0.1);
            let ctx = self.ctx;
            launch_kernel(self, eng, done.gpu, ctx, desc, 0).expect("launch");
        }
    }
}

fn bench_kernel_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("gpu_sim");
    for n in [1_000u64, 10_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("kernel_chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut fleet = GpuFleet::new();
                let gid = fleet.add(GpuSpec::a100_80gb());
                fleet.device_mut(gid).mps.start();
                fleet
                    .device_mut(gid)
                    .set_mode(DeviceMode::MpsDefault)
                    .expect("mode");
                let ctx = fleet
                    .device_mut(gid)
                    .create_context(SimTime::ZERO, "p", CtxBinding::Bare)
                    .expect("ctx");
                let mut w = ChainWorld {
                    fleet,
                    remaining: n,
                    ctx,
                };
                let mut eng = Engine::new();
                launch_kernel(
                    &mut w,
                    &mut eng,
                    gid,
                    ctx,
                    KernelDesc::new("chain", 0.02, 108, 108, 0.1),
                    0,
                )
                .expect("launch");
                eng.run(&mut w);
                black_box(eng.now())
            })
        });
    }
    // Contended arbitration: 8 contexts, recompute on every completion.
    g.bench_function("contended_arbitration", |b| {
        b.iter(|| {
            let mut fleet = GpuFleet::new();
            let gid = fleet.add(GpuSpec::a100_80gb());
            fleet.device_mut(gid).mps.start();
            fleet
                .device_mut(gid)
                .set_mode(DeviceMode::MpsDefault)
                .expect("mode");
            let ctxs: Vec<_> = (0..8)
                .map(|i| {
                    fleet
                        .device_mut(gid)
                        .create_context(SimTime::ZERO, &format!("p{i}"), CtxBinding::Bare)
                        .expect("ctx")
                })
                .collect();
            struct W {
                fleet: GpuFleet,
            }
            impl GpuHost for W {
                fn fleet_mut(&mut self) -> &mut GpuFleet {
                    &mut self.fleet
                }
                fn on_kernel_done(&mut self, _e: &mut Engine<Self>, _d: KernelDone) {}
            }
            let mut w = W { fleet };
            let mut eng = Engine::new();
            for (i, &ctx) in ctxs.iter().enumerate() {
                for j in 0..50u64 {
                    launch_kernel(
                        &mut w,
                        &mut eng,
                        gid,
                        ctx,
                        KernelDesc::new("k", 0.5 + j as f64 * 0.01, 40, 40, 0.3),
                        (i as u64) << 32 | j,
                    )
                    .expect("launch");
                }
            }
            eng.run(&mut w);
            black_box(eng.now())
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_engine_events, bench_kernel_chain
}
criterion_main!(benches);

// Quiet unused-import lint for SimDuration used only in some cfgs.
#[allow(dead_code)]
fn _unused(_: SimDuration) {}
