//! §6 bench: cold-start decomposition and reconfiguration penalties
//! (MPS process restart vs MIG GPU reset).

use criterion::{criterion_group, criterion_main, Criterion};
use parfait_bench::scenarios::{overheads, SEED};
use std::hint::black_box;

fn bench_overheads(c: &mut Criterion) {
    let o = overheads(SEED);
    println!(
        "overheads: 7B cold start {:.1}s (fi {:.1} + ctx {:.1} + load {:.1})",
        o.cold_start_7b.0 + o.cold_start_7b.1 + o.cold_start_7b.2,
        o.cold_start_7b.0,
        o.cold_start_7b.1,
        o.cold_start_7b.2
    );
    println!(
        "overheads: MPS resize {:.1}s stock / {:.1}s with weight cache (baseline completion {:.1}s)",
        o.mps_resize_to_first_completion_s, o.mps_resize_cached_s, o.baseline_completion_s
    );
    let mut g = c.benchmark_group("overheads");
    g.sample_size(10);
    g.bench_function("section6", |b| b.iter(|| black_box(overheads(SEED))));
    g.finish();
}

criterion_group!(benches, bench_overheads);
criterion_main!(benches);
