//! Fig. 4 bench: total task-completion time for 1–4 multiplexed LLaMa2
//! processes under time-sharing, MPS and MIG.
//!
//! Each point runs the warmed §5.2 platform end-to-end; the printed
//! series are the Fig. 4 bars (relative to the 1-process baseline).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfait_bench::scenarios::{llama_multiplex, SEED};
use parfait_core::Strategy;
use std::hint::black_box;

const N: usize = 40;

fn bench_fig4(c: &mut Criterion) {
    let base = llama_multiplex(&Strategy::TimeSharing, 1, N, SEED).makespan_s;
    println!("fig4 baseline (1 process): {base:.1}s for {N} completions");
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for procs in [1usize, 2, 3, 4] {
        let strategies: &[Strategy] = if procs == 1 {
            &[Strategy::TimeSharing]
        } else {
            &[
                Strategy::TimeSharing,
                Strategy::MpsEqual,
                Strategy::MigEqual,
            ]
        };
        for s in strategies {
            let r = llama_multiplex(s, procs, N, SEED);
            println!(
                "fig4 {} x{}: {:.1}s ({:.2}x vs single instance)",
                r.mode,
                procs,
                r.makespan_s,
                base / r.makespan_s
            );
            let s = s.clone();
            g.bench_with_input(
                BenchmarkId::new(r.mode.clone(), procs),
                &procs,
                move |b, &procs| {
                    b.iter(|| black_box(llama_multiplex(&s, procs, N, SEED).makespan_s))
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
