//! Fig. 3 bench: the molecular-design campaign end-to-end (simulation /
//! training / inference phases on the Listing-1 platform).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfait_bench::scenarios::{molecular_campaign, SEED};
use parfait_workloads::molecular::Selection;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    for sel in [Selection::ActiveLearning, Selection::Random] {
        let r = molecular_campaign(sel, SEED);
        println!(
            "fig3 {:?}: wall {:.0}s, GPU idle {:.0}%, best IP {:.3}",
            sel,
            r.wall_s,
            r.gpu_idle_fraction * 100.0,
            r.best_ip
        );
    }
    let mut g = c.benchmark_group("fig3");
    g.sample_size(10);
    for sel in [Selection::ActiveLearning, Selection::Random] {
        g.bench_with_input(
            BenchmarkId::new("campaign", format!("{sel:?}")),
            &sel,
            |b, &sel| b.iter(|| black_box(molecular_campaign(sel, SEED).best_ip)),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
