//! Table 1 bench: every multiplexing technique under the 4-process LLaMa2
//! workload, quantifying the qualitative comparison table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfait_bench::scenarios::{llama_multiplex, mode_label, SEED};
use parfait_core::Strategy;
use std::hint::black_box;

const N: usize = 40;

fn bench_table1(c: &mut Criterion) {
    let strategies = [
        Strategy::TimeSharing,
        Strategy::MpsDefault,
        Strategy::MpsEqual,
        Strategy::MigEqual,
        Strategy::Vgpu,
    ];
    for s in &strategies {
        let r = llama_multiplex(s, 4, N, SEED);
        println!(
            "table1 {}: util {:.1}%, makespan {:.1}s, {:.3} req/s",
            r.mode,
            r.mean_utilization * 100.0,
            r.makespan_s,
            r.throughput
        );
    }
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for s in strategies {
        let label = mode_label(&s);
        g.bench_with_input(BenchmarkId::new("mode", label), &s, |b, s| {
            b.iter(|| black_box(llama_multiplex(s, 4, N, SEED).throughput))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
