//! Fig. 1 bench: per-layer FLOP profiling of the paper's CNN set.
//!
//! Measures the analytic profiling pipeline (architecture construction →
//! per-layer FLOPs → kernel lowering) and prints the Fig. 1 series
//! summary once per model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfait_gpu::GpuSpec;
use parfait_workloads::dnn::{exec, models};
use std::hint::black_box;

fn bench_fig1(c: &mut Criterion) {
    let spec = GpuSpec::a100_80gb();
    let mut g = c.benchmark_group("fig1");
    for name in ["alexnet", "vgg16", "resnet50", "resnet101"] {
        // One-time series printout (the actual figure data).
        let m = models::by_name(name).expect("catalog model");
        let series = m.conv_series();
        let max = series.iter().map(|s| s.1).fold(0.0, f64::max);
        let min = series.iter().map(|s| s.1).fold(f64::INFINITY, f64::min);
        println!(
            "fig1 {name}: {} conv layers, {:.2} GFLOPs/image, per-layer spread {:.1}x",
            series.len(),
            m.flops_per_image() / 1e9,
            max / min
        );
        g.bench_with_input(BenchmarkId::new("profile", name), &name, |b, name| {
            b.iter(|| {
                let m = models::by_name(name).expect("model");
                let series = m.conv_series();
                let kernels = exec::inference_kernels(&m, &spec, 1);
                black_box((series.len(), kernels.len()))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
