//! §7 ablation benches: the weight cache's effect on MPS resizes, and the
//! right-sizer's recommendation cost over full-grid latency profiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfait_bench::scenarios::{overheads, SEED};
use parfait_core::rightsize;
use parfait_gpu::GpuSpec;
use parfait_workloads::dnn::{exec, models};
use parfait_workloads::LlmSpec;
use std::hint::black_box;

fn bench_weightcache(c: &mut Criterion) {
    let o = overheads(SEED);
    println!(
        "ablation weight-cache: resize {:.1}s stock vs {:.1}s cached ({:.2}x)",
        o.mps_resize_to_first_completion_s,
        o.mps_resize_cached_s,
        o.mps_resize_to_first_completion_s / o.mps_resize_cached_s
    );
    let mut g = c.benchmark_group("ablation_weightcache");
    g.sample_size(10);
    g.bench_function("resize_paths", |b| {
        b.iter(|| {
            let o = overheads(SEED);
            black_box((o.mps_resize_to_first_completion_s, o.mps_resize_cached_s))
        })
    });
    g.finish();
}

fn bench_rightsize(c: &mut Criterion) {
    let spec = GpuSpec::a100_40gb();
    let mut g = c.benchmark_group("ablation_rightsize");
    let llm = LlmSpec::llama2_7b(4);
    {
        let pts = rightsize::profile(
            |sms| llm.solo_completion_seconds(&spec, sms, 16, 27),
            rightsize::full_grid(&spec),
        );
        let rec = rightsize::recommend(&spec, &pts, llm.footprint_bytes(), 0.10).unwrap();
        println!(
            "ablation right-size llama2-7b: knee {:.0} SMs -> {}% MPS / {:?}",
            rec.knee_sms, rec.mps_percentage, rec.mig_profile
        );
    }
    g.bench_function("llama2-7b", |b| {
        b.iter(|| {
            let pts = rightsize::profile(
                |sms| llm.solo_completion_seconds(&spec, sms, 16, 27),
                rightsize::full_grid(&spec),
            );
            black_box(rightsize::recommend(
                &spec,
                &pts,
                llm.footprint_bytes(),
                0.10,
            ))
        })
    });
    for name in ["resnet50", "vgg16"] {
        let m = models::by_name(name).expect("model");
        g.bench_with_input(BenchmarkId::new("cnn", name), &m, |b, m| {
            b.iter(|| {
                let pts = rightsize::profile(
                    |sms| exec::solo_latency(m, &spec, 1, sms),
                    rightsize::full_grid(&spec),
                );
                black_box(rightsize::recommend(&spec, &pts, m.weight_bytes(4), 0.10))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_weightcache, bench_rightsize);
criterion_main!(benches);
