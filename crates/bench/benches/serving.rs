//! Extension bench: open-loop serving capacity per sharing mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfait_bench::scenarios::{open_loop_serving, SEED};
use parfait_core::Strategy;
use std::hint::black_box;

fn bench_serving(c: &mut Criterion) {
    for rate in [0.15f64, 0.30, 0.45] {
        for (s, procs) in [(Strategy::TimeSharing, 1usize), (Strategy::MpsEqual, 4)] {
            let r = open_loop_serving(&s, procs, rate, 40, SEED);
            println!(
                "serving {} x{procs} @ {rate:.2} req/s: achieved {:.3}, p95 turnaround {:.1}s",
                r.mode, r.achieved_rate, r.p95_turnaround_s
            );
        }
    }
    let mut g = c.benchmark_group("serving");
    g.sample_size(10);
    for (s, procs) in [(Strategy::TimeSharing, 1usize), (Strategy::MpsEqual, 4)] {
        let label = format!("{}x{procs}", if procs == 1 { "single" } else { "mps" });
        g.bench_with_input(BenchmarkId::new("poisson_0.3", label), &s, move |b, s| {
            b.iter(|| black_box(open_loop_serving(s, procs, 0.3, 40, SEED).achieved_rate))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
