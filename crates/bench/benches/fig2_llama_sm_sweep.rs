//! Fig. 2 bench: LLaMa2 completion latency vs SM allocation.
//!
//! Each benchmark point runs the full simulated platform (one MPS-capped
//! worker, warm model) for a 20-word completion and reports the measured
//! latency series that regenerates Fig. 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parfait_bench::scenarios::{fig2_point, SEED};
use parfait_workloads::LlmSpec;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2");
    g.sample_size(10);
    for (label, llm) in [
        ("llama2-7b", LlmSpec::llama2_7b(4)),
        ("llama2-13b", LlmSpec::llama2_13b(4)),
    ] {
        for pct in [5u32, 13, 19, 25, 50, 100] {
            let latency = fig2_point(&llm, pct, SEED);
            println!("fig2 {label} @ {pct}% SMs: {latency:.3}s per completion");
            g.bench_with_input(
                BenchmarkId::new(label, format!("{pct}pct")),
                &pct,
                |b, &pct| b.iter(|| black_box(fig2_point(&llm, pct, SEED))),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
