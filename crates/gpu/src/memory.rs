//! Device-memory accounting.
//!
//! The paper's headline constraint — "due to memory constraints, we could
//! fit only four concurrent instances of LLaMa2 (7B) in an 80 GB A100" —
//! is enforced here. A [`MemoryPool`] tracks per-owner allocations against
//! a capacity; optional **UVM oversubscription** admits allocations beyond
//! capacity but marks the pool overcommitted, which the execution engine
//! translates into a paging slowdown (`GpuSpec::uvm_penalty`).

use crate::error::{GpuError, Result};
use std::collections::BTreeMap;

/// Byte-accurate allocator keyed by an opaque owner id (GPU context).
#[derive(Debug, Clone)]
pub struct MemoryPool {
    capacity: u64,
    used: u64,
    by_owner: BTreeMap<u32, u64>,
    /// Admit allocations beyond capacity (CUDA unified memory).
    allow_oversubscription: bool,
    /// High-water mark of `used`.
    peak: u64,
}

impl MemoryPool {
    /// Pool with `capacity` bytes and strict (no-UVM) admission.
    pub fn new(capacity: u64) -> Self {
        MemoryPool {
            capacity,
            used: 0,
            by_owner: BTreeMap::new(),
            allow_oversubscription: false,
            peak: 0,
        }
    }

    /// Enable/disable UVM oversubscription.
    pub fn set_oversubscription(&mut self, allow: bool) {
        self.allow_oversubscription = allow;
    }

    /// Pool capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated (may exceed capacity under UVM).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes free (zero when overcommitted).
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// Highest `used` observed.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// True when allocations exceed physical capacity.
    pub fn overcommitted(&self) -> bool {
        self.used > self.capacity
    }

    /// Bytes held by one owner.
    pub fn owner_usage(&self, owner: u32) -> u64 {
        self.by_owner.get(&owner).copied().unwrap_or(0)
    }

    /// Allocate `bytes` for `owner`.
    pub fn alloc(&mut self, owner: u32, bytes: u64) -> Result<()> {
        if !self.allow_oversubscription && self.used + bytes > self.capacity {
            return Err(GpuError::OutOfMemory {
                requested: bytes,
                available: self.free(),
            });
        }
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        *self.by_owner.entry(owner).or_insert(0) += bytes;
        Ok(())
    }

    /// Free `bytes` for `owner`.
    pub fn freeb(&mut self, owner: u32, bytes: u64) -> Result<()> {
        let held = self.by_owner.get_mut(&owner).ok_or(GpuError::BadFree {
            requested: bytes,
            held: 0,
        })?;
        if *held < bytes {
            return Err(GpuError::BadFree {
                requested: bytes,
                held: *held,
            });
        }
        *held -= bytes;
        if *held == 0 {
            self.by_owner.remove(&owner);
        }
        self.used -= bytes;
        Ok(())
    }

    /// Release everything held by `owner` (context teardown); returns the
    /// number of bytes released.
    pub fn release_owner(&mut self, owner: u32) -> u64 {
        match self.by_owner.remove(&owner) {
            Some(b) => {
                self.used -= b;
                b
            }
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GIB;

    #[test]
    fn strict_pool_rejects_overflow() {
        let mut p = MemoryPool::new(10 * GIB);
        p.alloc(1, 6 * GIB).unwrap();
        let err = p.alloc(2, 6 * GIB).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        assert_eq!(p.used(), 6 * GIB);
        assert_eq!(p.free(), 4 * GIB);
    }

    #[test]
    fn exactly_four_llama7b_fit_in_80gb() {
        // fp16 7B ≈ 13.04 GiB weights + ~3.5 GiB KV/context ≈ 16.6 GiB.
        let per_instance = (16.6 * GIB as f64) as u64;
        let mut p = MemoryPool::new(80 * GIB);
        for owner in 0..4 {
            p.alloc(owner, per_instance).unwrap();
        }
        assert!(
            p.alloc(4, per_instance).is_err(),
            "fifth instance must not fit"
        );
    }

    #[test]
    fn uvm_admits_and_flags_overcommit() {
        let mut p = MemoryPool::new(10 * GIB);
        p.set_oversubscription(true);
        p.alloc(1, 16 * GIB).unwrap();
        assert!(p.overcommitted());
        assert_eq!(p.free(), 0);
        p.freeb(1, 8 * GIB).unwrap();
        assert!(!p.overcommitted());
    }

    #[test]
    fn per_owner_accounting_and_release() {
        let mut p = MemoryPool::new(100);
        p.alloc(7, 30).unwrap();
        p.alloc(7, 20).unwrap();
        p.alloc(8, 10).unwrap();
        assert_eq!(p.owner_usage(7), 50);
        assert_eq!(p.release_owner(7), 50);
        assert_eq!(p.owner_usage(7), 0);
        assert_eq!(p.used(), 10);
        assert_eq!(p.release_owner(7), 0);
    }

    #[test]
    fn bad_free_detected() {
        let mut p = MemoryPool::new(100);
        p.alloc(1, 10).unwrap();
        assert!(matches!(
            p.freeb(1, 20),
            Err(GpuError::BadFree { held: 10, .. })
        ));
        assert!(matches!(
            p.freeb(2, 1),
            Err(GpuError::BadFree { held: 0, .. })
        ));
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut p = MemoryPool::new(100);
        p.alloc(1, 60).unwrap();
        p.freeb(1, 50).unwrap();
        p.alloc(1, 20).unwrap();
        assert_eq!(p.peak(), 60);
        assert_eq!(p.used(), 30);
    }
}
