#![warn(missing_docs)]

//! # parfait-gpu
//!
//! A simulated data-center GPU substrate for the PARFAIT reproduction of
//! Dhakal et al., *Fine-grained accelerator partitioning for ML and
//! scientific computing in FaaS platforms* (SC-W 2023).
//!
//! The paper's experiments run on real A100s; this crate substitutes a
//! calibrated performance model that preserves the *scheduling* behaviour
//! the paper studies (see DESIGN.md §1 for the substitution argument):
//!
//! * [`spec`] — device catalog (A100-40/80 GB, H100, MI210).
//! * [`kernel`] — wave-quantized kernel execution-time model.
//! * [`memory`] — byte-accurate allocator with UVM oversubscription.
//! * [`sharing`] — Table 1 as a type: time-sharing, default MPS,
//!   MPS-with-percentage, MIG, vGPU.
//! * [`mps`] — `nvidia-cuda-mps-control` daemon semantics, including the
//!   restart-to-resize constraint (§6).
//! * [`mig`] — profile catalog, slice-placement rules, instance lifecycle.
//! * [`device`] — the arbitration engine combining all of the above.
//! * [`host`] — discrete-event glue ([`host::GpuHost`], [`host::GpuFleet`]).
//! * [`nvml`] — NVML/`nvidia-smi`-style management facade.
//! * [`context`] — §6 cold-start decomposition model.

pub mod context;
pub mod device;
pub mod error;
pub mod host;
pub mod kernel;
pub mod memory;
pub mod mig;
pub mod mps;
pub mod nvml;
pub mod sharing;
pub mod spec;

pub use device::{CtxId, GpuDevice, GpuId, KernelDone, KernelId};
pub use error::{GpuError, Result};
pub use host::{launch_kernel, resync, GpuFleet, GpuHost};
pub use kernel::KernelDesc;
pub use sharing::{CtxBinding, DeviceMode, ShareConfig};
pub use spec::{GpuSpec, Vendor, GIB};
