//! Kernel descriptions and the wave-based execution-time model.
//!
//! A GPU kernel is dispatched as a grid of *thread blocks*; the hardware
//! places blocks on SMs in **waves**. With `B` blocks on `s` usable SMs the
//! kernel takes `ceil(B / s)` waves, so the *effective* parallelism is
//! `B / ceil(B / s)` SMs — a staircase in `s` that is exactly the phenomenon
//! behind the paper's Fig. 2: LLaMa2's small decode grids stop benefiting
//! beyond ~20 SMs, which is why the model multiplexes so well.
//!
//! On top of the wave model, each kernel declares a `mem_intensity`: the
//! fraction of device HBM bandwidth it consumes when running at full
//! effective parallelism. Sharing domains (whole device under MPS, a slice
//! under MIG) scale kernels down proportionally when aggregate demand
//! exceeds available bandwidth — this is the "no isolation"/contention
//! column of Table 1 made quantitative.

use serde::{Deserialize, Serialize};

/// Immutable description of one kernel launch.
///
/// ```
/// use parfait_gpu::KernelDesc;
///
/// // A decode-style kernel: 2 SM-seconds of work, 20-block grid.
/// let k = KernelDesc::new("decode", 2.0, 20, 20, 0.3);
/// assert_eq!(k.effective_sms(108.0), 20.0); // can't use more than its grid
/// assert_eq!(k.effective_sms(14.0), 10.0);  // 2 waves of ≤14 blocks
/// assert_eq!(k.solo_runtime(20.0), 0.1);    // 2 SM·s / 20 SMs
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Human-readable kernel name (e.g. `"llama2.decode"`).
    pub name: &'static str,
    /// Total work in SM-seconds at full efficiency: the kernel finishes
    /// after accumulating this much `effective-SMs × seconds`.
    pub work_sm_s: f64,
    /// Thread blocks in the launch grid.
    pub blocks: u32,
    /// Cap on useful concurrency (occupancy limits, serial fractions,
    /// launch overheads). Effective SMs never exceed
    /// `min(blocks, max_useful_sms)`.
    pub max_useful_sms: u32,
    /// Fraction of the device's HBM bandwidth consumed at full effective
    /// parallelism, in `[0, 1]`.
    pub mem_intensity: f64,
}

impl KernelDesc {
    /// Construct, validating ranges.
    pub fn new(
        name: &'static str,
        work_sm_s: f64,
        blocks: u32,
        max_useful_sms: u32,
        mem_intensity: f64,
    ) -> Self {
        assert!(
            work_sm_s >= 0.0 && work_sm_s.is_finite(),
            "bad work {work_sm_s}"
        );
        assert!(blocks >= 1, "kernel must have at least one block");
        assert!(max_useful_sms >= 1, "max_useful_sms must be >= 1");
        assert!(
            (0.0..=1.0).contains(&mem_intensity),
            "mem_intensity {mem_intensity} outside [0,1]"
        );
        KernelDesc {
            name,
            work_sm_s,
            blocks,
            max_useful_sms,
            mem_intensity,
        }
    }

    /// Highest parallelism the kernel can exploit, in SMs.
    #[inline]
    pub fn peak_parallelism(&self) -> u32 {
        self.blocks.min(self.max_useful_sms)
    }

    /// Effective SMs achieved when `alloc` SMs are made available.
    ///
    /// Wave quantization: usable SMs are `floor(min(alloc, peak))`; the
    /// launch needs `ceil(blocks / usable)` waves, so the average rate is
    /// `blocks / waves`. Sub-1 allocations degrade linearly (a kernel
    /// time-sliced onto a fraction of an SM).
    pub fn effective_sms(&self, alloc: f64) -> f64 {
        let peak = self.peak_parallelism() as f64;
        let a = alloc.min(peak);
        if a <= 0.0 {
            return 0.0;
        }
        if a < 1.0 {
            return a;
        }
        let usable = a.floor();
        let waves = (self.blocks as f64 / usable).ceil();
        self.blocks as f64 / waves
    }

    /// Run time in seconds on a dedicated allocation of `alloc` SMs
    /// (no bandwidth contention).
    pub fn solo_runtime(&self, alloc: f64) -> f64 {
        let eff = self.effective_sms(alloc);
        if eff <= 0.0 {
            f64::INFINITY
        } else {
            self.work_sm_s / eff
        }
    }

    /// HBM bandwidth demand (fraction of device bandwidth) when running at
    /// `eff` effective SMs.
    pub fn bandwidth_demand(&self, eff: f64) -> f64 {
        let peak = self.peak_parallelism() as f64;
        if peak <= 0.0 {
            0.0
        } else {
            self.mem_intensity * (eff / peak).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(blocks: u32, max_useful: u32) -> KernelDesc {
        KernelDesc::new("t", 1.0, blocks, max_useful, 0.0)
    }

    #[test]
    fn effective_sms_staircase() {
        let d = k(20, 108);
        assert_eq!(d.effective_sms(108.0), 20.0); // one wave
        assert_eq!(d.effective_sms(20.0), 20.0); // exactly one wave
        assert_eq!(d.effective_sms(19.0), 10.0); // 2 waves of ≤19
        assert_eq!(d.effective_sms(14.0), 10.0); // ceil(20/14)=2
        assert_eq!(d.effective_sms(10.0), 10.0); // 2 waves exactly
        assert_eq!(d.effective_sms(9.0), 20.0 / 3.0); // 3 waves
        assert_eq!(d.effective_sms(5.0), 5.0); // 4 waves
    }

    #[test]
    fn max_useful_caps_alloc() {
        let d = k(200, 20);
        assert_eq!(d.effective_sms(108.0), 20.0);
        assert_eq!(d.effective_sms(50.0), 20.0);
    }

    #[test]
    fn fractional_allocation_degrades_linearly() {
        let d = k(20, 108);
        assert!((d.effective_sms(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(d.effective_sms(0.0), 0.0);
    }

    #[test]
    fn solo_runtime_inverse_in_eff() {
        let d = KernelDesc::new("t", 10.0, 20, 108, 0.0);
        assert!((d.solo_runtime(20.0) - 0.5).abs() < 1e-12);
        assert!((d.solo_runtime(10.0) - 1.0).abs() < 1e-12);
        assert_eq!(d.solo_runtime(0.0), f64::INFINITY);
    }

    #[test]
    fn monotone_nondecreasing_in_alloc() {
        let d = k(37, 64);
        let mut prev = 0.0;
        for s in 1..=128 {
            let e = d.effective_sms(s as f64);
            assert!(
                e + 1e-12 >= prev,
                "effective SMs decreased at alloc={s}: {prev} -> {e}"
            );
            prev = e;
        }
    }

    #[test]
    fn bandwidth_scales_with_eff() {
        let d = KernelDesc::new("t", 1.0, 20, 20, 0.4);
        assert!((d.bandwidth_demand(20.0) - 0.4).abs() < 1e-12);
        assert!((d.bandwidth_demand(10.0) - 0.2).abs() < 1e-12);
        assert_eq!(d.bandwidth_demand(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_blocks_rejected() {
        let _ = KernelDesc::new("bad", 1.0, 0, 1, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn bad_intensity_rejected() {
        let _ = KernelDesc::new("bad", 1.0, 1, 1, 1.5);
    }
}
