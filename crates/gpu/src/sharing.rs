//! Multiplexing modes and arbitration configuration — Table 1 of the paper
//! as a type.
//!
//! | Mode | Table 1 row | Mechanism modelled |
//! |------|-------------|--------------------|
//! | [`DeviceMode::TimeSharing`] | Time-sharing | quantum round-robin between process contexts, context-switch penalty, one context's kernels at a time |
//! | [`DeviceMode::MpsDefault`] | Default CUDA MPS | all kernels co-scheduled, proportional SM split under overload, shared HBM bandwidth (no isolation) |
//! | [`DeviceMode::MpsPartitioned`] | CUDA MPS with GPU % | per-client SM caps from `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE`; caps may oversubscribe |
//! | [`DeviceMode::Mig`] | Multi-Instance GPU | hard SM/memory/bandwidth slices, placement rules, reset-to-reconfigure |
//! | [`DeviceMode::Vgpu`] | vGPU | homogeneous static split at VM granularity |
//!
//! AMD equivalents (Table 1 column): `MpsDefault` doubles as ROCm's default
//! concurrent scheduling and `MpsPartitioned` as CU masking — an
//! [`crate::spec::Vendor::Amd`] device accepts those modes but rejects
//! `Mig`/`Vgpu`.

use parfait_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// How a device arbitrates SMs between process contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceMode {
    /// Default NVIDIA behaviour without MPS: one process's kernels own the
    /// GPU at a time, rotated on a scheduling quantum.
    TimeSharing,
    /// `nvidia-cuda-mps-control` without percentages.
    MpsDefault,
    /// MPS with per-client active-thread percentages.
    MpsPartitioned,
    /// MIG mode (instances managed by [`crate::mig::MigManager`]).
    Mig,
    /// vGPU-style homogeneous split into `slots` equal shares.
    Vgpu {
        /// Number of equal VM slots.
        slots: u32,
    },
}

impl DeviceMode {
    /// Short stable name for logs and tables.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceMode::TimeSharing => "time-sharing",
            DeviceMode::MpsDefault => "mps-default",
            DeviceMode::MpsPartitioned => "mps-partitioned",
            DeviceMode::Mig => "mig",
            DeviceMode::Vgpu { .. } => "vgpu",
        }
    }

    /// Does this mode give co-resident clients memory isolation?
    /// (Table 1: only MIG and vGPU do.)
    pub fn memory_isolated(&self) -> bool {
        matches!(self, DeviceMode::Mig | DeviceMode::Vgpu { .. })
    }

    /// Can kernels from different processes execute concurrently?
    pub fn spatial(&self) -> bool {
        !matches!(self, DeviceMode::TimeSharing)
    }
}

/// Tunables of the arbitration model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShareConfig {
    /// Time-sharing scheduling quantum.
    pub quantum: SimDuration,
    /// Context-switch penalty when time-sharing rotates processes
    /// (pipeline drain + context restore).
    pub switch_penalty: SimDuration,
    /// MPS co-residency interference: with `n` client processes actively
    /// running kernels, every MPS kernel's rate is scaled by
    /// `1 / (1 + mps_interference * (n - 1))` — the L2/scheduler
    /// contention MPS does not isolate (Table 1's "resource starved due
    /// to contention"). Zero (the default) disables the term; the paper
    /// reproduction scenarios use 0.06.
    pub mps_interference: f64,
}

impl Default for ShareConfig {
    fn default() -> Self {
        ShareConfig {
            // A few kernel launches worth of exclusive access before the
            // driver rotates runlists between processes.
            quantum: SimDuration::from_millis(25),
            switch_penalty: SimDuration::from_micros(750),
            mps_interference: 0.0,
        }
    }
}

/// How a new process context binds to the device, mirroring what the
/// Parsl worker environment expresses (§4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CtxBinding {
    /// Plain `CUDA_VISIBLE_DEVICES=<gpu>`; valid in `TimeSharing` and
    /// `MpsDefault` modes.
    Bare,
    /// `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE=<pct>` under partitioned MPS.
    MpsPercentage(u32),
    /// `CUDA_VISIBLE_DEVICES=MIG-<uuid>`.
    MigInstance(String),
    /// Attached to a vGPU slot.
    VgpuSlot(u32),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_taxonomy_matches_table1() {
        assert!(!DeviceMode::TimeSharing.spatial());
        assert!(DeviceMode::MpsDefault.spatial());
        assert!(DeviceMode::MpsPartitioned.spatial());
        assert!(DeviceMode::Mig.spatial());
        assert!(!DeviceMode::MpsDefault.memory_isolated());
        assert!(!DeviceMode::MpsPartitioned.memory_isolated());
        assert!(DeviceMode::Mig.memory_isolated());
        assert!(DeviceMode::Vgpu { slots: 4 }.memory_isolated());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(DeviceMode::TimeSharing.name(), "time-sharing");
        assert_eq!(DeviceMode::Vgpu { slots: 2 }.name(), "vgpu");
    }
}
