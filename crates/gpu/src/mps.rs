//! CUDA Multi-Process Service (MPS) control-daemon model.
//!
//! `nvidia-cuda-mps-control` lets kernels from *different processes* run
//! concurrently on one GPU. Two modes matter for the paper:
//!
//! * **Default MPS** — clients share all SMs; the scheduler packs kernels
//!   freely (Table 1: "highest utilization", but "applications can be
//!   resource starved due to contention").
//! * **MPS with GPU percentage** — each client process is capped at
//!   `CUDA_MPS_ACTIVE_THREAD_PERCENTAGE` percent of the SMs. The paper's
//!   key operational constraint (§6): the percentage is read **when the
//!   client process starts** and cannot change while it lives — resizing
//!   a partition means restarting the function process.
//!
//! The daemon here owns no scheduling; it validates client registration
//! and percentage semantics. The SM arbitration itself happens in
//! [`crate::device`].

use crate::error::{GpuError, Result};
use serde::Serialize;
use std::collections::BTreeMap;

/// Environment key the paper sets before forking workers (§4.1). The text
/// introduces it as `CUDA_MPS_ACTIVE_GPU_PERCENTAGE` and then uses the
/// driver's real name; we use the real one.
pub const MPS_ENV_VAR: &str = "CUDA_MPS_ACTIVE_THREAD_PERCENTAGE";

/// One registered MPS client (a function process with a CUDA context).
#[derive(Debug, Clone, Serialize)]
pub struct MpsClient {
    /// Device-level context id this client maps to.
    pub ctx: u32,
    /// SM cap as a percentage (`None` = default MPS, no cap).
    pub percentage: Option<u32>,
}

/// Per-device MPS daemon state.
#[derive(Debug, Clone, Default)]
pub struct MpsDaemon {
    running: bool,
    clients: BTreeMap<u32, MpsClient>,
    /// Lifetime connection counter (monitoring).
    total_served: u64,
}

impl MpsDaemon {
    /// Daemon not yet started (`nvidia-cuda-mps-control -d` not run).
    pub fn new() -> Self {
        MpsDaemon::default()
    }

    /// Is the control daemon up?
    pub fn running(&self) -> bool {
        self.running
    }

    /// Start the daemon. Idempotent.
    pub fn start(&mut self) {
        self.running = true;
    }

    /// Stop the daemon. Fails while clients are connected (the real
    /// control daemon refuses `quit` with active clients).
    pub fn stop(&mut self) -> Result<()> {
        if !self.clients.is_empty() {
            return Err(GpuError::DeviceBusy {
                contexts: self.clients.len(),
            });
        }
        self.running = false;
        Ok(())
    }

    /// Register a client process whose environment carried `percentage`
    /// (as set from [`MPS_ENV_VAR`]). `None` means default/no cap.
    pub fn connect(&mut self, ctx: u32, percentage: Option<u32>) -> Result<()> {
        if !self.running {
            return Err(GpuError::WrongMode {
                expected: "MPS daemon running",
                actual: "MPS daemon stopped",
            });
        }
        if let Some(p) = percentage {
            if !(1..=100).contains(&p) {
                return Err(GpuError::BadPercentage(p));
            }
        }
        self.clients.insert(ctx, MpsClient { ctx, percentage });
        self.total_served += 1;
        Ok(())
    }

    /// Client exits.
    pub fn disconnect(&mut self, ctx: u32) {
        self.clients.remove(&ctx);
    }

    /// The percentage cap for a context, if any.
    pub fn percentage_of(&self, ctx: u32) -> Option<u32> {
        self.clients.get(&ctx).and_then(|c| c.percentage)
    }

    /// Attempting to change a live client's percentage models the §6
    /// constraint: the env var is read at process start, so this always
    /// fails; the caller must restart the process instead.
    pub fn try_resize_live_client(&mut self, ctx: u32, _new_pct: u32) -> Result<()> {
        if self.clients.contains_key(&ctx) {
            Err(GpuError::DeviceBusy { contexts: 1 })
        } else {
            Err(GpuError::UnknownContext(ctx))
        }
    }

    /// Connected clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Lifetime connections (monitoring counter).
    pub fn total_served(&self) -> u64 {
        self.total_served
    }

    /// Sum of caps across live clients, treating `None` as 100. The paper
    /// notes MPS allows oversubscription (sums above 100 are legal).
    pub fn total_percentage(&self) -> u32 {
        self.clients
            .values()
            .map(|c| c.percentage.unwrap_or(100))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_requires_running_daemon() {
        let mut d = MpsDaemon::new();
        assert!(d.connect(1, Some(50)).is_err());
        d.start();
        d.connect(1, Some(50)).unwrap();
        assert_eq!(d.percentage_of(1), Some(50));
    }

    #[test]
    fn percentage_validation() {
        let mut d = MpsDaemon::new();
        d.start();
        assert!(matches!(
            d.connect(1, Some(0)),
            Err(GpuError::BadPercentage(0))
        ));
        assert!(matches!(
            d.connect(1, Some(101)),
            Err(GpuError::BadPercentage(101))
        ));
        d.connect(1, Some(100)).unwrap();
        d.connect(2, None).unwrap();
        assert_eq!(d.percentage_of(2), None);
    }

    #[test]
    fn live_resize_always_fails() {
        // §6: "Once the GPU% is allocated for a process with MPS, the GPU%
        // cannot be changed while the process is still alive."
        let mut d = MpsDaemon::new();
        d.start();
        d.connect(1, Some(25)).unwrap();
        assert!(d.try_resize_live_client(1, 50).is_err());
        assert!(matches!(
            d.try_resize_live_client(9, 50),
            Err(GpuError::UnknownContext(9))
        ));
        // Restart path: disconnect, reconnect with the new value.
        d.disconnect(1);
        d.connect(1, Some(50)).unwrap();
        assert_eq!(d.percentage_of(1), Some(50));
    }

    #[test]
    fn oversubscription_is_legal() {
        let mut d = MpsDaemon::new();
        d.start();
        d.connect(1, Some(60)).unwrap();
        d.connect(2, Some(60)).unwrap();
        assert_eq!(d.total_percentage(), 120);
    }

    #[test]
    fn stop_refuses_with_clients() {
        let mut d = MpsDaemon::new();
        d.start();
        d.connect(1, None).unwrap();
        assert!(d.stop().is_err());
        d.disconnect(1);
        d.stop().unwrap();
        assert!(!d.running());
    }

    #[test]
    fn served_counter_is_lifetime() {
        let mut d = MpsDaemon::new();
        d.start();
        d.connect(1, None).unwrap();
        d.disconnect(1);
        d.connect(2, None).unwrap();
        assert_eq!(d.client_count(), 1);
        assert_eq!(d.total_served(), 2);
    }
}
