//! The simulated GPU device: contexts, kernel execution, SM arbitration.
//!
//! [`GpuDevice`] is a *passive* state machine over virtual time. The owner
//! calls [`GpuDevice::launch`], [`GpuDevice::collect_finished`] and
//! [`GpuDevice::next_wake`]; the engine glue in [`crate::host`] turns those
//! into discrete events.
//!
//! ## Execution model
//!
//! Between events every active kernel `k` progresses at a constant rate
//! `rate_k` (effective SMs). Rates are recomputed on every change (launch,
//! completion, context churn, time-sharing rotation) in three steps:
//!
//! 1. **SM shares** — each context gets at most its cap (MPS percentage,
//!    MIG instance size, vGPU slot, or the whole device); kernels inside a
//!    context split the cap proportionally to their block demand; the
//!    domain (device or MIG slice) then scales everyone down if
//!    oversubscribed.
//! 2. **Wave quantization** — shares are pushed through
//!    [`KernelDesc::effective_sms`], producing the staircase that makes
//!    small-grid LLM kernels insensitive to SMs beyond ~20 (Fig. 2).
//! 3. **Bandwidth contention** — aggregate HBM demand above the domain's
//!    bandwidth scales all rates down proportionally. This is what MPS/
//!    time-sharing share (no isolation) and MIG partitions (isolation),
//!    quantifying Table 1's utilization-vs-isolation trade-off.

use crate::error::{GpuError, Result};
use crate::kernel::KernelDesc;
use crate::memory::MemoryPool;
use crate::mig::MigManager;
use crate::mps::MpsDaemon;
use crate::sharing::{CtxBinding, DeviceMode, ShareConfig};
use crate::spec::{GpuSpec, Vendor};
use parfait_simcore::stats::TimeWeighted;
use parfait_simcore::{EventId, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

/// Fleet-level device index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GpuId(pub u32);

/// Device-local context (process) id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(pub u32);

/// Device-local kernel id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub u64);

/// Work left below this many SM-seconds counts as finished (absorbs f64
/// integration error; ≈1 µs of a single SM).
const WORK_EPS: f64 = 1e-6;

/// vGPU mediation efficiency: vGPU multiplexes at VM rather than process
/// level (Table 1), paying hypervisor scheduling overhead on every slot.
const VGPU_SCHED_EFFICIENCY: f64 = 0.88;

/// Completion record handed to [`crate::host::GpuHost::on_kernel_done`].
#[derive(Debug, Clone)]
pub struct KernelDone {
    /// Device the kernel ran on.
    pub gpu: GpuId,
    /// Owning context.
    pub ctx: CtxId,
    /// Kernel id.
    pub kernel: KernelId,
    /// Caller-provided correlation tag.
    pub tag: u64,
    /// Kernel name.
    pub name: &'static str,
    /// Launch time.
    pub launched: SimTime,
    /// Completion time.
    pub finished: SimTime,
}

/// A process's CUDA context on this device.
#[derive(Debug, Clone)]
pub struct GpuContext {
    /// Context id.
    pub id: CtxId,
    /// Process label (worker name) for monitoring.
    pub label: String,
    /// How it was bound at creation.
    pub binding: CtxBinding,
    /// Resolved MIG instance (when `binding` is `MigInstance`).
    pub mig_instance: Option<u32>,
    /// Resolved vGPU slot.
    pub vgpu_slot: Option<u32>,
    /// MPS SM cap percentage.
    pub mps_pct: Option<u32>,
}

#[derive(Debug, Clone)]
struct ActiveKernel {
    /// Monotonic kernel id (never reused, unlike the slab slot).
    kid: u64,
    ctx: u32,
    desc: KernelDesc,
    remaining: f64,
    rate: f64,
    tag: u64,
    launched: SimTime,
}

/// Slab of in-flight kernels addressed by slot index.
///
/// `order` lists live slots in kernel-id (= launch) ascending order and
/// is what every numeric pass iterates: f64 summation order is part of
/// the reproduction contract (see `arbitration_regression`), and kid
/// order is exactly what the previous `BTreeMap<u64, _>` storage gave.
/// Slots are recycled through a free list, so steady-state launch/
/// complete churn does not grow the slab or allocate.
#[derive(Debug, Default)]
struct KernelSlab {
    slots: Vec<Option<ActiveKernel>>,
    free: Vec<u32>,
    /// Live slots, kid-ascending. Appends stay sorted because kids are
    /// monotonic; removals preserve relative order.
    order: Vec<u32>,
    /// In-flight kernel count per context; keys are exactly the
    /// contexts with work on the device, ascending.
    ctx_counts: BTreeMap<u32, u32>,
}

impl KernelSlab {
    fn len(&self) -> usize {
        self.order.len()
    }

    fn get(&self, slot: u32) -> &ActiveKernel {
        self.slots[slot as usize].as_ref().expect("live slot")
    }

    fn get_mut(&mut self, slot: u32) -> &mut ActiveKernel {
        self.slots[slot as usize].as_mut().expect("live slot")
    }

    /// Live kernels in kid-ascending order.
    fn iter(&self) -> impl Iterator<Item = &ActiveKernel> {
        self.order.iter().map(|&s| self.get(s))
    }

    fn insert(&mut self, k: ActiveKernel) -> u32 {
        let ctx = k.ctx;
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(k);
                s
            }
            None => {
                self.slots.push(Some(k));
                (self.slots.len() - 1) as u32
            }
        };
        self.order.push(slot);
        *self.ctx_counts.entry(ctx).or_insert(0) += 1;
        slot
    }

    /// Vacate one slot (free list + context count); the caller is
    /// responsible for compacting `order` afterwards.
    fn take_at(&mut self, slot: u32) -> ActiveKernel {
        let k = self.slots[slot as usize].take().expect("live slot");
        self.free.push(slot);
        match self.ctx_counts.get_mut(&k.ctx) {
            Some(n) if *n > 1 => *n -= 1,
            _ => {
                self.ctx_counts.remove(&k.ctx);
            }
        }
        k
    }

    /// Drop vacated slots from `order`, preserving relative order.
    fn compact_order(&mut self) {
        let slots = &self.slots;
        self.order.retain(|&s| slots[s as usize].is_some());
    }

    /// Remove every kernel failing `keep`; returns how many went.
    fn retain(&mut self, mut keep: impl FnMut(&ActiveKernel) -> bool) -> usize {
        let mut removed = 0;
        for i in 0..self.order.len() {
            let slot = self.order[i];
            if !keep(self.get(slot)) {
                self.take_at(slot);
                removed += 1;
            }
        }
        if removed > 0 {
            self.compact_order();
        }
        removed
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.order.clear();
        self.ctx_counts.clear();
    }
}

/// Domain key marking kernels parked by time-sharing rotation.
const NO_DOMAIN: u32 = u32::MAX;

/// Arbitration-domain key of a context: MIG instance / vGPU slot index
/// plus one, or 0 for the whole device. In the whole-device modes every
/// kernel shares one domain — MPS interference couples all co-resident
/// contexts, so no finer dirty granularity is sound there (DESIGN.md
/// §10).
fn domain_key(mode: DeviceMode, c: &GpuContext) -> u32 {
    match mode {
        DeviceMode::Mig => 1 + c.mig_instance.expect("mig ctx bound"),
        DeviceMode::Vgpu { .. } => 1 + c.vgpu_slot.expect("vgpu ctx bound"),
        _ => 0,
    }
}

/// SM/bandwidth geometry of an arbitration domain (whole device, MIG
/// instance, or vGPU slot).
#[derive(Debug, Clone, Copy)]
struct Dom {
    sms: f64,
    bw: f64,
}

/// Reusable `recompute` buffers, hoisted onto the device so the
/// per-change rate recomputation allocates nothing in steady state.
/// The first four are parallel to `KernelSlab::order`.
#[derive(Debug, Default)]
struct Scratch {
    /// Final rate per kernel.
    rate: Vec<f64>,
    /// Provisional SM share (temporarily holds raw block demand).
    share: Vec<f64>,
    /// Post-wave-quantization effective SMs.
    eff: Vec<f64>,
    /// Arbitration domain key per kernel ([`NO_DOMAIN`] when parked).
    dom_of: Vec<u32>,
    /// Distinct (domain key, geometry), key-ascending.
    domains: Vec<(u32, Dom)>,
    /// Distinct contexts of the domain being processed, ascending.
    dom_ctxs: Vec<u32>,
}

/// The simulated GPU.
#[derive(Debug)]
pub struct GpuDevice {
    /// Fleet index of this device.
    pub id: GpuId,
    /// Hardware spec.
    pub spec: GpuSpec,
    mode: DeviceMode,
    cfg: ShareConfig,
    allow_uvm: bool,

    ctxs: BTreeMap<u32, GpuContext>,
    next_ctx: u32,
    kernels: KernelSlab,
    next_kernel: u64,
    /// Slots with `rate > 0`, kid-ascending; rebuilt by `recompute` so
    /// `advance`/`next_wake` never scan stalled kernels.
    running: Vec<u32>,
    scratch: Scratch,

    /// Device-wide memory (used in non-MIG, non-vGPU modes).
    mem: MemoryPool,
    /// Per-MIG-instance memory.
    mig_mem: BTreeMap<u32, MemoryPool>,
    /// Per-vGPU-slot memory.
    vgpu_mem: Vec<MemoryPool>,

    /// MIG instance manager.
    pub mig: MigManager,
    /// MPS control daemon.
    pub mps: MpsDaemon,

    // Time-sharing rotation state.
    ts_current: Option<u32>,
    ts_pending: Option<u32>,
    ts_quantum_end: SimTime,
    ts_switch_end: SimTime,

    /// Cleared by an uncorrectable (ECC/Xid-style) fault; an unhealthy
    /// device refuses new contexts and launches until re-admitted.
    healthy: bool,
    /// Straggler multiplier on every kernel rate (1.0 = nominal). Models
    /// transient slowdowns: thermal throttling, a flaky PCIe link, a
    /// noisy neighbour outside the simulated node.
    slowdown: f64,

    /// Domains whose kernel membership or rate inputs changed since the
    /// last `recompute`; only these are re-derived (the rest keep their
    /// exact previous f64 rates). See DESIGN.md §10 for the invariant.
    dirty_domains: BTreeSet<u32>,
    /// Device-wide change (mode, slowdown, UVM, config): every domain is
    /// dirty regardless of the set above.
    all_dirty: bool,
    /// When false `recompute` re-derives every domain (the pre-change
    /// behaviour) while marks stay maintained — A/B cost benchmarking.
    dirty_tracking: bool,
    /// Deterministic cost counters (pure functions of the event
    /// schedule; see the cost ratchet in `repro`).
    recompute_calls: u64,
    domains_visited: u64,
    domains_skipped: u64,

    last: SimTime,
    busy_sms: TimeWeighted,
    kernels_completed: u64,
    /// SM-seconds of service attained per context (DCGM-style
    /// accounting; survives kernel completion, cleared with the context).
    attained: BTreeMap<u32, f64>,
    pending_event: Option<EventId>,
}

impl GpuDevice {
    /// New device in [`DeviceMode::TimeSharing`] (the NVIDIA default).
    pub fn new(id: GpuId, spec: GpuSpec) -> Self {
        let mem = MemoryPool::new(spec.memory_bytes);
        GpuDevice {
            id,
            spec,
            mode: DeviceMode::TimeSharing,
            cfg: ShareConfig::default(),
            allow_uvm: false,
            ctxs: BTreeMap::new(),
            next_ctx: 0,
            kernels: KernelSlab::default(),
            next_kernel: 0,
            running: Vec::new(),
            scratch: Scratch::default(),
            mem,
            mig_mem: BTreeMap::new(),
            vgpu_mem: Vec::new(),
            mig: MigManager::new(),
            mps: MpsDaemon::new(),
            ts_current: None,
            ts_pending: None,
            ts_quantum_end: SimTime::ZERO,
            ts_switch_end: SimTime::ZERO,
            healthy: true,
            slowdown: 1.0,
            dirty_domains: BTreeSet::new(),
            all_dirty: true,
            dirty_tracking: true,
            recompute_calls: 0,
            domains_visited: 0,
            domains_skipped: 0,
            last: SimTime::ZERO,
            busy_sms: TimeWeighted::new(SimTime::ZERO, 0.0),
            kernels_completed: 0,
            attained: BTreeMap::new(),
            pending_event: None,
        }
    }

    /// Override arbitration tunables.
    pub fn set_share_config(&mut self, cfg: ShareConfig) {
        self.cfg = cfg;
        self.mark_all_dirty();
    }

    /// Mark one arbitration domain as needing re-derivation.
    #[inline]
    fn mark_domain_dirty(&mut self, dom: u32) {
        if !self.all_dirty {
            self.dirty_domains.insert(dom);
        }
    }

    /// Mark every domain dirty (device-wide parameter change).
    #[inline]
    fn mark_all_dirty(&mut self) {
        self.all_dirty = true;
        self.dirty_domains.clear();
    }

    /// Mark the domain a context arbitrates in; an unknown context is a
    /// caller bug upstream, so fall back to marking everything.
    fn mark_ctx_dirty(&mut self, ctx: u32) {
        let dom = match self.ctxs.get(&ctx) {
            Some(c) => domain_key(self.mode, c),
            None => {
                self.mark_all_dirty();
                return;
            }
        };
        self.mark_domain_dirty(dom);
    }

    /// Toggle per-domain dirty tracking (default on). Marks are always
    /// maintained; disabling only forces `recompute` to re-derive every
    /// domain — the pre-change behaviour, kept so the fleet benchmark
    /// can measure the optimization against its own baseline.
    pub fn set_dirty_tracking(&mut self, on: bool) {
        self.dirty_tracking = on;
        if !on {
            self.mark_all_dirty();
        }
    }

    /// Deterministic cost counters: `(recompute calls, dirty domains
    /// re-derived, clean domains skipped)`. Pure functions of the event
    /// schedule, reported in the BENCH artifacts and ratcheted in CI.
    pub fn cost_counters(&self) -> (u64, u64, u64) {
        (
            self.recompute_calls,
            self.domains_visited,
            self.domains_skipped,
        )
    }

    /// `(kernel id, current rate)` for every in-flight kernel,
    /// kid-ascending. Test hook for the full-vs-incremental recompute
    /// equivalence property.
    pub fn kernel_rates(&self) -> Vec<(u64, f64)> {
        self.kernels.iter().map(|k| (k.kid, k.rate)).collect()
    }

    /// Enable CUDA unified-memory oversubscription on all memory pools.
    pub fn set_uvm(&mut self, allow: bool) {
        self.allow_uvm = allow;
        self.mark_all_dirty();
        self.mem.set_oversubscription(allow);
        for p in self.mig_mem.values_mut() {
            p.set_oversubscription(allow);
        }
        for p in &mut self.vgpu_mem {
            p.set_oversubscription(allow);
        }
    }

    /// Current mode.
    pub fn mode(&self) -> DeviceMode {
        self.mode
    }

    /// Is the device healthy (no uncorrected fault outstanding)?
    pub fn is_healthy(&self) -> bool {
        self.healthy
    }

    /// Record an uncorrectable (ECC/Xid-style) fault: the device refuses
    /// new contexts and launches until [`GpuDevice::mark_healthy`].
    /// Existing contexts/kernels are untouched — the platform layer is
    /// responsible for tearing down residents (the blast radius).
    pub fn mark_unhealthy(&mut self, now: SimTime) {
        self.advance(now);
        self.healthy = false;
    }

    /// Clear the fault state (driver reload / re-admission).
    pub fn mark_healthy(&mut self) {
        self.healthy = true;
    }

    /// Current straggler rate multiplier (1.0 = nominal).
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Scale every kernel rate by `factor` from `now` on (transient
    /// straggler: thermal throttling, flaky link). `factor` is clamped to
    /// a small positive value; `1.0` restores nominal speed. The owner
    /// should `resync` afterwards.
    pub fn set_slowdown(&mut self, now: SimTime, factor: f64) {
        self.advance(now);
        self.slowdown = factor.max(1e-6);
        self.mark_all_dirty();
        self.recompute(now);
    }

    /// Change the sharing mode. Requires an idle device (no contexts) —
    /// in hardware this is a GPU reset; its *cost* is modelled by the
    /// reconfiguration engine in `parfait-core`.
    pub fn set_mode(&mut self, mode: DeviceMode) -> Result<()> {
        if !self.ctxs.is_empty() {
            return Err(GpuError::DeviceBusy {
                contexts: self.ctxs.len(),
            });
        }
        match mode {
            DeviceMode::Mig => {
                if !self.spec.mig_capable {
                    return Err(GpuError::WrongMode {
                        expected: "MIG-capable device",
                        actual: self.spec.name,
                    });
                }
                self.mig.set_enabled(true)?;
            }
            DeviceMode::Vgpu { slots } => {
                if slots == 0 {
                    return Err(GpuError::BadPercentage(0));
                }
                let per = self.spec.memory_bytes / slots as u64;
                self.vgpu_mem = (0..slots)
                    .map(|_| {
                        let mut p = MemoryPool::new(per);
                        p.set_oversubscription(self.allow_uvm);
                        p
                    })
                    .collect();
            }
            DeviceMode::TimeSharing | DeviceMode::MpsDefault | DeviceMode::MpsPartitioned => {
                if self.mig.enabled() {
                    self.mig.destroy_all();
                    self.mig.set_enabled(false)?;
                }
            }
        }
        if !matches!(mode, DeviceMode::Vgpu { .. }) {
            self.vgpu_mem.clear();
        }
        self.mode = mode;
        self.mark_all_dirty();
        Ok(())
    }

    /// Create a MIG instance (device must be in MIG mode).
    pub fn mig_create(&mut self, profile: &str) -> Result<u32> {
        if self.mode != DeviceMode::Mig {
            return Err(GpuError::WrongMode {
                expected: "MIG",
                actual: self.mode.name(),
            });
        }
        let gpu = self.id.0;
        let iid = self.mig.create(&self.spec.clone(), gpu, profile)?;
        let inst = self.mig.get(iid).expect("just created");
        let mut pool = MemoryPool::new(inst.memory_bytes);
        pool.set_oversubscription(self.allow_uvm);
        self.mig_mem.insert(iid, pool);
        self.mark_all_dirty();
        Ok(iid)
    }

    /// Destroy a MIG instance; fails while any context is bound to it.
    pub fn mig_destroy(&mut self, instance: u32) -> Result<()> {
        if self.ctxs.values().any(|c| c.mig_instance == Some(instance)) {
            return Err(GpuError::DeviceBusy {
                contexts: self
                    .ctxs
                    .values()
                    .filter(|c| c.mig_instance == Some(instance))
                    .count(),
            });
        }
        self.mig.destroy(instance)?;
        self.mig_mem.remove(&instance);
        self.mark_all_dirty();
        Ok(())
    }

    /// Live contexts.
    pub fn contexts(&self) -> impl Iterator<Item = &GpuContext> {
        self.ctxs.values()
    }

    /// Context count.
    pub fn context_count(&self) -> usize {
        self.ctxs.len()
    }

    /// Look up a context.
    pub fn context(&self, ctx: CtxId) -> Option<&GpuContext> {
        self.ctxs.get(&ctx.0)
    }

    /// Create a process context with the given binding.
    pub fn create_context(
        &mut self,
        now: SimTime,
        label: &str,
        binding: CtxBinding,
    ) -> Result<CtxId> {
        if !self.healthy {
            return Err(GpuError::Unhealthy);
        }
        let (mig_instance, vgpu_slot, mps_pct) = match (&self.mode, &binding) {
            (DeviceMode::TimeSharing, CtxBinding::Bare) => (None, None, None),
            (DeviceMode::MpsDefault, CtxBinding::Bare) => (None, None, None),
            (DeviceMode::MpsPartitioned, CtxBinding::MpsPercentage(p)) => {
                if !(1..=100).contains(p) {
                    return Err(GpuError::BadPercentage(*p));
                }
                (None, None, Some(*p))
            }
            (DeviceMode::MpsPartitioned, CtxBinding::Bare) => (None, None, None),
            (DeviceMode::Mig, CtxBinding::MigInstance(uuid)) => {
                let inst = self
                    .mig
                    .by_uuid(uuid)
                    .ok_or_else(|| GpuError::MigProfileUnknown(uuid.clone()))?;
                (Some(inst.id), None, None)
            }
            (DeviceMode::Vgpu { slots }, CtxBinding::VgpuSlot(s)) => {
                if *s >= *slots {
                    return Err(GpuError::UnknownInstance(*s));
                }
                (None, Some(*s), None)
            }
            _ => {
                return Err(GpuError::WrongMode {
                    expected: "binding compatible with device mode",
                    actual: self.mode.name(),
                })
            }
        };
        // MPS modes require the control daemon (§4.1: it must be launched
        // on the node before any GPU function runs).
        if matches!(
            self.mode,
            DeviceMode::MpsDefault | DeviceMode::MpsPartitioned
        ) && !self.mps.running()
        {
            return Err(GpuError::WrongMode {
                expected: "MPS daemon running",
                actual: "MPS daemon stopped",
            });
        }
        let id = self.next_ctx;
        self.next_ctx += 1;
        if matches!(
            self.mode,
            DeviceMode::MpsDefault | DeviceMode::MpsPartitioned
        ) {
            self.mps.connect(id, mps_pct)?;
        }
        self.ctxs.insert(
            id,
            GpuContext {
                id: CtxId(id),
                label: label.to_string(),
                binding,
                mig_instance,
                vgpu_slot,
                mps_pct,
            },
        );
        self.advance(now);
        self.recompute(now);
        Ok(CtxId(id))
    }

    /// Destroy a context: abort its kernels, free its memory, disconnect
    /// from MPS. Returns the number of aborted kernels.
    pub fn destroy_context(&mut self, now: SimTime, ctx: CtxId) -> Result<usize> {
        let c = self
            .ctxs
            .remove(&ctx.0)
            .ok_or(GpuError::UnknownContext(ctx.0))?;
        self.advance(now);
        // Mark before the ctx map loses the binding: the domain's ctx
        // population (and so MPS interference) changes even when the
        // context had no kernels in flight.
        let dom = domain_key(self.mode, &c);
        self.mark_domain_dirty(dom);
        let aborted = self.kernels.retain(|k| k.ctx != ctx.0);
        self.mem_pool_for(&c).release_owner(ctx.0);
        self.attained.remove(&ctx.0);
        self.mps.disconnect(ctx.0);
        if self.ts_current == Some(ctx.0) {
            self.ts_current = None;
        }
        if self.ts_pending == Some(ctx.0) {
            self.ts_pending = None;
        }
        self.recompute(now);
        Ok(aborted)
    }

    fn mem_pool_for(&mut self, c: &GpuContext) -> &mut MemoryPool {
        if let Some(i) = c.mig_instance {
            self.mig_mem.get_mut(&i).expect("instance pool exists")
        } else if let Some(s) = c.vgpu_slot {
            &mut self.vgpu_mem[s as usize]
        } else {
            &mut self.mem
        }
    }

    fn pool_overcommitted(&self, c: &GpuContext) -> bool {
        if let Some(i) = c.mig_instance {
            self.mig_mem
                .get(&i)
                .map(|p| p.overcommitted())
                .unwrap_or(false)
        } else if let Some(s) = c.vgpu_slot {
            self.vgpu_mem[s as usize].overcommitted()
        } else {
            self.mem.overcommitted()
        }
    }

    /// Allocate device memory on behalf of `ctx`.
    pub fn alloc_memory(&mut self, ctx: CtxId, bytes: u64) -> Result<()> {
        let c = self
            .ctxs
            .get(&ctx.0)
            .ok_or(GpuError::UnknownContext(ctx.0))?
            .clone();
        self.mem_pool_for(&c).alloc(ctx.0, bytes)?;
        // UVM overcommit state may have flipped; the *next* recompute
        // re-derives the domain (memory ops never recompute directly,
        // matching the pre-change deferred semantics).
        let dom = domain_key(self.mode, &c);
        self.mark_domain_dirty(dom);
        Ok(())
    }

    /// Free device memory held by `ctx`.
    pub fn free_memory(&mut self, ctx: CtxId, bytes: u64) -> Result<()> {
        let c = self
            .ctxs
            .get(&ctx.0)
            .ok_or(GpuError::UnknownContext(ctx.0))?
            .clone();
        self.mem_pool_for(&c).freeb(ctx.0, bytes)?;
        let dom = domain_key(self.mode, &c);
        self.mark_domain_dirty(dom);
        Ok(())
    }

    /// Reserve device-wide memory for the GPU-resident model weight cache
    /// (the paper's §7 future-work apparatus). Cache memory belongs to no
    /// process context and survives context teardown.
    pub fn cache_alloc(&mut self, bytes: u64) -> Result<()> {
        self.mem.alloc(Self::CACHE_OWNER, bytes)?;
        // The cache lives in the device-wide pool, whose overcommit
        // state feeds every whole-device domain; rare op, so be blunt.
        self.mark_all_dirty();
        Ok(())
    }

    /// Release weight-cache memory.
    pub fn cache_free(&mut self, bytes: u64) -> Result<()> {
        self.mem.freeb(Self::CACHE_OWNER, bytes)?;
        self.mark_all_dirty();
        Ok(())
    }

    /// Bytes currently pinned by the weight cache.
    pub fn cache_used(&self) -> u64 {
        self.mem.owner_usage(Self::CACHE_OWNER)
    }

    /// Synthetic owner id for cache allocations.
    const CACHE_OWNER: u32 = u32::MAX;

    /// Bytes used across all memory domains.
    pub fn memory_used(&self) -> u64 {
        self.mem.used()
            + self.mig_mem.values().map(|p| p.used()).sum::<u64>()
            + self.vgpu_mem.iter().map(|p| p.used()).sum::<u64>()
    }

    /// Device-wide memory pool (non-MIG/vGPU domains).
    pub fn memory(&self) -> &MemoryPool {
        &self.mem
    }

    /// Memory pool of one MIG instance.
    pub fn mig_memory(&self, instance: u32) -> Option<&MemoryPool> {
        self.mig_mem.get(&instance)
    }

    /// Launch a kernel for `ctx`. `tag` is echoed in the completion.
    pub fn launch(
        &mut self,
        now: SimTime,
        ctx: CtxId,
        desc: KernelDesc,
        tag: u64,
    ) -> Result<KernelId> {
        if !self.healthy {
            return Err(GpuError::Unhealthy);
        }
        if !self.ctxs.contains_key(&ctx.0) {
            return Err(GpuError::UnknownContext(ctx.0));
        }
        self.advance(now);
        let id = self.next_kernel;
        self.next_kernel += 1;
        let slot = self.kernels.insert(ActiveKernel {
            kid: id,
            ctx: ctx.0,
            desc,
            remaining: 0.0,
            rate: 0.0,
            tag,
            launched: now,
        });
        // remaining initialised after insert so zero-work kernels still
        // complete through the normal path.
        let k = self.kernels.get_mut(slot);
        k.remaining = k.desc.work_sm_s.max(0.0);
        self.mark_ctx_dirty(ctx.0);
        self.recompute(now);
        Ok(KernelId(id))
    }

    /// Abort every in-flight kernel carrying `tag` (a walltime-killed
    /// task's launches). Returns how many were removed. The owner should
    /// `resync` afterwards.
    pub fn abort_tagged(&mut self, now: SimTime, tag: u64) -> usize {
        self.advance(now);
        let mode = self.mode;
        let ctxs = &self.ctxs;
        let mut dirty: Vec<u32> = Vec::new();
        let removed = self.kernels.retain(|k| {
            if k.tag == tag {
                if let Some(c) = ctxs.get(&k.ctx) {
                    dirty.push(domain_key(mode, c));
                }
                false
            } else {
                true
            }
        });
        for dom in dirty {
            self.mark_domain_dirty(dom);
        }
        if removed > 0 {
            self.recompute(now);
        }
        removed
    }

    /// Number of in-flight kernels.
    pub fn active_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Lifetime completed-kernel count.
    pub fn kernels_completed(&self) -> u64 {
        self.kernels_completed
    }

    /// Instantaneous busy SMs (sum of kernel rates).
    pub fn busy_sms(&self) -> f64 {
        self.busy_sms.current()
    }

    /// Instantaneous busy SMs of one context's kernels.
    pub fn ctx_busy_sms(&self, ctx: CtxId) -> f64 {
        self.kernels
            .iter()
            .filter(|k| k.ctx == ctx.0)
            .map(|k| k.rate)
            .sum()
    }

    /// Instantaneous busy SMs inside one MIG instance.
    pub fn instance_busy_sms(&self, instance: u32) -> f64 {
        self.kernels
            .iter()
            .filter(|k| {
                self.ctxs
                    .get(&k.ctx)
                    .map(|c| c.mig_instance == Some(instance))
                    .unwrap_or(false)
            })
            .map(|k| k.rate)
            .sum()
    }

    /// Bytes of device memory held by one context (its memory domain's
    /// per-owner ledger).
    pub fn ctx_memory_used(&self, ctx: CtxId) -> u64 {
        let Some(c) = self.ctxs.get(&ctx.0) else {
            return 0;
        };
        if let Some(i) = c.mig_instance {
            self.mig_mem
                .get(&i)
                .map(|p| p.owner_usage(ctx.0))
                .unwrap_or(0)
        } else if let Some(sl) = c.vgpu_slot {
            self.vgpu_mem[sl as usize].owner_usage(ctx.0)
        } else {
            self.mem.owner_usage(ctx.0)
        }
    }

    /// Time-averaged SM utilization in `[0,1]` since device creation.
    pub fn average_utilization(&self, now: SimTime) -> f64 {
        self.busy_sms.average(now) / self.spec.sms as f64
    }

    /// Integrate kernel progress up to `now`. Only the `running` list
    /// (kernels with a positive rate, kid-ascending) is walked — stalled
    /// kernels cannot make progress, so skipping them is exact.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last).as_secs_f64();
        if dt > 0.0 {
            for i in 0..self.running.len() {
                let k = self.kernels.get_mut(self.running[i]);
                if k.rate > 0.0 {
                    let served = (k.rate * dt).min(k.remaining);
                    k.remaining -= served;
                    *self.attained.entry(k.ctx).or_insert(0.0) += served;
                }
            }
        }
        self.last = now;
    }

    /// SM-seconds of service a context has attained (DCGM-style
    /// accounting). Quantifies Table 1's "resource starved due to
    /// contention" drawback of default MPS: compare attained service
    /// across tenants.
    pub fn attained_service(&self, ctx: CtxId) -> f64 {
        self.attained.get(&ctx.0).copied().unwrap_or(0.0)
    }

    /// Time-sharing rotation bookkeeping; called from `recompute`. The
    /// active-context set is read straight off the slab's incrementally
    /// maintained per-context counts — no per-call collect/sort/dedup.
    fn ts_housekeeping(&mut self, now: SimTime) {
        // Complete an in-flight switch.
        if self.ts_pending.is_some() && now >= self.ts_switch_end {
            self.ts_current = self.ts_pending.take();
            self.ts_quantum_end = now + self.cfg.quantum;
        }
        if self.ts_pending.is_some() {
            return; // mid-switch: nothing runs
        }
        let active = &self.kernels.ctx_counts;
        let Some(&first) = active.keys().next() else {
            return;
        };
        let current_active = self
            .ts_current
            .map(|c| active.contains_key(&c))
            .unwrap_or(false);
        let next_after = |cur: Option<u32>| -> u32 {
            match cur {
                Some(c) => active
                    .range((Bound::Excluded(c), Bound::Unbounded))
                    .next()
                    .map(|(&a, _)| a)
                    .unwrap_or(first),
                None => first,
            }
        };
        if !current_active {
            let nxt = next_after(self.ts_current);
            if self.ts_current.is_none() {
                // GPU was idle: adopt immediately, no switch cost.
                self.ts_current = Some(nxt);
                self.ts_quantum_end = now + self.cfg.quantum;
            } else {
                // Current process went host-side; rotate with penalty.
                self.ts_pending = Some(nxt);
                self.ts_switch_end = now + self.cfg.switch_penalty;
                self.ts_current = None;
            }
        } else if now >= self.ts_quantum_end {
            if active.len() >= 2 {
                let nxt = next_after(self.ts_current);
                self.ts_pending = Some(nxt);
                self.ts_switch_end = now + self.cfg.switch_penalty;
                self.ts_current = None;
            } else {
                self.ts_quantum_end = now + self.cfg.quantum;
            }
        }
    }

    /// Recompute all kernel rates for the regime starting at `now`.
    /// Callers must have `advance`d to `now` first.
    ///
    /// Allocation-free in steady state: every buffer lives in
    /// [`Scratch`] and is reused across calls. Every f64 accumulation
    /// below iterates kernels in kid-ascending order (via
    /// `KernelSlab::order`), which reproduces the summation order of
    /// the previous `BTreeMap`-based implementation bit for bit — the
    /// `arbitration_regression` test pins this down.
    ///
    /// With dirty tracking on, only domains marked since the previous
    /// call are re-derived; every kernel in a clean domain keeps its
    /// exact previous f64 rate, so the final summation below is
    /// bit-identical to a full re-derivation (the clean inputs have not
    /// changed, and f64 arithmetic is deterministic).
    pub fn recompute(&mut self, now: SimTime) {
        self.recompute_calls += 1;
        if self.mode == DeviceMode::TimeSharing {
            // A rotation re-partitions kernels between domain 0 and the
            // parked set, so it dirties the whole-device domain.
            let before = (self.ts_current, self.ts_pending);
            self.ts_housekeeping(now);
            if (self.ts_current, self.ts_pending) != before {
                self.mark_domain_dirty(0);
            }
        }
        let mut scratch = std::mem::take(&mut self.scratch);
        let n = self.kernels.len();
        scratch.rate.clear();
        scratch.rate.resize(n, 0.0);
        scratch.share.clear();
        scratch.share.resize(n, 0.0);
        scratch.eff.clear();
        scratch.eff.resize(n, 0.0);
        scratch.dom_of.clear();
        scratch.domains.clear();

        // Domain key per kernel: MIG instance / vGPU slot index + 1, or
        // 0 for the whole device.
        let whole = Dom {
            sms: self.spec.sms as f64,
            bw: 1.0,
        };
        for p in 0..n {
            let k = self.kernels.get(self.kernels.order[p]);
            // Time-sharing: only the current context's kernels run.
            if self.mode == DeviceMode::TimeSharing && Some(k.ctx) != self.ts_current {
                scratch.dom_of.push(NO_DOMAIN); // rate stays 0.0
                continue;
            }
            let c = &self.ctxs[&k.ctx];
            let (dom_key, dom) = match self.mode {
                DeviceMode::Mig => {
                    let inst = self
                        .mig
                        .get(c.mig_instance.expect("mig ctx bound"))
                        .expect("instance exists");
                    (
                        1 + inst.id,
                        Dom {
                            sms: inst.sms as f64,
                            bw: inst.bandwidth_fraction,
                        },
                    )
                }
                DeviceMode::Vgpu { slots } => {
                    let s = c.vgpu_slot.expect("vgpu ctx bound");
                    (
                        1 + s,
                        Dom {
                            sms: self.spec.sms as f64 / slots as f64,
                            bw: 1.0 / slots as f64,
                        },
                    )
                }
                _ => (0, whole),
            };
            scratch.dom_of.push(dom_key);
            scratch.domains.push((dom_key, dom));
            // Prefill with the previous rate: kernels in clean domains
            // keep it verbatim; dirty domains overwrite every member
            // below. Parked kernels stay at the 0.0 the resize wrote.
            scratch.rate[p] = k.rate;
        }
        scratch.domains.sort_unstable_by_key(|&(key, _)| key);
        scratch.domains.dedup_by_key(|&mut (key, _)| key);

        let mps_mode = matches!(
            self.mode,
            DeviceMode::MpsDefault | DeviceMode::MpsPartitioned
        );
        for di in 0..scratch.domains.len() {
            let (dom_key, dom) = scratch.domains[di];
            if self.dirty_tracking && !self.all_dirty && !self.dirty_domains.contains(&dom_key) {
                // Clean domain: no membership or rate-input change since
                // the last recompute; its kernels keep the prefilled
                // previous rates.
                self.domains_skipped += 1;
                continue;
            }
            self.domains_visited += 1;
            // Distinct contexts with kernels in this domain, ascending.
            scratch.dom_ctxs.clear();
            for p in 0..n {
                if scratch.dom_of[p] == dom_key {
                    scratch
                        .dom_ctxs
                        .push(self.kernels.get(self.kernels.order[p]).ctx);
                }
            }
            scratch.dom_ctxs.sort_unstable();
            scratch.dom_ctxs.dedup();
            // MPS co-residency interference (L2/scheduler contention).
            let mut interference = if mps_mode && self.cfg.mps_interference > 0.0 {
                1.0 / (1.0
                    + self.cfg.mps_interference * (scratch.dom_ctxs.len().saturating_sub(1)) as f64)
            } else {
                1.0
            };
            if matches!(self.mode, DeviceMode::Vgpu { .. }) {
                interference *= VGPU_SCHED_EFFICIENCY;
            }
            // Per-context provisional shares (contexts ascending, each
            // context's kernels kid-ascending, as before).
            for ci in 0..scratch.dom_ctxs.len() {
                let ctx = scratch.dom_ctxs[ci];
                let c = &self.ctxs[&ctx];
                let cap = match (self.mode, c.mps_pct) {
                    (DeviceMode::MpsPartitioned, Some(p)) => {
                        (self.spec.sms as f64 * p as f64 / 100.0).min(dom.sms)
                    }
                    _ => dom.sms,
                };
                let mut total = 0.0;
                for p in 0..n {
                    if scratch.dom_of[p] == dom_key {
                        let k = self.kernels.get(self.kernels.order[p]);
                        if k.ctx == ctx {
                            let d = k.desc.peak_parallelism() as f64;
                            scratch.share[p] = d; // raw demand, for now
                            total += d;
                        }
                    }
                }
                if total > cap {
                    for p in 0..n {
                        if scratch.dom_of[p] == dom_key
                            && self.kernels.get(self.kernels.order[p]).ctx == ctx
                        {
                            scratch.share[p] = scratch.share[p] * cap / total;
                        }
                    }
                }
            }
            // Domain-wide overload.
            let mut total = 0.0;
            for p in 0..n {
                if scratch.dom_of[p] == dom_key {
                    total += scratch.share[p];
                }
            }
            let scale = if total > dom.sms {
                dom.sms / total
            } else {
                1.0
            };
            // Wave quantization + bandwidth.
            let mut bw_total = 0.0;
            for p in 0..n {
                if scratch.dom_of[p] == dom_key {
                    let desc = &self.kernels.get(self.kernels.order[p]).desc;
                    let eff = desc.effective_sms(scratch.share[p] * scale);
                    bw_total += desc.bandwidth_demand(eff);
                    scratch.eff[p] = eff;
                }
            }
            let bw_scale = if bw_total > dom.bw {
                dom.bw / bw_total
            } else {
                1.0
            };
            for p in 0..n {
                if scratch.dom_of[p] == dom_key {
                    let k = self.kernels.get(self.kernels.order[p]);
                    let c = &self.ctxs[&k.ctx];
                    let mut rate = scratch.eff[p] * bw_scale * interference;
                    if self.pool_overcommitted(c) {
                        rate *= self.spec.uvm_penalty;
                    }
                    // Gated so the nominal case multiplies by nothing and
                    // the arbitration bit-stream is untouched.
                    if self.slowdown != 1.0 {
                        rate *= self.slowdown;
                    }
                    scratch.rate[p] = rate;
                }
            }
        }

        // Apply rates and rebuild the running list, both kid-ascending.
        let mut busy = 0.0;
        self.running.clear();
        for p in 0..n {
            let slot = self.kernels.order[p];
            let k = self.kernels.get_mut(slot);
            k.rate = scratch.rate[p];
            busy += k.rate;
            if k.rate > 0.0 {
                self.running.push(slot);
            }
        }
        self.busy_sms.set(now, busy);
        self.scratch = scratch;
        self.dirty_domains.clear();
        self.all_dirty = false;
    }

    /// When should the engine next wake this device? `None` = nothing
    /// scheduled (fully idle or permanently blocked).
    pub fn next_wake(&self, now: SimTime) -> Option<SimTime> {
        let mut t = SimTime::MAX;
        for &slot in &self.running {
            let k = self.kernels.get(slot);
            if k.rate > 0.0 {
                let secs = k.remaining / k.rate;
                let at = now
                    .saturating_add(SimDuration::from_secs_f64(secs))
                    .saturating_add(SimDuration::from_nanos(1));
                t = t.min(at);
            }
        }
        if self.mode == DeviceMode::TimeSharing {
            if self.ts_pending.is_some() {
                t = t.min(self.ts_switch_end.max(now));
            } else if self.kernels.ctx_counts.len() >= 2 {
                t = t.min(self.ts_quantum_end.max(now));
            }
        }
        (t < SimTime::MAX).then_some(t)
    }

    /// Advance to `now`, pop finished kernels, and recompute rates
    /// (handling any due time-sharing rotation).
    pub fn collect_finished(&mut self, now: SimTime) -> Vec<KernelDone> {
        self.advance(now);
        let mut done = Vec::new();
        for i in 0..self.kernels.order.len() {
            let slot = self.kernels.order[i];
            let k = self.kernels.get(slot);
            if k.remaining <= WORK_EPS && (k.rate > 0.0 || k.desc.work_sm_s <= WORK_EPS) {
                let k = self.kernels.take_at(slot);
                self.kernels_completed += 1;
                self.mark_ctx_dirty(k.ctx);
                done.push(KernelDone {
                    gpu: self.id,
                    ctx: CtxId(k.ctx),
                    kernel: KernelId(k.kid),
                    tag: k.tag,
                    name: k.desc.name,
                    launched: k.launched,
                    finished: now,
                });
            }
        }
        if !done.is_empty() {
            self.kernels.compact_order();
        }
        self.recompute(now);
        done
    }

    /// Hard reset: drops every context, kernel, allocation and MIG
    /// instance. Used for MIG reconfiguration (§6: "to reallocate MIG, we
    /// must shut down all the applications running on the GPU").
    pub fn reset(&mut self, now: SimTime) {
        self.advance(now);
        self.kernels.clear();
        self.running.clear();
        for (_, c) in std::mem::take(&mut self.ctxs) {
            self.mps.disconnect(c.id.0);
        }
        self.mem = MemoryPool::new(self.spec.memory_bytes);
        self.mem.set_oversubscription(self.allow_uvm);
        self.mig_mem.clear();
        self.mig.destroy_all();
        self.attained.clear();
        self.ts_current = None;
        self.ts_pending = None;
        self.mark_all_dirty();
        self.recompute(now);
    }

    /// Swap out the stored wake event id, if any.
    pub fn take_pending_event(&mut self) -> Option<EventId> {
        self.pending_event.take()
    }

    /// Store the wake event id.
    pub fn set_pending_event(&mut self, ev: EventId) {
        self.pending_event = Some(ev);
    }

    /// Vendor passthrough.
    pub fn vendor(&self) -> Vendor {
        self.spec.vendor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs_f: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(secs_f)
    }

    fn dev(mode: DeviceMode) -> GpuDevice {
        let mut d = GpuDevice::new(GpuId(0), GpuSpec::a100_80gb());
        if matches!(mode, DeviceMode::MpsDefault | DeviceMode::MpsPartitioned) {
            d.mps.start();
        }
        d.set_mode(mode).unwrap();
        d
    }

    fn big_kernel(work: f64) -> KernelDesc {
        KernelDesc::new("big", work, 75_600, 75_600, 0.0)
    }

    fn small_kernel(work: f64) -> KernelDesc {
        // Decode-style kernel that can use at most 20 SMs.
        KernelDesc::new("small", work, 20, 20, 0.0)
    }

    #[test]
    fn single_kernel_runs_at_full_speed() {
        let mut d = dev(DeviceMode::TimeSharing);
        let c = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::Bare)
            .unwrap();
        d.launch(SimTime::ZERO, c, big_kernel(108.0), 1).unwrap();
        // 108 SM-seconds on 108 SMs → 1 second.
        let wake = d.next_wake(SimTime::ZERO).unwrap();
        assert!((wake.as_secs_f64() - 1.0).abs() < 1e-6, "wake {wake}");
        let done = d.collect_finished(wake);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 1);
    }

    #[test]
    fn small_kernel_capped_at_its_parallelism() {
        let mut d = dev(DeviceMode::TimeSharing);
        let c = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::Bare)
            .unwrap();
        d.launch(SimTime::ZERO, c, small_kernel(20.0), 0).unwrap();
        // 20 SM-seconds at 20 effective SMs → 1 second even with 108 SMs.
        let wake = d.next_wake(SimTime::ZERO).unwrap();
        assert!((wake.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((d.busy_sms() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn timesharing_serializes_two_contexts() {
        let mut d = dev(DeviceMode::TimeSharing);
        let c0 = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::Bare)
            .unwrap();
        let c1 = d
            .create_context(SimTime::ZERO, "p1", CtxBinding::Bare)
            .unwrap();
        d.launch(SimTime::ZERO, c0, big_kernel(108.0), 0).unwrap();
        d.launch(SimTime::ZERO, c1, big_kernel(108.0), 1).unwrap();
        // Only c0 runs initially.
        let rates: Vec<f64> = d.kernels.iter().map(|k| k.rate).collect();
        assert_eq!(rates.iter().filter(|r| **r > 0.0).count(), 1);
        // Work conservation: 216 SM-s of work on 108 SMs ≥ 2 s wall, plus
        // switch penalties. Run to completion via the wake loop.
        let mut now = SimTime::ZERO;
        let mut done = 0;
        for _ in 0..10_000 {
            match d.next_wake(now) {
                Some(w) => {
                    now = w;
                    done += d.collect_finished(now).len();
                    if done == 2 {
                        break;
                    }
                }
                None => break,
            }
        }
        assert_eq!(done, 2);
        let wall = now.as_secs_f64();
        assert!(wall >= 2.0, "wall {wall} < work lower bound");
        assert!(wall < 2.2, "switch overhead exploded: {wall}");
    }

    #[test]
    fn timesharing_single_context_pays_no_switches() {
        let mut d = dev(DeviceMode::TimeSharing);
        let c = d
            .create_context(SimTime::ZERO, "p", CtxBinding::Bare)
            .unwrap();
        let mut now = SimTime::ZERO;
        for i in 0..5 {
            d.launch(now, c, big_kernel(10.8), i).unwrap();
            now = d.next_wake(now).unwrap();
            assert_eq!(d.collect_finished(now).len(), 1);
        }
        assert!((now.as_secs_f64() - 0.5).abs() < 1e-5, "5×0.1 s, got {now}");
    }

    #[test]
    fn mps_default_runs_contexts_concurrently() {
        let mut d = dev(DeviceMode::MpsDefault);
        let c0 = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::Bare)
            .unwrap();
        let c1 = d
            .create_context(SimTime::ZERO, "p1", CtxBinding::Bare)
            .unwrap();
        // Two 20-SM kernels fit side by side on 108 SMs.
        d.launch(SimTime::ZERO, c0, small_kernel(20.0), 0).unwrap();
        d.launch(SimTime::ZERO, c1, small_kernel(20.0), 1).unwrap();
        let wake = d.next_wake(SimTime::ZERO).unwrap();
        assert!((wake.as_secs_f64() - 1.0).abs() < 1e-6, "parallel, not 2 s");
        assert_eq!(d.collect_finished(wake).len(), 2);
    }

    #[test]
    fn mps_default_overload_is_proportional() {
        let mut d = dev(DeviceMode::MpsDefault);
        let c0 = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::Bare)
            .unwrap();
        let c1 = d
            .create_context(SimTime::ZERO, "p1", CtxBinding::Bare)
            .unwrap();
        d.launch(SimTime::ZERO, c0, big_kernel(108.0), 0).unwrap();
        d.launch(SimTime::ZERO, c1, big_kernel(108.0), 1).unwrap();
        // Each demands 75 600 blocks (divisible by 54); proportional split → 54 SMs each.
        for k in d.kernels.iter() {
            assert!((k.rate - 54.0).abs() < 1.0, "rate {}", k.rate);
        }
    }

    #[test]
    fn mps_percentage_caps_context() {
        let mut d = dev(DeviceMode::MpsPartitioned);
        let c = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::MpsPercentage(50))
            .unwrap();
        d.launch(SimTime::ZERO, c, big_kernel(54.0), 0).unwrap();
        // 50% of 108 = 54 SMs → 1 second.
        let wake = d.next_wake(SimTime::ZERO).unwrap();
        assert!((wake.as_secs_f64() - 1.0).abs() < 1e-6, "wake {wake}");
    }

    #[test]
    fn mps_needs_daemon() {
        let mut d = GpuDevice::new(GpuId(0), GpuSpec::a100_80gb());
        d.set_mode(DeviceMode::MpsPartitioned).unwrap();
        let err = d
            .create_context(SimTime::ZERO, "p", CtxBinding::MpsPercentage(50))
            .unwrap_err();
        assert!(matches!(err, GpuError::WrongMode { .. }));
    }

    #[test]
    fn mig_contexts_are_isolated() {
        let mut d = dev(DeviceMode::Mig);
        let i0 = d.mig_create("3g.40gb").unwrap();
        let i1 = d.mig_create("3g.40gb").unwrap();
        let u0 = d.mig.get(i0).unwrap().uuid.clone();
        let u1 = d.mig.get(i1).unwrap().uuid.clone();
        let c0 = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::MigInstance(u0))
            .unwrap();
        let c1 = d
            .create_context(SimTime::ZERO, "p1", CtxBinding::MigInstance(u1))
            .unwrap();
        // Each instance has 42 SMs; a big kernel takes 42 SM-s / 42 = 1 s,
        // regardless of the neighbour.
        d.launch(SimTime::ZERO, c0, big_kernel(42.0), 0).unwrap();
        d.launch(SimTime::ZERO, c1, big_kernel(42.0), 1).unwrap();
        let wake = d.next_wake(SimTime::ZERO).unwrap();
        assert!((wake.as_secs_f64() - 1.0).abs() < 1e-6);
        assert_eq!(d.collect_finished(wake).len(), 2);
    }

    #[test]
    fn mig_memory_is_per_instance() {
        let mut d = dev(DeviceMode::Mig);
        let i0 = d.mig_create("1g.10gb").unwrap();
        let u0 = d.mig.get(i0).unwrap().uuid.clone();
        let c0 = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::MigInstance(u0))
            .unwrap();
        let cap = d.mig_memory(i0).unwrap().capacity();
        assert_eq!(cap, 10 * crate::spec::GIB);
        assert!(d.alloc_memory(c0, cap + 1).is_err(), "exceeds slice");
        d.alloc_memory(c0, cap).unwrap();
    }

    #[test]
    fn mig_uvm_oversubscription_slows_kernels() {
        let mut d = dev(DeviceMode::Mig);
        d.set_uvm(true);
        let i0 = d.mig_create("1g.10gb").unwrap();
        let u0 = d.mig.get(i0).unwrap().uuid.clone();
        let c0 = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::MigInstance(u0))
            .unwrap();
        d.alloc_memory(c0, 16 * crate::spec::GIB).unwrap(); // > 10 GiB slice
        d.launch(SimTime::ZERO, c0, big_kernel(14.0), 0).unwrap();
        // 14 SMs × 0.90 penalty → rate 12.6.
        let k = d.kernels.iter().next().unwrap();
        assert!((k.rate - 14.0 * 0.90).abs() < 1e-9, "rate {}", k.rate);
    }

    #[test]
    fn bandwidth_contention_scales_rates() {
        let mut d = dev(DeviceMode::MpsDefault);
        let c0 = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::Bare)
            .unwrap();
        let c1 = d
            .create_context(SimTime::ZERO, "p1", CtxBinding::Bare)
            .unwrap();
        let hungry = KernelDesc::new("bw", 20.0, 20, 20, 0.8);
        d.launch(SimTime::ZERO, c0, hungry.clone(), 0).unwrap();
        d.launch(SimTime::ZERO, c1, hungry, 1).unwrap();
        // Σ bandwidth demand = 1.6 > 1.0 → all rates × 1/1.6.
        for k in d.kernels.iter() {
            assert!((k.rate - 20.0 / 1.6).abs() < 1e-9, "rate {}", k.rate);
        }
    }

    #[test]
    fn vgpu_slots_split_statically() {
        let mut d = dev(DeviceMode::Vgpu { slots: 4 });
        let c0 = d
            .create_context(SimTime::ZERO, "vm0", CtxBinding::VgpuSlot(0))
            .unwrap();
        d.launch(SimTime::ZERO, c0, big_kernel(27.0 * 0.88), 0)
            .unwrap();
        // 108/4 = 27 SMs × 0.88 hypervisor mediation → 1 s, even with the
        // rest of the GPU idle.
        let wake = d.next_wake(SimTime::ZERO).unwrap();
        assert!((wake.as_secs_f64() - 1.0).abs() < 1e-6);
        // Slot memory = 20 GiB.
        assert!(d.alloc_memory(c0, 21 * crate::spec::GIB).is_err());
    }

    #[test]
    fn mode_change_requires_idle() {
        let mut d = dev(DeviceMode::TimeSharing);
        let _c = d
            .create_context(SimTime::ZERO, "p", CtxBinding::Bare)
            .unwrap();
        assert!(matches!(
            d.set_mode(DeviceMode::MpsDefault),
            Err(GpuError::DeviceBusy { .. })
        ));
    }

    #[test]
    fn destroy_context_aborts_kernels_and_frees_memory() {
        let mut d = dev(DeviceMode::TimeSharing);
        let c = d
            .create_context(SimTime::ZERO, "p", CtxBinding::Bare)
            .unwrap();
        d.alloc_memory(c, 1024).unwrap();
        d.launch(SimTime::ZERO, c, big_kernel(100.0), 0).unwrap();
        let aborted = d.destroy_context(t(0.5), c).unwrap();
        assert_eq!(aborted, 1);
        assert_eq!(d.memory_used(), 0);
        assert_eq!(d.active_kernels(), 0);
        assert!(d.next_wake(t(0.5)).is_none());
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = dev(DeviceMode::Mig);
        let i = d.mig_create("7g.80gb").unwrap();
        let u = d.mig.get(i).unwrap().uuid.clone();
        let c = d
            .create_context(SimTime::ZERO, "p", CtxBinding::MigInstance(u))
            .unwrap();
        d.alloc_memory(c, 1 << 30).unwrap();
        d.launch(SimTime::ZERO, c, big_kernel(10.0), 0).unwrap();
        d.reset(t(0.1));
        assert_eq!(d.context_count(), 0);
        assert_eq!(d.active_kernels(), 0);
        assert_eq!(d.mig.instance_count(), 0);
        assert_eq!(d.memory_used(), 0);
    }

    #[test]
    fn zero_work_kernel_completes_immediately() {
        let mut d = dev(DeviceMode::TimeSharing);
        let c = d
            .create_context(SimTime::ZERO, "p", CtxBinding::Bare)
            .unwrap();
        d.launch(SimTime::ZERO, c, KernelDesc::new("nop", 0.0, 1, 1, 0.0), 7)
            .unwrap();
        let wake = d.next_wake(SimTime::ZERO).unwrap();
        let done = d.collect_finished(wake);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
    }

    #[test]
    fn utilization_accounting() {
        let mut d = dev(DeviceMode::TimeSharing);
        let c = d
            .create_context(SimTime::ZERO, "p", CtxBinding::Bare)
            .unwrap();
        d.launch(SimTime::ZERO, c, big_kernel(108.0), 0).unwrap();
        let wake = d.next_wake(SimTime::ZERO).unwrap();
        d.collect_finished(wake);
        // Busy 108 SMs for 1 s; at t=2 s average = 108/2 /108 = 0.5.
        let u = d.average_utilization(t(2.0));
        assert!((u - 0.5).abs() < 1e-3, "util {u}");
    }

    #[test]
    fn attained_service_accounting_quantifies_contention() {
        // Default MPS, one giant-grid tenant vs one small-grid tenant:
        // the giant grid grabs most SMs (proportional split), and the
        // accounting exposes the imbalance Table 1 warns about.
        let mut d = dev(DeviceMode::MpsDefault);
        let hog = d
            .create_context(SimTime::ZERO, "hog", CtxBinding::Bare)
            .unwrap();
        let meek = d
            .create_context(SimTime::ZERO, "meek", CtxBinding::Bare)
            .unwrap();
        // The meek tenant only needs 20 SMs; the hog floods the device.
        d.launch(
            SimTime::ZERO,
            hog,
            KernelDesc::new("hog", 1000.0, 75_600, 75_600, 0.0),
            0,
        )
        .unwrap();
        d.launch(
            SimTime::ZERO,
            meek,
            KernelDesc::new("meek", 1000.0, 20, 20, 0.0),
            1,
        )
        .unwrap();
        d.advance(t(10.0));
        let a_hog = d.attained_service(hog);
        let a_meek = d.attained_service(meek);
        // Proportional split of 128 demanded SMs over 108: the meek
        // tenant is pushed below its 20-SM need (≈169 < 200 SM·s).
        assert!(a_meek < 0.9 * 200.0, "meek should be starved: {a_meek}");
        assert!(a_hog > 4.0 * a_meek, "hog {a_hog} vs meek {a_meek}");
        // Work conservation: total attained never exceeds SMs × time, and
        // wave quantization loses only a little of it.
        let total = a_hog + a_meek;
        assert!(total <= 108.0 * 10.0 + 1e-6);
        assert!(
            total > 0.9 * 108.0 * 10.0,
            "too much lost to waves: {total}"
        );
        // Context teardown clears the ledger.
        d.destroy_context(t(10.0), meek).unwrap();
        assert_eq!(d.attained_service(meek), 0.0);
    }

    #[test]
    fn mps_percentage_prevents_starvation() {
        // Same tenants under partitioned MPS 50/50: caps equalize service.
        let mut d = dev(DeviceMode::MpsPartitioned);
        let a = d
            .create_context(SimTime::ZERO, "a", CtxBinding::MpsPercentage(50))
            .unwrap();
        let b = d
            .create_context(SimTime::ZERO, "b", CtxBinding::MpsPercentage(50))
            .unwrap();
        d.launch(
            SimTime::ZERO,
            a,
            KernelDesc::new("hog", 1000.0, 75_600, 75_600, 0.0),
            0,
        )
        .unwrap();
        d.launch(
            SimTime::ZERO,
            b,
            KernelDesc::new("meek", 1000.0, 20, 20, 0.0),
            1,
        )
        .unwrap();
        d.advance(t(10.0));
        // With a 50% cap on the hog, the meek tenant attains its full
        // 20-SM demand: no starvation.
        let a_meek = d.attained_service(b);
        assert!((a_meek - 200.0).abs() < 1e-6, "meek un-starved: {a_meek}");
        assert!((d.attained_service(a) - 540.0).abs() < 1e-6);
    }

    #[test]
    fn unhealthy_device_refuses_new_work() {
        let mut d = dev(DeviceMode::TimeSharing);
        let c = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::Bare)
            .unwrap();
        d.mark_unhealthy(SimTime::ZERO);
        assert!(!d.is_healthy());
        assert_eq!(
            d.launch(SimTime::ZERO, c, big_kernel(10.0), 0),
            Err(GpuError::Unhealthy)
        );
        assert_eq!(
            d.create_context(SimTime::ZERO, "p1", CtxBinding::Bare),
            Err(GpuError::Unhealthy)
        );
        // Teardown of residents still works while quarantined.
        assert!(d.destroy_context(SimTime::ZERO, c).is_ok());
        d.mark_healthy();
        assert!(d
            .create_context(SimTime::ZERO, "p2", CtxBinding::Bare)
            .is_ok());
    }

    #[test]
    fn slowdown_stretches_completion_and_restores() {
        let mut d = dev(DeviceMode::TimeSharing);
        let c = d
            .create_context(SimTime::ZERO, "p0", CtxBinding::Bare)
            .unwrap();
        d.launch(SimTime::ZERO, c, big_kernel(108.0), 0).unwrap();
        // Nominal: 1 s. At half rate the remaining work takes twice as long.
        d.set_slowdown(SimTime::ZERO, 0.5);
        let wake = d.next_wake(SimTime::ZERO).unwrap();
        assert!((wake.as_secs_f64() - 2.0).abs() < 1e-6, "wake {wake}");
        // Half the work done by t=1; restoring speed finishes at t=1.5.
        d.set_slowdown(t(1.0), 1.0);
        let wake = d.next_wake(t(1.0)).unwrap();
        assert!((wake.as_secs_f64() - 1.5).abs() < 1e-6, "wake {wake}");
        let done = d.collect_finished(wake);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn binding_mode_mismatches_rejected() {
        let mut d = dev(DeviceMode::TimeSharing);
        assert!(d
            .create_context(SimTime::ZERO, "p", CtxBinding::MpsPercentage(50))
            .is_err());
        let mut d = dev(DeviceMode::Mig);
        assert!(d
            .create_context(SimTime::ZERO, "p", CtxBinding::Bare)
            .is_err());
        assert!(d
            .create_context(
                SimTime::ZERO,
                "p",
                CtxBinding::MigInstance("MIG-nope".into())
            )
            .is_err());
        let mut d = dev(DeviceMode::Vgpu { slots: 2 });
        assert!(d
            .create_context(SimTime::ZERO, "p", CtxBinding::VgpuSlot(2))
            .is_err());
    }
}
