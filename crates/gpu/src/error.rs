//! Error types for the GPU simulator.

use std::fmt;

/// Errors returned by device-control and execution operations.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// Allocation exceeds the memory visible to the requesting context.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes free in the context's memory domain.
        available: u64,
    },
    /// Referenced context does not exist (or was destroyed).
    UnknownContext(u32),
    /// Referenced MIG instance does not exist.
    UnknownInstance(u32),
    /// Operation requires a device mode other than the current one, e.g.
    /// creating a MIG instance while the GPU is not in MIG mode.
    WrongMode {
        /// What the operation needed.
        expected: &'static str,
        /// What the device was in.
        actual: &'static str,
    },
    /// A MIG instance of the requested profile cannot be placed on the
    /// remaining slices.
    MigPlacement {
        /// Requested profile name, e.g. `"2g.20gb"`.
        profile: &'static str,
    },
    /// The profile name is not in the device's MIG catalog.
    MigProfileUnknown(String),
    /// Mode changes and MIG reconfiguration require an idle device.
    DeviceBusy {
        /// Number of live contexts blocking the operation.
        contexts: usize,
    },
    /// MPS active-thread percentage outside `1..=100`.
    BadPercentage(u32),
    /// Freeing more memory than the context holds.
    BadFree {
        /// Bytes requested to free.
        requested: u64,
        /// Bytes the context actually holds.
        held: u64,
    },
    /// The device is quarantined after an uncorrectable (ECC/Xid-style)
    /// fault; no new contexts or kernels until it is re-admitted.
    Unhealthy,
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "out of device memory: requested {requested} B, {available} B available"
            ),
            GpuError::UnknownContext(id) => write!(f, "unknown GPU context {id}"),
            GpuError::UnknownInstance(id) => write!(f, "unknown MIG instance {id}"),
            GpuError::WrongMode { expected, actual } => {
                write!(
                    f,
                    "operation requires {expected} mode, device is in {actual}"
                )
            }
            GpuError::MigPlacement { profile } => {
                write!(f, "no free slice placement for MIG profile {profile}")
            }
            GpuError::MigProfileUnknown(p) => write!(f, "unknown MIG profile {p}"),
            GpuError::DeviceBusy { contexts } => {
                write!(f, "device busy: {contexts} live context(s) must exit first")
            }
            GpuError::BadPercentage(p) => {
                write!(f, "MPS active-thread percentage {p} outside 1..=100")
            }
            GpuError::BadFree { requested, held } => {
                write!(f, "freeing {requested} B but context holds {held} B")
            }
            GpuError::Unhealthy => {
                write!(f, "device marked unhealthy (uncorrectable fault)")
            }
        }
    }
}

impl std::error::Error for GpuError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, GpuError>;
