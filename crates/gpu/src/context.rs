//! Cold-start cost model (§6 of the paper).
//!
//! The paper decomposes GPU serverless cold start into three parts:
//!
//! 1. **function initialization** — download/decompress the code package,
//!    start the interpreter, import frameworks;
//! 2. **GPU context initialization** — `cuInit` + primary context creation
//!    (driver allocates pinned staging buffers, JIT caches);
//! 3. **application loading** — e.g. copying model weights into HBM. The
//!    paper measures "up to 10 seconds" for LLaMa2-13B and "10–20 seconds
//!    of setup" before an LLM is ready after an MPS resize.
//!
//! [`ColdStartModel`] turns those into durations; the FaaS worker and the
//! reconfiguration engine both consume it. The §7 *weight cache* future
//! work shortens step 3 to [`ColdStartModel::cached_attach`] on a hit.

use crate::spec::GpuSpec;
use parfait_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Cold-start timing parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ColdStartModel {
    /// Mean function-initialization time (imports, venv activation).
    pub function_init_mean_s: f64,
    /// Lognormal sigma for function init (heavy tail: cold package cache).
    pub function_init_sigma: f64,
    /// Fixed CUDA context initialization time.
    pub gpu_context_init_s: f64,
    /// Time to re-bind to weights already resident in GPU memory
    /// (§7 weight cache hit): pointer fix-up, no copy.
    pub cached_attach_s: f64,
}

impl Default for ColdStartModel {
    fn default() -> Self {
        ColdStartModel {
            // Python + torch import on the paper's testbed class machine.
            function_init_mean_s: 1.8,
            function_init_sigma: 0.25,
            // cuInit + primary ctx on A100 with MPS.
            gpu_context_init_s: 0.45,
            cached_attach_s: 0.20,
        }
    }
}

/// One sampled cold start, decomposed as in §6.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ColdStartBreakdown {
    /// Part (1): function initialization.
    pub function_init: SimDuration,
    /// Part (2): GPU context initialization (zero for CPU-only functions).
    pub gpu_context_init: SimDuration,
    /// Part (3): application loading (model weights → HBM).
    pub app_load: SimDuration,
}

impl ColdStartBreakdown {
    /// End-to-end cold-start duration.
    pub fn total(&self) -> SimDuration {
        self.function_init + self.gpu_context_init + self.app_load
    }
}

impl ColdStartModel {
    /// Sample a full cold start for a function that loads `model_bytes`
    /// of weights onto `spec` (pass 0 for CPU-only or weight-free tasks).
    pub fn sample(
        &self,
        rng: &mut SimRng,
        spec: Option<&GpuSpec>,
        model_bytes: u64,
    ) -> ColdStartBreakdown {
        // Lognormal with the configured mean: mu = ln(mean) - sigma²/2.
        let mu = self.function_init_mean_s.ln() - self.function_init_sigma.powi(2) / 2.0;
        let fi = rng.lognormal(mu, self.function_init_sigma);
        let (ctx, load) = match spec {
            Some(s) => (
                self.gpu_context_init_s,
                if model_bytes > 0 {
                    s.model_load_seconds(model_bytes)
                } else {
                    0.0
                },
            ),
            None => (0.0, 0.0),
        };
        ColdStartBreakdown {
            function_init: SimDuration::from_secs_f64(fi),
            gpu_context_init: SimDuration::from_secs_f64(ctx),
            app_load: SimDuration::from_secs_f64(load),
        }
    }

    /// Deterministic (mean) cold start — used by analytical benches that
    /// must not consume randomness.
    pub fn mean(&self, spec: Option<&GpuSpec>, model_bytes: u64) -> ColdStartBreakdown {
        let (ctx, load) = match spec {
            Some(s) => (
                self.gpu_context_init_s,
                if model_bytes > 0 {
                    s.model_load_seconds(model_bytes)
                } else {
                    0.0
                },
            ),
            None => (0.0, 0.0),
        };
        ColdStartBreakdown {
            function_init: SimDuration::from_secs_f64(self.function_init_mean_s),
            gpu_context_init: SimDuration::from_secs_f64(ctx),
            app_load: SimDuration::from_secs_f64(load),
        }
    }

    /// Restart with a §7 weight-cache hit: process restarts (function init
    /// + context init) but attaches to cached weights instead of reloading.
    pub fn mean_with_cache_hit(&self, spec: Option<&GpuSpec>) -> ColdStartBreakdown {
        let ctx = if spec.is_some() {
            self.gpu_context_init_s
        } else {
            0.0
        };
        ColdStartBreakdown {
            function_init: SimDuration::from_secs_f64(self.function_init_mean_s),
            gpu_context_init: SimDuration::from_secs_f64(ctx),
            app_load: SimDuration::from_secs_f64(self.cached_attach_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llama13b_restart_in_paper_band() {
        // §6: MPS resize of an LLM ⇒ "10-20 seconds of setup time".
        let m = ColdStartModel::default();
        let spec = GpuSpec::a100_80gb();
        let fp16_13b = 13_000_000_000u64 * 2;
        let b = m.mean(Some(&spec), fp16_13b);
        let total = b.total().as_secs_f64();
        assert!((10.0..=20.0).contains(&total), "restart {total}s");
    }

    #[test]
    fn cpu_function_skips_gpu_parts() {
        let m = ColdStartModel::default();
        let b = m.mean(None, 0);
        assert!(b.gpu_context_init.is_zero());
        assert!(b.app_load.is_zero());
        assert!(!b.function_init.is_zero());
    }

    #[test]
    fn cache_hit_eliminates_weight_copy() {
        let m = ColdStartModel::default();
        let spec = GpuSpec::a100_80gb();
        let fp16_7b = 7_000_000_000u64 * 2;
        let miss = m.mean(Some(&spec), fp16_7b).total().as_secs_f64();
        let hit = m.mean_with_cache_hit(Some(&spec)).total().as_secs_f64();
        assert!(
            miss - hit > 4.0,
            "cache should save the ~5.6 s load: miss={miss} hit={hit}"
        );
    }

    #[test]
    fn sampled_function_init_mean_converges() {
        let m = ColdStartModel::default();
        let mut rng = SimRng::new(5);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample(&mut rng, None, 0).function_init.as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - m.function_init_mean_s).abs() < 0.05, "mean {mean}");
    }
}
