//! Engine glue: turning [`GpuDevice`] state machines into discrete events.
//!
//! Any simulation world that owns GPUs implements [`GpuHost`]; the free
//! functions here ([`launch_kernel`], [`resync`]) keep exactly one pending
//! wake event armed per device and deliver completions through
//! [`GpuHost::on_kernel_done`].

use crate::device::{CtxId, GpuDevice, GpuId, KernelDone, KernelId};
use crate::error::Result;
use crate::kernel::KernelDesc;
use crate::spec::GpuSpec;
use parfait_simcore::Engine;

/// The machine's set of GPUs.
#[derive(Debug, Default)]
pub struct GpuFleet {
    devices: Vec<GpuDevice>,
}

impl GpuFleet {
    /// Empty fleet.
    pub fn new() -> Self {
        GpuFleet::default()
    }

    /// Install a device; returns its fleet id.
    pub fn add(&mut self, spec: GpuSpec) -> GpuId {
        let id = GpuId(self.devices.len() as u32);
        self.devices.push(GpuDevice::new(id, spec));
        id
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the fleet has no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Borrow a device.
    pub fn device(&self, id: GpuId) -> &GpuDevice {
        &self.devices[id.0 as usize]
    }

    /// Borrow a device mutably.
    pub fn device_mut(&mut self, id: GpuId) -> &mut GpuDevice {
        &mut self.devices[id.0 as usize]
    }

    /// Iterate devices.
    pub fn iter(&self) -> impl Iterator<Item = &GpuDevice> {
        self.devices.iter()
    }

    /// Toggle per-domain dirty tracking on every device (see
    /// [`GpuDevice::set_dirty_tracking`]).
    pub fn set_dirty_tracking(&mut self, on: bool) {
        for d in &mut self.devices {
            d.set_dirty_tracking(on);
        }
    }

    /// Fleet-wide deterministic cost counters: summed `(recompute
    /// calls, dirty domains re-derived, clean domains skipped)`.
    pub fn cost_counters(&self) -> (u64, u64, u64) {
        let mut total = (0, 0, 0);
        for d in &self.devices {
            let (c, v, s) = d.cost_counters();
            total.0 += c;
            total.1 += v;
            total.2 += s;
        }
        total
    }
}

/// A simulation world that owns a [`GpuFleet`].
pub trait GpuHost: Sized + 'static {
    /// Access the fleet.
    fn fleet_mut(&mut self) -> &mut GpuFleet;
    /// A kernel completed. Handlers may launch further kernels, allocate
    /// memory, destroy contexts — any device mutation is legal here.
    fn on_kernel_done(&mut self, eng: &mut Engine<Self>, done: KernelDone);
}

/// Launch a kernel and (re)arm the device's wake event.
pub fn launch_kernel<W: GpuHost>(
    world: &mut W,
    eng: &mut Engine<W>,
    gpu: GpuId,
    ctx: CtxId,
    desc: KernelDesc,
    tag: u64,
) -> Result<KernelId> {
    let now = eng.now();
    let id = world
        .fleet_mut()
        .device_mut(gpu)
        .launch(now, ctx, desc, tag)?;
    resync(world, eng, gpu);
    Ok(id)
}

/// Re-arm the single pending wake event for `gpu` after any state change
/// made directly on the device (context churn, memory ops, mode changes).
pub fn resync<W: GpuHost>(world: &mut W, eng: &mut Engine<W>, gpu: GpuId) {
    let now = eng.now();
    let pending = world.fleet_mut().device_mut(gpu).take_pending_event();
    if let Some(ev) = pending {
        eng.cancel(ev);
    }
    let wake = world.fleet_mut().device_mut(gpu).next_wake(now);
    if let Some(at) = wake {
        let ev = eng.schedule_at(at, move |w: &mut W, e| tick(w, e, gpu));
        world.fleet_mut().device_mut(gpu).set_pending_event(ev);
    }
}

/// Wake handler: pop completions, deliver them, re-arm.
fn tick<W: GpuHost>(world: &mut W, eng: &mut Engine<W>, gpu: GpuId) {
    world.fleet_mut().device_mut(gpu).take_pending_event();
    let done = world
        .fleet_mut()
        .device_mut(gpu)
        .collect_finished(eng.now());
    for d in done {
        world.on_kernel_done(eng, d);
    }
    resync(world, eng, gpu);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing::{CtxBinding, DeviceMode};
    use parfait_simcore::SimTime;

    struct World {
        fleet: GpuFleet,
        completions: Vec<(u64, SimTime)>,
        chain: u64,
        chain_ctx: Option<CtxId>,
    }

    impl GpuHost for World {
        fn fleet_mut(&mut self) -> &mut GpuFleet {
            &mut self.fleet
        }
        fn on_kernel_done(&mut self, eng: &mut Engine<Self>, done: KernelDone) {
            self.completions.push((done.tag, done.finished));
            if self.chain > 0 {
                self.chain -= 1;
                let ctx = self.chain_ctx.expect("chain ctx");
                let next_tag = done.tag + 1;
                launch_kernel(
                    self,
                    eng,
                    done.gpu,
                    ctx,
                    KernelDesc::new("chain", 10.8, 75_600, 75_600, 0.0),
                    next_tag,
                )
                .unwrap();
            }
        }
    }

    fn world(mode: DeviceMode) -> (World, Engine<World>, GpuId, CtxId) {
        let mut fleet = GpuFleet::new();
        let gpu = fleet.add(GpuSpec::a100_80gb());
        {
            let d = fleet.device_mut(gpu);
            if matches!(mode, DeviceMode::MpsDefault | DeviceMode::MpsPartitioned) {
                d.mps.start();
            }
            d.set_mode(mode).unwrap();
        }
        let ctx = fleet
            .device_mut(gpu)
            .create_context(SimTime::ZERO, "w0", CtxBinding::Bare)
            .unwrap();
        (
            World {
                fleet,
                completions: Vec::new(),
                chain: 0,
                chain_ctx: None,
            },
            Engine::new(),
            gpu,
            ctx,
        )
    }

    #[test]
    fn end_to_end_single_kernel() {
        let (mut w, mut eng, gpu, ctx) = world(DeviceMode::TimeSharing);
        launch_kernel(
            &mut w,
            &mut eng,
            gpu,
            ctx,
            KernelDesc::new("k", 54.0, 75_600, 75_600, 0.0),
            42,
        )
        .unwrap();
        eng.run(&mut w);
        assert_eq!(w.completions.len(), 1);
        let (tag, at) = w.completions[0];
        assert_eq!(tag, 42);
        assert!(
            (at.as_secs_f64() - 0.5).abs() < 1e-6,
            "54/108 SMs = 0.5 s, got {at}"
        );
    }

    #[test]
    fn chained_launches_from_completion_handler() {
        let (mut w, mut eng, gpu, ctx) = world(DeviceMode::TimeSharing);
        w.chain = 4;
        w.chain_ctx = Some(ctx);
        launch_kernel(
            &mut w,
            &mut eng,
            gpu,
            ctx,
            KernelDesc::new("chain", 10.8, 75_600, 75_600, 0.0),
            0,
        )
        .unwrap();
        eng.run(&mut w);
        assert_eq!(w.completions.len(), 5);
        let tags: Vec<u64> = w.completions.iter().map(|c| c.0).collect();
        assert_eq!(tags, vec![0, 1, 2, 3, 4]);
        let last = w.completions.last().unwrap().1;
        assert!(
            (last.as_secs_f64() - 0.5).abs() < 1e-5,
            "5 × 0.1 s, got {last}"
        );
    }

    #[test]
    fn concurrent_kernels_two_devices() {
        let mut fleet = GpuFleet::new();
        let g0 = fleet.add(GpuSpec::a100_40gb());
        let g1 = fleet.add(GpuSpec::a100_40gb());
        let c0 = fleet
            .device_mut(g0)
            .create_context(SimTime::ZERO, "a", CtxBinding::Bare)
            .unwrap();
        let c1 = fleet
            .device_mut(g1)
            .create_context(SimTime::ZERO, "b", CtxBinding::Bare)
            .unwrap();
        let mut w = World {
            fleet,
            completions: Vec::new(),
            chain: 0,
            chain_ctx: None,
        };
        let mut eng = Engine::new();
        launch_kernel(
            &mut w,
            &mut eng,
            g0,
            c0,
            KernelDesc::new("k0", 108.0, 75_600, 75_600, 0.0),
            0,
        )
        .unwrap();
        launch_kernel(
            &mut w,
            &mut eng,
            g1,
            c1,
            KernelDesc::new("k1", 108.0, 75_600, 75_600, 0.0),
            1,
        )
        .unwrap();
        eng.run(&mut w);
        assert_eq!(w.completions.len(), 2);
        // Both finish at ~1 s — devices are independent.
        for (_, at) in &w.completions {
            assert!((at.as_secs_f64() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn resync_is_idempotent() {
        let (mut w, mut eng, gpu, ctx) = world(DeviceMode::TimeSharing);
        launch_kernel(
            &mut w,
            &mut eng,
            gpu,
            ctx,
            KernelDesc::new("k", 10.8, 75_600, 75_600, 0.0),
            0,
        )
        .unwrap();
        for _ in 0..5 {
            resync(&mut w, &mut eng, gpu);
        }
        assert_eq!(eng.pending(), 1, "exactly one armed wake event");
        eng.run(&mut w);
        assert_eq!(w.completions.len(), 1);
    }

    #[test]
    fn timeshared_latency_stretches_with_coresidents() {
        // The Fig. 5 phenomenon in miniature: a fixed kernel takes ~n×
        // longer when n equal processes time-share the GPU.
        let run = |n: usize| -> f64 {
            let mut fleet = GpuFleet::new();
            let gpu = fleet.add(GpuSpec::a100_80gb());
            let ctxs: Vec<CtxId> = (0..n)
                .map(|i| {
                    fleet
                        .device_mut(gpu)
                        .create_context(SimTime::ZERO, &format!("p{i}"), CtxBinding::Bare)
                        .unwrap()
                })
                .collect();
            let mut w = World {
                fleet,
                completions: Vec::new(),
                chain: 0,
                chain_ctx: None,
            };
            let mut eng = Engine::new();
            for (i, &c) in ctxs.iter().enumerate() {
                launch_kernel(
                    &mut w,
                    &mut eng,
                    gpu,
                    c,
                    KernelDesc::new("k", 108.0, 75_600, 75_600, 0.0),
                    i as u64,
                )
                .unwrap();
            }
            eng.run(&mut w);
            w.completions
                .iter()
                .map(|(_, at)| at.as_secs_f64())
                .fold(0.0, f64::max)
                / w.completions.len() as f64
                * w.completions.len() as f64 // makespan
        };
        let t1 = run(1);
        let t4 = run(4);
        assert!(t4 / t1 > 3.9, "t1={t1} t4={t4}");
        assert!(t4 / t1 < 4.3, "switch overhead too large: t1={t1} t4={t4}");
    }
}
