//! Multi-Instance GPU (MIG) management.
//!
//! MIG slices an Ampere-class GPU into hardware-isolated instances. An A100
//! exposes **7 compute slices** (14 SMs each; 98 of 108 SMs are usable in
//! MIG mode) and **8 memory slices** (1/8 of HBM each). Profiles combine
//! them — `1g.10gb`, `2g.20gb`, `3g.40gb`, `4g.40gb`, `7g.80gb` on the
//! 80 GB part (§4.2 of the paper; 5/10/20/20/40 GB on the 40 GB part) —
//! and may only start at fixed slice offsets, which is why MIG can serve
//! at most `⌊7/g⌋` equal instances and why the paper finds MPS's
//! arbitrary percentages finer-grained (§5.2).
//!
//! Reconfiguration requires destroying instances, which in turn requires
//! that no process is resident — the "requires GPU reset and application
//! restart" drawback row of Table 1. The reset cost itself is modelled by
//! `parfait-core::reconfig`.

use crate::error::{GpuError, Result};
use crate::spec::GpuSpec;
use serde::Serialize;
use std::collections::BTreeMap;

/// A MIG profile shape: `<g>g.<mem>gb`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct MigProfile {
    /// Catalog name for this device, e.g. `"2g.20gb"`.
    pub name: &'static str,
    /// Compute slices (the `g` count).
    pub compute_slices: u8,
    /// Memory slices out of 8.
    pub memory_slices: u8,
}

impl MigProfile {
    /// Start offsets (compute-slice index) where this profile may be
    /// placed on an A100/H100-style 7-slice part.
    pub fn valid_starts(&self) -> &'static [u8] {
        match self.compute_slices {
            1 => &[0, 1, 2, 3, 4, 5, 6],
            2 => &[0, 2, 4],
            3 => &[0, 4],
            4 => &[0],
            7 => &[0],
            _ => &[],
        }
    }
}

/// Profile catalog for a spec (names depend on memory size).
pub fn profile_catalog(spec: &GpuSpec) -> Vec<MigProfile> {
    if !spec.mig_capable {
        return Vec::new();
    }
    // Memory per slice in whole GB for naming, e.g. 80 GiB /8 → "10gb".
    let per_slice_gb = spec.memory_bytes / 8 / (1 << 30);
    let name = |g: u8, m: u8| -> &'static str {
        // Catalog names for the parts we model; fall back to a generic
        // label for exotic sizes.
        match (g, m, per_slice_gb) {
            (1, 1, 5) => "1g.5gb",
            (2, 2, 5) => "2g.10gb",
            (3, 4, 5) => "3g.20gb",
            (4, 4, 5) => "4g.20gb",
            (7, 8, 5) => "7g.40gb",
            (1, 1, 10) => "1g.10gb",
            (2, 2, 10) => "2g.20gb",
            (3, 4, 10) => "3g.40gb",
            (4, 4, 10) => "4g.40gb",
            (7, 8, 10) => "7g.80gb",
            _ => "custom",
        }
    };
    [(1u8, 1u8), (2, 2), (3, 4), (4, 4), (7, 8)]
        .into_iter()
        .map(|(g, m)| MigProfile {
            name: name(g, m),
            compute_slices: g,
            memory_slices: m,
        })
        .collect()
}

/// A live MIG instance.
#[derive(Debug, Clone, Serialize)]
pub struct MigInstance {
    /// Manager-local id.
    pub id: u32,
    /// Driver-style UUID handed to `CUDA_VISIBLE_DEVICES`.
    pub uuid: String,
    /// Shape.
    pub profile: MigProfile,
    /// First compute slice.
    pub start_slice: u8,
    /// SMs available inside the instance.
    pub sms: u32,
    /// Bytes of HBM owned by the instance.
    pub memory_bytes: u64,
    /// Fraction of device HBM bandwidth owned by the instance
    /// (proportional to compute slices).
    pub bandwidth_fraction: f64,
}

/// Per-device MIG state machine.
#[derive(Debug, Clone, Default)]
pub struct MigManager {
    enabled: bool,
    instances: BTreeMap<u32, MigInstance>,
    next_id: u32,
    /// Compute-slice occupancy (7 slots).
    slices: [bool; 7],
    mem_slices_used: u8,
}

impl MigManager {
    /// Fresh manager, MIG disabled.
    pub fn new() -> Self {
        MigManager::default()
    }

    /// Is MIG mode on?
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enable MIG mode. The *caller* (device) must verify the GPU is idle —
    /// flipping MIG mode requires a GPU reset.
    pub fn set_enabled(&mut self, on: bool) -> Result<()> {
        if !on && !self.instances.is_empty() {
            return Err(GpuError::DeviceBusy {
                contexts: self.instances.len(),
            });
        }
        self.enabled = on;
        Ok(())
    }

    /// Live instances, ordered by id.
    pub fn instances(&self) -> impl Iterator<Item = &MigInstance> {
        self.instances.values()
    }

    /// Number of live instances.
    pub fn instance_count(&self) -> usize {
        self.instances.len()
    }

    /// Look up by manager-local id.
    pub fn get(&self, id: u32) -> Option<&MigInstance> {
        self.instances.get(&id)
    }

    /// Resolve a driver UUID to an instance.
    pub fn by_uuid(&self, uuid: &str) -> Option<&MigInstance> {
        self.instances.values().find(|i| i.uuid == uuid)
    }

    /// Free compute slices remaining.
    pub fn free_slices(&self) -> u8 {
        self.slices.iter().filter(|s| !**s).count() as u8
    }

    /// Create an instance of `profile_name` on `spec`, for device `gpu_id`
    /// (used in the UUID). First-fit over the profile's valid starts.
    pub fn create(&mut self, spec: &GpuSpec, gpu_id: u32, profile_name: &str) -> Result<u32> {
        if !self.enabled {
            return Err(GpuError::WrongMode {
                expected: "MIG",
                actual: "non-MIG",
            });
        }
        let profile = profile_catalog(spec)
            .into_iter()
            .find(|p| p.name == profile_name)
            .ok_or_else(|| GpuError::MigProfileUnknown(profile_name.to_string()))?;
        let g = profile.compute_slices as usize;
        let start = profile
            .valid_starts()
            .iter()
            .copied()
            .find(|&s| {
                let s = s as usize;
                s + g <= 7 && self.slices[s..s + g].iter().all(|b| !b)
            })
            .ok_or(GpuError::MigPlacement {
                profile: profile.name,
            })?;
        if self.mem_slices_used + profile.memory_slices > 8 {
            return Err(GpuError::MigPlacement {
                profile: profile.name,
            });
        }
        for b in &mut self.slices[start as usize..start as usize + g] {
            *b = true;
        }
        self.mem_slices_used += profile.memory_slices;
        let id = self.next_id;
        self.next_id += 1;
        let inst = MigInstance {
            id,
            uuid: format!("MIG-GPU{gpu_id}-{id}-{}", profile.name),
            profile,
            start_slice: start,
            sms: spec.mig_slice_sms * profile.compute_slices as u32,
            memory_bytes: spec.memory_bytes / 8 * profile.memory_slices as u64,
            bandwidth_fraction: profile.compute_slices as f64 / 7.0,
        };
        self.instances.insert(id, inst);
        Ok(id)
    }

    /// Destroy an instance (must have no resident contexts — enforced by
    /// the device, which owns the context table).
    pub fn destroy(&mut self, id: u32) -> Result<MigInstance> {
        let inst = self
            .instances
            .remove(&id)
            .ok_or(GpuError::UnknownInstance(id))?;
        let s = inst.start_slice as usize;
        let g = inst.profile.compute_slices as usize;
        for b in &mut self.slices[s..s + g] {
            *b = false;
        }
        self.mem_slices_used -= inst.profile.memory_slices;
        Ok(inst)
    }

    /// Destroy all instances (GPU reset path).
    pub fn destroy_all(&mut self) {
        self.instances.clear();
        self.slices = [false; 7];
        self.mem_slices_used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> (MigManager, GpuSpec) {
        let mut m = MigManager::new();
        m.set_enabled(true).unwrap();
        (m, GpuSpec::a100_80gb())
    }

    #[test]
    fn catalog_matches_paper_names_80gb() {
        let names: Vec<_> = profile_catalog(&GpuSpec::a100_80gb())
            .iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec!["1g.10gb", "2g.20gb", "3g.40gb", "4g.40gb", "7g.80gb"]
        );
    }

    #[test]
    fn catalog_matches_40gb_names() {
        let names: Vec<_> = profile_catalog(&GpuSpec::a100_40gb())
            .iter()
            .map(|p| p.name)
            .collect();
        assert_eq!(
            names,
            vec!["1g.5gb", "2g.10gb", "3g.20gb", "4g.20gb", "7g.40gb"]
        );
    }

    #[test]
    fn non_mig_part_has_empty_catalog() {
        assert!(profile_catalog(&GpuSpec::mi210()).is_empty());
    }

    #[test]
    fn create_requires_mig_mode() {
        let mut m = MigManager::new();
        let err = m.create(&GpuSpec::a100_80gb(), 0, "1g.10gb").unwrap_err();
        assert!(matches!(err, GpuError::WrongMode { .. }));
    }

    #[test]
    fn seven_1g_instances_fit_and_eighth_fails() {
        let (mut m, spec) = mgr();
        for _ in 0..7 {
            m.create(&spec, 0, "1g.10gb").unwrap();
        }
        assert_eq!(m.instance_count(), 7);
        assert!(matches!(
            m.create(&spec, 0, "1g.10gb"),
            Err(GpuError::MigPlacement { .. })
        ));
    }

    #[test]
    fn instance_resources_scale_with_profile() {
        let (mut m, spec) = mgr();
        let id = m.create(&spec, 3, "3g.40gb").unwrap();
        let inst = m.get(id).unwrap();
        assert_eq!(inst.sms, 42); // 3 slices × 14 SMs
        assert_eq!(inst.memory_bytes, spec.memory_bytes / 8 * 4);
        assert!((inst.bandwidth_fraction - 3.0 / 7.0).abs() < 1e-12);
        assert!(inst.uuid.contains("MIG-GPU3"));
    }

    #[test]
    fn paper_partitions_two_three_four_way() {
        // §5.2: 2 procs → 3g each; 3 → 2g each; 4 → 1g each.
        let (mut m, spec) = mgr();
        let a = m.create(&spec, 0, "3g.40gb").unwrap();
        let b = m.create(&spec, 0, "3g.40gb").unwrap();
        assert_eq!(m.instance_count(), 2);
        m.destroy(a).unwrap();
        m.destroy(b).unwrap();

        for _ in 0..3 {
            m.create(&spec, 0, "2g.20gb").unwrap();
        }
        assert_eq!(m.instance_count(), 3);
        m.destroy_all();

        for _ in 0..4 {
            m.create(&spec, 0, "1g.10gb").unwrap();
        }
        assert_eq!(m.instance_count(), 4);
    }

    #[test]
    fn placement_rules_block_misaligned_starts() {
        let (mut m, spec) = mgr();
        // Occupy slice 0 with 1g; 3g must then go to start 4; a second 3g
        // has nowhere to go even though 3 slices (1,2,3) are free.
        m.create(&spec, 0, "1g.10gb").unwrap();
        let b = m.create(&spec, 0, "3g.40gb").unwrap();
        assert_eq!(m.get(b).unwrap().start_slice, 4);
        assert!(matches!(
            m.create(&spec, 0, "3g.40gb"),
            Err(GpuError::MigPlacement { .. })
        ));
        assert_eq!(m.free_slices(), 3);
    }

    #[test]
    fn memory_slices_limit_enforced() {
        let (mut m, spec) = mgr();
        // 3g.40gb uses 4 memory slices; two of them exhaust all 8 memory
        // slices even though a compute slice remains.
        m.create(&spec, 0, "3g.40gb").unwrap();
        m.create(&spec, 0, "3g.40gb").unwrap();
        assert_eq!(m.free_slices(), 1);
        assert!(m.create(&spec, 0, "1g.10gb").is_err());
    }

    #[test]
    fn destroy_frees_slices_and_unknown_fails() {
        let (mut m, spec) = mgr();
        let id = m.create(&spec, 0, "7g.80gb").unwrap();
        assert_eq!(m.free_slices(), 0);
        m.destroy(id).unwrap();
        assert_eq!(m.free_slices(), 7);
        assert!(matches!(m.destroy(id), Err(GpuError::UnknownInstance(_))));
    }

    #[test]
    fn disable_requires_no_instances() {
        let (mut m, spec) = mgr();
        m.create(&spec, 0, "1g.10gb").unwrap();
        assert!(m.set_enabled(false).is_err());
        m.destroy_all();
        m.set_enabled(false).unwrap();
        assert!(!m.enabled());
    }

    #[test]
    fn uuid_lookup() {
        let (mut m, spec) = mgr();
        let id = m.create(&spec, 0, "2g.20gb").unwrap();
        let uuid = m.get(id).unwrap().uuid.clone();
        assert_eq!(m.by_uuid(&uuid).unwrap().id, id);
        assert!(m.by_uuid("MIG-nonexistent").is_none());
    }
}
