//! Hardware specifications for the simulated accelerators.
//!
//! Numbers are taken from vendor datasheets (and quoted in the paper §3.4):
//! the A100 has 108 SMs and 19.5 TF32 teraflops; the AMD MI210 has 104 CUs
//! and 22.6 fp32 teraflops. The *absolute* throughput constants matter less
//! than the ratios — every experiment in the paper is a comparison across
//! sharing modes on the same part.

use serde::{Deserialize, Serialize};

/// Gibibytes → bytes.
pub const GIB: u64 = 1 << 30;

/// Vendor of a device (controls which sharing mechanisms exist — Table 1's
/// "AMD equivalent" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vendor {
    /// NVIDIA: time-sharing, CUDA MPS (default + percentage), MIG, vGPU.
    Nvidia,
    /// AMD: ROCm default concurrent scheduling, CU masking, MxGPU.
    Amd,
}

/// Static description of one accelerator model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-SXM4-40GB"`.
    pub name: &'static str,
    /// Device vendor.
    pub vendor: Vendor,
    /// Streaming multiprocessors (NVIDIA) or compute units (AMD).
    pub sms: u32,
    /// HBM capacity in bytes.
    pub memory_bytes: u64,
    /// HBM bandwidth in GB/s (used only for documentation/ratios; kernel
    /// interference is expressed through `mem_intensity` fractions).
    pub hbm_gbps: f64,
    /// Peak fp32 teraflops — converts workload FLOPs to SM-seconds.
    pub fp32_tflops: f64,
    /// Whether the part supports MIG (Ampere data-center class and newer).
    pub mig_capable: bool,
    /// SMs exposed by one MIG compute slice (a `1g` profile). MIG reserves
    /// some SMs, so this is less than `sms / 7`: 14 on A100 (98 of 108 SMs
    /// usable), 16 on H100. Zero when not MIG-capable.
    pub mig_slice_sms: u32,
    /// Effective host→device model-load bandwidth in GB/s. Deliberately far
    /// below PCIe peak: checkpoint deserialization and allocator traffic
    /// dominate. Calibrated so a fp16 LLaMa2-13B load ≈ 10 s (§6).
    pub load_gbps: f64,
    /// Rate multiplier applied to a context whose footprint exceeds its
    /// visible memory when UVM oversubscription is enabled.
    pub uvm_penalty: f64,
}

impl GpuSpec {
    /// NVIDIA A100 SXM4 40 GB — the paper's Fig. 2 testbed GPU (§5.1).
    pub fn a100_40gb() -> Self {
        GpuSpec {
            name: "A100-SXM4-40GB",
            vendor: Vendor::Nvidia,
            sms: 108,
            memory_bytes: 40 * GIB,
            hbm_gbps: 1555.0,
            fp32_tflops: 19.5,
            mig_capable: true,
            mig_slice_sms: 14,
            load_gbps: 2.5,
            uvm_penalty: 0.90,
        }
    }

    /// NVIDIA A100 80 GB — the §5.2 multiplexing testbed GPU.
    pub fn a100_80gb() -> Self {
        GpuSpec {
            name: "A100-SXM4-80GB",
            vendor: Vendor::Nvidia,
            sms: 108,
            memory_bytes: 80 * GIB,
            hbm_gbps: 2039.0,
            fp32_tflops: 19.5,
            mig_capable: true,
            mig_slice_sms: 14,
            load_gbps: 2.5,
            uvm_penalty: 0.90,
        }
    }

    /// NVIDIA H100 SXM 80 GB (mentioned in §3.4 as the newer generation).
    pub fn h100_80gb() -> Self {
        GpuSpec {
            name: "H100-SXM5-80GB",
            vendor: Vendor::Nvidia,
            sms: 132,
            memory_bytes: 80 * GIB,
            hbm_gbps: 3350.0,
            fp32_tflops: 66.9,
            mig_capable: true,
            mig_slice_sms: 16,
            load_gbps: 4.0,
            uvm_penalty: 0.90,
        }
    }

    /// AMD MI210 64 GB (§3.4's comparison part). Not MIG-capable; supports
    /// CU masking, the MPS-percentage analog of Table 1.
    pub fn mi210() -> Self {
        GpuSpec {
            name: "MI210",
            vendor: Vendor::Amd,
            sms: 104,
            memory_bytes: 64 * GIB,
            hbm_gbps: 1638.0,
            fp32_tflops: 22.6,
            mig_capable: false,
            mig_slice_sms: 0,
            load_gbps: 2.5,
            uvm_penalty: 0.90,
        }
    }

    /// Seconds of one SM's work represented by `flops` floating-point
    /// operations at peak throughput.
    pub fn flops_to_sm_seconds(&self, flops: f64) -> f64 {
        let per_sm = self.fp32_tflops * 1e12 / self.sms as f64;
        flops / per_sm
    }

    /// Time to move `bytes` of model weights host→device (cold load).
    pub fn model_load_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.load_gbps * 1e9)
    }

    /// Time to write a `bytes` checkpoint snapshot device→host. The link
    /// is symmetric at the effective rate `load_gbps` already models
    /// (serialization and allocator traffic dominate raw PCIe bandwidth
    /// in both directions).
    pub fn checkpoint_write_seconds(&self, bytes: u64) -> f64 {
        self.model_load_seconds(bytes)
    }

    /// Time to restore (deserialize + upload) a `bytes` checkpoint
    /// host→device when a retried attempt resumes from a snapshot.
    pub fn checkpoint_restore_seconds(&self, bytes: u64) -> f64 {
        self.model_load_seconds(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_transfer_priced_like_model_load() {
        let s = GpuSpec::a100_80gb();
        let bytes = 4 * GIB;
        let w = s.checkpoint_write_seconds(bytes);
        let r = s.checkpoint_restore_seconds(bytes);
        assert!((w - s.model_load_seconds(bytes)).abs() < 1e-12);
        assert!((r - w).abs() < 1e-12, "link is symmetric");
        // 4 GiB at 2.5 GB/s effective ≈ 1.7 s — checkpoints are not free.
        assert!(w > 1.0 && w < 3.0, "got {w}");
    }

    #[test]
    fn a100_matches_paper_quotes() {
        let s = GpuSpec::a100_40gb();
        assert_eq!(s.sms, 108);
        assert_eq!(s.memory_bytes, 40 * GIB);
        assert!((s.fp32_tflops - 19.5).abs() < 1e-9);
        assert!(s.mig_capable);
    }

    #[test]
    fn mi210_matches_paper_quotes() {
        let s = GpuSpec::mi210();
        assert_eq!(s.sms, 104);
        assert!((s.fp32_tflops - 22.6).abs() < 1e-9);
        assert!(!s.mig_capable);
    }

    #[test]
    fn flops_conversion_roundtrip() {
        let s = GpuSpec::a100_40gb();
        // All 108 SMs for one second = 19.5e12 FLOPs.
        let sm_s = s.flops_to_sm_seconds(19.5e12);
        assert!((sm_s - 108.0).abs() < 1e-6);
    }

    #[test]
    fn llama13b_fp16_load_near_ten_seconds() {
        // §6: "loading time of LLaMa 2 13B can take up to 10 seconds".
        let s = GpuSpec::a100_80gb();
        let bytes = 13_000_000_000u64 * 2; // fp16
        let t = s.model_load_seconds(bytes);
        assert!((9.0..12.0).contains(&t), "load time {t}");
    }
}
