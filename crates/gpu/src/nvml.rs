//! NVML-style management facade.
//!
//! Real deployments discover and control GPUs through NVML (`nvidia-smi`
//! is a CLI over it): enumerate devices, query memory and utilization,
//! flip MIG mode, list instances. The FaaS layer and the partition planner
//! consume this API rather than poking [`crate::device::GpuDevice`]
//! internals, mirroring how the paper's Parsl changes shell out to
//! `nvidia-smi` / `nvidia-cuda-mps-control`.

use crate::device::GpuId;
use crate::host::GpuFleet;
use crate::mig::profile_catalog;
use parfait_simcore::SimTime;
use serde::Serialize;

/// Snapshot of one device, in the spirit of `nvidia-smi -q`.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceInfo {
    /// Fleet index.
    pub index: u32,
    /// Product name.
    pub name: &'static str,
    /// Total HBM bytes.
    pub memory_total: u64,
    /// Allocated HBM bytes (all domains).
    pub memory_used: u64,
    /// SM count.
    pub sms: u32,
    /// Instantaneous SM occupancy in `[0,1]`.
    pub utilization: f64,
    /// Sharing mode name.
    pub mode: &'static str,
    /// Is MIG mode enabled?
    pub mig_enabled: bool,
    /// Live process contexts.
    pub contexts: usize,
}

/// Snapshot of one MIG instance, in the spirit of `nvidia-smi mig -lgi`.
#[derive(Debug, Clone, Serialize)]
pub struct MigInstanceInfo {
    /// Owning device index.
    pub gpu_index: u32,
    /// Instance id.
    pub instance_id: u32,
    /// Driver UUID (what `CUDA_VISIBLE_DEVICES` takes).
    pub uuid: String,
    /// Profile name.
    pub profile: &'static str,
    /// SMs inside the instance.
    pub sms: u32,
    /// Instance memory bytes.
    pub memory_bytes: u64,
}

/// One row of the `nvidia-smi`-style process list.
#[derive(Debug, Clone, Serialize)]
pub struct ProcessInfo {
    /// Device index.
    pub gpu_index: u32,
    /// Context id on the device.
    pub ctx: u32,
    /// Process label (worker name).
    pub label: String,
    /// Bytes of device memory held.
    pub memory_bytes: u64,
    /// Instantaneous busy SMs of the process's kernels.
    pub busy_sms: f64,
    /// Lifetime attained service in SM-seconds (DCGM-style).
    pub attained_sm_s: f64,
}

/// List resident processes on a device — the `nvidia-smi` process table,
/// extended with the DCGM-style attained-service column that makes
/// Table 1's contention/starvation story observable.
pub fn list_processes(fleet: &GpuFleet, gpu: GpuId) -> Vec<ProcessInfo> {
    let d = fleet.device(gpu);
    d.contexts()
        .map(|c| ProcessInfo {
            gpu_index: gpu.0,
            ctx: c.id.0,
            label: c.label.clone(),
            memory_bytes: d.ctx_memory_used(c.id),
            busy_sms: d.ctx_busy_sms(c.id),
            attained_sm_s: d.attained_service(c.id),
        })
        .collect()
}

/// Number of devices.
pub fn device_count(fleet: &GpuFleet) -> usize {
    fleet.len()
}

/// Query one device.
pub fn device_info(fleet: &GpuFleet, gpu: GpuId) -> DeviceInfo {
    let d = fleet.device(gpu);
    DeviceInfo {
        index: gpu.0,
        name: d.spec.name,
        memory_total: d.spec.memory_bytes,
        memory_used: d.memory_used(),
        sms: d.spec.sms,
        utilization: d.busy_sms() / d.spec.sms as f64,
        mode: d.mode().name(),
        mig_enabled: d.mig.enabled(),
        contexts: d.context_count(),
    }
}

/// Query every device.
pub fn list_devices(fleet: &GpuFleet) -> Vec<DeviceInfo> {
    (0..fleet.len() as u32)
        .map(|i| device_info(fleet, GpuId(i)))
        .collect()
}

/// Time-averaged SM utilization of a device since boot.
pub fn average_utilization(fleet: &GpuFleet, gpu: GpuId, now: SimTime) -> f64 {
    fleet.device(gpu).average_utilization(now)
}

/// List MIG instances on a device (empty when MIG is off).
pub fn list_mig_instances(fleet: &GpuFleet, gpu: GpuId) -> Vec<MigInstanceInfo> {
    let d = fleet.device(gpu);
    d.mig
        .instances()
        .map(|i| MigInstanceInfo {
            gpu_index: gpu.0,
            instance_id: i.id,
            uuid: i.uuid.clone(),
            profile: i.profile.name,
            sms: i.sms,
            memory_bytes: i.memory_bytes,
        })
        .collect()
}

/// MIG profile names available on a device (what `nvidia-smi mig -lgip`
/// prints).
pub fn list_mig_profiles(fleet: &GpuFleet, gpu: GpuId) -> Vec<&'static str> {
    profile_catalog(&fleet.device(gpu).spec)
        .iter()
        .map(|p| p.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharing::DeviceMode;
    use crate::spec::GpuSpec;

    fn fleet() -> GpuFleet {
        let mut f = GpuFleet::new();
        f.add(GpuSpec::a100_40gb());
        f.add(GpuSpec::a100_40gb());
        f
    }

    #[test]
    fn enumerates_paper_testbed() {
        // §5.1: "a virtual machine with 2 A100-SXM4 GPUs with 40 GB".
        let f = fleet();
        assert_eq!(device_count(&f), 2);
        let infos = list_devices(&f);
        assert!(infos.iter().all(|i| i.name == "A100-SXM4-40GB"));
        assert!(infos
            .iter()
            .all(|i| i.memory_total == 40 * crate::spec::GIB));
        assert_eq!(infos[0].index, 0);
        assert_eq!(infos[1].index, 1);
    }

    #[test]
    fn info_reflects_mode_and_mig() {
        let mut f = fleet();
        let g = GpuId(0);
        f.device_mut(g).set_mode(DeviceMode::Mig).unwrap();
        let i0 = f.device_mut(g).mig_create("2g.10gb").unwrap();
        let info = device_info(&f, g);
        assert_eq!(info.mode, "mig");
        assert!(info.mig_enabled);
        let insts = list_mig_instances(&f, g);
        assert_eq!(insts.len(), 1);
        assert_eq!(insts[0].instance_id, i0);
        assert_eq!(insts[0].profile, "2g.10gb");
        assert_eq!(insts[0].sms, 28);
    }

    #[test]
    fn profile_listing_matches_catalog() {
        let f = fleet();
        let names = list_mig_profiles(&f, GpuId(0));
        assert_eq!(
            names,
            vec!["1g.5gb", "2g.10gb", "3g.20gb", "4g.20gb", "7g.40gb"]
        );
    }

    #[test]
    fn process_list_reports_memory_and_service() {
        use crate::{CtxBinding, KernelDesc};
        use parfait_simcore::{SimDuration, SimTime};
        let mut f = fleet();
        let g = GpuId(0);
        let ctx = f
            .device_mut(g)
            .create_context(SimTime::ZERO, "worker-7", CtxBinding::Bare)
            .unwrap();
        f.device_mut(g).alloc_memory(ctx, 1 << 30).unwrap();
        f.device_mut(g)
            .launch(
                SimTime::ZERO,
                ctx,
                KernelDesc::new("k", 540.0, 75_600, 75_600, 0.0),
                0,
            )
            .unwrap();
        f.device_mut(g)
            .advance(SimTime::ZERO + SimDuration::from_secs(2));
        let ps = list_processes(&f, g);
        assert_eq!(ps.len(), 1);
        assert_eq!(ps[0].label, "worker-7");
        assert_eq!(ps[0].memory_bytes, 1 << 30);
        assert!((ps[0].busy_sms - 108.0).abs() < 1e-9);
        assert!((ps[0].attained_sm_s - 216.0).abs() < 1e-6);
    }

    #[test]
    fn utilization_starts_at_zero() {
        let f = fleet();
        let info = device_info(&f, GpuId(0));
        assert_eq!(info.utilization, 0.0);
        assert_eq!(info.contexts, 0);
        assert_eq!(
            average_utilization(&f, GpuId(0), SimTime::from_secs(10)),
            0.0
        );
    }
}
