//! Property-based tests for the GPU arbitration model.

use parfait_gpu::host::{launch_kernel, GpuFleet, GpuHost};
use parfait_gpu::CtxId;
use parfait_gpu::{CtxBinding, DeviceMode, GpuDevice, GpuId, GpuSpec, KernelDesc, KernelDone};
use parfait_simcore::{Engine, SimDuration, SimTime};
use proptest::prelude::*;

fn arb_kernel() -> impl Strategy<Value = KernelDesc> {
    (0.01f64..50.0, 1u32..500, 1u32..200, 0.0f64..1.0)
        .prop_map(|(work, blocks, max_u, mem)| KernelDesc::new("prop", work, blocks, max_u, mem))
}

/// Kernels for the dirty-tracking equivalence test: zero memory so that
/// launches never OOM on small MIG instances and every op exercises the
/// rate recompute path rather than the allocator.
fn arb_domain_kernel() -> impl Strategy<Value = KernelDesc> {
    (0.01f64..50.0, 1u32..500, 1u32..200)
        .prop_map(|(work, blocks, max_u)| KernelDesc::new("prop", work, blocks, max_u, 0.0))
}

/// Run one op sequence against a fresh device in the selected mode and
/// record `kernel_rates()` (rates as raw bits for exact comparison) after
/// every op. Ops: 0 = launch, 1 = collect_finished sweep, 2 = destroy the
/// selected context and recreate it with the same binding.
fn rate_trace(
    mode_sel: usize,
    ops: &[(u8, KernelDesc, usize, u64)],
    tracking: bool,
) -> Vec<Vec<(u64, u64)>> {
    let mut d = GpuDevice::new(GpuId(0), GpuSpec::a100_80gb());
    d.set_dirty_tracking(tracking);
    let bindings: Vec<CtxBinding> = match mode_sel {
        0 => {
            d.set_mode(DeviceMode::TimeSharing).unwrap();
            vec![CtxBinding::Bare; 3]
        }
        1 => {
            d.mps.start();
            d.set_mode(DeviceMode::MpsDefault).unwrap();
            vec![CtxBinding::Bare; 3]
        }
        2 => {
            d.mps.start();
            d.set_mode(DeviceMode::MpsPartitioned).unwrap();
            vec![CtxBinding::MpsPercentage(25); 3]
        }
        3 => {
            d.set_mode(DeviceMode::Mig).unwrap();
            let a = d.mig_create("3g.40gb").unwrap();
            let b = d.mig_create("3g.40gb").unwrap();
            vec![
                CtxBinding::MigInstance(d.mig.get(a).unwrap().uuid.clone()),
                CtxBinding::MigInstance(d.mig.get(b).unwrap().uuid.clone()),
            ]
        }
        _ => {
            d.set_mode(DeviceMode::Vgpu { slots: 4 }).unwrap();
            vec![
                CtxBinding::VgpuSlot(0),
                CtxBinding::VgpuSlot(1),
                CtxBinding::VgpuSlot(2),
            ]
        }
    };
    let mut ctxs: Vec<(CtxId, CtxBinding)> = bindings
        .iter()
        .enumerate()
        .map(|(i, b)| {
            (
                d.create_context(SimTime::ZERO, &format!("p{i}"), b.clone())
                    .unwrap(),
                b.clone(),
            )
        })
        .collect();
    let mut now = SimTime::ZERO;
    let mut trace = Vec::with_capacity(ops.len());
    for (i, (op, kernel, sel, dt)) in ops.iter().enumerate() {
        now += SimDuration::from_nanos(*dt);
        let slot = sel % ctxs.len();
        match op {
            0 => {
                d.launch(now, ctxs[slot].0, kernel.clone(), i as u64)
                    .unwrap();
            }
            1 => {
                d.collect_finished(now);
            }
            _ => {
                let binding = ctxs[slot].1.clone();
                d.destroy_context(now, ctxs[slot].0).unwrap();
                let id = d
                    .create_context(now, &format!("r{i}"), binding.clone())
                    .unwrap();
                ctxs[slot] = (id, binding);
            }
        }
        trace.push(
            d.kernel_rates()
                .into_iter()
                .map(|(kid, rate)| (kid, rate.to_bits()))
                .collect(),
        );
    }
    trace
}

proptest! {
    /// Effective SMs never exceed the allocation, the block count, or the
    /// usefulness cap, and are monotone non-decreasing in the allocation.
    #[test]
    fn effective_sms_invariants(k in arb_kernel(), alloc in 0.0f64..200.0) {
        let eff = k.effective_sms(alloc);
        prop_assert!(eff >= 0.0);
        prop_assert!(eff <= alloc + 1e-9);
        prop_assert!(eff <= k.blocks as f64 + 1e-9);
        prop_assert!(eff <= k.max_useful_sms as f64 + 1e-9);
        let eff_more = k.effective_sms(alloc + 1.0);
        prop_assert!(eff_more + 1e-9 >= eff, "not monotone at {alloc}");
    }

    /// Under any mode, the sum of kernel rates never exceeds the device's
    /// SM count, and each kernel's rate is non-negative.
    #[test]
    fn rates_conserve_sms(
        kernels in proptest::collection::vec(arb_kernel(), 1..12),
        mode_sel in 0usize..3,
    ) {
        let mut d = GpuDevice::new(GpuId(0), GpuSpec::a100_80gb());
        let mode = match mode_sel {
            0 => DeviceMode::TimeSharing,
            1 => DeviceMode::MpsDefault,
            _ => DeviceMode::MpsPartitioned,
        };
        if mode_sel > 0 {
            d.mps.start();
        }
        d.set_mode(mode).unwrap();
        let n = kernels.len().min(4);
        let ctxs: Vec<_> = (0..n)
            .map(|i| {
                let binding = if mode == DeviceMode::MpsPartitioned {
                    CtxBinding::MpsPercentage(25)
                } else {
                    CtxBinding::Bare
                };
                d.create_context(SimTime::ZERO, &format!("p{i}"), binding).unwrap()
            })
            .collect();
        for (i, k) in kernels.iter().enumerate() {
            d.launch(SimTime::ZERO, ctxs[i % n], k.clone(), i as u64).unwrap();
        }
        prop_assert!(d.busy_sms() <= 108.0 + 1e-6, "busy {}", d.busy_sms());
        prop_assert!(d.busy_sms() >= 0.0);
    }

    /// Work conservation end-to-end: a batch of kernels on one context
    /// completes in exactly max over kernels of their finishing time, and
    /// total wall time is at least total work / device SMs.
    #[test]
    fn work_conservation(kernels in proptest::collection::vec(arb_kernel(), 1..8)) {
        struct W {
            fleet: GpuFleet,
            done: usize,
            last: SimTime,
        }
        impl GpuHost for W {
            fn fleet_mut(&mut self) -> &mut GpuFleet {
                &mut self.fleet
            }
            fn on_kernel_done(&mut self, eng: &mut Engine<Self>, _d: KernelDone) {
                self.done += 1;
                self.last = eng.now();
            }
        }
        let mut fleet = GpuFleet::new();
        let g = fleet.add(GpuSpec::a100_80gb());
        fleet.device_mut(g).mps.start();
        fleet.device_mut(g).set_mode(DeviceMode::MpsDefault).unwrap();
        let c = fleet
            .device_mut(g)
            .create_context(SimTime::ZERO, "p", CtxBinding::Bare)
            .unwrap();
        let mut w = W { fleet, done: 0, last: SimTime::ZERO };
        let mut eng = Engine::new();
        let total_work: f64 = kernels.iter().map(|k| k.work_sm_s).sum();
        for (i, k) in kernels.iter().enumerate() {
            launch_kernel(&mut w, &mut eng, g, c, k.clone(), i as u64).unwrap();
        }
        eng.run(&mut w);
        prop_assert_eq!(w.done, kernels.len(), "all kernels complete");
        let wall = w.last.as_secs_f64();
        prop_assert!(
            wall + 1e-6 >= total_work / 108.0,
            "wall {wall} beats the physical bound {}",
            total_work / 108.0
        );
        prop_assert!(w.fleet.device(g).active_kernels() == 0);
    }

    /// Memory accounting: any sequence of alloc/free on contexts keeps
    /// used() equal to the running ledger and never exceeds capacity in
    /// strict mode.
    #[test]
    fn memory_ledger(ops in proptest::collection::vec((0u8..2, 0u64..(40u64 << 30)), 1..60)) {
        let mut d = GpuDevice::new(GpuId(0), GpuSpec::a100_80gb());
        let c = d.create_context(SimTime::ZERO, "p", CtxBinding::Bare).unwrap();
        let mut ledger: u64 = 0;
        for (op, bytes) in ops {
            match op {
                0 => {
                    if d.alloc_memory(c, bytes).is_ok() {
                        ledger += bytes;
                    }
                }
                _ => {
                    if d.free_memory(c, bytes).is_ok() {
                        ledger -= bytes;
                    }
                }
            }
            prop_assert_eq!(d.memory_used(), ledger);
            prop_assert!(d.memory_used() <= 80u64 << 30);
        }
    }

    /// Per-domain dirty tracking is a pure strength reduction: any
    /// interleaving of launches, completion sweeps, and context
    /// teardown/recreate (the client-fault path) on any device mode
    /// must yield byte-identical per-kernel rate traces with dirty
    /// tracking on and off.
    #[test]
    fn dirty_tracking_matches_full_recompute(
        mode_sel in 0usize..5,
        ops in proptest::collection::vec(
            (0u8..3, arb_domain_kernel(), 0usize..4, 1u64..400_000_000u64),
            1..30,
        ),
    ) {
        let incremental = rate_trace(mode_sel, &ops, true);
        let full = rate_trace(mode_sel, &ops, false);
        prop_assert_eq!(incremental, full, "rate traces diverged in mode {}", mode_sel);
    }

    /// MIG placement: any sequence of create/destroy leaves slice
    /// occupancy consistent (free slices + occupied slices = 7).
    #[test]
    fn mig_slice_accounting(ops in proptest::collection::vec((0u8..2, 0usize..5), 1..40)) {
        let profiles = ["1g.10gb", "2g.20gb", "3g.40gb", "4g.40gb", "7g.80gb"];
        let mut d = GpuDevice::new(GpuId(0), GpuSpec::a100_80gb());
        d.set_mode(DeviceMode::Mig).unwrap();
        let mut live: Vec<(u32, u8)> = Vec::new(); // (id, slices)
        for (op, pi) in ops {
            if op == 0 {
                if let Ok(id) = d.mig_create(profiles[pi]) {
                    let g = d.mig.get(id).unwrap().profile.compute_slices;
                    live.push((id, g));
                }
            } else if let Some((id, _)) = live.first().copied() {
                if d.mig_destroy(id).is_ok() {
                    live.remove(0);
                }
            }
            let occupied: u8 = live.iter().map(|(_, g)| *g).sum();
            prop_assert_eq!(d.mig.free_slices() + occupied, 7);
        }
    }
}
