//! Regression lock on the arbitration numerics.
//!
//! Replays the `contended_arbitration` bench setup (8 MPS contexts ×
//! 50 kernels each on one A100-80GB) and asserts the kernel completion
//! times and per-context attained service are **bit-identical** to the
//! values produced by the pre-slab `BTreeMap` implementation. Any change
//! to f64 summation order in `GpuDevice::recompute`/`advance` shows up
//! here before it can silently shift a paper figure.

use parfait_gpu::host::{launch_kernel, GpuFleet, GpuHost};
use parfait_gpu::{CtxBinding, CtxId, DeviceMode, GpuSpec, KernelDesc, KernelDone};
use parfait_simcore::{Engine, SimTime};

struct World {
    fleet: GpuFleet,
    completions: Vec<(u64, u64)>,
}

impl GpuHost for World {
    fn fleet_mut(&mut self) -> &mut GpuFleet {
        &mut self.fleet
    }
    fn on_kernel_done(&mut self, _e: &mut Engine<Self>, d: KernelDone) {
        self.completions.push((d.tag, d.finished.as_nanos()));
    }
}

/// FNV-1a over a u64 stream; stable, dependency-free fingerprint.
fn fnv1a(acc: u64, x: u64) -> u64 {
    let mut h = acc;
    for b in x.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn run_trace() -> (Vec<(u64, u64)>, Vec<u64>, u64) {
    let mut fleet = GpuFleet::new();
    let gid = fleet.add(GpuSpec::a100_80gb());
    fleet.device_mut(gid).mps.start();
    fleet
        .device_mut(gid)
        .set_mode(DeviceMode::MpsDefault)
        .expect("mode");
    let ctxs: Vec<CtxId> = (0..8)
        .map(|i| {
            fleet
                .device_mut(gid)
                .create_context(SimTime::ZERO, &format!("p{i}"), CtxBinding::Bare)
                .expect("ctx")
        })
        .collect();
    let mut w = World {
        fleet,
        completions: Vec::new(),
    };
    let mut eng = Engine::new();
    for (i, &ctx) in ctxs.iter().enumerate() {
        for j in 0..50u64 {
            launch_kernel(
                &mut w,
                &mut eng,
                gid,
                ctx,
                KernelDesc::new("k", 0.5 + j as f64 * 0.01, 40, 40, 0.3),
                (i as u64) << 32 | j,
            )
            .expect("launch");
        }
    }
    eng.run(&mut w);
    let attained: Vec<u64> = ctxs
        .iter()
        .map(|&c| w.fleet.device(gid).attained_service(c).to_bits())
        .collect();
    (w.completions, attained, eng.now().as_nanos())
}

/// Recorded with the pre-slab `BTreeMap<u64, ActiveKernel>` device and
/// `BinaryHeap<Scheduled>` engine. FNV-1a over the (tag, finish-nanos)
/// completion stream.
const BASELINE_TRACE_HASH: u64 = 0x5c30d016884a1ccd;
/// Simulated end time of the trace under the baseline implementation.
const BASELINE_END_NANOS: u64 = 2_780_601_853;
/// Per-context attained service, as raw f64 bits. The workload is
/// symmetric, so all eight contexts attain the same service.
const BASELINE_ATTAINED_BITS: u64 = 0x40429ffffffffff1;

#[test]
fn contended_trace_is_bit_identical_to_recorded_baseline() {
    let (completions, attained, end) = run_trace();
    assert_eq!(completions.len(), 400, "all 400 kernels complete");

    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &(tag, t) in &completions {
        h = fnv1a(h, tag);
        h = fnv1a(h, t);
    }
    assert_eq!(
        h, BASELINE_TRACE_HASH,
        "completion stream (order, tags, or times) diverged from the recorded baseline"
    );
    assert_eq!(end, BASELINE_END_NANOS, "simulated makespan diverged");
    for (i, &a) in attained.iter().enumerate() {
        assert_eq!(
            a,
            BASELINE_ATTAINED_BITS,
            "attained_service(ctx {i}) not bit-identical: got {} want {}",
            f64::from_bits(a),
            f64::from_bits(BASELINE_ATTAINED_BITS),
        );
    }
    // Spot anchors, human-readable: first and last completion instants.
    assert_eq!(completions[0], (0, 1_851_851_852));
    assert_eq!(completions[399].1, BASELINE_END_NANOS);
}
