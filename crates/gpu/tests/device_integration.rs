//! Scenario-level GPU tests: mode-transition matrix, time-sharing
//! scheduling details, MIG fragmentation, and per-process accounting.

use parfait_gpu::host::{launch_kernel, GpuFleet, GpuHost};
use parfait_gpu::{
    nvml, CtxBinding, DeviceMode, GpuDevice, GpuId, GpuSpec, KernelDesc, KernelDone, ShareConfig,
};
use parfait_simcore::{Engine, SimDuration, SimTime};

fn device(mode: DeviceMode) -> GpuDevice {
    let mut d = GpuDevice::new(GpuId(0), GpuSpec::a100_80gb());
    if matches!(mode, DeviceMode::MpsDefault | DeviceMode::MpsPartitioned) {
        d.mps.start();
    }
    d.set_mode(mode).unwrap();
    d
}

#[test]
fn mode_transition_matrix_on_idle_device() {
    // Every mode can reach every other mode on an idle device.
    let modes = [
        DeviceMode::TimeSharing,
        DeviceMode::MpsDefault,
        DeviceMode::MpsPartitioned,
        DeviceMode::Mig,
        DeviceMode::Vgpu { slots: 2 },
    ];
    let mut d = GpuDevice::new(GpuId(0), GpuSpec::a100_80gb());
    d.mps.start();
    for from in &modes {
        for to in &modes {
            d.set_mode(*from)
                .unwrap_or_else(|e| panic!("enter {from:?}: {e}"));
            d.set_mode(*to)
                .unwrap_or_else(|e| panic!("{from:?} -> {to:?}: {e}"));
        }
    }
}

#[test]
fn mode_change_blocked_until_last_context_exits() {
    let mut d = device(DeviceMode::TimeSharing);
    let a = d
        .create_context(SimTime::ZERO, "a", CtxBinding::Bare)
        .unwrap();
    let b = d
        .create_context(SimTime::ZERO, "b", CtxBinding::Bare)
        .unwrap();
    assert!(d.set_mode(DeviceMode::MpsDefault).is_err());
    d.destroy_context(SimTime::ZERO, a).unwrap();
    assert!(
        d.set_mode(DeviceMode::MpsDefault).is_err(),
        "one context left"
    );
    d.destroy_context(SimTime::ZERO, b).unwrap();
    d.set_mode(DeviceMode::MpsDefault).unwrap();
}

#[test]
fn timesharing_quantum_rotation_is_fair() {
    // Two contexts with long kernels must each attain ~half of the device
    // over a long window (round-robin quanta).
    let mut d = device(DeviceMode::TimeSharing);
    d.set_share_config(ShareConfig {
        quantum: SimDuration::from_millis(10),
        switch_penalty: SimDuration::from_micros(100),
        mps_interference: 0.0,
    });
    let a = d
        .create_context(SimTime::ZERO, "a", CtxBinding::Bare)
        .unwrap();
    let b = d
        .create_context(SimTime::ZERO, "b", CtxBinding::Bare)
        .unwrap();
    d.launch(
        SimTime::ZERO,
        a,
        KernelDesc::new("ka", 1e6, 75_600, 75_600, 0.0),
        0,
    )
    .unwrap();
    d.launch(
        SimTime::ZERO,
        b,
        KernelDesc::new("kb", 1e6, 75_600, 75_600, 0.0),
        1,
    )
    .unwrap();
    // Drive the rotation events manually for 10 s.
    let mut now = SimTime::ZERO;
    let horizon = SimTime::from_secs(10);
    while let Some(w) = d.next_wake(now) {
        if w > horizon {
            break;
        }
        now = w;
        d.collect_finished(now);
    }
    d.advance(horizon);
    let sa = d.attained_service(a);
    let sb = d.attained_service(b);
    let total = sa + sb;
    assert!((sa / total - 0.5).abs() < 0.02, "share {:.3}", sa / total);
    // Switch overhead: 100 µs per 10 ms quantum ≈ 1% loss.
    assert!(total > 0.97 * 108.0 * 10.0, "attained {total}");
    assert!(total <= 108.0 * 10.0 + 1e-6);
}

#[test]
fn mig_fragmentation_and_defragmentation() {
    // Create 4+2+1, destroy the middle, show a 3g cannot fit until the
    // right slices free up — the rigidity §5.2 holds against MIG.
    let mut d = device(DeviceMode::Mig);
    let i4 = d.mig_create("4g.40gb").unwrap(); // slices 0-3
    let i2 = d.mig_create("2g.20gb").unwrap(); // slices 4-5
    let i1 = d.mig_create("1g.10gb").unwrap(); // slice 6
    assert_eq!(d.mig.free_slices(), 0);
    // Freeing the 2g leaves slices 4-5: a 3g (starts {0,4}) cannot fit.
    d.mig_destroy(i2).unwrap();
    assert!(d.mig_create("3g.40gb").is_err(), "fragmented");
    // Freeing the 1g exposes start 4 with 3 slices -> 3g fits.
    d.mig_destroy(i1).unwrap();
    let i3 = d.mig_create("3g.40gb").unwrap();
    assert_eq!(d.mig.get(i3).unwrap().start_slice, 4);
    d.mig_destroy(i4).unwrap();
    d.mig_destroy(i3).unwrap();
    assert_eq!(d.mig.free_slices(), 7);
}

#[test]
fn vgpu_slots_are_memory_isolated() {
    let mut d = device(DeviceMode::Vgpu { slots: 4 });
    let a = d
        .create_context(SimTime::ZERO, "vm0", CtxBinding::VgpuSlot(0))
        .unwrap();
    let b = d
        .create_context(SimTime::ZERO, "vm1", CtxBinding::VgpuSlot(1))
        .unwrap();
    // Each slot owns 20 GiB; one tenant cannot eat another's share.
    d.alloc_memory(a, 20 * parfait_gpu::GIB).unwrap();
    assert!(d.alloc_memory(a, 1).is_err(), "slot 0 full");
    d.alloc_memory(b, 20 * parfait_gpu::GIB).unwrap();
}

#[test]
fn mps_daemon_restart_cycle_with_device() {
    let mut d = device(DeviceMode::MpsPartitioned);
    let c = d
        .create_context(SimTime::ZERO, "p", CtxBinding::MpsPercentage(40))
        .unwrap();
    assert_eq!(d.mps.client_count(), 1);
    assert!(d.mps.stop().is_err(), "client connected");
    d.destroy_context(SimTime::ZERO, c).unwrap();
    d.mps.stop().unwrap();
    // With the daemon down, new MPS contexts are refused (§4.1: the
    // daemon must run before any GPU function).
    assert!(d
        .create_context(SimTime::ZERO, "q", CtxBinding::MpsPercentage(40))
        .is_err());
    d.mps.start();
    d.create_context(SimTime::ZERO, "q", CtxBinding::MpsPercentage(40))
        .unwrap();
}

#[test]
fn end_to_end_two_tenant_attained_service_via_nvml() {
    struct W {
        fleet: GpuFleet,
        done: usize,
    }
    impl GpuHost for W {
        fn fleet_mut(&mut self) -> &mut GpuFleet {
            &mut self.fleet
        }
        fn on_kernel_done(&mut self, _e: &mut Engine<Self>, _d: KernelDone) {
            self.done += 1;
        }
    }
    let mut fleet = GpuFleet::new();
    let g = fleet.add(GpuSpec::a100_80gb());
    fleet.device_mut(g).mps.start();
    fleet
        .device_mut(g)
        .set_mode(DeviceMode::MpsPartitioned)
        .unwrap();
    let a = fleet
        .device_mut(g)
        .create_context(SimTime::ZERO, "tenant-a", CtxBinding::MpsPercentage(75))
        .unwrap();
    let b = fleet
        .device_mut(g)
        .create_context(SimTime::ZERO, "tenant-b", CtxBinding::MpsPercentage(25))
        .unwrap();
    let mut w = W { fleet, done: 0 };
    let mut eng = Engine::new();
    for (ctx, tag) in [(a, 1u64), (b, 2)] {
        launch_kernel(
            &mut w,
            &mut eng,
            g,
            ctx,
            KernelDesc::new("k", 200.0, 75_600, 75_600, 0.0),
            tag,
        )
        .unwrap();
    }
    eng.run_until(&mut w, SimTime::from_secs(2));
    // Bring the accounting up to "now" before reading it (the device
    // integrates lazily, at events).
    w.fleet.device_mut(g).advance(eng.now());
    let ps = nvml::list_processes(&w.fleet, g);
    let sa = ps
        .iter()
        .find(|p| p.label == "tenant-a")
        .unwrap()
        .attained_sm_s;
    let sb = ps
        .iter()
        .find(|p| p.label == "tenant-b")
        .unwrap()
        .attained_sm_s;
    // 75/25 caps on 108 SMs -> 81 vs 27 SMs sustained.
    assert!((sa / sb - 3.0).abs() < 0.05, "ratio {}", sa / sb);
    eng.run(&mut w);
    assert_eq!(w.done, 2);
}
