//! Property-based tests for the simulation substrate.

use parfait_simcore::resource::PsPool;
use parfait_simcore::stats::{DurationHistogram, OnlineStats, TimeWeighted};
use parfait_simcore::timeline::Timeline;
use parfait_simcore::{Engine, SimDuration, SimRng, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    /// Events always fire in non-decreasing time order, regardless of the
    /// order and times they were scheduled in.
    #[test]
    fn engine_fires_in_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let fired: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let mut eng: Engine<()> = Engine::new();
        for &t in &times {
            let fired = Rc::clone(&fired);
            eng.schedule_at(SimTime::from_nanos(t), move |_: &mut (), e| {
                fired.borrow_mut().push(e.now().as_nanos());
            });
        }
        let mut w = ();
        eng.run(&mut w);
        let f = fired.borrow();
        prop_assert_eq!(f.len(), times.len());
        prop_assert!(f.windows(2).all(|p| p[0] <= p[1]), "out of order: {:?}", f);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&*f, &sorted);
    }

    /// Cancelling an arbitrary subset prevents exactly those events.
    #[test]
    fn engine_cancellation_is_exact(
        times in proptest::collection::vec(0u64..100_000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 100),
    ) {
        let fired: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let mut eng: Engine<()> = Engine::new();
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let fired = Rc::clone(&fired);
                eng.schedule_at(SimTime::from_nanos(t), move |_: &mut (), _| {
                    fired.borrow_mut().push(i);
                })
            })
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i % cancel_mask.len()] {
                eng.cancel(*id);
            } else {
                expect.push(i);
            }
        }
        let mut w = ();
        eng.run(&mut w);
        let mut f = fired.borrow().clone();
        f.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(f, expect);
    }

    /// The RNG stream is identical for identical seeds and distinct for
    /// split streams.
    #[test]
    fn rng_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// below(n) stays within bounds for arbitrary n.
    #[test]
    fn rng_below_in_range(seed in any::<u64>(), n in 1u64..u64::MAX) {
        let mut r = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(r.below(n) < n);
        }
    }

    /// Welford statistics match a naive two-pass computation.
    #[test]
    fn online_stats_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.record(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((s.variance() - var).abs() < 1e-4 * (1.0 + var));
        prop_assert_eq!(s.min().unwrap(), xs.iter().copied().fold(f64::INFINITY, f64::min));
        prop_assert_eq!(s.max().unwrap(), xs.iter().copied().fold(f64::NEG_INFINITY, f64::max));
    }

    /// Histogram quantiles are monotone in q and bracket the data range.
    #[test]
    fn histogram_quantiles_monotone(ms in proptest::collection::vec(1u64..1_000_000, 1..300)) {
        let mut h = DurationHistogram::new();
        for &m in &ms {
            h.record(SimDuration::from_micros(m));
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let vals: Vec<_> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
        prop_assert!(vals.windows(2).all(|p| p[0] <= p[1]));
    }

    /// Processor sharing conserves work: total service delivered equals
    /// total demand, and the makespan is at least demand/cores.
    #[test]
    fn ps_pool_conserves_work(
        demands in proptest::collection::vec(0.1f64..50.0, 1..40),
        cores in 1usize..8,
    ) {
        let mut p = PsPool::new(cores, SimTime::ZERO);
        for &d in &demands {
            p.add(SimTime::ZERO, d);
        }
        let total: f64 = demands.iter().sum();
        let mut now = SimTime::ZERO;
        let mut done = 0;
        for _ in 0..demands.len() * 2 + 2 {
            match p.next_completion(now) {
                Some((_, t)) => {
                    now = t;
                    done += p.take_finished(t).len();
                }
                None => break,
            }
        }
        prop_assert_eq!(done, demands.len());
        let lower = total / cores as f64;
        let max_single = demands.iter().copied().fold(0.0, f64::max);
        let lb = lower.max(max_single);
        prop_assert!(now.as_secs_f64() >= lb - 1e-6, "makespan {} < bound {}", now.as_secs_f64(), lb);
        // PS with equal sharing can't beat the bound by much either when
        // all demands are equal — sanity: makespan <= total (1 core worth).
        prop_assert!(now.as_secs_f64() <= total + 1e-6);
    }

    /// Timeline union-busy never exceeds the window and never exceeds the
    /// sum of span durations.
    #[test]
    fn timeline_union_bounds(
        spans in proptest::collection::vec((0u64..1000, 0u64..1000), 1..50),
    ) {
        let mut tl = Timeline::new();
        let mut sum = 0u64;
        for &(a, b) in &spans {
            let (lo, hi) = (a.min(b), a.max(b));
            tl.add("t", "x", SimTime::from_secs(lo), SimTime::from_secs(hi));
            sum += hi - lo;
        }
        let window_end = SimTime::from_secs(1000);
        let busy = tl.union_busy("t", SimTime::ZERO, window_end);
        prop_assert!(busy <= SimDuration::from_secs(1000));
        prop_assert!(busy <= SimDuration::from_secs(sum));
        // Gaps + busy = window.
        let gaps: u64 = tl
            .gaps("t", SimTime::ZERO, window_end)
            .iter()
            .map(|(a, b)| b.duration_since(*a).as_nanos())
            .sum();
        prop_assert_eq!(gaps + busy.as_nanos(), 1000 * 1_000_000_000);
    }

    /// Time-weighted average lies between the min and max recorded values.
    #[test]
    fn time_weighted_average_bounded(
        vals in proptest::collection::vec(0f64..100.0, 1..50),
    ) {
        let mut g = TimeWeighted::new(SimTime::ZERO, vals[0]);
        for (i, &v) in vals.iter().enumerate().skip(1) {
            g.set(SimTime::from_secs(i as u64), v);
        }
        let end = SimTime::from_secs(vals.len() as u64);
        let avg = g.average(end);
        let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9, "avg {avg} outside [{lo}, {hi}]");
    }
}

// ---------------------------------------------------------------------
// Slab engine vs a naive reference model.
//
// The engine's contract — time order, FIFO tie-break, cancelled events
// never fire, stale handles inert — is easy to state as a model: a flat
// list of (time, seq, label) entries where firing order is a stable
// sort on (time, seq) over the still-live entries. Random interleavings
// of schedule/cancel/reschedule must agree with it exactly, whatever
// slot recycling and tombstone traffic they induce.

/// The reference model. `seq` mirrors schedule order, exactly as the
/// engine's internal sequence does.
#[derive(Default)]
struct RefModel {
    entries: Vec<RefEntry>,
}

struct RefEntry {
    time: u64,
    seq: usize,
    label: u64,
    live: bool,
}

impl RefModel {
    /// Returns the model handle (entry index).
    fn schedule(&mut self, time: u64, label: u64) -> usize {
        let seq = self.entries.len();
        self.entries.push(RefEntry {
            time,
            seq,
            label,
            live: true,
        });
        seq
    }

    /// Returns whether the entry was still live (what `Engine::cancel`
    /// must report).
    fn cancel(&mut self, idx: usize) -> bool {
        let was = self.entries[idx].live;
        self.entries[idx].live = false;
        was
    }

    fn live_count(&self) -> usize {
        self.entries.iter().filter(|e| e.live).count()
    }

    /// The exact label order a full run must produce.
    fn fired(&self) -> Vec<u64> {
        let mut live: Vec<&RefEntry> = self.entries.iter().filter(|e| e.live).collect();
        live.sort_by_key(|e| (e.time, e.seq));
        live.iter().map(|e| e.label).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random schedule/cancel/reschedule interleavings agree with the
    /// reference model on cancel outcomes, pending counts, and the full
    /// firing order.
    #[test]
    fn engine_matches_reference_model(
        ops in proptest::collection::vec(
            (0u8..3, 0u64..1_000_000, 0u64..1_000_000),
            0..200,
        ),
    ) {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut model = RefModel::default();
        // Engine handle ↔ model handle, in schedule order.
        let mut handles: Vec<(parfait_simcore::EventId, usize)> = Vec::new();
        let mut next_label = 0u64;
        for (kind, a, b) in ops {
            match kind {
                0 => {
                    let label = next_label;
                    next_label += 1;
                    let id = eng.schedule_at(
                        SimTime::from_nanos(a),
                        move |w: &mut Vec<u64>, _| w.push(label),
                    );
                    handles.push((id, model.schedule(a, label)));
                }
                // Cancel an arbitrary earlier handle — possibly one
                // that is already a tombstone.
                1 if !handles.is_empty() => {
                    let (id, mi) = handles[(b as usize) % handles.len()];
                    prop_assert_eq!(eng.cancel(id), model.cancel(mi));
                }
                // Reschedule: cancel + re-arm at a new instant, the
                // timeout-wheel pattern.
                2 if !handles.is_empty() => {
                    let (id, mi) = handles[(b as usize) % handles.len()];
                    prop_assert_eq!(eng.cancel(id), model.cancel(mi));
                    let label = next_label;
                    next_label += 1;
                    let id = eng.schedule_at(
                        SimTime::from_nanos(a),
                        move |w: &mut Vec<u64>, _| w.push(label),
                    );
                    handles.push((id, model.schedule(a, label)));
                }
                _ => {}
            }
        }
        prop_assert_eq!(eng.pending(), model.live_count());
        let mut log = Vec::new();
        eng.run(&mut log);
        prop_assert_eq!(log, model.fired());
        prop_assert!(eng.is_idle());
    }

    /// Once an event has fired, every outstanding handle to it is stale:
    /// cancelling through it reports `false` and cannot touch whatever
    /// event now occupies the recycled slot.
    #[test]
    fn stale_handles_are_inert(n in 1usize..40, extra in 0u64..1_000_000) {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let ids: Vec<parfait_simcore::EventId> = (0..n)
            .map(|i| {
                eng.schedule_at(
                    SimTime::from_nanos(i as u64 * 7),
                    move |w: &mut Vec<u64>, _| w.push(i as u64),
                )
            })
            .collect();
        let mut log = Vec::new();
        eng.run(&mut log);
        prop_assert_eq!(log.len(), n);
        for id in &ids {
            prop_assert!(!eng.cancel(*id), "fired handle must be stale");
        }
        // A fresh event reoccupies one of the recycled slots; the stale
        // handles still must not be able to cancel it.
        let label = u64::MAX;
        eng.schedule_at(
            SimTime::from_nanos(eng.now().as_nanos() + extra),
            move |w: &mut Vec<u64>, _| w.push(label),
        );
        for id in &ids {
            prop_assert!(!eng.cancel(*id), "stale handle hit a recycled slot");
        }
        eng.run(&mut log);
        prop_assert_eq!(log.len(), n + 1);
        prop_assert_eq!(*log.last().expect("fired"), u64::MAX);
    }
}
