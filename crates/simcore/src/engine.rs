//! The discrete-event engine.
//!
//! [`Engine<W>`] owns a time-ordered heap of events. An event is an
//! `FnOnce(&mut W, &mut Engine<W>)` closure, where `W` is whatever "world"
//! state the caller wants to simulate. The engine guarantees:
//!
//! * events fire in non-decreasing time order;
//! * events scheduled for the same instant fire in FIFO (schedule) order —
//!   a *stable* tie-break, which is what makes runs reproducible;
//! * a cancelled event never fires.
//!
//! The world is passed into [`Engine::step`]/[`Engine::run`] by the caller,
//! so the engine never borrows it across events and handlers are free to
//! schedule or cancel further events.

use crate::time::{SimDuration, SimTime};
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// Handle to a scheduled event; can be used to [`Engine::cancel`] it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    action: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. seq gives the stable FIFO tie-break.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event scheduler over a world type `W`.
///
/// ```
/// use parfait_simcore::{Engine, SimDuration, SimTime};
///
/// let mut eng: Engine<Vec<&str>> = Engine::new();
/// let mut log = Vec::new();
/// eng.schedule_at(SimTime::from_secs(2), |w: &mut Vec<&str>, _| w.push("later"));
/// eng.schedule_at(SimTime::from_secs(1), |w: &mut Vec<&str>, e| {
///     w.push("first");
///     e.schedule_in(SimDuration::from_secs(5), |w: &mut Vec<&str>, _| w.push("child"));
/// });
/// eng.run(&mut log);
/// assert_eq!(log, vec!["first", "later", "child"]);
/// assert_eq!(eng.now(), SimTime::from_secs(6));
/// ```
pub struct Engine<W> {
    now: SimTime,
    next_seq: u64,
    heap: BinaryHeap<Scheduled<W>>,
    /// Ids cancelled but not yet popped from the heap.
    cancelled: HashSet<u64>,
    /// Ids currently in the heap and not cancelled.
    live: HashSet<u64>,
    fired: u64,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Create an engine at t = 0 with no pending events.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            next_seq: 0,
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live: HashSet::new(),
            fired: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of live (non-cancelled) pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.pending() == 0
    }

    /// Schedule `action` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic error in a DES.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: now={} at={}",
            self.now,
            at
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Scheduled {
            time: at,
            seq,
            action: Box::new(action),
        });
        EventId(seq)
    }

    /// Schedule `action` to fire `after` from now.
    pub fn schedule_in(
        &mut self,
        after: SimDuration,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        let at = self.now.saturating_add(after);
        self.schedule_at(at, action)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed not to fire), `false` if it had
    /// already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if self.live.remove(&id.0) {
            self.cancelled.insert(id.0);
            true
        } else {
            false
        }
    }

    /// Fire the next event, if any. Returns `false` when idle.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.live.remove(&ev.seq);
            debug_assert!(ev.time >= self.now, "event heap returned past event");
            self.now = ev.time;
            self.fired += 1;
            (ev.action)(world, self);
            return true;
        }
        false
    }

    /// Run until no events remain.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run until the next event would fire after `deadline` (or idle).
    /// Leaves `now` at the time of the last fired event (≤ `deadline`); the
    /// caller may then inspect the world "as of" the deadline.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        loop {
            let next = loop {
                match self.heap.peek() {
                    Some(ev) if self.cancelled.contains(&ev.seq) => {
                        let ev = self.heap.pop().expect("peeked");
                        self.cancelled.remove(&ev.seq);
                    }
                    Some(ev) => break Some(ev.time),
                    None => break None,
                }
            };
            match next {
                Some(t) if t <= deadline => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run at most `max_events` events; returns how many fired.
    pub fn run_steps(&mut self, world: &mut W, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step(world) {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    fn sec(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fires_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(sec(3), |w: &mut World, e| w.log.push((e.now().as_nanos(), "c")));
        eng.schedule_at(sec(1), |w: &mut World, e| w.log.push((e.now().as_nanos(), "a")));
        eng.schedule_at(sec(2), |w: &mut World, e| w.log.push((e.now().as_nanos(), "b")));
        eng.run(&mut w);
        let labels: Vec<_> = w.log.iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        assert_eq!(eng.events_fired(), 3);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for (i, label) in ["first", "second", "third", "fourth"].iter().enumerate() {
            let label = *label;
            let _ = i;
            eng.schedule_at(sec(5), move |w: &mut World, _| w.log.push((0, label)));
        }
        eng.run(&mut w);
        let labels: Vec<_> = w.log.iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn handlers_can_schedule_more() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(sec(1), |_w: &mut World, e| {
            e.schedule_in(SimDuration::from_secs(1), |w: &mut World, e| {
                w.log.push((e.now().as_nanos(), "child"));
            });
        });
        eng.run(&mut w);
        assert_eq!(w.log, vec![(2 * crate::time::NANOS_PER_SEC, "child")]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let id = eng.schedule_at(sec(1), |w: &mut World, _| w.log.push((0, "nope")));
        eng.schedule_at(sec(2), |w: &mut World, _| w.log.push((0, "yes")));
        assert!(eng.cancel(id));
        assert!(!eng.cancel(id), "double cancel reports false");
        eng.run(&mut w);
        assert_eq!(w.log, vec![(0, "yes")]);
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let id = eng.schedule_at(sec(1), |_: &mut World, _| {});
        eng.run(&mut w);
        assert!(!eng.cancel(id));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_past_panics() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(sec(5), |_: &mut World, _| {});
        eng.run(&mut w);
        eng.schedule_at(sec(1), |_: &mut World, _| {});
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(sec(1), |w: &mut World, _| w.log.push((0, "in")));
        eng.schedule_at(sec(10), |w: &mut World, _| w.log.push((0, "out")));
        eng.run_until(&mut w, sec(5));
        assert_eq!(w.log, vec![(0, "in")]);
        assert_eq!(eng.now(), sec(5));
        assert_eq!(eng.pending(), 1);
        eng.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn pending_accounts_for_cancellations() {
        let mut eng: Engine<World> = Engine::new();
        let a = eng.schedule_at(sec(1), |_: &mut World, _| {});
        let _b = eng.schedule_at(sec(2), |_: &mut World, _| {});
        assert_eq!(eng.pending(), 2);
        eng.cancel(a);
        assert_eq!(eng.pending(), 1);
        assert!(!eng.is_idle());
    }

    #[test]
    fn periodic_self_rescheduling_pattern() {
        // The idiom used by pollers (monitoring, heartbeats).
        struct Tick {
            count: Rc<std::cell::Cell<u32>>,
        }
        fn tick(w: &mut Tick, e: &mut Engine<Tick>) {
            w.count.set(w.count.get() + 1);
            if w.count.get() < 5 {
                e.schedule_in(SimDuration::from_millis(100), tick);
            }
        }
        let count = Rc::new(std::cell::Cell::new(0));
        let mut w = Tick { count: count.clone() };
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, tick);
        eng.run(&mut w);
        assert_eq!(count.get(), 5);
        assert_eq!(eng.now(), SimTime::from_nanos(400 * crate::time::NANOS_PER_MILLI));
    }
}
