//! The discrete-event engine.
//!
//! [`Engine<W>`] owns a time-ordered heap of events. An event is an
//! `FnOnce(&mut W, &mut Engine<W>)` closure, where `W` is whatever "world"
//! state the caller wants to simulate. The engine guarantees:
//!
//! * events fire in non-decreasing time order;
//! * events scheduled for the same instant fire in FIFO (schedule) order —
//!   a *stable* tie-break, which is what makes runs reproducible;
//! * a cancelled event never fires.
//!
//! The world is passed into [`Engine::step`]/[`Engine::run`] by the caller,
//! so the engine never borrows it across events and handlers are free to
//! schedule or cancel further events.
//!
//! # Storage
//!
//! Events live in a slab of reusable slots; a flat 4-ary min-heap
//! orders bare `(time, seq, slot)` entries — time and sequence packed
//! into one `u128` key — and never moves a closure after it is boxed. An [`EventId`] is a `(slot, generation)` pair: the generation
//! is bumped every time a slot is vacated, so a stale handle — one
//! whose event already fired or was cancelled — can never touch the
//! slot's next occupant, even though slots are recycled aggressively.
//! [`Engine::cancel`] just flips the slot to a tombstone in O(1); the
//! heap entry is discarded lazily when it surfaces. Steady-state
//! schedule/fire traffic therefore allocates nothing beyond the closure
//! box itself once the slab and heap have grown to the high-water mark.

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event; can be used to [`Engine::cancel`] it.
///
/// Handles are generation-tagged: once the event fires or is cancelled,
/// the handle goes stale and all further operations through it are
/// no-ops, even after the underlying slot is reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Engine<W>)>;

/// Free-list terminator for `free_head` / `next_free`.
const NIL: u32 = u32::MAX;

enum SlotState<W> {
    /// Unused; links to the next free slot.
    Vacant { next_free: u32 },
    /// Scheduled and live; exactly one heap entry points here.
    Pending { action: EventFn<W> },
    /// Cancelled, but its heap entry has not surfaced yet.
    Tombstone,
}

struct Slot<W> {
    /// Bumped on every vacate; must match [`EventId::gen`] for a handle
    /// to be considered live.
    gen: u32,
    state: SlotState<W>,
}

/// What the heap orders: the closure stays in the slab.
#[derive(Clone, Copy)]
struct HeapEntry {
    /// `(time.as_nanos() << 64) | seq` — one branchless `u128` compare
    /// orders by time with a stable FIFO tie-break on the sequence.
    key: u128,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn new(time: SimTime, seq: u64, slot: u32) -> Self {
        HeapEntry {
            key: ((time.as_nanos() as u128) << 64) | seq as u128,
            slot,
        }
    }

    #[inline]
    fn time(&self) -> SimTime {
        SimTime::from_nanos((self.key >> 64) as u64)
    }
}

/// Heap fan-out. Quaternary halves the depth of a binary heap, and with
/// 16-byte keys the four children of a node span exactly one cache line,
/// which measurably cuts sift time on the 100k-timer substrate benchmark.
const ARITY: usize = 4;

/// Implicit d-ary min-heap of [`HeapEntry`]s, ordered on the packed key.
///
/// Stored struct-of-arrays: sift loops compare only `keys`, so the hot
/// comparisons scan a densely packed `u128` array; the payload slot
/// indices move in lock-step in a parallel array.
struct EventHeap {
    keys: Vec<u128>,
    slots: Vec<u32>,
    /// Deterministic cost counters: cumulative push/pop totals. Pure
    /// functions of the event schedule, so they double as a drift-free
    /// proxy for hot-path work (see the cost ratchet in `repro`).
    pushes: u64,
    pops: u64,
}

impl EventHeap {
    const fn new() -> Self {
        EventHeap {
            keys: Vec::new(),
            slots: Vec::new(),
            pushes: 0,
            pops: 0,
        }
    }

    #[inline]
    fn peek(&self) -> Option<HeapEntry> {
        Some(HeapEntry {
            key: *self.keys.first()?,
            slot: self.slots[0],
        })
    }

    #[inline]
    fn push(&mut self, e: HeapEntry) {
        self.pushes += 1;
        self.keys.push(e.key);
        self.slots.push(e.slot);
        self.sift_up(self.keys.len() - 1, e);
    }

    #[inline]
    fn pop(&mut self) -> Option<HeapEntry> {
        let n = self.keys.len();
        if n == 0 {
            return None;
        }
        self.pops += 1;
        let top = HeapEntry {
            key: self.keys[0],
            slot: self.slots[0],
        };
        let last = HeapEntry {
            key: self.keys.pop().expect("non-empty"),
            slot: self.slots.pop().expect("non-empty"),
        };
        if n > 1 {
            self.sift_down(0, last);
        }
        Some(top)
    }

    /// Place `e` (already appended conceptually at `i`) by walking up.
    fn sift_up(&mut self, mut i: usize, e: HeapEntry) {
        while i > 0 {
            let parent = (i - 1) / ARITY;
            if self.keys[parent] <= e.key {
                break;
            }
            self.keys[i] = self.keys[parent];
            self.slots[i] = self.slots[parent];
            i = parent;
        }
        self.keys[i] = e.key;
        self.slots[i] = e.slot;
    }

    /// Place `e` by walking down from `i`, promoting the smallest child.
    fn sift_down(&mut self, mut i: usize, e: HeapEntry) {
        let n = self.keys.len();
        loop {
            let first = i * ARITY + 1;
            if first >= n {
                break;
            }
            let mut min = first;
            let mut min_key = self.keys[first];
            for c in first + 1..(first + ARITY).min(n) {
                let k = self.keys[c];
                if k < min_key {
                    min = c;
                    min_key = k;
                }
            }
            if e.key <= min_key {
                break;
            }
            self.keys[i] = min_key;
            self.slots[i] = self.slots[min];
            i = min;
        }
        self.keys[i] = e.key;
        self.slots[i] = e.slot;
    }
}

/// A discrete-event scheduler over a world type `W`.
///
/// ```
/// use parfait_simcore::{Engine, SimDuration, SimTime};
///
/// let mut eng: Engine<Vec<&str>> = Engine::new();
/// let mut log = Vec::new();
/// eng.schedule_at(SimTime::from_secs(2), |w: &mut Vec<&str>, _| w.push("later"));
/// eng.schedule_at(SimTime::from_secs(1), |w: &mut Vec<&str>, e| {
///     w.push("first");
///     e.schedule_in(SimDuration::from_secs(5), |w: &mut Vec<&str>, _| w.push("child"));
/// });
/// eng.run(&mut log);
/// assert_eq!(log, vec!["first", "later", "child"]);
/// assert_eq!(eng.now(), SimTime::from_secs(6));
/// ```
pub struct Engine<W> {
    now: SimTime,
    next_seq: u64,
    heap: EventHeap,
    slots: Vec<Slot<W>>,
    /// Head of the vacant-slot free list (`NIL` when empty).
    free_head: u32,
    /// Live (scheduled, not cancelled) events.
    pending: usize,
    fired: u64,
    /// Slots created after a [`Engine::shrink_to_fit`] start at this
    /// generation, strictly above any generation the truncated slots ever
    /// issued — a stale handle to a reclaimed slot can never match the
    /// index's next occupant.
    gen_floor: u32,
}

impl<W> Default for Engine<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Engine<W> {
    /// Create an engine at t = 0 with no pending events.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            next_seq: 0,
            heap: EventHeap::new(),
            slots: Vec::new(),
            free_head: NIL,
            pending: 0,
            fired: 0,
            gen_floor: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Number of live (non-cancelled) pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Cumulative heap pushes (one per [`Engine::schedule_at`]).
    ///
    /// Together with [`Engine::heap_pops`] and [`Engine::events_fired`]
    /// this forms a deterministic cost proxy: the counts are pure
    /// functions of configuration and seed, so CI can ratchet them
    /// without the ±30% noise of wall-clock timing.
    #[inline]
    pub fn heap_pushes(&self) -> u64 {
        self.heap.pushes
    }

    /// Cumulative heap pops (fired events plus drained tombstones).
    #[inline]
    pub fn heap_pops(&self) -> u64 {
        self.heap.pops
    }

    /// True when no live events remain.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.pending == 0
    }

    /// Return a slot to the free list and invalidate outstanding handles.
    #[inline]
    fn vacate(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.state = SlotState::Vacant {
            next_free: self.free_head,
        };
        self.free_head = slot;
    }

    /// Schedule `action` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a logic error in a DES.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: now={} at={}",
            self.now,
            at
        );
        let action: EventFn<W> = Box::new(action);
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            match s.state {
                SlotState::Vacant { next_free } => self.free_head = next_free,
                _ => unreachable!("free list points at an occupied slot"),
            }
            s.state = SlotState::Pending { action };
            slot
        } else {
            assert!(self.slots.len() < NIL as usize, "event slab exhausted");
            self.slots.push(Slot {
                gen: self.gen_floor,
                state: SlotState::Pending { action },
            });
            (self.slots.len() - 1) as u32
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending += 1;
        self.heap.push(HeapEntry::new(at, seq, slot));
        EventId {
            slot,
            gen: self.slots[slot as usize].gen,
        }
    }

    /// Schedule `action` to fire `after` from now.
    pub fn schedule_in(
        &mut self,
        after: SimDuration,
        action: impl FnOnce(&mut W, &mut Engine<W>) + 'static,
    ) -> EventId {
        let at = self.now.saturating_add(after);
        self.schedule_at(at, action)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now guaranteed not to fire), `false` if it had
    /// already fired or been cancelled — including through a stale handle
    /// whose slot now hosts a different event.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // `get_mut`, not indexing: a handle may outlive its slot entirely
        // when `shrink_to_fit` truncated the slab.
        let Some(s) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if s.gen != id.gen || !matches!(s.state, SlotState::Pending { .. }) {
            return false;
        }
        // O(1): the heap entry stays behind as garbage and is discarded
        // when it reaches the top.
        s.state = SlotState::Tombstone;
        self.pending -= 1;
        true
    }

    /// Time of the next live event, if any, without firing it.
    ///
    /// Discards any cancelled entries that have reached the top of the
    /// heap, so the returned time is always that of an event which will
    /// actually fire.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(top) = self.heap.peek() {
            match self.slots[top.slot as usize].state {
                SlotState::Tombstone => {
                    let e = self.heap.pop().expect("peeked");
                    self.vacate(e.slot);
                }
                _ => return Some(top.time()),
            }
        }
        None
    }

    /// Fire the next event, if any. Returns `false` when idle.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(ev) = self.heap.pop() {
            // Each occupation of a slot has exactly one heap entry, so
            // this entry refers to the slot's current occupant.
            let state = std::mem::replace(
                &mut self.slots[ev.slot as usize].state,
                SlotState::Tombstone,
            );
            match state {
                SlotState::Tombstone => {
                    self.vacate(ev.slot);
                }
                SlotState::Pending { action } => {
                    self.vacate(ev.slot);
                    debug_assert!(ev.time() >= self.now, "event heap returned past event");
                    self.now = ev.time();
                    self.fired += 1;
                    self.pending -= 1;
                    action(world, self);
                    return true;
                }
                SlotState::Vacant { .. } => {
                    unreachable!("heap entry for a vacant slot")
                }
            }
        }
        false
    }

    /// Run until no events remain.
    pub fn run(&mut self, world: &mut W) {
        while self.step(world) {}
    }

    /// Run until the next event would fire after `deadline` (or idle).
    /// Leaves `now` at the time of the last fired event (≤ `deadline`); the
    /// caller may then inspect the world "as of" the deadline.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            self.step(world);
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Run at most `max_events` events; returns how many fired.
    pub fn run_steps(&mut self, world: &mut W, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step(world) {
            n += 1;
        }
        n
    }

    /// Capacity of the event slab (live + reusable slots). Grows to the
    /// high-water mark of simultaneously scheduled events; reclaim it
    /// with [`Engine::shrink_to_fit`].
    pub fn slab_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Reclaim the high-water-mark allocation left behind by an event
    /// burst (a fault storm schedules thousands of retry/respawn timers
    /// that drain quickly): drop every cancelled entry still parked in
    /// the heap, release trailing vacant slab slots, and shrink the
    /// backing vectors. Pending events are untouched and stale
    /// [`EventId`]s stay inert. Returns the number of slab slots
    /// released. O(slab + heap); call it at quiet points, not per event.
    pub fn shrink_to_fit(&mut self) -> usize {
        // 1. Compact the heap in place, vacating tombstoned slots.
        let mut write = 0;
        for read in 0..self.heap.keys.len() {
            let slot = self.heap.slots[read];
            let s = &mut self.slots[slot as usize];
            if matches!(s.state, SlotState::Tombstone) {
                // Vacate without touching the free list; it is rebuilt
                // below. `pending` was already decremented by `cancel`.
                s.gen = s.gen.wrapping_add(1);
                s.state = SlotState::Vacant { next_free: NIL };
            } else {
                self.heap.keys[write] = self.heap.keys[read];
                self.heap.slots[write] = slot;
                write += 1;
            }
        }
        self.heap.keys.truncate(write);
        self.heap.slots.truncate(write);
        // Compaction broke the heap invariant; Floyd-heapify bottom-up.
        // Same-time FIFO order survives: it lives in the packed keys.
        if write > 1 {
            for i in (0..=(write - 2) / ARITY).rev() {
                let e = HeapEntry {
                    key: self.heap.keys[i],
                    slot: self.heap.slots[i],
                };
                self.heap.sift_down(i, e);
            }
        }
        // 2. Truncate trailing vacant slots, remembering the highest
        // generation dropped so reborn indices can never match a stale
        // handle.
        let keep = self
            .slots
            .iter()
            .rposition(|s| !matches!(s.state, SlotState::Vacant { .. }))
            .map_or(0, |i| i + 1);
        let released = self.slots.len() - keep;
        for s in &self.slots[keep..] {
            self.gen_floor = self.gen_floor.max(s.gen.wrapping_add(1));
        }
        self.slots.truncate(keep);
        // 3. Rebuild the free list over the surviving vacant slots.
        self.free_head = NIL;
        for i in (0..self.slots.len()).rev() {
            if matches!(self.slots[i].state, SlotState::Vacant { .. }) {
                self.slots[i].state = SlotState::Vacant {
                    next_free: self.free_head,
                };
                self.free_head = i as u32;
            }
        }
        self.slots.shrink_to_fit();
        self.heap.keys.shrink_to_fit();
        self.heap.slots.shrink_to_fit();
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    fn sec(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fires_in_time_order() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(sec(3), |w: &mut World, e| {
            w.log.push((e.now().as_nanos(), "c"))
        });
        eng.schedule_at(sec(1), |w: &mut World, e| {
            w.log.push((e.now().as_nanos(), "a"))
        });
        eng.schedule_at(sec(2), |w: &mut World, e| {
            w.log.push((e.now().as_nanos(), "b"))
        });
        eng.run(&mut w);
        let labels: Vec<_> = w.log.iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, vec!["a", "b", "c"]);
        assert_eq!(eng.events_fired(), 3);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for (i, label) in ["first", "second", "third", "fourth"].iter().enumerate() {
            let label = *label;
            let _ = i;
            eng.schedule_at(sec(5), move |w: &mut World, _| w.log.push((0, label)));
        }
        eng.run(&mut w);
        let labels: Vec<_> = w.log.iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, vec!["first", "second", "third", "fourth"]);
    }

    #[test]
    fn handlers_can_schedule_more() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(sec(1), |_w: &mut World, e| {
            e.schedule_in(SimDuration::from_secs(1), |w: &mut World, e| {
                w.log.push((e.now().as_nanos(), "child"));
            });
        });
        eng.run(&mut w);
        assert_eq!(w.log, vec![(2 * crate::time::NANOS_PER_SEC, "child")]);
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let id = eng.schedule_at(sec(1), |w: &mut World, _| w.log.push((0, "nope")));
        eng.schedule_at(sec(2), |w: &mut World, _| w.log.push((0, "yes")));
        assert!(eng.cancel(id));
        assert!(!eng.cancel(id), "double cancel reports false");
        eng.run(&mut w);
        assert_eq!(w.log, vec![(0, "yes")]);
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let id = eng.schedule_at(sec(1), |_: &mut World, _| {});
        eng.run(&mut w);
        assert!(!eng.cancel(id));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_past_panics() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(sec(5), |_: &mut World, _| {});
        eng.run(&mut w);
        eng.schedule_at(sec(1), |_: &mut World, _| {});
    }

    #[test]
    fn run_until_stops_and_advances_clock() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        eng.schedule_at(sec(1), |w: &mut World, _| w.log.push((0, "in")));
        eng.schedule_at(sec(10), |w: &mut World, _| w.log.push((0, "out")));
        eng.run_until(&mut w, sec(5));
        assert_eq!(w.log, vec![(0, "in")]);
        assert_eq!(eng.now(), sec(5));
        assert_eq!(eng.pending(), 1);
        eng.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    fn pending_accounts_for_cancellations() {
        let mut eng: Engine<World> = Engine::new();
        let a = eng.schedule_at(sec(1), |_: &mut World, _| {});
        let _b = eng.schedule_at(sec(2), |_: &mut World, _| {});
        assert_eq!(eng.pending(), 2);
        eng.cancel(a);
        assert_eq!(eng.pending(), 1);
        assert!(!eng.is_idle());
    }

    #[test]
    fn periodic_self_rescheduling_pattern() {
        // The idiom used by pollers (monitoring, heartbeats).
        struct Tick {
            count: Rc<std::cell::Cell<u32>>,
        }
        fn tick(w: &mut Tick, e: &mut Engine<Tick>) {
            w.count.set(w.count.get() + 1);
            if w.count.get() < 5 {
                e.schedule_in(SimDuration::from_millis(100), tick);
            }
        }
        let count = Rc::new(std::cell::Cell::new(0));
        let mut w = Tick {
            count: count.clone(),
        };
        let mut eng = Engine::new();
        eng.schedule_at(SimTime::ZERO, tick);
        eng.run(&mut w);
        assert_eq!(count.get(), 5);
        assert_eq!(
            eng.now(),
            SimTime::from_nanos(400 * crate::time::NANOS_PER_MILLI)
        );
    }

    #[test]
    fn stale_handle_cannot_cancel_slot_reuse() {
        // After a cancel, the slot is recycled by the next schedule once
        // its heap entry drains; the old handle's generation no longer
        // matches and must be inert.
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        let stale = eng.schedule_at(sec(1), |w: &mut World, _| w.log.push((0, "old")));
        eng.cancel(stale);
        // Drain the tombstone so the slot returns to the free list...
        assert_eq!(eng.peek_time(), None);
        // ...then reoccupy it with a new event.
        let fresh = eng.schedule_at(sec(2), |w: &mut World, _| w.log.push((0, "new")));
        assert_eq!(eng.pending(), 1);
        assert!(
            !eng.cancel(stale),
            "stale handle must not cancel the new occupant"
        );
        eng.run(&mut w);
        assert_eq!(w.log, vec![(0, "new")]);
        assert!(!eng.cancel(fresh), "fired handle is stale too");
    }

    #[test]
    fn peek_time_skips_tombstones_and_reports_next_live() {
        let mut eng: Engine<World> = Engine::new();
        let a = eng.schedule_at(sec(1), |_: &mut World, _| {});
        eng.schedule_at(sec(3), |_: &mut World, _| {});
        assert_eq!(eng.peek_time(), Some(sec(1)));
        eng.cancel(a);
        assert_eq!(eng.peek_time(), Some(sec(3)));
        let mut w = World::default();
        eng.run(&mut w);
        assert_eq!(eng.peek_time(), None);
    }

    #[test]
    fn shrink_to_fit_reclaims_burst_and_preserves_pending() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        // A burst of 1000 events; most are cancelled, a few survive.
        let mut survivors = Vec::new();
        for i in 0..1_000u64 {
            let id = eng.schedule_at(sec(10 + i), move |w: &mut World, _| {
                w.log.push((i, "live"));
            });
            if i % 250 == 3 {
                survivors.push(id);
            } else {
                eng.cancel(id);
            }
        }
        assert_eq!(eng.pending(), survivors.len());
        let before = eng.slab_capacity();
        assert!(before >= 1_000);
        let released = eng.shrink_to_fit();
        assert!(released > 0, "burst slots reclaimed");
        assert!(eng.slab_capacity() < before);
        assert_eq!(eng.pending(), survivors.len(), "live events survive");
        // Survivors still fire, in time order, and can still be cancelled.
        assert!(eng.cancel(survivors[0]));
        eng.run(&mut w);
        let fired: Vec<u64> = w.log.iter().map(|(i, _)| *i).collect();
        assert_eq!(fired, vec![253, 503, 753]);
    }

    #[test]
    fn shrink_to_fit_keeps_fifo_ties() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for label in ["first", "second", "third"] {
            eng.schedule_at(sec(5), move |w: &mut World, _| w.log.push((0, label)));
        }
        let doomed = eng.schedule_at(sec(1), |w: &mut World, _| w.log.push((0, "nope")));
        eng.cancel(doomed);
        eng.shrink_to_fit();
        eng.run(&mut w);
        let labels: Vec<_> = w.log.iter().map(|(_, l)| *l).collect();
        assert_eq!(labels, vec!["first", "second", "third"]);
    }

    #[test]
    fn stale_handles_inert_across_shrink_and_regrow() {
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        // Occupy and drain many slots so handles go stale.
        let stale: Vec<EventId> = (0..64u64)
            .map(|i| eng.schedule_at(sec(i), |_: &mut World, _| {}))
            .collect();
        eng.run(&mut w);
        assert!(eng.shrink_to_fit() > 0);
        assert_eq!(eng.slab_capacity(), 0);
        // Regrow the slab at the same indices (fresh first occupants).
        let fresh: Vec<EventId> = (0..64u64)
            .map(|i| eng.schedule_at(sec(100 + i), |w: &mut World, _| w.log.push((0, "new"))))
            .collect();
        for id in &stale {
            assert!(!eng.cancel(*id), "stale handle cancelled a reborn slot");
        }
        assert_eq!(eng.pending(), fresh.len());
        eng.run(&mut w);
        assert_eq!(w.log.len(), 64);
    }

    #[test]
    fn shrink_on_empty_engine_is_noop() {
        let mut eng: Engine<World> = Engine::new();
        assert_eq!(eng.shrink_to_fit(), 0);
        let mut w = World::default();
        eng.schedule_at(sec(1), |w: &mut World, _| w.log.push((0, "ok")));
        eng.run(&mut w);
        assert_eq!(w.log.len(), 1);
    }

    #[test]
    fn slots_are_recycled() {
        // Heavy schedule/fire churn must not grow the slab beyond the
        // high-water mark of simultaneously pending events.
        let mut eng: Engine<World> = Engine::new();
        let mut w = World::default();
        for round in 0..1_000u64 {
            for i in 0..4u64 {
                eng.schedule_at(SimTime::from_nanos(round * 10 + i), |_: &mut World, _| {});
            }
            while eng.step(&mut w) {}
        }
        assert_eq!(eng.events_fired(), 4_000);
        assert!(
            eng.slots.len() <= 4,
            "slab grew to {} slots for 4 concurrent events",
            eng.slots.len()
        );
    }
}
