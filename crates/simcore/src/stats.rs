//! Streaming statistics for simulation outputs.
//!
//! Three collectors cover everything the figure harness needs:
//!
//! * [`OnlineStats`] — Welford mean/variance with min/max, for latency and
//!   completion-time series.
//! * [`DurationHistogram`] — log-bucketed histogram over [`SimDuration`]s
//!   with percentile queries (P50/P95/P99 of request latency).
//! * [`TimeWeighted`] — a gauge integrated over virtual time, for
//!   utilization ("SMs busy", "memory allocated") where *how long* a value
//!   held matters, not how often it was sampled.

use crate::time::{SimDuration, SimTime};
use serde::Serialize;

/// Welford-style running mean/variance with extremes.
#[derive(Debug, Clone, Default, Serialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl OnlineStats {
    /// Empty collector.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (None when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (None when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another collector into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed histogram over durations.
///
/// Buckets grow geometrically from 1 µs; with `GROWTH = 2^(1/8)` the
/// relative quantile error is bounded by ~9 %, plenty for shape checks.
#[derive(Debug, Clone, Serialize)]
pub struct DurationHistogram {
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
}

const HIST_BASE_NS: f64 = 1_000.0; // 1 µs
const HIST_BUCKETS: usize = 400; // covers up to ~1 µs * 2^(400/8) ≈ 10^9 s
const HIST_LOG_GROWTH: f64 = 0.086_643_397_569_993_16; // ln(2)/8

impl Default for DurationHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl DurationHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        DurationHistogram {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
            underflow: 0,
        }
    }

    fn bucket_of(d: SimDuration) -> Option<usize> {
        let ns = d.as_nanos() as f64;
        if ns < HIST_BASE_NS {
            return None;
        }
        let idx = ((ns / HIST_BASE_NS).ln() / HIST_LOG_GROWTH) as usize;
        Some(idx.min(HIST_BUCKETS - 1))
    }

    fn bucket_upper(idx: usize) -> SimDuration {
        let ns = HIST_BASE_NS * ((idx + 1) as f64 * HIST_LOG_GROWTH).exp();
        SimDuration::from_nanos(ns as u64)
    }

    /// Record one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.total += 1;
        match Self::bucket_of(d) {
            Some(i) => self.counts[i] += 1,
            None => self.underflow += 1,
        }
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Approximate quantile `q` in `[0, 1]` (None when empty). Returned as
    /// the upper edge of the containing bucket, so it never underestimates
    /// by more than one bucket's width.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = self.underflow;
        if seen >= rank {
            return Some(SimDuration::from_nanos(HIST_BASE_NS as u64));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_upper(i));
            }
        }
        Some(Self::bucket_upper(HIST_BUCKETS - 1))
    }

    /// Median.
    pub fn p50(&self) -> Option<SimDuration> {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> Option<SimDuration> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Option<SimDuration> {
        self.quantile(0.99)
    }
}

/// A gauge integrated over virtual time.
///
/// `set(t, v)` records that the gauge held its previous value up to `t` and
/// holds `v` from then on; `average(t_end)` is the time-weighted mean.
#[derive(Debug, Clone, Serialize)]
pub struct TimeWeighted {
    start: SimTime,
    last_t: SimTime,
    value: f64,
    integral: f64,
    max: f64,
}

impl TimeWeighted {
    /// Start integrating at `t0` with initial value `v0`.
    pub fn new(t0: SimTime, v0: f64) -> Self {
        TimeWeighted {
            start: t0,
            last_t: t0,
            value: v0,
            integral: 0.0,
            max: v0,
        }
    }

    /// Set a new value at time `t` (must be ≥ the previous update time).
    pub fn set(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            t >= self.last_t,
            "TimeWeighted updates must be in time order"
        );
        self.integral += self.value * t.duration_since(self.last_t).as_secs_f64();
        self.last_t = t;
        self.value = v;
        self.max = self.max.max(v);
    }

    /// Add `dv` to the current value at time `t`.
    pub fn add(&mut self, t: SimTime, dv: f64) {
        let v = self.value + dv;
        self.set(t, v);
    }

    /// Current (most recent) value.
    pub fn current(&self) -> f64 {
        self.value
    }

    /// Largest value seen.
    pub fn max_value(&self) -> f64 {
        self.max
    }

    /// Time-weighted average over `[start, t_end]` (0 on an empty window).
    pub fn average(&self, t_end: SimTime) -> f64 {
        let span = t_end.duration_since(self.start).as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        let tail = self.value * t_end.duration_since(self.last_t).as_secs_f64();
        (self.integral + tail) / span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn online_stats_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_bracket_truth() {
        let mut h = DurationHistogram::new();
        for ms in 1..=1000u64 {
            h.record(SimDuration::from_millis(ms));
        }
        let p50 = h.p50().unwrap().as_millis_f64();
        let p99 = h.p99().unwrap().as_millis_f64();
        assert!((450.0..=560.0).contains(&p50), "p50={p50}");
        assert!((900.0..=1100.0).contains(&p99), "p99={p99}");
    }

    #[test]
    fn histogram_empty_and_tiny() {
        let mut h = DurationHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        h.record(SimDuration::from_nanos(10)); // below 1 µs → underflow bucket
        assert_eq!(h.count(), 1);
        assert!(h.p50().unwrap() <= SimDuration::from_micros(1));
    }

    #[test]
    fn time_weighted_average() {
        let mut g = TimeWeighted::new(SimTime::ZERO, 0.0);
        g.set(SimTime::from_secs(10), 1.0); // 0 for 10s
        g.set(SimTime::from_secs(20), 0.0); // 1 for 10s
        let avg = g.average(SimTime::from_secs(20));
        assert!((avg - 0.5).abs() < 1e-12, "avg={avg}");
        assert_eq!(g.max_value(), 1.0);
        // extend with 0 for another 20s → avg 0.25
        let avg = g.average(SimTime::from_secs(40));
        assert!((avg - 0.25).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_add() {
        let mut g = TimeWeighted::new(SimTime::ZERO, 2.0);
        g.add(SimTime::from_secs(5), 3.0);
        assert_eq!(g.current(), 5.0);
        g.add(SimTime::from_secs(10), -5.0);
        assert_eq!(g.current(), 0.0);
        // 2 for 5s + 5 for 5s = 35 over 10s
        assert!((g.average(SimTime::from_secs(10)) - 3.5).abs() < 1e-12);
    }
}
