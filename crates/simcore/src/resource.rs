//! Shared-resource primitives.
//!
//! * [`FifoResource`] — counted capacity with a FIFO wait queue of
//!   continuations; used for worker slots and bounded queues.
//! * [`PsPool`] — an egalitarian processor-sharing pool; used for the CPU
//!   side of the testbed (24 Xeon cores serving a variable task population).
//!
//! Both are *passive* state machines: they never call the engine themselves.
//! The owner pops ready continuations / completion deadlines and schedules
//! events, which keeps borrow scopes trivially correct.

use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Counted resource with a FIFO queue of waiting continuations.
///
/// `C` is whatever the caller wants to resume with — usually a boxed
/// closure over the world type.
#[derive(Debug)]
pub struct FifoResource<C> {
    capacity: usize,
    in_use: usize,
    waiting: VecDeque<C>,
}

impl<C> FifoResource<C> {
    /// A resource with `capacity` concurrent slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "resource capacity must be positive");
        FifoResource {
            capacity,
            in_use: 0,
            waiting: VecDeque::new(),
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Slots currently held.
    pub fn in_use(&self) -> usize {
        self.in_use
    }

    /// Continuations currently queued.
    pub fn queue_len(&self) -> usize {
        self.waiting.len()
    }

    /// Acquire a slot immediately if one is free. Returns `true` on
    /// success; the caller then proceeds synchronously.
    pub fn try_acquire(&mut self) -> bool {
        if self.in_use < self.capacity {
            self.in_use += 1;
            true
        } else {
            false
        }
    }

    /// Acquire now (returning `true`) or enqueue `cont` to be resumed when
    /// a slot frees (returning `false`).
    pub fn acquire_or_wait(&mut self, cont: C) -> bool {
        if self.try_acquire() {
            true
        } else {
            self.waiting.push_back(cont);
            false
        }
    }

    /// Release one slot. If a waiter exists it *keeps* the slot and its
    /// continuation is returned for the caller to run; otherwise the slot
    /// becomes free and `None` is returned.
    pub fn release(&mut self) -> Option<C> {
        assert!(self.in_use > 0, "release without acquire");
        match self.waiting.pop_front() {
            Some(c) => Some(c), // slot transfers to the waiter
            None => {
                self.in_use -= 1;
                None
            }
        }
    }
}

/// Job identifier inside a [`PsPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PsJobId(u64);

#[derive(Debug, Clone)]
struct PsJob {
    id: PsJobId,
    /// Remaining service demand in core-seconds.
    remaining: f64,
}

/// Egalitarian processor-sharing pool of `cores` identical servers.
///
/// With `n` resident jobs each runs at rate `min(1, cores/n)` cores. After
/// any membership change the owner must call [`PsPool::advance`] to the
/// current time and then re-arm a completion event at
/// [`PsPool::next_completion`].
#[derive(Debug)]
pub struct PsPool {
    cores: f64,
    jobs: Vec<PsJob>,
    last: SimTime,
    next_id: u64,
}

impl PsPool {
    /// Pool with the given core count.
    pub fn new(cores: usize, now: SimTime) -> Self {
        assert!(cores > 0, "PsPool needs at least one core");
        PsPool {
            cores: cores as f64,
            jobs: Vec::new(),
            last: now,
            next_id: 0,
        }
    }

    /// Number of resident jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when no jobs are resident.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Per-job service rate (cores) with the current population.
    pub fn rate(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            (self.cores / self.jobs.len() as f64).min(1.0)
        }
    }

    /// Busy cores right now.
    pub fn busy_cores(&self) -> f64 {
        self.rate() * self.jobs.len() as f64
    }

    /// Integrate progress up to `now`. Must be called before any
    /// membership change and before querying completions.
    pub fn advance(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last).as_secs_f64();
        if dt > 0.0 {
            let r = self.rate();
            for j in &mut self.jobs {
                j.remaining = (j.remaining - r * dt).max(0.0);
            }
        }
        self.last = now;
    }

    /// Admit a job with `demand` core-seconds of work at time `now`.
    pub fn add(&mut self, now: SimTime, demand: f64) -> PsJobId {
        assert!(
            demand >= 0.0 && demand.is_finite(),
            "invalid demand {demand}"
        );
        self.advance(now);
        let id = PsJobId(self.next_id);
        self.next_id += 1;
        self.jobs.push(PsJob {
            id,
            remaining: demand,
        });
        id
    }

    /// Remove a job (e.g. cancelled); returns its remaining demand.
    pub fn remove(&mut self, now: SimTime, id: PsJobId) -> Option<f64> {
        self.advance(now);
        let idx = self.jobs.iter().position(|j| j.id == id)?;
        Some(self.jobs.swap_remove(idx).remaining)
    }

    /// The job that will finish next and when, given the current
    /// population stays fixed. `None` when empty.
    pub fn next_completion(&self, now: SimTime) -> Option<(PsJobId, SimTime)> {
        debug_assert!(now >= self.last);
        let r = self.rate();
        if r <= 0.0 {
            return None;
        }
        let lead = now.duration_since(self.last).as_secs_f64();
        self.jobs
            .iter()
            .map(|j| (j.id, (j.remaining - r * lead).max(0.0) / r))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, secs)| (id, now.saturating_add(SimDuration::from_secs_f64(secs))))
    }

    /// Pop every job whose remaining demand is (numerically) zero at `now`.
    pub fn take_finished(&mut self, now: SimTime) -> Vec<PsJobId> {
        self.advance(now);
        let mut done = Vec::new();
        self.jobs.retain(|j| {
            if j.remaining <= 1e-9 {
                done.push(j.id);
                false
            } else {
                true
            }
        });
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_counts_and_transfers() {
        let mut r: FifoResource<&'static str> = FifoResource::new(2);
        assert!(r.try_acquire());
        assert!(r.try_acquire());
        assert!(!r.try_acquire());
        assert!(!r.acquire_or_wait("w1"));
        assert!(!r.acquire_or_wait("w2"));
        assert_eq!(r.queue_len(), 2);
        // release hands the slot to w1
        assert_eq!(r.release(), Some("w1"));
        assert_eq!(r.in_use(), 2);
        assert_eq!(r.release(), Some("w2"));
        assert_eq!(r.release(), None);
        assert_eq!(r.in_use(), 1);
        assert_eq!(r.release(), None);
        assert_eq!(r.in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "release without acquire")]
    fn fifo_release_unheld_panics() {
        let mut r: FifoResource<()> = FifoResource::new(1);
        let _ = r.release();
    }

    #[test]
    fn ps_single_job_runs_at_one_core() {
        let mut p = PsPool::new(4, SimTime::ZERO);
        let id = p.add(SimTime::ZERO, 10.0);
        let (jid, t) = p.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(jid, id);
        assert!((t.as_secs_f64() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ps_overload_shares_equally() {
        // 2 cores, 4 equal jobs → each runs at 0.5 cores → 10 cs takes 20 s.
        let mut p = PsPool::new(2, SimTime::ZERO);
        for _ in 0..4 {
            p.add(SimTime::ZERO, 10.0);
        }
        let (_, t) = p.next_completion(SimTime::ZERO).unwrap();
        assert!((t.as_secs_f64() - 20.0).abs() < 1e-9, "t={t}");
        let done = p.take_finished(t);
        assert_eq!(done.len(), 4, "equal jobs finish together");
        assert!(p.is_empty());
    }

    #[test]
    fn ps_departure_speeds_up_survivors() {
        // 1 core; job A (4 cs) and job B (10 cs) start together.
        // A finishes at 8 s (rate 0.5); B then has 6 cs left at rate 1.
        let mut p = PsPool::new(1, SimTime::ZERO);
        let _a = p.add(SimTime::ZERO, 4.0);
        let b = p.add(SimTime::ZERO, 10.0);
        let (first, t1) = p.next_completion(SimTime::ZERO).unwrap();
        assert!((t1.as_secs_f64() - 8.0).abs() < 1e-9);
        let done = p.take_finished(t1);
        assert_eq!(done, vec![first]);
        let (second, t2) = p.next_completion(t1).unwrap();
        assert_eq!(second, b);
        assert!((t2.as_secs_f64() - 14.0).abs() < 1e-9, "t2={t2}");
    }

    #[test]
    fn ps_mid_flight_arrival() {
        // 1 core. A (10 cs) alone for 5 s, then B (2.5 cs) arrives.
        // Both at rate 0.5: B finishes at 5 + 5 = 10 s; A has 2.5 left, at
        // rate 1 → done at 12.5 s.
        let mut p = PsPool::new(1, SimTime::ZERO);
        let a = p.add(SimTime::ZERO, 10.0);
        let t5 = SimTime::from_secs(5);
        let b = p.add(t5, 2.5);
        let (first, t1) = p.next_completion(t5).unwrap();
        assert_eq!(first, b);
        assert!((t1.as_secs_f64() - 10.0).abs() < 1e-9);
        p.take_finished(t1);
        let (second, t2) = p.next_completion(t1).unwrap();
        assert_eq!(second, a);
        assert!((t2.as_secs_f64() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn ps_remove_returns_remaining() {
        let mut p = PsPool::new(1, SimTime::ZERO);
        let a = p.add(SimTime::ZERO, 10.0);
        let rem = p.remove(SimTime::from_secs(4), a).unwrap();
        assert!((rem - 6.0).abs() < 1e-9);
        assert!(p.remove(SimTime::from_secs(4), a).is_none());
    }

    #[test]
    fn ps_zero_demand_finishes_immediately() {
        let mut p = PsPool::new(1, SimTime::ZERO);
        let id = p.add(SimTime::ZERO, 0.0);
        let (jid, t) = p.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(jid, id);
        assert_eq!(t, SimTime::ZERO);
    }
}
